//! Typed diagnostics: codes, severities, spans, and the two renderers.
//!
//! Every finding the analyzer can produce is a [`Diagnostic`] carrying a
//! stable [`Code`] (the contract with CI scripts, the service protocol and
//! the JSON output), a [`Severity`] derived from the code, an optional
//! [`Span`] locating the finding, a message, and an optional fix hint.

use linrec_datalog::Symbol;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never fails a check.
    Info,
    /// Suspicious but not unsound: `linrec check` reports it and exits
    /// nonzero, deny-by-default gates let it through.
    Warning,
    /// Unsound or internally inconsistent: deny-by-default gates
    /// (`ViewService::register_view`, `linrec run`/`serve`) refuse the
    /// program.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers (`"error"`, `"warning"`,
    /// `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The stable code of a finding. The numeric ranges partition by pass:
/// `L0xx` program lints, `C1xx` certificate cross-verification, `P2xx`
/// plan lints. See the README's "Static analysis" catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `L000` — the source failed to parse or violates program shape
    /// (non-linear rule, inconsistent recursive arity, …).
    ParseError,
    /// `L001` — a head variable is not bound by any positive body atom
    /// (the rule is not range-restricted / not safe).
    UnsafeRule,
    /// `L002` — a variable occurs exactly once in its rule: it joins
    /// nothing and usually indicates a typo.
    SingletonVariable,
    /// `L003` — one predicate symbol is used at two different arities.
    ArityConflict,
    /// `L004` — a rule joins against a predicate that is empty (or absent)
    /// in the database, so it can never fire during this fixpoint.
    DeadRule,
    /// `L005` — a rule is subsumed by another rule (its operator is `≤`
    /// the other's, Chandra–Merlin): deleting it cannot change any
    /// fixpoint.
    SubsumedRule,
    /// `L006` — a rule is equivalent to an earlier rule.
    DuplicateRule,
    /// `L007` — the seed relation is empty: the fixpoint is empty no
    /// matter what the rules say.
    EmptySeed,
    /// `C101` — the planner's commutativity clusters disagree with the
    /// independent by-definition recomputation.
    CommutativityMismatch,
    /// `C102` — the claimed clusters are not a partition of the rule
    /// indices.
    MalformedClusters,
    /// `C103` — a claimed uniform-boundedness witness `Aᴺ ≤ Aᴷ` fails the
    /// independent containment check.
    BoundednessMismatch,
    /// `C104` — claimed Theorem 6.4 redundancy witnesses fail
    /// re-verification.
    RedundancyMismatch,
    /// `C105` — a claimed separable pair fails the by-definition
    /// commutation check (Theorem 4.1's operator premise).
    SeparabilityMismatch,
    /// `C106` — the independent procedure licenses a cluster decomposition
    /// the planner did not certify.
    MissedDecomposition,
    /// `C107` — the independent procedure finds a uniform-boundedness
    /// witness the planner did not certify.
    MissedBoundedness,
    /// `P201` — the plan applies the selection after the fixpoint although
    /// a separability certificate licenses pushing it inside.
    MissedPushdown,
    /// `P202` — the cost model chose `Direct` although a certificate
    /// licenses a decomposed / redundancy-bounded strategy.
    CostSkippedCertificate,
}

impl Code {
    /// The stable code string (`"L001"`, `"C103"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ParseError => "L000",
            Code::UnsafeRule => "L001",
            Code::SingletonVariable => "L002",
            Code::ArityConflict => "L003",
            Code::DeadRule => "L004",
            Code::SubsumedRule => "L005",
            Code::DuplicateRule => "L006",
            Code::EmptySeed => "L007",
            Code::CommutativityMismatch => "C101",
            Code::MalformedClusters => "C102",
            Code::BoundednessMismatch => "C103",
            Code::RedundancyMismatch => "C104",
            Code::SeparabilityMismatch => "C105",
            Code::MissedDecomposition => "C106",
            Code::MissedBoundedness => "C107",
            Code::MissedPushdown => "P201",
            Code::CostSkippedCertificate => "P202",
        }
    }

    /// The severity this code always carries. Certificate disagreements
    /// are errors by design: a cert regression must be impossible to ship
    /// silently.
    pub fn severity(self) -> Severity {
        match self {
            Code::ParseError
            | Code::UnsafeRule
            | Code::ArityConflict
            | Code::CommutativityMismatch
            | Code::MalformedClusters
            | Code::BoundednessMismatch
            | Code::RedundancyMismatch
            | Code::SeparabilityMismatch
            | Code::MissedDecomposition
            | Code::MissedBoundedness => Severity::Error,
            Code::SingletonVariable
            | Code::DeadRule
            | Code::SubsumedRule
            | Code::DuplicateRule
            | Code::EmptySeed
            | Code::MissedPushdown => Severity::Warning,
            Code::CostSkippedCertificate => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points: a rule index (the program's order), a predicate
/// symbol, both, or neither (program-wide findings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// Zero-based index of the rule the finding is about.
    pub rule: Option<usize>,
    /// The predicate symbol the finding is about.
    pub pred: Option<Symbol>,
}

impl Span {
    /// A program-wide span.
    pub fn none() -> Span {
        Span::default()
    }

    /// A span pointing at one rule.
    pub fn rule(i: usize) -> Span {
        Span {
            rule: Some(i),
            pred: None,
        }
    }

    /// A span pointing at one predicate.
    pub fn pred(p: Symbol) -> Span {
        Span {
            rule: None,
            pred: Some(p),
        }
    }

    /// A span pointing at a predicate occurrence inside one rule.
    pub fn rule_pred(i: usize, p: Symbol) -> Span {
        Span {
            rule: Some(i),
            pred: Some(p),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.rule, self.pred) {
            (Some(r), Some(p)) => write!(f, "rule {r} ({p})"),
            (Some(r), None) => write!(f, "rule {r}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => f.write_str("program"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a fix is obvious.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic; the severity comes from the code.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a fix hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// The single-line form used on the service protocol:
    /// `<code> <span>: <message>`.
    pub fn protocol_line(&self) -> String {
        format!("{} {}: {}", self.code, self.span, self.message)
    }

    /// Render as one JSON object (the schema documented in the README).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity.label()));
        if let Some(r) = self.span.rule {
            out.push_str(&format!(",\"rule\":{r}"));
        }
        if let Some(p) = self.span.pred {
            out.push_str(&format!(",\"pred\":\"{}\"", json_escape(p.as_str())));
        }
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        if let Some(h) = &self.help {
            out.push_str(&format!(",\"help\":\"{}\"", json_escape(h)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.span,
            self.message
        )?;
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::UnsafeRule.as_str(), "L001");
        assert_eq!(Code::CommutativityMismatch.as_str(), "C101");
        assert_eq!(Code::MissedPushdown.as_str(), "P201");
        assert_eq!(Code::UnsafeRule.severity(), Severity::Error);
        assert_eq!(Code::DeadRule.severity(), Severity::Warning);
        assert_eq!(Code::CostSkippedCertificate.severity(), Severity::Info);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn display_and_json_round_out() {
        let d = Diagnostic::new(Code::UnsafeRule, Span::rule(2), "y is unbound")
            .with_help("bind y in the body");
        let text = d.to_string();
        assert!(text.starts_with("error[L001] rule 2: y is unbound"));
        assert!(text.contains("help: bind y"));
        let json = d.to_json();
        assert!(json.contains("\"code\":\"L001\""));
        assert!(json.contains("\"rule\":2"));
        assert!(json.contains("\"help\":\"bind y in the body\""));
        assert_eq!(d.protocol_line(), "L001 rule 2: y is unbound");
    }
}
