//! Pass 1 — program lints.
//!
//! Purely syntactic and set-theoretic checks over the rule set and (when
//! provided) the database it will run against:
//!
//! * **safety** (`L001`): every head variable must be bound by a positive
//!   body atom — an unbound head variable has no value to take;
//! * **singleton variables** (`L002`): a variable occurring once joins
//!   nothing and is almost always a typo;
//! * **arity consistency** (`L003`): one symbol, one arity — across rules
//!   and against the database's relations;
//! * **dead rules** (`L004`): the EDB is immutable during a fixpoint, so a
//!   rule joining an empty (or absent) relation can never fire, and
//!   deleting it cannot change the result;
//! * **subsumed / duplicate rules** (`L005`/`L006`): rule operators are
//!   compared under Chandra–Merlin containment (via `linrec-cq`); a rule
//!   `≤` another contributes nothing to any fixpoint;
//! * **empty seed** (`L007`): a linear rule needs an input tuple for its
//!   recursive atom, so an empty seed forces an empty fixpoint.

use crate::diagnostic::{Code, Diagnostic, Span};
use linrec_cq::linear_contains;
use linrec_datalog::hash::FastMap;
use linrec_datalog::{Database, LinearRule, Relation, Symbol};

/// Run every program lint. `db`/`init` enable the data-dependent lints
/// (`L004`, `L007`); pass `None` for purely structural checking (the
/// service's registration gate does, since its relations fill up later).
pub fn program_lints(
    rules: &[LinearRule],
    db: Option<&Database>,
    init: Option<&Relation>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    safety(rules, &mut out);
    singletons(rules, &mut out);
    arity_conflicts(rules, db, &mut out);
    if let Some(db) = db {
        dead_rules(rules, db, &mut out);
    }
    subsumption(rules, &mut out);
    if init.is_some_and(|r| r.is_empty()) {
        out.push(
            Diagnostic::new(
                Code::EmptySeed,
                Span::none(),
                "the seed relation is empty, so the fixpoint is empty regardless of the rules",
            )
            .with_help("add seed facts for the recursive predicate"),
        );
    }
    out
}

/// `L001`: every head variable must occur in the body.
fn safety(rules: &[LinearRule], out: &mut Vec<Diagnostic>) {
    for (i, r) in rules.iter().enumerate() {
        if r.is_range_restricted() {
            continue;
        }
        let body: linrec_datalog::hash::FastSet<_> = r
            .rec_atom()
            .vars()
            .chain(r.nonrec_atoms().iter().flat_map(|a| a.vars()))
            .collect();
        let mut unbound: Vec<String> = r
            .head_vars()
            .iter()
            .filter(|v| !body.contains(v))
            .map(|v| v.name().to_owned())
            .collect();
        unbound.dedup();
        out.push(
            Diagnostic::new(
                Code::UnsafeRule,
                Span::rule(i),
                format!(
                    "head variable{} {} {} not bound by any body atom",
                    if unbound.len() == 1 { "" } else { "s" },
                    unbound.join(", "),
                    if unbound.len() == 1 { "is" } else { "are" },
                ),
            )
            .with_help("bind every head variable in a positive body atom, or drop it"),
        );
    }
}

/// `L002`: variables occurring exactly once.
fn singletons(rules: &[LinearRule], out: &mut Vec<Diagnostic>) {
    for (i, r) in rules.iter().enumerate() {
        let mut once: Vec<&str> = r
            .occurrence_counts()
            .iter()
            .filter(|(_, &c)| c == 1)
            .map(|(v, _)| v.name())
            .collect();
        if once.is_empty() {
            continue;
        }
        once.sort_unstable();
        out.push(
            Diagnostic::new(
                Code::SingletonVariable,
                Span::rule(i),
                format!(
                    "variable{} {} occur{} only once",
                    if once.len() == 1 { "" } else { "s" },
                    once.join(", "),
                    if once.len() == 1 { "s" } else { "" },
                ),
            )
            .with_help("a singleton joins nothing — check for a typo"),
        );
    }
}

/// `L003`: every predicate symbol must be used at a single arity, both
/// across the rules and against the database's stored relations.
fn arity_conflicts(rules: &[LinearRule], db: Option<&Database>, out: &mut Vec<Diagnostic>) {
    // Symbol → (arity, rule index of first use).
    let mut seen: FastMap<Symbol, (usize, usize)> = FastMap::default();
    for (i, r) in rules.iter().enumerate() {
        let atoms = std::iter::once(r.head())
            .chain(std::iter::once(r.rec_atom()))
            .chain(r.nonrec_atoms().iter());
        for a in atoms {
            if a.is_eq() {
                continue;
            }
            match seen.get(&a.pred) {
                None => {
                    seen.insert(a.pred, (a.arity(), i));
                }
                Some(&(arity, first)) if arity != a.arity() => {
                    out.push(Diagnostic::new(
                        Code::ArityConflict,
                        Span::rule_pred(i, a.pred),
                        format!(
                            "{} is used with arity {} here but arity {arity} in rule {first}",
                            a.pred,
                            a.arity(),
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    if let Some(db) = db {
        for (pred, (arity, rule)) in &seen {
            if let Some(rel) = db.relation(*pred) {
                if rel.arity() != *arity && !rel.is_empty() {
                    out.push(Diagnostic::new(
                        Code::ArityConflict,
                        Span::rule_pred(*rule, *pred),
                        format!(
                            "{pred} is used with arity {arity} but the database stores \
                             {}-tuples for it",
                            rel.arity(),
                        ),
                    ));
                }
            }
        }
    }
}

/// `L004`: a rule whose nonrecursive atom scans an empty or absent
/// relation can never fire — the EDB does not change during a fixpoint.
fn dead_rules(rules: &[LinearRule], db: &Database, out: &mut Vec<Diagnostic>) {
    for (i, r) in rules.iter().enumerate() {
        let dead = r
            .nonrec_atoms()
            .iter()
            .find(|a| !a.is_eq() && db.relation(a.pred).is_none_or(|rel| rel.is_empty()));
        if let Some(a) = dead {
            out.push(
                Diagnostic::new(
                    Code::DeadRule,
                    Span::rule_pred(i, a.pred),
                    format!(
                        "{} is {} in the database, so this rule can never fire",
                        a.pred,
                        if db.relation(a.pred).is_none() {
                            "absent"
                        } else {
                            "empty"
                        },
                    ),
                )
                .with_help("load facts for the predicate or delete the rule"),
            );
        }
    }
}

/// `L005`/`L006`: pairwise operator containment after aligning all
/// consequents. A rule `≤` another derives a subset of its tuples from any
/// input, so deleting it preserves every fixpoint; for equivalent rules
/// only the later one is flagged, so the survivors of a simultaneous
/// deletion still cover each equivalence class.
fn subsumption(rules: &[LinearRule], out: &mut Vec<Diagnostic>) {
    let Some(first) = rules.first() else {
        return;
    };
    let aligned: Vec<Option<LinearRule>> = rules
        .iter()
        .map(|r| r.align_consequent(first.head()).ok())
        .collect();
    let mut flagged = vec![false; rules.len()];
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            let (Some(a), Some(b)) = (&aligned[i], &aligned[j]) else {
                continue;
            };
            let i_le_j = linear_contains(b, a); // rules[i] ≤ rules[j]
            let j_le_i = linear_contains(a, b); // rules[j] ≤ rules[i]
            if i_le_j && j_le_i {
                if !flagged[j] {
                    flagged[j] = true;
                    out.push(
                        Diagnostic::new(
                            Code::DuplicateRule,
                            Span::rule(j),
                            format!("rule {j} is equivalent to rule {i}"),
                        )
                        .with_help("delete the duplicate"),
                    );
                }
            } else if i_le_j {
                if !flagged[i] {
                    flagged[i] = true;
                    out.push(
                        Diagnostic::new(
                            Code::SubsumedRule,
                            Span::rule(i),
                            format!(
                                "rule {i} is subsumed by rule {j} (its operator is ≤ rule {j}'s)"
                            ),
                        )
                        .with_help("the rule adds no tuples any fixpoint misses — delete it"),
                    );
                }
            } else if j_le_i && !flagged[j] {
                flagged[j] = true;
                out.push(
                    Diagnostic::new(
                        Code::SubsumedRule,
                        Span::rule(j),
                        format!("rule {j} is subsumed by rule {i} (its operator is ≤ rule {i}'s)"),
                    )
                    .with_help("the rule adds no tuples any fixpoint misses — delete it"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn unsafe_rule_is_l001() {
        let rules = [lr("p(x,y) :- p(x,x), e(x,x).")];
        let d = program_lints(&rules, None, None);
        assert!(codes(&d).contains(&"L001"), "{d:?}");
    }

    #[test]
    fn singleton_is_l002() {
        let rules = [lr("p(x,y) :- p(x,y), q(z).")];
        let d = program_lints(&rules, None, None);
        assert!(codes(&d).contains(&"L002"), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains('z')), "{d:?}");
    }

    #[test]
    fn arity_conflict_is_l003() {
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(x,y) :- p(x,z), q(z,z,y)."),
        ];
        let d = program_lints(&rules, None, None);
        assert!(codes(&d).contains(&"L003"), "{d:?}");
    }

    #[test]
    fn empty_relation_is_l004() {
        let rules = [lr("p(x,y) :- p(x,z), q(z,y).")];
        let db = Database::new(); // q absent
        let d = program_lints(&rules, Some(&db), None);
        assert!(codes(&d).contains(&"L004"), "{d:?}");
    }

    #[test]
    fn subsumed_and_duplicate_rules() {
        // Rule 1 requires strictly more than rule 0 ⇒ rule 1 ≤ rule 0.
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(x,y) :- p(x,z), q(z,y), t(y)."),
        ];
        let d = program_lints(&rules, None, None);
        let sub: Vec<_> = d.iter().filter(|d| d.code == Code::SubsumedRule).collect();
        assert_eq!(sub.len(), 1, "{d:?}");
        assert_eq!(sub[0].span.rule, Some(1));

        // Variable renaming only ⇒ duplicates; the later rule is flagged.
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(a,b) :- p(a,c), q(c,b)."),
        ];
        let d = program_lints(&rules, None, None);
        let dup: Vec<_> = d.iter().filter(|d| d.code == Code::DuplicateRule).collect();
        assert_eq!(dup.len(), 1, "{d:?}");
        assert_eq!(dup[0].span.rule, Some(1));
    }

    #[test]
    fn empty_seed_is_l007() {
        let rules = [lr("p(x,y) :- p(x,z), q(z,y).")];
        let d = program_lints(&rules, None, Some(&Relation::new(2)));
        assert!(codes(&d).contains(&"L007"), "{d:?}");
    }

    #[test]
    fn clean_program_is_clean() {
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(x,y) :- p(w,y), q(x,w)."),
        ];
        let mut db = Database::new();
        db.set_relation("q", Relation::from_pairs([(1, 2)]));
        let seed = Relation::from_pairs([(1, 1)]);
        let d = program_lints(&rules, Some(&db), Some(&seed));
        assert!(d.is_empty(), "{d:?}");
    }
}
