//! Pass 2 — certificate cross-verification.
//!
//! The planner's typed certificates license every optimized strategy the
//! engine ships. Their constructors verify their own premises, but a bug
//! in the *shared* machinery (the exact tests, the cluster builder, the
//! power search) would corrupt constructor and consumer alike. This pass
//! re-derives each claim with an **independent second procedure** built
//! directly on the `linrec-cq` primitives:
//!
//! * **commutativity** — the analysis prefers the O(a log a) syntactic
//!   test of Theorems 5.2/5.3; the cross-verifier always goes *by
//!   definition*: compose the pair both ways and test CQ-equivalence
//!   (`C101`/`C102`/`C106`);
//! * **boundedness** — the claimed witness `Aᴺ ≤ Aᴷ` is re-checked as one
//!   direct containment between independently recomputed minimized powers
//!   (`C103`/`C107`);
//! * **redundancy** — the Theorem 6.4 equations are re-verified from
//!   scratch by [`RedundancyCert::verify`] (`C104`);
//! * **separability** — the operator premise of Theorem 4.1 (the pair
//!   commutes) is re-checked by definition (`C105`).
//!
//! Claims travel as an untyped [`CertClaims`] — extracted from an
//! [`Analysis`] in production, fabricable in tests (the typed certificates
//! themselves are unforgeable, so a *doctored* claim is the only way to
//! exercise the mismatch paths).

use crate::diagnostic::{Code, Diagnostic, Span};
use linrec_alpha::UnionFind;
use linrec_core::{Decomposition, PowerWitness, RedundancyCert};
use linrec_cq::{compose, linear_contains, linear_equivalent, power_minimized};
use linrec_datalog::{LinearRule, Symbol};
use linrec_engine::Analysis;

/// Mirror of `AnalysisEffort::default().max_power`: the bound for the
/// missed-boundedness search (`C107`).
const MAX_POWER: usize = 8;

/// The planner's claims, stripped of their certificate wrappers.
///
/// Production code extracts them with [`CertClaims::of`]; tests fabricate
/// doctored values to prove the cross-verifier actually rejects bad
/// claims.
#[derive(Debug, Clone, Default)]
pub struct CertClaims {
    /// Claimed commuting clusters (rule indices), when a decomposition was
    /// certified.
    pub clusters: Option<Vec<Vec<usize>>>,
    /// Claimed uniform-boundedness witness `Aᴺ ≤ Aᴷ` (single-rule only).
    pub boundedness: Option<PowerWitness>,
    /// Claimed recursively redundant predicate plus its Theorem 6.4
    /// witnesses (single-rule only).
    pub redundancy: Option<(Symbol, Decomposition)>,
    /// Claimed separable pairs `(outer, inner)` by rule index.
    pub separability: Vec<(usize, usize)>,
}

impl CertClaims {
    /// Extract the claims an [`Analysis`] is making.
    pub fn of(analysis: &Analysis) -> CertClaims {
        CertClaims {
            clusters: analysis.commutativity().map(|c| c.clusters().to_vec()),
            boundedness: analysis.boundedness().map(|c| c.witness()),
            redundancy: analysis
                .redundancy()
                .map(|c| (c.pred(), c.decomposition().clone())),
            separability: analysis
                .separability()
                .iter()
                .map(|(i, j, _)| (*i, *j))
                .collect(),
        }
    }
}

/// Compose the pair both ways and compare — commutativity *by definition*
/// (§5), with none of the analysis' syntactic shortcuts. `None` when the
/// pair cannot be composed (which valid aligned rules never hit).
fn commutes_by_definition(a: &LinearRule, b: &LinearRule) -> Option<bool> {
    let ab = compose(a, b).ok()?;
    let ba = compose(b, a).ok()?;
    Some(linear_equivalent(&ab, &ba))
}

/// Connected components of the non-commutativity graph, the canonical
/// cluster partition (§7).
fn independent_clusters(commute: &[Vec<bool>]) -> Vec<Vec<usize>> {
    let n = commute.len();
    let mut uf = UnionFind::new(n);
    for (i, row) in commute.iter().enumerate() {
        for (j, commutes) in row.iter().enumerate().skip(i + 1) {
            if !commutes {
                uf.union(i, j);
            }
        }
    }
    uf.groups()
}

/// Compare two partitions as sets of sets.
fn same_partition(a: &[Vec<usize>], b: &[Vec<usize>]) -> bool {
    let norm = |p: &[Vec<usize>]| -> Vec<Vec<usize>> {
        let mut p: Vec<Vec<usize>> = p
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        p.sort();
        p
    };
    norm(a) == norm(b)
}

/// Cross-verify `claims` against `rules`. Any disagreement between a
/// claim and the independent procedure is an **error** diagnostic — a
/// certificate regression must not ship silently.
pub fn cross_verify(rules: &[LinearRule], claims: &CertClaims) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(first) = rules.first() else {
        return out;
    };
    let n = rules.len();
    let aligned: Vec<LinearRule> = match rules
        .iter()
        .map(|r| r.align_consequent(first.head()))
        .collect::<Result<_, _>>()
    {
        Ok(v) => v,
        // Rules that cannot share a consequent carry no certificates to
        // cross-check (the analysis fails on them long before planning).
        Err(_) => return out,
    };

    // Independent pairwise commutation, by definition.
    let mut commute = vec![vec![true; n]; n];
    let mut undecidable = false;
    for i in 0..n {
        for j in (i + 1)..n {
            match commutes_by_definition(&aligned[i], &aligned[j]) {
                Some(c) => {
                    commute[i][j] = c;
                    commute[j][i] = c;
                }
                None => undecidable = true,
            }
        }
    }

    // Clusters (C101 / C102 / C106).
    match &claims.clusters {
        Some(clusters) => {
            let mut seen = vec![0usize; n];
            let mut well_formed = true;
            for c in clusters {
                for &i in c {
                    if i >= n {
                        well_formed = false;
                    } else {
                        seen[i] += 1;
                    }
                }
            }
            if !well_formed || seen.iter().any(|&c| c != 1) {
                out.push(Diagnostic::new(
                    Code::MalformedClusters,
                    Span::none(),
                    format!("claimed clusters {clusters:?} are not a partition of 0..{n}"),
                ));
            } else if !undecidable {
                let independent = independent_clusters(&commute);
                if !same_partition(clusters, &independent) {
                    let witness = cross_cluster_conflict(clusters, &commute);
                    let detail = match witness {
                        Some((i, j)) => format!(
                            " — rules {i} and {j} are claimed to commute (different \
                             clusters) but their compositions are not CQ-equivalent"
                        ),
                        None => String::new(),
                    };
                    out.push(Diagnostic::new(
                        Code::CommutativityMismatch,
                        Span::none(),
                        format!(
                            "claimed clusters {clusters:?} disagree with the by-definition \
                             recomputation {independent:?}{detail}"
                        ),
                    ));
                }
            }
        }
        None => {
            if n > 1 && !undecidable {
                let independent = independent_clusters(&commute);
                if independent.len() > 1 {
                    out.push(Diagnostic::new(
                        Code::MissedDecomposition,
                        Span::none(),
                        format!(
                            "the by-definition test licenses the cluster decomposition \
                             {independent:?}, but no commutativity certificate was produced"
                        ),
                    ));
                }
            }
        }
    }

    // Boundedness (C103 / C107). Scoped to single-rule sets, mirroring the
    // analysis.
    match claims.boundedness {
        Some(w) => {
            let valid = n == 1
                && w.k >= 1
                && w.k < w.n
                && bounded_witness_holds(&rules[0], w).unwrap_or(false);
            if !valid {
                out.push(Diagnostic::new(
                    Code::BoundednessMismatch,
                    Span::rule(0),
                    format!(
                        "claimed uniform-boundedness witness A^{} ≤ A^{} fails the \
                         independent containment check",
                        w.n, w.k,
                    ),
                ));
            }
        }
        None => {
            if n == 1 {
                if let Ok(Some(w)) = search_bounded(&rules[0], MAX_POWER) {
                    out.push(Diagnostic::new(
                        Code::MissedBoundedness,
                        Span::rule(0),
                        format!(
                            "the independent power search finds A^{} ≤ A^{}, but no \
                             boundedness certificate was produced",
                            w.n, w.k,
                        ),
                    ));
                }
            }
        }
    }

    // Redundancy (C104): re-verify the Theorem 6.4 equations from scratch.
    if let Some((pred, dec)) = &claims.redundancy {
        let verified =
            n == 1 && matches!(RedundancyCert::verify(&rules[0], *pred, dec), Ok(Some(_)));
        if !verified {
            out.push(Diagnostic::new(
                Code::RedundancyMismatch,
                Span::rule_pred(0, *pred),
                format!("claimed Theorem 6.4 redundancy witnesses for {pred} fail re-verification"),
            ));
        }
    }

    // Separability (C105): Theorem 4.1's operator premise is commutation.
    for &(i, j) in &claims.separability {
        let holds = i < n
            && j < n
            && i != j
            && commutes_by_definition(&aligned[i], &aligned[j]) == Some(true);
        if !holds {
            out.push(Diagnostic::new(
                Code::SeparabilityMismatch,
                Span::none(),
                format!(
                    "claimed separable pair ({i}, {j}) fails the by-definition \
                     commutation check (Theorem 4.1's premise)"
                ),
            ));
        }
    }

    out
}

/// Find a pair claimed to commute (placed in different clusters) that the
/// independent test says does not — the sharpest possible witness for a
/// `C101` message.
fn cross_cluster_conflict(
    clusters: &[Vec<usize>],
    commute: &[Vec<bool>],
) -> Option<(usize, usize)> {
    let mut cluster_of = vec![0usize; commute.len()];
    for (c, members) in clusters.iter().enumerate() {
        for &i in members {
            cluster_of[i] = c;
        }
    }
    for i in 0..commute.len() {
        for j in (i + 1)..commute.len() {
            if cluster_of[i] != cluster_of[j] && !commute[i][j] {
                return Some((i, j));
            }
        }
    }
    None
}

/// Does `Aⁿ ≤ Aᵏ` hold? One direct containment between independently
/// recomputed minimized powers (`sub ≤ sup` ⇔ `linear_contains(sup, sub)`).
fn bounded_witness_holds(
    rule: &LinearRule,
    w: PowerWitness,
) -> Result<bool, linrec_datalog::RuleError> {
    let pk = power_minimized(rule, w.k)?;
    let pn = power_minimized(rule, w.n)?;
    Ok(linear_contains(&pk, &pn))
}

/// The least witness `Aⁿ ≤ Aᵏ` with `1 ≤ k < n ≤ max_power`, via the same
/// direct containment primitive as [`bounded_witness_holds`].
fn search_bounded(
    rule: &LinearRule,
    max_power: usize,
) -> Result<Option<PowerWitness>, linrec_datalog::RuleError> {
    let mut powers: Vec<LinearRule> = Vec::with_capacity(max_power);
    for e in 1..=max_power {
        powers.push(power_minimized(rule, e)?);
    }
    for n in 2..=max_power {
        for k in 1..n {
            if linear_contains(&powers[k - 1], &powers[n - 1]) {
                return Ok(Some(PowerWitness { k, n }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn honest_analysis_passes() {
        for rules in [
            vec![lr("p(x,y) :- p(x,z), q(z,y).")],
            vec![lr("buys(x,y) :- buys(x,y), cheap(y).")],
            vec![
                lr("p(x,y) :- p(x,z), q(z,y)."),
                lr("p(x,y) :- p(w,y), q(x,w)."),
            ],
            vec![lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).")],
        ] {
            let analysis = Analysis::of(&rules, None);
            let d = cross_verify(&rules, &CertClaims::of(&analysis));
            assert!(d.is_empty(), "{rules:?}: {d:?}");
        }
    }

    #[test]
    fn doctored_clusters_are_c101() {
        // a and b do NOT commute: claiming they sit in different clusters
        // is a false commutativity claim.
        let rules = [
            lr("p(x,y) :- p(x,z), a(z,y)."),
            lr("p(x,y) :- p(x,z), b(z,y)."),
        ];
        let claims = CertClaims {
            clusters: Some(vec![vec![0], vec![1]]),
            ..CertClaims::default()
        };
        let d = cross_verify(&rules, &claims);
        assert!(codes(&d).contains(&"C101"), "{d:?}");
    }

    #[test]
    fn non_partition_clusters_are_c102() {
        let rules = [
            lr("p(x,y) :- p(x,z), a(z,y)."),
            lr("p(x,y) :- p(x,z), b(z,y)."),
        ];
        let claims = CertClaims {
            clusters: Some(vec![vec![0], vec![0, 1]]),
            ..CertClaims::default()
        };
        let d = cross_verify(&rules, &claims);
        assert!(codes(&d).contains(&"C102"), "{d:?}");
    }

    #[test]
    fn doctored_boundedness_is_c103() {
        // Transitive closure is unbounded; any witness is a lie.
        let rules = [lr("p(x,y) :- p(x,z), q(z,y).")];
        let claims = CertClaims {
            boundedness: Some(PowerWitness { k: 1, n: 2 }),
            ..CertClaims::default()
        };
        let d = cross_verify(&rules, &claims);
        assert!(codes(&d).contains(&"C103"), "{d:?}");
    }

    #[test]
    fn doctored_separability_is_c105() {
        let rules = [
            lr("p(x,y) :- p(x,z), a(z,y)."),
            lr("p(x,y) :- p(x,z), b(z,y)."),
        ];
        let claims = CertClaims {
            separability: vec![(0, 1)],
            ..CertClaims::default()
        };
        let d = cross_verify(&rules, &claims);
        assert!(codes(&d).contains(&"C105"), "{d:?}");
    }

    #[test]
    fn dropped_certificates_are_missed() {
        // The up/down pair commutes: claiming no clusters is a miss.
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(x,y) :- p(w,y), q(x,w)."),
        ];
        let d = cross_verify(&rules, &CertClaims::default());
        assert!(codes(&d).contains(&"C106"), "{d:?}");

        // An idempotent filter is bounded: claiming nothing is a miss.
        let rules = [lr("buys(x,y) :- buys(x,y), cheap(y).")];
        let d = cross_verify(&rules, &CertClaims::default());
        assert!(codes(&d).contains(&"C107"), "{d:?}");
    }

    #[test]
    fn doctored_redundancy_is_c104() {
        // Take honest witnesses from the shopping rule, then claim them
        // for a different rule.
        let shopping = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let analysis = Analysis::of(std::slice::from_ref(&shopping), None);
        let honest = CertClaims::of(&analysis);
        let (pred, dec) = honest.redundancy.clone().expect("cheap is redundant");
        let other = [lr("p(x,y) :- p(x,z), q(z,y).")];
        let claims = CertClaims {
            redundancy: Some((pred, dec)),
            ..CertClaims::default()
        };
        let d = cross_verify(&other, &claims);
        assert!(codes(&d).contains(&"C104"), "{d:?}");
    }
}
