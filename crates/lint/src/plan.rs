//! Pass 3 — plan lints.
//!
//! Given an [`Analysis`] and the [`Plan`] actually chosen, flag licensed
//! opportunities the plan left on the table:
//!
//! * `P201` — the plan filters *after* the fixpoint (`SelectAfter`)
//!   although a separability certificate plus a commuting selection
//!   license pushing the selection into the inner star
//!   (`σ(A₁+A₂)* = A₁*(σA₂*)`, Theorem 4.1);
//! * `P202` — the cost model kept `Direct` although a commutativity or
//!   redundancy certificate — or the dense composition shape — licenses a
//!   stronger strategy; advisory only (the model may well be right on this
//!   data: a dense decline means the budget/density rule said so, and the
//!   reason is quoted from the plan rationale).

use crate::diagnostic::{Code, Diagnostic, Span};
use linrec_engine::{composition_shape, Analysis, Plan, PlanShape};

/// Run the plan lints for `plan` as chosen for `analysis`.
pub fn plan_lints(analysis: &Analysis, plan: &Plan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let shape = plan.shape();

    if let PlanShape::SelectAfter(inner) = &shape {
        let pushable = match (analysis.selection(), analysis.separability().first()) {
            (Some(sel), Some((_, _, cert))) => sel.commutes_with(cert.outer()),
            _ => false,
        };
        // A bounded prefix does provably minimal work, so filtering its
        // result is not a miss; every other inner shape explores the full
        // fixpoint the pushed plan would have restricted.
        let inner_minimal = matches!(**inner, PlanShape::BoundedPrefix { .. });
        if pushable && !inner_minimal {
            out.push(
                Diagnostic::new(
                    Code::MissedPushdown,
                    Span::none(),
                    "the selection is applied after the full fixpoint, but a separability \
                     certificate licenses pushing it into the inner star (Theorem 4.1)",
                )
                .with_help("construct the plan via Analysis::plan so the separable form is used"),
            );
        }
    }

    let core = match &shape {
        PlanShape::SelectAfter(inner) => (**inner).clone(),
        s => s.clone(),
    };
    if core == PlanShape::Direct {
        let mut licensed: Vec<&str> = Vec::new();
        if analysis.commutativity().is_some() {
            licensed.push("Decomposed");
        }
        if analysis.redundancy().is_some() {
            licensed.push("RedundancyBounded");
        }
        if let [rule] = analysis.rules() {
            if composition_shape(rule).is_some() {
                licensed.push("DenseClosure");
            }
        }
        if !licensed.is_empty() {
            // Prefer the structured decision record — candidate estimates
            // and the dense decline come out typed, not scraped from the
            // rationale prose. Hand-built plans carry no record: quote
            // the rationale as before.
            let verdict = plan
                .decision()
                .map(|dec| dec.summary())
                .unwrap_or_else(|| plan.rationale().to_owned());
            out.push(
                Diagnostic::new(
                    Code::CostSkippedCertificate,
                    Span::none(),
                    format!(
                        "certificates license {} but the plan runs Direct",
                        licensed.join(" and "),
                    ),
                )
                .with_help(format!("cost model's verdict: {verdict}")),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;
    use linrec_engine::Selection;

    #[test]
    fn pushed_selection_is_clean_and_late_selection_flagged() {
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(w,y), q(x,w).").unwrap(),
        ];
        let sel = Selection::eq(0, 1i64);
        let analysis = Analysis::of(&rules, Some(&sel));
        assert!(
            !analysis.separability().is_empty(),
            "up/down with a commuting selection is separable"
        );

        // The analysis' own plan pushes the selection: clean.
        let good = analysis.plan();
        assert_eq!(good.shape(), PlanShape::Separable);
        assert!(plan_lints(&analysis, &good).is_empty());

        // A hand-built select-after plan leaves the pushdown on the table.
        let late = Plan::select_after(Plan::direct(rules), sel);
        let d = plan_lints(&analysis, &late);
        assert!(d.iter().any(|d| d.code == Code::MissedPushdown), "{d:?}");
    }

    #[test]
    fn direct_over_a_composition_shape_quotes_the_dense_decline() {
        use linrec_datalog::Relation;
        use linrec_engine::workload;
        // Point seed over a wide chain: the planner declines dense on
        // density grounds and stays Direct — P202 flags the licensed
        // DenseClosure, and its help quotes the decline reason verbatim.
        let rules = vec![parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap()];
        let analysis = Analysis::of(&rules, None);
        let edges = workload::chain(3000);
        let db = workload::graph_db("q", edges);
        let init = Relation::from_pairs([(0, 1)]);
        let plan = analysis.plan_for(&db, &init);
        assert_eq!(plan.shape(), PlanShape::Direct);
        let d = plan_lints(&analysis, &plan);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, Code::CostSkippedCertificate);
        assert!(d[0].message.contains("DenseClosure"), "{}", d[0].message);
        let help = d[0].help.as_deref().unwrap_or_default();
        assert!(help.contains("dense declined: est. density"), "{help}");
    }

    #[test]
    fn a_chosen_dense_plan_is_clean() {
        use linrec_engine::workload;
        let rules = vec![parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap()];
        let analysis = Analysis::of(&rules, None);
        let edges = workload::chain(100);
        let db = workload::graph_db("q", edges.clone());
        let plan = analysis.plan_for(&db, &edges);
        assert_eq!(plan.shape(), PlanShape::DenseClosure);
        assert!(plan_lints(&analysis, &plan).is_empty());
    }

    #[test]
    fn direct_over_licensed_decomposition_is_advisory() {
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(w,y), q(x,w).").unwrap(),
        ];
        let analysis = Analysis::of(&rules, None);
        assert!(analysis.commutativity().is_some());
        let direct = Plan::direct(rules);
        let d = plan_lints(&analysis, &direct);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, Code::CostSkippedCertificate);
        assert_eq!(d[0].severity, crate::diagnostic::Severity::Info);
    }
}
