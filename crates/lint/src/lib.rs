//! **linrec-lint** — the static analyzer behind `linrec check`.
//!
//! Three passes over a parsed program (and optionally the plan chosen for
//! it), each producing typed [`Diagnostic`]s with stable codes:
//!
//! 1. [`program_lints`] — safety/range-restriction, singleton variables,
//!    arity consistency, dead rules, duplicate/subsumed rules, empty
//!    seeds (`L0xx`);
//! 2. [`cross_verify`] — the planner's certificate claims re-derived by an
//!    independent second procedure built directly on the `linrec-cq`
//!    primitives; *any* disagreement is an error (`C1xx`);
//! 3. [`plan_lints`] — licensed opportunities the chosen plan skipped
//!    (`P2xx`).
//!
//! The two entry points bundle the passes: [`check_rules`] (passes 1–2;
//! what `ViewService::register_view` gates on) and [`check_program`]
//! (all three; what `linrec check` runs).
//!
//! ```
//! use linrec_datalog::parse_linear_rule;
//! use linrec_lint::{check_rules, Code};
//!
//! let unsafe_rule = parse_linear_rule("p(x,y) :- p(x,x), e(x,x).").unwrap();
//! let report = check_rules(&[unsafe_rule], None, None);
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code, Code::UnsafeRule);
//! ```

#![warn(missing_docs)]

pub mod certcheck;
pub mod diagnostic;
pub mod plan;
pub mod program;

pub use certcheck::{cross_verify, CertClaims};
pub use diagnostic::{json_escape, Code, Diagnostic, Severity, Span};
pub use plan::plan_lints;
pub use program::program_lints;

use linrec_datalog::{Database, LinearRule, Relation};
use linrec_engine::{Analysis, Selection};

/// The analyzer's output: diagnostics ordered most-severe first (ties kept
/// in discovery order, which follows the rule order).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// The findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wrap raw diagnostics, sorting them most-severe first.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        LintReport { diagnostics }
    }

    /// True iff any finding is error-severity (what deny-by-default gates
    /// check).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True iff any finding is warning-severity or worse (what decides
    /// `linrec check`'s exit code; info stays clean).
    pub fn has_findings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Human renderer: one block per diagnostic (message plus indented
    /// help line), separated by newlines.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// JSON renderer: the diagnostics as a JSON array (schema in the
    /// README's "Static analysis" section).
    pub fn render_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        format!("[{}]", items.join(","))
    }
}

/// Passes 1–2: program lints plus certificate cross-verification of a
/// fresh analysis of `rules`. `db`/`init` enable the data-dependent lints
/// (`L004`/`L007`) and may be `None` for structural-only checking.
pub fn check_rules(
    rules: &[LinearRule],
    db: Option<&Database>,
    init: Option<&Relation>,
) -> LintReport {
    let mut diagnostics = program_lints(rules, db, init);
    let analysis = Analysis::of(rules, None);
    diagnostics.extend(cross_verify(rules, &CertClaims::of(&analysis)));
    LintReport::from_diagnostics(diagnostics)
}

/// All three passes: program lints, certificate cross-verification, and
/// plan lints against the cost-model-ranked plan for this very database.
pub fn check_program(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    sel: Option<&Selection>,
) -> LintReport {
    let mut diagnostics = program_lints(rules, Some(db), Some(init));
    let analysis = Analysis::of(rules, sel);
    diagnostics.extend(cross_verify(rules, &CertClaims::of(&analysis)));
    let plan = analysis.plan_for(db, init);
    diagnostics.extend(plan_lints(&analysis, &plan));
    LintReport::from_diagnostics(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn report_orders_by_severity_and_renders() {
        let rules = [
            parse_linear_rule("p(x,y) :- p(x,x), e(x,x).").unwrap(), // L001 error
            parse_linear_rule("p(x,y) :- p(x,y), q(z).").unwrap(),   // L002 warning
        ];
        let report = check_rules(&rules, None, None);
        assert!(report.has_errors());
        assert!(report.has_findings());
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        let human = report.render_human();
        assert!(human.contains("error[L001]"), "{human}");
        assert!(human.contains("warning[L002]"), "{human}");
        let json = report.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"code\":\"L001\""), "{json}");
    }

    #[test]
    fn clean_program_end_to_end() {
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(w,y), q(x,w).").unwrap(),
        ];
        let mut db = Database::new();
        db.set_relation("q", Relation::from_pairs([(1, 2), (2, 3)]));
        let init = Relation::from_pairs([(1, 1)]);
        let report = check_program(&rules, &db, &init, None);
        assert!(!report.has_findings(), "{}", report.render_human());
    }
}
