//! Regenerate every experiment table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p linrec-bench --bin experiments          # all
//! cargo run --release -p linrec-bench --bin experiments e1 e4   # subset
//! ```
//!
//! The paper (a theory paper) reports no absolute numbers; the reproduction
//! target is the *shape* of each efficiency claim. Every table prints the
//! measured series alongside the claim it validates.

use linrec_bench::{commuting_pair, repeated_pred_pair};
use linrec_core::{
    commute_by_definition, commutes_exact, commutes_sufficient, decomposition_for_pred,
    plan_decomposition,
};
use linrec_datalog::Symbol;
use linrec_engine::{
    eval_decomposed, eval_direct, eval_naive, eval_redundancy_bounded, eval_select_after,
    eval_separable, rules, workload, Selection,
};
use std::time::Instant;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

fn e1() {
    println!("## E1 — Theorem 3.1: duplicates of (B+C)* vs B*C* (up/down pair)\n");
    println!("| workload | tuples | dup direct | dup decomposed | der direct | der decomposed | ms direct | ms decomposed |");
    println!("|---|---|---|---|---|---|---|---|");
    let up = rules::up_rule();
    let down = rules::down_rule();
    let mut cases: Vec<(String, linrec_datalog::Database, linrec_datalog::Relation)> = Vec::new();
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        cases.push((format!("tree depth {depth}"), db, init));
    }
    for (n, m) in [(200i64, 400usize), (400, 800)] {
        let edges = workload::random_graph(n, m, 13);
        let mut db = linrec_datalog::Database::new();
        db.set_relation("up", workload::random_graph(n, m, 14));
        db.set_relation("down", edges);
        let init = workload::random_graph(n, 40, 15);
        cases.push((format!("random G({n},{m})"), db, init));
    }
    for (name, db, init) in cases {
        let ((direct, sd), td) = time(|| eval_direct(&[up.clone(), down.clone()], &db, &init));
        let ((dec, sc), tc) = time(|| {
            eval_decomposed(&[vec![up.clone()], vec![down.clone()]], &db, &init)
        });
        assert_eq!(direct.sorted(), dec.sorted());
        println!(
            "| {name} | {} | {} | {} | {} | {} | {td:.1} | {tc:.1} |",
            sd.tuples, sd.duplicates, sc.duplicates, sd.derivations, sc.derivations
        );
    }
    println!("\nClaim: decomposed never produces more duplicates (often far fewer).\n");
}

fn e2() {
    println!("## E2 — Theorem 4.1 / Algorithm 4.1: σ(A1+A2)* strategies\n");
    println!("| depth | answers | der select-after | der separable | ms select-after | ms separable |");
    println!("|---|---|---|---|---|---|");
    let up = rules::up_rule();
    let down = rules::down_rule();
    for depth in [7u32, 9, 11, 12] {
        let (db, init) = workload::up_down(depth, 11);
        let sel = Selection::eq(1, (1i64 << (depth + 1)) + 1);
        let all = [down.clone(), up.clone()];
        let ((slow, ss), ts) = time(|| eval_select_after(&all, &db, &init, &sel));
        let ((fast, sf), tf) = time(|| eval_separable(&up, &down, &db, &init, &sel).unwrap());
        assert_eq!(slow.sorted(), fast.sorted());
        println!(
            "| {depth} | {} | {} | {} | {ts:.1} | {tf:.1} |",
            fast.len(),
            ss.derivations,
            sf.derivations
        );
    }
    println!("\nClaim: the separable algorithm touches only selection-relevant tuples.\n");
}

fn e3() {
    println!("## E3 — Theorems 4.2/6.4: redundancy-bounded evaluation (Example 6.1)\n");
    println!("| people | tuples | der direct | der bounded | C-joins direct | C-joins bounded | ms direct | ms bounded |");
    println!("|---|---|---|---|---|---|---|---|");
    let rule = rules::shopping_rule();
    let dec = decomposition_for_pred(&rule, Symbol::new("cheap"), 8)
        .unwrap()
        .expect("cheap is redundant");
    let c_joins_bounded: usize = (0..dec.torsion.period())
        .map(|r| (dec.torsion.k + r) * dec.l)
        .sum();
    for people in [100i64, 400, 1600] {
        let (db, init) = workload::shopping(people, 30, 4, 99);
        let ((direct, sd), td) = time(|| eval_direct(std::slice::from_ref(&rule), &db, &init));
        let ((bounded, sb), tb) =
            time(|| eval_redundancy_bounded(&rule, &dec, &db, &init).unwrap());
        assert_eq!(direct.sorted(), bounded.sorted());
        println!(
            "| {people} | {} | {} | {} | {} | {c_joins_bounded} | {td:.1} | {tb:.1} |",
            sd.tuples, sd.derivations, sb.derivations, sd.iterations
        );
    }
    println!("\nClaim: C (the `cheap` filter join) is processed a bounded number of");
    println!("times (NL−1), independent of the recursion depth.\n");
}

fn e4() {
    println!("## E4 — Theorem 5.3: commutativity-test scaling\n");
    println!("| argument positions a | exact Thm 5.2 (µs) | sufficient Thm 5.1 (µs) | definition (µs) |");
    println!("|---|---|---|---|");
    for k in [2usize, 8, 32, 128, 512] {
        let (r1, r2) = commuting_pair(k);
        let a = r1.argument_positions() + r2.argument_positions();
        let reps = 3;
        let (_, te) = time(|| {
            for _ in 0..reps {
                commutes_exact(&r1, &r2).unwrap();
            }
        });
        let (_, tsuf) = time(|| {
            for _ in 0..reps {
                commutes_sufficient(&r1, &r2).unwrap();
            }
        });
        let (_, td) = time(|| {
            for _ in 0..reps {
                commute_by_definition(&r1, &r2).unwrap();
            }
        });
        println!(
            "| {a} | {:.1} | {:.1} | {:.1} |",
            te * 1e3 / reps as f64,
            tsuf * 1e3 / reps as f64,
            td * 1e3 / reps as f64
        );
    }
    println!("\n| q-chain length (repeated preds) | definition (µs) |");
    println!("|---|---|");
    for k in [2usize, 4, 6, 8] {
        let (r1, r2) = repeated_pred_pair(k);
        let (_, td) = time(|| commute_by_definition(&r1, &r2).unwrap());
        println!("| {k} | {:.1} |", td * 1e3);
    }
    println!("\nClaim: the exact test scales ~a·log a; the definition test grows much");
    println!("faster and is the only option outside the restricted class.\n");
}

fn e5() {
    println!("## E5 — §3.2 identities and partial commutativity (3 operators)\n");
    let ops = [
        linrec_datalog::parse_linear_rule("p(x,y,z) :- p(x,y,w), a(w,z).").unwrap(),
        linrec_datalog::parse_linear_rule("p(x,y,z) :- p(w,y,z), b(x,w).").unwrap(),
        linrec_datalog::parse_linear_rule("p(x,y,z) :- p(x,w,z), c(w,y).").unwrap(),
    ];
    let plan = plan_decomposition(&ops, 0).unwrap();
    println!("planner clusters: {:?} (fully decomposed: {})\n", plan.clusters, plan.is_fully_decomposed());
    println!("| n | tuples | dup direct | dup decomposed | ms direct | ms decomposed |");
    println!("|---|---|---|---|---|---|");
    for n in [16i64, 32, 64] {
        let mut db = linrec_datalog::Database::new();
        db.set_relation("a", workload::random_graph(n, 2 * n as usize, 5));
        db.set_relation("b", workload::random_graph(n, 2 * n as usize, 6));
        db.set_relation("c", workload::random_graph(n, 2 * n as usize, 7));
        let mut init = linrec_datalog::Relation::new(3);
        for t in workload::random_graph(n, n as usize, 8).iter() {
            init.insert(vec![t[0], t[1], t[0]]);
        }
        let ((direct, sd), td) = time(|| eval_direct(&ops, &db, &init));
        let groups: Vec<Vec<linrec_datalog::LinearRule>> =
            ops.iter().map(|r| vec![r.clone()]).collect();
        let ((dec, sc), tc) = time(|| eval_decomposed(&groups, &db, &init));
        assert_eq!(direct.sorted(), dec.sorted());
        println!(
            "| {n} | {} | {} | {} | {td:.1} | {tc:.1} |",
            sd.tuples, sd.duplicates, sc.duplicates
        );
    }
    println!("\nClaim: mutual commutativity decomposes an n-operator star into n");
    println!("single-operator stars ((A1+…+An)* = A1*…An*).\n");
}

fn e6() {
    println!("## E6 — substrate: semi-naive vs naive (Bancilhon [5])\n");
    println!("| chain n | tuples | der semi-naive | der naive | ms semi-naive | ms naive |");
    println!("|---|---|---|---|---|---|");
    let tc = rules::tc_right();
    for n in [64i64, 128, 256] {
        let edges = workload::chain(n);
        let db = workload::graph_db("q", edges.clone());
        let ((a, sa), ta) = time(|| eval_direct(std::slice::from_ref(&tc), &db, &edges));
        let ((b, sb), tb) = time(|| eval_naive(std::slice::from_ref(&tc), &db, &edges));
        assert_eq!(a.sorted(), b.sorted());
        println!(
            "| {n} | {} | {} | {} | {ta:.1} | {tb:.1} |",
            sa.tuples, sa.derivations, sb.derivations
        );
    }
    println!("\nClaim: semi-naive avoids the naive re-derivation blow-up — the model of");
    println!("computation assumed by Theorem 3.1.\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    println!("# linrec experiment tables\n");
    if run("e1") {
        e1();
    }
    if run("e2") {
        e2();
    }
    if run("e3") {
        e3();
    }
    if run("e4") {
        e4();
    }
    if run("e5") {
        e5();
    }
    if run("e6") {
        e6();
    }
}
