//! Regenerate every experiment table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p linrec-bench --bin experiments          # all
//! cargo run --release -p linrec-bench --bin experiments e1 e4   # subset
//! ```
//!
//! The paper (a theory paper) reports no absolute numbers; the reproduction
//! target is the *shape* of each efficiency claim. Every table prints the
//! measured series alongside the claim it validates.

use linrec_bench::{commuting_pair, repeated_pred_pair};
use linrec_core::{
    commute_by_definition, commutes_exact, commutes_sufficient, CommutativityCert, RedundancyCert,
    SeparabilityCert,
};
use linrec_datalog::Symbol;
use linrec_engine::{rules, workload, Plan, Selection};
use std::time::Instant;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

fn e1() {
    println!("## E1 — Theorem 3.1: duplicates of (B+C)* vs B*C* (up/down pair)\n");
    println!("| workload | tuples | dup direct | dup decomposed | der direct | der decomposed | ms direct | ms decomposed |");
    println!("|---|---|---|---|---|---|---|---|");
    let up = rules::up_rule();
    let down = rules::down_rule();
    let mut cases: Vec<(String, linrec_datalog::Database, linrec_datalog::Relation)> = Vec::new();
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        cases.push((format!("tree depth {depth}"), db, init));
    }
    for (n, m) in [(200i64, 400usize), (400, 800)] {
        let edges = workload::random_graph(n, m, 13);
        let mut db = linrec_datalog::Database::new();
        db.set_relation("up", workload::random_graph(n, m, 14));
        db.set_relation("down", edges);
        let init = workload::random_graph(n, 40, 15);
        cases.push((format!("random G({n},{m})"), db, init));
    }
    let all = vec![up, down];
    let direct_plan = Plan::direct(all.clone());
    let decomposed_plan = Plan::decomposed(
        CommutativityCert::establish(&all, 0)
            .unwrap()
            .expect("up/down commute"),
    );
    for (name, db, init) in cases {
        let (direct, td) = time(|| direct_plan.execute(&db, &init).unwrap());
        let (dec, tc) = time(|| decomposed_plan.execute(&db, &init).unwrap());
        assert_eq!(direct.relation.sorted(), dec.relation.sorted());
        let (sd, sc) = (direct.stats, dec.stats);
        println!(
            "| {name} | {} | {} | {} | {} | {} | {td:.1} | {tc:.1} |",
            sd.tuples, sd.duplicates, sc.duplicates, sd.derivations, sc.derivations
        );
    }
    println!("\nClaim: decomposed never produces more duplicates (often far fewer).\n");
}

fn e2() {
    println!("## E2 — Theorem 4.1 / Algorithm 4.1: σ(A1+A2)* strategies\n");
    println!(
        "| depth | answers | der select-after | der separable | ms select-after | ms separable |"
    );
    println!("|---|---|---|---|---|---|");
    let up = rules::up_rule();
    let down = rules::down_rule();
    let cert = SeparabilityCert::establish(&up, &down)
        .unwrap()
        .expect("up/down commute");
    let all = vec![down, up];
    for depth in [7u32, 9, 11, 12] {
        let (db, init) = workload::up_down(depth, 11);
        let sel = Selection::eq(1, (1i64 << (depth + 1)) + 1);
        let slow_plan = Plan::select_after(Plan::direct(all.clone()), sel.clone());
        let fast_plan = Plan::separable(cert.clone(), sel).unwrap();
        let (slow, ts) = time(|| slow_plan.execute(&db, &init).unwrap());
        let (fast, tf) = time(|| fast_plan.execute(&db, &init).unwrap());
        assert_eq!(slow.relation.sorted(), fast.relation.sorted());
        println!(
            "| {depth} | {} | {} | {} | {ts:.1} | {tf:.1} |",
            fast.relation.len(),
            slow.stats.derivations,
            fast.stats.derivations
        );
    }
    println!("\nClaim: the separable algorithm touches only selection-relevant tuples.\n");
}

fn e3() {
    println!("## E3 — Theorems 4.2/6.4: redundancy-bounded evaluation (Example 6.1)\n");
    println!("| people | tuples | der direct | der bounded | C-joins direct | C-joins bounded | ms direct | ms bounded |");
    println!("|---|---|---|---|---|---|---|---|");
    let rule = rules::shopping_rule();
    let cert = RedundancyCert::establish(&rule, Symbol::new("cheap"), 8)
        .unwrap()
        .expect("cheap is redundant");
    let dec = cert.decomposition();
    let c_joins_bounded: usize = (0..dec.torsion.period())
        .map(|r| (dec.torsion.k + r) * dec.l)
        .sum();
    let direct_plan = Plan::direct(vec![rule.clone()]);
    let bounded_plan = Plan::redundancy_bounded(cert.clone());
    for people in [100i64, 400, 1600] {
        let (db, init) = workload::shopping(people, 30, 4, 99);
        let (direct, td) = time(|| direct_plan.execute(&db, &init).unwrap());
        let (bounded, tb) = time(|| bounded_plan.execute(&db, &init).unwrap());
        assert_eq!(direct.relation.sorted(), bounded.relation.sorted());
        let (sd, sb) = (direct.stats, bounded.stats);
        println!(
            "| {people} | {} | {} | {} | {} | {c_joins_bounded} | {td:.1} | {tb:.1} |",
            sd.tuples, sd.derivations, sb.derivations, sd.iterations
        );
    }
    println!("\nClaim: C (the `cheap` filter join) is processed a bounded number of");
    println!("times (NL−1), independent of the recursion depth.\n");
}

fn e4() {
    println!("## E4 — Theorem 5.3: commutativity-test scaling\n");
    println!(
        "| argument positions a | exact Thm 5.2 (µs) | sufficient Thm 5.1 (µs) | definition (µs) |"
    );
    println!("|---|---|---|---|");
    for k in [2usize, 8, 32, 128, 512] {
        let (r1, r2) = commuting_pair(k);
        let a = r1.argument_positions() + r2.argument_positions();
        let reps = 3;
        let (_, te) = time(|| {
            for _ in 0..reps {
                commutes_exact(&r1, &r2).unwrap();
            }
        });
        let (_, tsuf) = time(|| {
            for _ in 0..reps {
                commutes_sufficient(&r1, &r2).unwrap();
            }
        });
        let (_, td) = time(|| {
            for _ in 0..reps {
                commute_by_definition(&r1, &r2).unwrap();
            }
        });
        println!(
            "| {a} | {:.1} | {:.1} | {:.1} |",
            te * 1e3 / reps as f64,
            tsuf * 1e3 / reps as f64,
            td * 1e3 / reps as f64
        );
    }
    println!("\n| q-chain length (repeated preds) | definition (µs) |");
    println!("|---|---|");
    for k in [2usize, 4, 6, 8] {
        let (r1, r2) = repeated_pred_pair(k);
        let (_, td) = time(|| commute_by_definition(&r1, &r2).unwrap());
        println!("| {k} | {:.1} |", td * 1e3);
    }
    println!("\nClaim: the exact test scales ~a·log a; the definition test grows much");
    println!("faster and is the only option outside the restricted class.\n");
}

fn e5() {
    println!("## E5 — §3.2 identities and partial commutativity (3 operators)\n");
    let ops = [
        linrec_datalog::parse_linear_rule("p(x,y,z) :- p(x,y,w), a(w,z).").unwrap(),
        linrec_datalog::parse_linear_rule("p(x,y,z) :- p(w,y,z), b(x,w).").unwrap(),
        linrec_datalog::parse_linear_rule("p(x,y,z) :- p(x,w,z), c(w,y).").unwrap(),
    ];
    let cert = CommutativityCert::establish(&ops, 0)
        .unwrap()
        .expect("mutually commuting");
    println!(
        "certified clusters: {:?} (fully decomposed: {})\n",
        cert.clusters(),
        cert.clusters().len() == ops.len()
    );
    let direct_plan = Plan::direct(ops.to_vec());
    let decomposed_plan = Plan::decomposed(cert);
    println!("| n | tuples | dup direct | dup decomposed | ms direct | ms decomposed |");
    println!("|---|---|---|---|---|---|");
    for n in [16i64, 32, 64] {
        let mut db = linrec_datalog::Database::new();
        db.set_relation("a", workload::random_graph(n, 2 * n as usize, 5));
        db.set_relation("b", workload::random_graph(n, 2 * n as usize, 6));
        db.set_relation("c", workload::random_graph(n, 2 * n as usize, 7));
        let mut init = linrec_datalog::Relation::new(3);
        for t in workload::random_graph(n, n as usize, 8).iter() {
            init.insert(vec![t[0], t[1], t[0]]);
        }
        let (direct, td) = time(|| direct_plan.execute(&db, &init).unwrap());
        let (dec, tc) = time(|| decomposed_plan.execute(&db, &init).unwrap());
        assert_eq!(direct.relation.sorted(), dec.relation.sorted());
        let (sd, sc) = (direct.stats, dec.stats);
        println!(
            "| {n} | {} | {} | {} | {td:.1} | {tc:.1} |",
            sd.tuples, sd.duplicates, sc.duplicates
        );
    }
    println!("\nClaim: mutual commutativity decomposes an n-operator star into n");
    println!("single-operator stars ((A1+…+An)* = A1*…An*).\n");
}

fn e6() {
    println!("## E6 — substrate: semi-naive vs naive (Bancilhon [5])\n");
    println!("| chain n | tuples | der semi-naive | der naive | ms semi-naive | ms naive |");
    println!("|---|---|---|---|---|---|");
    let seminaive_plan = Plan::direct(vec![rules::tc_right()]);
    let naive_plan = Plan::naive(vec![rules::tc_right()]);
    for n in [64i64, 128, 256] {
        let edges = workload::chain(n);
        let db = workload::graph_db("q", edges.clone());
        let (a, ta) = time(|| seminaive_plan.execute(&db, &edges).unwrap());
        let (b, tb) = time(|| naive_plan.execute(&db, &edges).unwrap());
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        println!(
            "| {n} | {} | {} | {} | {ta:.1} | {tb:.1} |",
            a.stats.tuples, a.stats.derivations, b.stats.derivations
        );
    }
    println!("\nClaim: semi-naive avoids the naive re-derivation blow-up — the model of");
    println!("computation assumed by Theorem 3.1.\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    println!("# linrec experiment tables\n");
    if run("e1") {
        e1();
    }
    if run("e2") {
        e2();
    }
    if run("e3") {
        e3();
    }
    if run("e4") {
        e4();
    }
    if run("e5") {
        e5();
    }
    if run("e6") {
        e6();
    }
}
