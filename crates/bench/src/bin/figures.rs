//! Regenerate the paper's Figures 1–9 (α-graphs, classifications, bridges)
//! and the per-figure claims — the `linrec-bench` twin of the root
//! `figures` example, kept here so `EXPERIMENTS.md` can reference a single
//! crate for all regeneration targets.
//!
//! ```sh
//! cargo run --release -p linrec-bench --bin figures
//! cargo run --release -p linrec-bench --bin figures -- --dot
//! ```

use linrec_alpha::{summary, to_dot, AlphaGraph, BridgeDecomposition, Classification};
use linrec_core::{pair_report, redundancy_report};
use linrec_engine::rules;

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    for (name, rule) in rules::paper_rules() {
        println!("==== {name} ====");
        let graph = AlphaGraph::new(&rule).expect("paper rules are analyzable");
        let classes = Classification::classify(&rule).expect("classifiable");
        if dot {
            println!("{}", to_dot(&graph, &classes));
        } else {
            let bridges = BridgeDecomposition::wrt_link1(&graph, &classes);
            println!("{}", summary(&graph, &classes, Some(&bridges)));
        }
    }
    if dot {
        return;
    }
    for (label, r1, r2) in [
        (
            "figure 3 pair (Example 5.2)",
            rules::tc_right(),
            rules::tc_left(),
        ),
        (
            "figure 4 pair (Example 5.3)",
            rules::example_5_3_r1(),
            rules::example_5_3_r2(),
        ),
        (
            "figure 5 pair (Example 5.4)",
            rules::example_5_4_r1(),
            rules::example_5_4_r2(),
        ),
    ] {
        println!("==== {label} ====");
        println!("{}", pair_report(&r1, &r2).unwrap());
    }
    for (label, rule) in [
        ("figure 6 (Example 6.1)", rules::shopping_rule()),
        ("figures 7/8 (Example 6.2)", rules::example_6_2()),
        ("figure 9 (Example 6.3)", rules::example_6_3()),
    ] {
        println!("==== {label} ====");
        println!("{}", redundancy_report(&rule, 8).unwrap());
    }
}
