//! Shared harness utilities for the `linrec` benchmarks and the experiment
//! regeneration binaries (see `EXPERIMENTS.md` at the workspace root).

use linrec_datalog::{parse_linear_rule, Atom, LinearRule, Term, Var};

/// A scalable family of commuting restricted-class rule pairs for the
/// commutativity-test benchmarks (experiment E4): `2k` columns, `r1` moves
/// the odd columns through predicates `a0..a(k-1)`, `r2` moves the even
/// columns through `b0..b(k-1)`. Every variable satisfies Theorem 5.1(a),
/// so the pair commutes, and both rules are in the Theorem 5.2 class.
pub fn commuting_pair(k: usize) -> (LinearRule, LinearRule) {
    assert!(k >= 1);
    let head_vars: Vec<Var> = (0..2 * k).map(|i| Var::new(&format!("x{i}"))).collect();
    let head = Atom::from_vars("p", &head_vars);

    // r1: odd columns step through a_i.
    let mut rec1 = Vec::with_capacity(2 * k);
    let mut body1 = Vec::new();
    for i in 0..k {
        let z = Var::new(&format!("z{i}"));
        rec1.push(Term::Var(head_vars[2 * i]));
        rec1.push(Term::Var(z));
        body1.push(Atom::from_vars(
            format!("a{i}").as_str(),
            &[z, head_vars[2 * i + 1]],
        ));
    }
    let r1 = LinearRule::from_parts(head.clone(), Atom::new("p", rec1), body1).unwrap();

    // r2: even columns step through b_i.
    let mut rec2 = Vec::with_capacity(2 * k);
    let mut body2 = Vec::new();
    for i in 0..k {
        let w = Var::new(&format!("w{i}"));
        rec2.push(Term::Var(w));
        rec2.push(Term::Var(head_vars[2 * i + 1]));
        body2.push(Atom::from_vars(
            format!("b{i}").as_str(),
            &[head_vars[2 * i], w],
        ));
    }
    let r2 = LinearRule::from_parts(head, Atom::new("p", rec2), body2).unwrap();
    (r1, r2)
}

/// A scalable family of *non-restricted* rule pairs (repeated predicate
/// `q`) in the spirit of Example 5.4, stressing the definition-based test:
/// each rule drags a length-`k` `q`-chain of nondistinguished variables.
pub fn repeated_pred_pair(k: usize) -> (LinearRule, LinearRule) {
    fn chain(prefix: &str, k: usize) -> String {
        let mut body = String::new();
        for i in 0..k {
            let from = if i == 0 {
                "x".to_owned()
            } else {
                format!("{prefix}{i}")
            };
            let to = format!("{prefix}{}", i + 1);
            body.push_str(&format!(", q({from},{to})"));
        }
        body
    }
    let r1 = parse_linear_rule(&format!("p(x,y) :- p(y,w){}.", chain("n", k))).unwrap();
    let r2 = parse_linear_rule(&format!("p(x,y) :- p(u,v){}, q(y,m0).", chain("m", k))).unwrap();
    (r1, r2)
}

/// Format a stats row for the experiment tables.
pub fn row(cols: &[String]) -> String {
    format!("| {} |", cols.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_core::{commutes_exact, is_restricted_pair, ExactOutcome};

    #[test]
    fn commuting_pair_is_restricted_and_commutes() {
        for k in 1..5 {
            let (r1, r2) = commuting_pair(k);
            assert!(is_restricted_pair(&r1, &r2), "k = {k}");
            assert_eq!(
                commutes_exact(&r1, &r2).unwrap(),
                ExactOutcome::Commute,
                "k = {k}"
            );
            assert!(linrec_core::commute_by_definition(&r1, &r2).unwrap());
        }
    }

    #[test]
    fn repeated_pred_pair_is_outside_the_class() {
        let (r1, r2) = repeated_pred_pair(3);
        assert!(!is_restricted_pair(&r1, &r2));
        // Ground truth still computable by definition.
        let _ = linrec_core::commute_by_definition(&r1, &r2).unwrap();
    }
}
