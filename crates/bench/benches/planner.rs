//! Planner dividend across the licensed strategy space.
//!
//! For each workload this bench times **every strategy the analysis
//! licenses** — `Direct` and `Naive` are always legal; `Decomposed` and
//! `RedundancyBounded` appear where their certificates exist — plus the
//! cost-model pick (`Analysis::plan_for`), so the planner's decision can be
//! validated against ground truth. The planning cost itself (analysis +
//! certificate search) is measured separately.
//!
//! The `incremental` group measures the PR 3 serving scenario: maintaining
//! the materialized 1k-chain transitive-closure view under a 1% insert
//! batch (`linrec-service` delta maintenance, scan/index cache reused
//! across batches) against recomputing the view from scratch on the
//! post-batch EDB. The derived speedup is the acceptance headline.
//!
//! The `parallel` group measures the PR 4 tentpole: the shard-parallel
//! semi-naive executor on the headline recursions, with **both** the
//! 1-thread and the N-thread medians emitted from this same binary
//! (`parallel/<workload>/t1` vs `parallel/<workload>/t<N>`), so the
//! derived speedup compares like with like. `N` is `LINREC_THREADS` or
//! the machine's available parallelism, floored at 4 (the acceptance
//! target is "4+ threads"); the JSON's `meta` block records both the
//! thread count used and the parallelism the machine actually offered —
//! a 4-thread run on a 1-core container is honest about being one.
//!
//! The `persistence` group measures the PR 5 tentpole: cold-starting the
//! 1k-chain TC service from a warm checkpoint (`open_durable`: snapshot
//! load + empty WAL tail) against the from-scratch fixpoint, plus the
//! cost of writing one checkpoint generation. The derived
//! `chain_tc_cold_start_speedup` is the acceptance headline (≥ 3x).
//!
//! The `hardening` group measures the PR 7 tentpole: the VFS-indirection
//! cost on the WAL append path (`Store::append_batch` through
//! `StdVfs`/dyn dispatch vs a raw `std::fs` write+sync of the same
//! frame, same binary and filesystem) and the time to bring a degraded
//! 1k-chain service back to read-write after a fault clears
//! (`try_restore`: store reopen + snapshot recover). A second summary,
//! `BENCH_pr7.json`, derives the overhead as a percentage of the
//! 1k-chain maintenance batch it accompanies (acceptance target < 2%).
//!
//! Every measurement lands in `target/criterion.jsonl` (perf trajectory),
//! and a custom `main` additionally writes the committed summary
//! `BENCH_pr5.json` at the workspace root: median ns per strategy per
//! workload (samples pinned ≥ 10 everywhere, including the parallel
//! groups), the PR 1 seed-engine baselines recorded when this harness was
//! introduced (the committed `BENCH_pr2.json`–`BENCH_pr4.json` carry the
//! earlier points), the incremental-vs-recompute speedup, the cold-start
//! speedup, and — only when `meta.available_parallelism > 1`, so a 1-core
//! container cannot commit misleading sub-1x numbers — the same-binary
//! parallel speedups.
//!
//! Deliberate coverage gap (not a silent cap): `Naive` is skipped on the
//! 1k-chain — naive evaluation re-joins the ~500k-tuple closure every one
//! of its 1000 rounds and takes minutes; the same strategy is covered on
//! the grid and shopping workloads where it terminates quickly.

use criterion::{criterion_group, BenchmarkId, Criterion};
use linrec_engine::{rules, workload, Analysis, CostModel, Parallelism, Plan, PlanShape};
use std::fmt::Write as _;

fn bench_planning_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_analysis");
    group.sample_size(10);
    let updown = vec![rules::up_rule(), rules::down_rule()];
    let shopping = vec![rules::shopping_rule()];
    group.bench_function("analyze/updown", |b| {
        b.iter(|| Analysis::of(&updown, None).plan())
    });
    group.bench_function("analyze/shopping", |b| {
        b.iter(|| Analysis::of(&shopping, None).plan())
    });
    // Cost-based choice adds cardinality estimation on top of analysis.
    let (db, init) = workload::shopping(100, 30, 4, 99);
    let analysis = Analysis::of(&shopping, None);
    group.bench_function("plan_for/shopping", |b| {
        b.iter(|| analysis.plan_for(&db, &init))
    });
    group.finish();
}

fn bench_shopping(c: &mut Criterion) {
    let mut group = c.benchmark_group("shopping");
    group.sample_size(10);
    let rules = vec![rules::shopping_rule()];
    let analysis = Analysis::of(&rules, None);
    for people in [100i64, 400, 1600] {
        let (db, init) = workload::shopping(people, 30, 4, 99);
        let chosen = analysis.plan_for(&db, &init);
        // The cost model must have resolved the PR 1 regression: on this
        // small dense workload RedundancyBounded loses to Direct.
        assert_eq!(chosen.shape(), PlanShape::Direct);
        let strategies: Vec<(&str, Plan)> = vec![
            ("planner", chosen),
            ("direct", Plan::direct(rules.clone())),
            (
                "redundancy_bounded",
                Plan::redundancy_bounded(analysis.redundancy().expect("licensed").clone()),
            ),
            ("naive", Plan::naive(rules.clone())),
        ];
        for (name, plan) in &strategies {
            if *name == "naive" && people > 100 {
                continue; // naive is quadratic-ish in rounds; one size suffices
            }
            group.bench_with_input(BenchmarkId::new(*name, people), &people, |b, _| {
                b.iter(|| plan.execute(&db, &init).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_tc");
    group.sample_size(10);
    let rules = vec![rules::tc_right()];
    let analysis = Analysis::of(&rules, None);
    for n in [200i64, 1000] {
        let edges = workload::chain(n);
        let db = workload::graph_db("q", edges.clone());
        let chosen = analysis.plan_for(&db, &edges);
        // Since PR 9 the full-chain seed licenses the dense bitset closure
        // (small domain, density ≈ 0.5), so "planner" here measures the
        // power-doubling kernel against the sparse strategies below.
        assert_eq!(chosen.shape(), PlanShape::DenseClosure);
        group.bench_with_input(BenchmarkId::new("planner", n), &n, |b, _| {
            b.iter(|| chosen.execute(&db, &edges).unwrap())
        });
        let direct = Plan::direct(rules.clone());
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| direct.execute(&db, &edges).unwrap())
        });
        if n <= 200 {
            let naive = Plan::naive(rules.clone());
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| naive.execute(&db, &edges).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_tc");
    group.sample_size(10);
    let rules = vec![rules::tc_right()];
    let analysis = Analysis::of(&rules, None);
    let edges = workload::grid(20, 20);
    let db = workload::graph_db("q", edges.clone());
    let chosen = analysis.plan_for(&db, &edges);
    // PR 9: the grid's 400-node domain licenses the dense closure too.
    assert_eq!(chosen.shape(), PlanShape::DenseClosure);
    group.bench_function("planner/20x20", |b| {
        b.iter(|| chosen.execute(&db, &edges).unwrap())
    });
    let direct = Plan::direct(rules.clone());
    group.bench_function("direct/20x20", |b| {
        b.iter(|| direct.execute(&db, &edges).unwrap())
    });
    let naive = Plan::naive(rules.clone());
    group.bench_function("naive/20x20", |b| {
        b.iter(|| naive.execute(&db, &edges).unwrap())
    });
    group.finish();
}

/// PR 9 dense-vs-sparse medians, same binary: for each workload the
/// cost-model pick (the dense bitset closure — asserted) against the
/// sparse semi-naive star on identical data. Random graphs at three
/// densities pin where the word kernels pay beyond the chain/grid
/// headliners. Exactness is asserted before anything is timed.
fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense");
    group.sample_size(10);
    let rules = vec![rules::tc_right()];
    let analysis = Analysis::of(&rules, None);
    let cases: Vec<(String, linrec_datalog::Relation)> = vec![
        ("chain_1000".to_owned(), workload::chain(1000)),
        ("grid_20x20".to_owned(), workload::grid(20, 20)),
        (
            "random_200_m400".to_owned(),
            workload::random_graph(200, 400, 9),
        ),
        (
            "random_200_m2000".to_owned(),
            workload::random_graph(200, 2000, 9),
        ),
        (
            "random_200_m8000".to_owned(),
            workload::random_graph(200, 8000, 9),
        ),
    ];
    for (name, edges) in &cases {
        let db = workload::graph_db("q", edges.clone());
        let chosen = analysis.plan_for(&db, edges);
        assert_eq!(
            chosen.shape(),
            PlanShape::DenseClosure,
            "the dense gate must fire on {name}: {}",
            chosen.rationale()
        );
        let sparse = Plan::direct(rules.clone());
        let a = chosen.execute(&db, edges).unwrap();
        let b = sparse.execute(&db, edges).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        group.bench_with_input(BenchmarkId::new(name, "planner"), name, |bch, _| {
            bch.iter(|| chosen.execute(&db, edges).unwrap())
        });
        group.bench_with_input(BenchmarkId::new(name, "sparse"), name, |bch, _| {
            bch.iter(|| sparse.execute(&db, edges).unwrap())
        });
    }
    group.finish();
}

fn bench_updown(c: &mut Criterion) {
    let mut group = c.benchmark_group("updown");
    group.sample_size(10);
    let rules = vec![rules::up_rule(), rules::down_rule()];
    let analysis = Analysis::of(&rules, None);
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        let chosen = analysis.plan_for(&db, &init);
        assert!(matches!(chosen.shape(), PlanShape::Decomposed { .. }));
        let decomposed = Plan::decomposed(analysis.commutativity().expect("licensed").clone());
        let direct = Plan::direct(rules.clone());
        for (name, plan) in [
            ("planner", &chosen),
            ("decomposed", &decomposed),
            ("direct", &direct),
        ] {
            group.bench_with_input(BenchmarkId::new(name, depth), &depth, |b, _| {
                b.iter(|| plan.execute(&db, &init).unwrap())
            });
        }
    }
    group.finish();
}

/// Maintaining the 1k-chain TC view under a 1% insert batch (10 edges
/// extending the chain: ~10k new closure tuples) vs recomputing the view
/// from scratch on the post-batch EDB. The maintained view and the
/// cross-batch index cache are set up once; each iteration measures one
/// steady-state maintenance step from the same pre-batch state.
fn bench_incremental(c: &mut Criterion) {
    use linrec_datalog::hash::FastMap;
    use linrec_datalog::{Symbol, Value};
    use linrec_service::{MaintenanceMode, ViewDef};
    use std::sync::Arc;

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let n = 1000i64;
    let rules = vec![rules::tc_right()];
    let mut db = linrec_engine::workload::graph_db("q", workload::chain(n));
    let def = ViewDef {
        name: "tc".into(),
        rules: rules.clone(),
        seed: Symbol::new("q"),
    };
    let mut view = linrec_service::MaintainedView::register(def, &db).unwrap();
    assert_eq!(view.mode(), &MaintenanceMode::Incremental);
    let (materialized, _) = view.materialize(&db).unwrap();
    let materialized = Arc::new(materialized);

    // The 1% batch: 10 edges extending the chain to 1010 nodes.
    let mut delta = linrec_datalog::Relation::new(2);
    for i in 0..10 {
        let t = [Value::Int(n + i), Value::Int(n + i + 1)];
        db.insert_tuple(Symbol::new("q"), t);
        delta.insert(t);
    }
    let mut deltas: FastMap<Symbol, Arc<linrec_datalog::Relation>> = FastMap::default();
    deltas.insert(Symbol::new("q"), Arc::new(delta));

    // Sanity: maintenance must agree with the from-scratch recompute.
    let seed = db.relation_or_empty(Symbol::new("q"), 2);
    let plan = Plan::direct(rules.clone());
    let scratch = plan.execute(&db, &seed).unwrap();
    let maintained = view
        .maintain(&materialized, &db, &deltas)
        .unwrap()
        .relation
        .unwrap();
    assert_eq!(maintained.sorted(), scratch.relation.sorted());

    group.bench_function("maintain/1000", |b| {
        b.iter(|| {
            view.maintain(&materialized, &db, &deltas)
                .unwrap()
                .relation
                .unwrap()
        })
    });
    group.bench_function("recompute/1000", |b| {
        b.iter(|| plan.execute(&db, &seed).unwrap())
    });
    group.finish();
}

/// PR 8 observability overhead: the same 1k-chain 1% maintenance batch as
/// `incremental/maintain/1000`, run with the metrics/tracing layer enabled
/// (the default) and with `linrec_obs::set_enabled(false)` — same binary,
/// same run, so the difference is exactly the instrumentation cost
/// (acceptance target < 2%). A primitive microbench rides along to pin
/// the per-operation costs the budget is built from.
fn bench_observability(c: &mut Criterion) {
    use linrec_datalog::hash::FastMap;
    use linrec_datalog::{Symbol, Value};
    use linrec_service::{MaintenanceMode, ViewDef};
    use std::sync::Arc;

    let mut group = c.benchmark_group("observability");
    group.sample_size(10);
    let n = 1000i64;
    let rules = vec![rules::tc_right()];
    let mut db = linrec_engine::workload::graph_db("q", workload::chain(n));
    let def = ViewDef {
        name: "tc".into(),
        rules,
        seed: Symbol::new("q"),
    };
    let mut view = linrec_service::MaintainedView::register(def, &db).unwrap();
    assert_eq!(view.mode(), &MaintenanceMode::Incremental);
    let (materialized, _) = view.materialize(&db).unwrap();
    let materialized = Arc::new(materialized);
    let mut delta = linrec_datalog::Relation::new(2);
    for i in 0..10 {
        let t = [Value::Int(n + i), Value::Int(n + i + 1)];
        db.insert_tuple(Symbol::new("q"), t);
        delta.insert(t);
    }
    let mut deltas: FastMap<Symbol, Arc<linrec_datalog::Relation>> = FastMap::default();
    deltas.insert(Symbol::new("q"), Arc::new(delta));

    linrec_obs::set_enabled(true);
    group.bench_function("maintain_instrumented/1000", |b| {
        b.iter(|| {
            view.maintain(&materialized, &db, &deltas)
                .unwrap()
                .relation
                .unwrap()
        })
    });
    linrec_obs::set_enabled(false);
    group.bench_function("maintain_disabled/1000", |b| {
        b.iter(|| {
            view.maintain(&materialized, &db, &deltas)
                .unwrap()
                .relation
                .unwrap()
        })
    });
    linrec_obs::set_enabled(true);

    // Primitive costs: one counter bump, one histogram observation, one
    // full span open/attr/close through the flight recorder.
    let counter = linrec_obs::counter("bench_obs_counter_total");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = linrec_obs::histogram("bench_obs_hist_ns");
    let mut v = 0u64;
    group.bench_function("histogram_observe", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.observe(v >> 40)
        })
    });
    group.bench_function("span_record", |b| {
        b.iter(|| {
            let mut sp = linrec_obs::span("bench.span");
            sp.attr("k", 1);
        })
    });
    group.finish();
}

/// Per-side stats of the interleaved sentinel A/B run, for
/// `write_pr10_summary` (the hand-rolled pairing cannot go through
/// `bench_function`, which times one fixed closure per measurement).
struct SentinelAb {
    on_min: f64,
    on_median: f64,
    off_min: f64,
    off_median: f64,
    samples: usize,
}

static SENTINEL_AB: std::sync::OnceLock<SentinelAb> = std::sync::OnceLock::new();

/// PR 10 plan-decision journal + drift sentinel overhead: the same
/// 1k-chain TC service with a constant-work insert batch committed through
/// the full `apply_batch` path — WAL-less, so the per-batch cost is delta
/// computation + maintenance + publish + the observability layer the
/// journal and sentinel ride on — with that layer enabled (the default)
/// and disabled in the same binary and run (acceptance target < 2%).
/// Batches insert fresh disconnected edges so every iteration does the
/// same amount of real maintenance work. The per-batch cost is dominated
/// by the copy-on-write of the ~500k-tuple closure relation, whose
/// allocator noise is both one-sided and drifting (whichever side runs
/// later pays the fragmentation of the earlier one), so back-to-back
/// bench runs cannot resolve the two-orders-smaller obs delta: instead
/// the two sides INTERLEAVE — obs toggles per batch over one service —
/// and the floor (minimum) of each side is compared. A `journal_record`
/// primitive rides along to pin the per-view per-batch journal cost.
fn bench_sentinel(c: &mut Criterion) {
    use linrec_datalog::{Symbol, Value};
    use linrec_service::{ViewDef, ViewService};

    let n = 1000i64;
    let db = linrec_engine::workload::graph_db("q", workload::chain(n));
    let def = ViewDef {
        name: "tc".into(),
        rules: vec![rules::tc_right()],
        seed: Symbol::new("q"),
    };
    let service = ViewService::new(db);
    service.register_view(def).unwrap();
    let mut next = 2_000_000i64;
    let mut batch = || {
        let mut b = Vec::with_capacity(10);
        for _ in 0..10 {
            b.push((
                Symbol::new("q"),
                vec![Value::Int(next), Value::Int(next + 1)],
            ));
            next += 2;
        }
        b
    };
    let samples = 40usize;
    let (mut on_ns, mut off_ns) = (Vec::with_capacity(samples), Vec::with_capacity(samples));
    for _ in 0..2 {
        service.apply_batch(batch()).unwrap(); // warm-up
    }
    for i in 0..2 * samples {
        let enabled = i % 2 == 0;
        linrec_obs::set_enabled(enabled);
        let t0 = std::time::Instant::now();
        service.apply_batch(batch()).unwrap();
        let ns = t0.elapsed().as_nanos() as f64;
        if enabled {
            on_ns.push(ns);
        } else {
            off_ns.push(ns);
        }
    }
    linrec_obs::set_enabled(true);
    let stats = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (v[0], v[v.len() / 2])
    };
    let (on_min, on_median) = stats(&mut on_ns);
    let (off_min, off_median) = stats(&mut off_ns);
    for (id, min, median) in [
        ("sentinel/maintain_journaled/1000", on_min, on_median),
        ("sentinel/maintain_unjournaled/1000", off_min, off_median),
    ] {
        eprintln!(
            "{id:<60} median {:>12.1} µs   min {:>12.1} µs   ({samples} samples, interleaved)",
            median / 1e3,
            min / 1e3,
        );
    }
    let _ = SENTINEL_AB.set(SentinelAb {
        on_min,
        on_median,
        off_min,
        off_median,
        samples,
    });

    let mut group = c.benchmark_group("sentinel");
    group.sample_size(40);
    let journal = linrec_obs::journal::journal();
    group.bench_function("journal_record", |b| {
        b.iter(|| journal.record("bench", "tc", "Direct", 10.0, 10, 100, String::new()))
    });
    // The exact work `observe_maintenance` adds per view per committed
    // batch: one cost-model estimate of the view's plan over the delta
    // plus one journal record (the sentinel's EWMA update is a handful of
    // float ops on top). Measured directly because the A/B floors above
    // sit on a multi-millisecond copy-on-write whose noise swamps a
    // double-digit-microsecond signal.
    let rules = vec![rules::tc_right()];
    let analysis = Analysis::of(&rules, None);
    let edges = workload::chain(n);
    let est_db = linrec_engine::workload::graph_db("q", edges.clone());
    let plan = analysis.plan_for(&est_db, &edges);
    let mut delta = linrec_datalog::Relation::new(2);
    for i in 0..10i64 {
        delta.insert([Value::Int(2_000_000 + 2 * i), Value::Int(2_000_001 + 2 * i)]);
    }
    let model = CostModel::default();
    group.bench_function("estimate_and_record/1000", |b| {
        b.iter(|| {
            let est = model.estimate(&plan, &est_db, &delta);
            journal.record(
                "maintain",
                "tc",
                "DenseClosure",
                est,
                10,
                100,
                String::new(),
            )
        })
    });
    group.finish();
}

/// Thread count for the N-thread side of the parallel groups: the
/// engine's own resolution (`LINREC_THREADS` or available parallelism),
/// floored at 4 so the acceptance comparison ("4+ threads vs 1 thread,
/// same binary") is always what gets measured.
fn parallel_threads() -> usize {
    Parallelism::from_env().threads().max(4)
}

fn available_parallelism() -> usize {
    Parallelism::available().threads()
}

/// Same-binary 1-thread vs N-thread medians for the headline recursions.
/// The parallel plan goes through the production path — `Plan::parallelize`
/// with the stock cost model — so what is measured includes the per-round
/// cutover gate, not a hand-tuned harness.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let n = parallel_threads();
    let rules = vec![rules::tc_right()];
    let cases = [
        ("chain_tc_1000", workload::chain(1000)),
        ("grid_tc_20x20", workload::grid(20, 20)),
    ];
    for (name, edges) in cases {
        let db = workload::graph_db("q", edges.clone());
        let sequential = Plan::direct(rules.clone());
        let parallel = Plan::direct(rules.clone()).parallelize(
            &Parallelism::new(n),
            &CostModel::default(),
            &db,
            &edges,
        );
        assert!(
            parallel.rationale().contains("parallel:"),
            "cost model must engage parallelism on {name}: {}",
            parallel.rationale()
        );
        // Exactness guard before timing anything.
        let a = sequential.execute(&db, &edges).unwrap();
        let b = parallel.execute(&db, &edges).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        assert_eq!(a.stats, b.stats);
        group.bench_with_input(BenchmarkId::new(name, "t1"), &1usize, |bch, _| {
            bch.iter(|| sequential.execute(&db, &edges).unwrap())
        });
        group.bench_with_input(BenchmarkId::new(name, format!("t{n}")), &n, |bch, _| {
            bch.iter(|| parallel.execute(&db, &edges).unwrap())
        });
    }
    group.finish();
}

/// The PR 5 tentpole: cold start from a warm checkpoint (snapshot load +
/// empty WAL tail, through the production `open_durable` path) vs the
/// from-scratch fixpoint the service would otherwise pay, plus the cost of
/// writing a checkpoint generation. The recovered state is asserted equal
/// to the fixpoint before anything is timed.
fn bench_persistence(c: &mut Criterion) {
    use linrec_datalog::{Database, Symbol};
    use linrec_service::{open_durable, CheckpointPolicy, ViewDef};

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    let n = 1000i64;
    let rules = vec![rules::tc_right()];
    let edges = workload::chain(n);
    let db = workload::graph_db("q", edges.clone());
    let def = || ViewDef {
        name: "tc".into(),
        rules: rules.clone(),
        seed: Symbol::new("q"),
    };
    let policy = CheckpointPolicy::default();
    let dir = std::env::temp_dir().join(format!("linrec-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm the store: open fresh (writes the baseline checkpoint with the
    // materialized 500k-tuple closure), then drop — the WAL tail is empty,
    // so recover measures pure snapshot-load + registration.
    let scratch = Plan::direct(rules.clone()).execute(&db, &edges).unwrap();
    {
        let (service, report) = open_durable(
            &dir,
            db.clone(),
            vec![def()],
            Parallelism::sequential(),
            policy,
        )
        .expect("fresh open");
        assert!(!report.from_snapshot);
        assert_eq!(
            service.snapshot().view("tc").unwrap().relation.sorted(),
            scratch.relation.sorted(),
            "materialized view must equal the fixpoint"
        );
    }
    {
        // Exactness guard on the path being timed.
        let (service, report) = open_durable(
            &dir,
            Database::new(),
            vec![def()],
            Parallelism::sequential(),
            policy,
        )
        .expect("warm open");
        assert!(report.from_snapshot && report.replayed_batches == 0);
        assert_eq!(
            service.snapshot().view("tc").unwrap().relation.sorted(),
            scratch.relation.sorted(),
            "recovered view must equal the fixpoint"
        );
    }

    group.bench_function("recover/1000", |b| {
        b.iter(|| {
            let (service, _) = open_durable(
                &dir,
                Database::new(),
                vec![def()],
                Parallelism::sequential(),
                policy,
            )
            .expect("cold start");
            assert_eq!(
                service.snapshot().count("tc").unwrap() as i64,
                n * (n + 1) / 2
            );
            service
        })
    });
    group.bench_function("scratch_fixpoint/1000", |b| {
        let plan = Plan::direct(rules.clone());
        b.iter(|| plan.execute(&db, &edges).unwrap())
    });
    group.bench_function("checkpoint/1000", |b| {
        let (service, _) = open_durable(
            &dir,
            Database::new(),
            vec![def()],
            Parallelism::sequential(),
            policy,
        )
        .expect("open for checkpoint bench");
        b.iter(|| assert!(service.checkpoint_now().unwrap()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_hardening(c: &mut Criterion) {
    use linrec_datalog::{Symbol, Value};
    use linrec_service::{
        open_durable_with_vfs, CheckpointPolicy, RetryPolicy, ServiceMode, ViewDef, ViewService,
    };
    use linrec_storage::{FaultOp, FaultPlan, FaultVfs, StdVfs, Store, Vfs};
    use std::io::Write as _;
    use std::sync::Arc;

    let mut group = c.benchmark_group("hardening");
    group.sample_size(10);

    // VFS-indirection cost on the WAL append path, same binary and same
    // filesystem on both sides: `Store::append_batch` (encode + write +
    // sync via `Arc<dyn Vfs>`/`Box<dyn VfsFile>`) against a raw
    // `std::fs` write + sync of a frame-sized buffer. The encode cost is
    // deliberately charged to the VFS side, so the derived overhead is
    // an upper bound on pure dispatch.
    let batch: Vec<(Symbol, Vec<Value>)> = (0..10)
        .map(|i| {
            (
                Symbol::new("q"),
                vec![Value::Int(2000 + i), Value::Int(2001 + i)],
            )
        })
        .collect();
    let wal_dir = std::env::temp_dir().join(format!("linrec-bench-harden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let mut store = Store::open_with(&wal_dir, Arc::new(StdVfs)).expect("open append store");
    store.recover().expect("recover fresh store");
    store.append_batch(&batch).expect("probe append");
    let (_, frame_bytes) = store.wal_pressure();
    group.bench_function("wal_append/std_vfs", |b| {
        b.iter(|| store.append_batch(&batch).expect("append via StdVfs"))
    });
    let buf = vec![0xABu8; (frame_bytes as usize).max(64)];
    let mut raw = std::fs::OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(wal_dir.join("raw-wal.bin"))
        .expect("open raw append file");
    group.bench_function("wal_append/raw_fs", |b| {
        b.iter(|| {
            raw.write_all(&buf).expect("raw write");
            raw.sync_data().expect("raw sync");
        })
    });
    drop(raw);
    let _ = std::fs::remove_dir_all(&wal_dir);

    // Time-to-recover after fault clearance: a degraded 1k-chain TC
    // service (store handle dropped after an injected ENOSPC) back to
    // read-write via `try_restore` — the reopen + snapshot recover is
    // the dominant cost. Each iteration re-poisons the plan and fails
    // one write so the next iteration starts degraded again; that
    // refused append rides along in the measurement and is small
    // against the recover.
    let n = 1000i64;
    let rules = vec![rules::tc_right()];
    let db = workload::graph_db("q", workload::chain(n));
    let def = ViewDef {
        name: "tc".into(),
        rules: rules.clone(),
        seed: Symbol::new("q"),
    };
    let rec_dir = std::env::temp_dir().join(format!("linrec-bench-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&rec_dir);
    let fault = FaultVfs::new(FaultPlan::none());
    let vfs: Arc<dyn Vfs> = fault.clone();
    let (service, _) = open_durable_with_vfs(
        &rec_dir,
        vfs,
        db,
        vec![def],
        Parallelism::sequential(),
        CheckpointPolicy::default(),
    )
    .expect("open durable for recover bench");
    service.set_retry_policy(RetryPolicy::none());
    let degrade = |service: &ViewService, fault: &FaultVfs| {
        fault.set_plan(FaultPlan::seeded_ops(1, 1000, vec![FaultOp::Write]));
        service
            .apply_batch(vec![(
                Symbol::new("q"),
                vec![Value::Int(5000), Value::Int(5001)],
            )])
            .expect_err("append under injected ENOSPC must be refused");
    };
    degrade(&service, &fault);
    assert_eq!(service.mode().0, ServiceMode::Degraded);
    group.bench_function("time_to_recover/1000", |b| {
        b.iter(|| {
            fault.clear();
            assert!(service.try_restore().expect("restore after clearance"));
            degrade(&service, &fault);
        })
    });
    group.finish();
    drop(service);
    let _ = std::fs::remove_dir_all(&rec_dir);
}

criterion_group!(
    benches,
    bench_planning_cost,
    bench_shopping,
    bench_chain,
    bench_grid,
    bench_dense,
    bench_updown,
    bench_incremental,
    bench_parallel,
    bench_persistence,
    bench_hardening,
    bench_observability,
    bench_sentinel
);

/// PR 1 seed-engine medians (ns) for the headline workloads, measured on
/// the same machine right before the flat-storage/zero-copy rewrite landed
/// (commit 0666d23). Kept here so `BENCH_pr2.json` carries the comparison.
const PR1_BASELINES: &[(&str, u64)] = &[
    ("chain_tc/direct/1000", 466_733_248),
    ("shopping/direct/100", 1_951_841),
    ("shopping/redundancy_bounded/100", 4_502_166),
    ("shopping/direct/400", 10_457_898),
    ("shopping/redundancy_bounded/400", 21_934_785),
    ("updown/decomposed/10", 35_657_937),
    ("updown/direct/10", 48_715_226),
    ("grid_tc/direct/20x20", 24_488_896),
];

fn write_summary(c: &Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    let threads = parallel_threads();
    let multicore = available_parallelism() > 1;
    let mut out = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(out, "    \"parallel_threads\": {threads},");
    let _ = writeln!(
        out,
        "    \"available_parallelism\": {}",
        available_parallelism()
    );
    out.push_str("  },\n  \"results\": {\n");
    let measurements = c.measurements();
    for (i, (id, median, samples)) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{id}\": {{\"median_ns\": {median:.0}, \"samples\": {samples}}}{comma}"
        );
    }
    out.push_str("  },\n  \"baseline_pr1_ns\": {\n");
    for (i, (id, ns)) in PR1_BASELINES.iter().enumerate() {
        let comma = if i + 1 == PR1_BASELINES.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "    \"{id}\": {ns}{comma}");
    }
    out.push_str("  },\n  \"derived\": {\n");
    let median = |needle: &str| {
        measurements
            .iter()
            .find(|(id, _, _)| id == needle)
            .map(|&(_, m, _)| m)
    };
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => n / d,
        _ => 0.0,
    };
    // The PR 3 headline: maintaining the 1k-chain TC view under a 1%
    // insert batch vs recomputing it from scratch.
    let speedup = ratio(
        median("incremental/recompute/1000"),
        median("incremental/maintain/1000"),
    );
    let _ = writeln!(
        out,
        "    \"chain_tc_1pct_batch_incremental_speedup\": {speedup:.2},"
    );
    // The PR 5 headline: cold start from a warm checkpoint (snapshot load
    // + empty WAL tail) vs the from-scratch fixpoint.
    let cold = ratio(
        median("persistence/scratch_fixpoint/1000"),
        median("persistence/recover/1000"),
    );
    let _ = writeln!(out, "    \"chain_tc_cold_start_speedup\": {cold:.2}");
    // The PR 4 parallel speedups are only meaningful on a multicore host:
    // on a 1-core container they measure pure sharding overhead and would
    // read as misleading sub-1x "speedups", so they are emitted only when
    // the machine actually offers parallelism (the meta block always
    // records what was available).
    if multicore {
        let tn = format!("t{threads}");
        let chain_par = ratio(
            median("parallel/chain_tc_1000/t1"),
            median(&format!("parallel/chain_tc_1000/{tn}")),
        );
        let grid_par = ratio(
            median("parallel/grid_tc_20x20/t1"),
            median(&format!("parallel/grid_tc_20x20/{tn}")),
        );
        let _ = writeln!(out, "    ,\"chain_tc_parallel_speedup\": {chain_par:.2}");
        let _ = writeln!(out, "    ,\"grid_tc_parallel_speedup\": {grid_par:.2}");
    }
    out.push_str("  }\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("planner bench: wrote {path}"),
        Err(e) => eprintln!("planner bench: cannot write {path}: {e}"),
    }
}

/// PR 7 summary: `BENCH_pr7.json` records the operational-hardening
/// numbers — the VFS-indirection overhead on the WAL append path
/// expressed against the 1k-chain maintenance median (acceptance target
/// < 2%), and the time-to-recover after fault clearance. Every ratio is
/// same-binary, same-run: the PR 5 maintenance baseline is the
/// `incremental/maintain/1000` measurement this run just produced, not a
/// stale committed number from different hardware.
fn write_pr7_summary(c: &Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    let measurements = c.measurements();
    let median = |needle: &str| {
        measurements
            .iter()
            .find(|(id, _, _)| id == needle)
            .map(|&(_, m, _)| m)
    };
    let subset: Vec<_> = measurements
        .iter()
        .filter(|(id, _, _)| id.starts_with("hardening/") || id == "incremental/maintain/1000")
        .collect();
    let mut out = String::from("{\n  \"meta\": {\n");
    out.push_str(
        "    \"note\": \"ratios are same-binary same-run; the PR 5 maintenance baseline \
         (incremental/maintain/1000) is re-measured by this run, not read from a stale file\"\n",
    );
    out.push_str("  },\n  \"results\": {\n");
    for (i, (id, m, samples)) in subset.iter().enumerate() {
        let comma = if i + 1 == subset.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{id}\": {{\"median_ns\": {m:.0}, \"samples\": {samples}}}{comma}"
        );
    }
    out.push_str("  },\n  \"derived\": {\n");
    // VFS dispatch cost per WAL append = StdVfs append minus a raw
    // std::fs write+sync of the same frame (floored at zero: on fast
    // filesystems the medians are within noise of each other).
    let overhead_ns = match (
        median("hardening/wal_append/std_vfs"),
        median("hardening/wal_append/raw_fs"),
    ) {
        (Some(s), Some(r)) => (s - r).max(0.0),
        _ => 0.0,
    };
    let _ = writeln!(out, "    \"wal_append_vfs_overhead_ns\": {overhead_ns:.0},");
    // The acceptance headline: that per-batch cost as a percentage of
    // the 1k-chain incremental-maintenance batch it accompanies.
    let vs_maintain = median("incremental/maintain/1000")
        .map(|m| overhead_ns / m * 100.0)
        .unwrap_or(0.0);
    let _ = writeln!(
        out,
        "    \"chain_tc_maintain_vfs_overhead_pct\": {vs_maintain:.3},"
    );
    let recover_ms = median("hardening/time_to_recover/1000")
        .map(|m| m / 1e6)
        .unwrap_or(0.0);
    let _ = writeln!(
        out,
        "    \"time_to_recover_after_clearance_ms\": {recover_ms:.2}"
    );
    out.push_str("  }\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("planner bench: wrote {path}"),
        Err(e) => eprintln!("planner bench: cannot write {path}: {e}"),
    }
}

/// PR 8 summary: `BENCH_pr8.json` pins the observability cost — the same
/// 1k-chain maintenance batch with instrumentation enabled vs disabled in
/// the same binary and run (acceptance target: overhead < 2%), plus the
/// primitive per-operation costs the budget decomposes into.
fn write_pr8_summary(c: &Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    let measurements = c.measurements();
    let median = |needle: &str| {
        measurements
            .iter()
            .find(|(id, _, _)| id == needle)
            .map(|&(_, m, _)| m)
    };
    let subset: Vec<_> = measurements
        .iter()
        .filter(|(id, _, _)| id.starts_with("observability/"))
        .collect();
    let mut out = String::from("{\n  \"meta\": {\n");
    out.push_str(
        "    \"note\": \"instrumented vs disabled is same-binary same-run: the only \
         difference is linrec_obs::set_enabled, so the delta is the metrics+tracing cost \
         on the 1k-chain 1% maintenance batch\"\n",
    );
    out.push_str("  },\n  \"results\": {\n");
    for (i, (id, m, samples)) in subset.iter().enumerate() {
        let comma = if i + 1 == subset.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{id}\": {{\"median_ns\": {m:.0}, \"samples\": {samples}}}{comma}"
        );
    }
    out.push_str("  },\n  \"derived\": {\n");
    let on = median("observability/maintain_instrumented/1000");
    let off = median("observability/maintain_disabled/1000");
    let overhead_pct = match (on, off) {
        (Some(on), Some(off)) if off > 0.0 => ((on - off) / off * 100.0).max(0.0),
        _ => 0.0,
    };
    let _ = writeln!(
        out,
        "    \"instrumentation_overhead_pct\": {overhead_pct:.3},"
    );
    let prim = |id: &str| median(id).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "    \"counter_inc_ns\": {:.1},",
        prim("observability/counter_inc")
    );
    let _ = writeln!(
        out,
        "    \"histogram_observe_ns\": {:.1},",
        prim("observability/histogram_observe")
    );
    let _ = writeln!(
        out,
        "    \"span_record_ns\": {:.1}",
        prim("observability/span_record")
    );
    out.push_str("  }\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("planner bench: wrote {path}"),
        Err(e) => eprintln!("planner bench: cannot write {path}: {e}"),
    }
}

/// PR 9 summary: `BENCH_pr9.json` records the dense-kernel numbers — the
/// same-binary sparse-vs-dense medians of the `dense/*` group, the
/// planner-path chain/grid timings, and the acceptance headline: the
/// 1k-chain TC through `plan_for` (now the bitset power-doubling closure)
/// against both this run's sparse star and the committed PR 5 planner
/// median from `BENCH_pr5.json` (`chain_tc/planner/1000`, ~170 ms —
/// cross-machine, so the same-run ratio is the honest one).
fn write_pr9_summary(c: &Criterion) {
    /// `chain_tc/planner/1000` median committed in `BENCH_pr5.json`.
    const PR5_CHAIN_TC_PLANNER_1000_NS: f64 = 171_758_213.0;

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    let measurements = c.measurements();
    let median = |needle: &str| {
        measurements
            .iter()
            .find(|(id, _, _)| id == needle)
            .map(|&(_, m, _)| m)
    };
    let subset: Vec<_> = measurements
        .iter()
        .filter(|(id, _, _)| {
            id.starts_with("dense/") || id.starts_with("chain_tc/") || id.starts_with("grid_tc/")
        })
        .collect();
    let mut out = String::from("{\n  \"meta\": {\n");
    out.push_str(
        "    \"note\": \"dense/*/planner is the cost-model pick (bitset closure by power \
         doubling); dense/*/sparse is the semi-naive star in the same binary and run\",\n",
    );
    let _ = writeln!(
        out,
        "    \"baseline_pr5_chain_tc_planner_1000_ns\": {PR5_CHAIN_TC_PLANNER_1000_NS:.0}"
    );
    out.push_str("  },\n  \"results\": {\n");
    for (i, (id, m, samples)) in subset.iter().enumerate() {
        let comma = if i + 1 == subset.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{id}\": {{\"median_ns\": {m:.0}, \"samples\": {samples}}}{comma}"
        );
    }
    out.push_str("  },\n  \"derived\": {\n");
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => n / d,
        _ => 0.0,
    };
    // The acceptance headline, same-binary: 1k-chain sparse star vs the
    // dense closure the planner now picks.
    let dense_speedup = ratio(
        median("dense/chain_1000/sparse"),
        median("dense/chain_1000/planner"),
    );
    let _ = writeln!(out, "    \"chain_tc_dense_speedup\": {dense_speedup:.2},");
    // Against the committed PR 5 planner median (cross-machine context).
    let vs_pr5 = ratio(
        Some(PR5_CHAIN_TC_PLANNER_1000_NS),
        median("chain_tc/planner/1000"),
    );
    let _ = writeln!(out, "    \"chain_tc_planner_vs_pr5_speedup\": {vs_pr5:.2},");
    let grid_speedup = ratio(
        median("dense/grid_20x20/sparse"),
        median("dense/grid_20x20/planner"),
    );
    let _ = writeln!(out, "    \"grid_tc_dense_speedup\": {grid_speedup:.2},");
    for m in [400u32, 2000, 8000] {
        let s = ratio(
            median(&format!("dense/random_200_m{m}/sparse")),
            median(&format!("dense/random_200_m{m}/planner")),
        );
        let comma = if m == 8000 { "" } else { "," };
        let _ = writeln!(out, "    \"random_200_m{m}_dense_speedup\": {s:.2}{comma}");
    }
    out.push_str("  }\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("planner bench: wrote {path}"),
        Err(e) => eprintln!("planner bench: cannot write {path}: {e}"),
    }
}

/// PR 10 summary: `BENCH_pr10.json` pins the plan-decision journal + drift
/// sentinel cost — the same constant-work service batch through
/// `apply_batch` with the observability layer (journal, sentinel, metrics)
/// enabled vs disabled in the same binary and run (acceptance target:
/// overhead < 2%), plus the per-record journal primitive.
fn write_pr10_summary(c: &Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    let measurements = c.measurements();
    let median = |needle: &str| {
        measurements
            .iter()
            .find(|(id, _, _)| id == needle)
            .map(|&(_, m, _)| m)
    };
    let mut out = String::from("{\n  \"meta\": {\n");
    out.push_str(
        "    \"note\": \"maintain_journaled vs maintain_unjournaled is an interleaved \
         same-binary A/B through the full ViewService::apply_batch path (linrec_obs \
         toggled per batch over one service); the batch is dominated by a \
         multi-millisecond copy-on-write whose allocator noise swamps the obs delta, so \
         the headline overhead is instead derived from estimate_and_record — a direct \
         measurement of exactly the work observe_maintenance adds per view per committed \
         batch (one plan estimate over the delta + one journal record) — against the \
         unjournaled batch median\"\n",
    );
    out.push_str("  },\n  \"results\": {\n");
    if let Some(ab) = SENTINEL_AB.get() {
        let _ = writeln!(
            out,
            "    \"sentinel/maintain_journaled/1000\": {{\"median_ns\": {:.0}, \
             \"min_ns\": {:.0}, \"samples\": {}}},",
            ab.on_median, ab.on_min, ab.samples
        );
        let _ = writeln!(
            out,
            "    \"sentinel/maintain_unjournaled/1000\": {{\"median_ns\": {:.0}, \
             \"min_ns\": {:.0}, \"samples\": {}}},",
            ab.off_median, ab.off_min, ab.samples
        );
    }
    if let Some(m) = median("sentinel/journal_record") {
        let _ = writeln!(
            out,
            "    \"sentinel/journal_record\": {{\"median_ns\": {m:.0}}},"
        );
    }
    if let Some(m) = median("sentinel/estimate_and_record/1000") {
        let _ = writeln!(
            out,
            "    \"sentinel/estimate_and_record/1000\": {{\"median_ns\": {m:.0}}}"
        );
    }
    out.push_str("  },\n  \"derived\": {\n");
    let added = median("sentinel/estimate_and_record/1000").unwrap_or(0.0);
    let overhead_pct = SENTINEL_AB
        .get()
        .filter(|ab| ab.off_median > 0.0)
        .map(|ab| added / ab.off_median * 100.0)
        .unwrap_or(0.0);
    let _ = writeln!(
        out,
        "    \"journal_sentinel_overhead_pct\": {overhead_pct:.3},"
    );
    let _ = writeln!(out, "    \"observe_path_added_ns\": {added:.0},");
    let _ = writeln!(
        out,
        "    \"journal_record_ns\": {:.1}",
        median("sentinel/journal_record").unwrap_or(0.0)
    );
    out.push_str("  }\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("planner bench: wrote {path}"),
        Err(e) => eprintln!("planner bench: cannot write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    write_summary(&c);
    write_pr7_summary(&c);
    write_pr8_summary(&c);
    write_pr9_summary(&c);
    write_pr10_summary(&c);
    criterion::__finalize(&c);
}
