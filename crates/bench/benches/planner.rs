//! Planner dividend across the licensed strategy space.
//!
//! For each workload this bench times **every strategy the analysis
//! licenses** — `Direct` and `Naive` are always legal; `Decomposed` and
//! `RedundancyBounded` appear where their certificates exist — plus the
//! cost-model pick (`Analysis::plan_for`), so the planner's decision can be
//! validated against ground truth. The planning cost itself (analysis +
//! certificate search) is measured separately.
//!
//! The `incremental` group measures the PR 3 serving scenario: maintaining
//! the materialized 1k-chain transitive-closure view under a 1% insert
//! batch (`linrec-service` delta maintenance, scan/index cache reused
//! across batches) against recomputing the view from scratch on the
//! post-batch EDB. The derived speedup is the acceptance headline.
//!
//! The `parallel` group measures the PR 4 tentpole: the shard-parallel
//! semi-naive executor on the headline recursions, with **both** the
//! 1-thread and the N-thread medians emitted from this same binary
//! (`parallel/<workload>/t1` vs `parallel/<workload>/t<N>`), so the
//! derived speedup compares like with like. `N` is `LINREC_THREADS` or
//! the machine's available parallelism, floored at 4 (the acceptance
//! target is "4+ threads"); the JSON's `meta` block records both the
//! thread count used and the parallelism the machine actually offered —
//! a 4-thread run on a 1-core container is honest about being one.
//!
//! The `persistence` group measures the PR 5 tentpole: cold-starting the
//! 1k-chain TC service from a warm checkpoint (`open_durable`: snapshot
//! load + empty WAL tail) against the from-scratch fixpoint, plus the
//! cost of writing one checkpoint generation. The derived
//! `chain_tc_cold_start_speedup` is the acceptance headline (≥ 3x).
//!
//! Every measurement lands in `target/criterion.jsonl` (perf trajectory),
//! and a custom `main` additionally writes the committed summary
//! `BENCH_pr5.json` at the workspace root: median ns per strategy per
//! workload (samples pinned ≥ 10 everywhere, including the parallel
//! groups), the PR 1 seed-engine baselines recorded when this harness was
//! introduced (the committed `BENCH_pr2.json`–`BENCH_pr4.json` carry the
//! earlier points), the incremental-vs-recompute speedup, the cold-start
//! speedup, and — only when `meta.available_parallelism > 1`, so a 1-core
//! container cannot commit misleading sub-1x numbers — the same-binary
//! parallel speedups.
//!
//! Deliberate coverage gap (not a silent cap): `Naive` is skipped on the
//! 1k-chain — naive evaluation re-joins the ~500k-tuple closure every one
//! of its 1000 rounds and takes minutes; the same strategy is covered on
//! the grid and shopping workloads where it terminates quickly.

use criterion::{criterion_group, BenchmarkId, Criterion};
use linrec_engine::{rules, workload, Analysis, CostModel, Parallelism, Plan, PlanShape};
use std::fmt::Write as _;

fn bench_planning_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_analysis");
    group.sample_size(10);
    let updown = vec![rules::up_rule(), rules::down_rule()];
    let shopping = vec![rules::shopping_rule()];
    group.bench_function("analyze/updown", |b| {
        b.iter(|| Analysis::of(&updown, None).plan())
    });
    group.bench_function("analyze/shopping", |b| {
        b.iter(|| Analysis::of(&shopping, None).plan())
    });
    // Cost-based choice adds cardinality estimation on top of analysis.
    let (db, init) = workload::shopping(100, 30, 4, 99);
    let analysis = Analysis::of(&shopping, None);
    group.bench_function("plan_for/shopping", |b| {
        b.iter(|| analysis.plan_for(&db, &init))
    });
    group.finish();
}

fn bench_shopping(c: &mut Criterion) {
    let mut group = c.benchmark_group("shopping");
    group.sample_size(10);
    let rules = vec![rules::shopping_rule()];
    let analysis = Analysis::of(&rules, None);
    for people in [100i64, 400, 1600] {
        let (db, init) = workload::shopping(people, 30, 4, 99);
        let chosen = analysis.plan_for(&db, &init);
        // The cost model must have resolved the PR 1 regression: on this
        // small dense workload RedundancyBounded loses to Direct.
        assert_eq!(chosen.shape(), PlanShape::Direct);
        let strategies: Vec<(&str, Plan)> = vec![
            ("planner", chosen),
            ("direct", Plan::direct(rules.clone())),
            (
                "redundancy_bounded",
                Plan::redundancy_bounded(analysis.redundancy().expect("licensed").clone()),
            ),
            ("naive", Plan::naive(rules.clone())),
        ];
        for (name, plan) in &strategies {
            if *name == "naive" && people > 100 {
                continue; // naive is quadratic-ish in rounds; one size suffices
            }
            group.bench_with_input(BenchmarkId::new(*name, people), &people, |b, _| {
                b.iter(|| plan.execute(&db, &init).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_tc");
    group.sample_size(10);
    let rules = vec![rules::tc_right()];
    let analysis = Analysis::of(&rules, None);
    for n in [200i64, 1000] {
        let edges = workload::chain(n);
        let db = workload::graph_db("q", edges.clone());
        let chosen = analysis.plan_for(&db, &edges);
        assert_eq!(chosen.shape(), PlanShape::Direct);
        group.bench_with_input(BenchmarkId::new("planner", n), &n, |b, _| {
            b.iter(|| chosen.execute(&db, &edges).unwrap())
        });
        let direct = Plan::direct(rules.clone());
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| direct.execute(&db, &edges).unwrap())
        });
        if n <= 200 {
            let naive = Plan::naive(rules.clone());
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| naive.execute(&db, &edges).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_tc");
    group.sample_size(10);
    let rules = vec![rules::tc_right()];
    let analysis = Analysis::of(&rules, None);
    let edges = workload::grid(20, 20);
    let db = workload::graph_db("q", edges.clone());
    let chosen = analysis.plan_for(&db, &edges);
    assert_eq!(chosen.shape(), PlanShape::Direct);
    group.bench_function("planner/20x20", |b| {
        b.iter(|| chosen.execute(&db, &edges).unwrap())
    });
    let direct = Plan::direct(rules.clone());
    group.bench_function("direct/20x20", |b| {
        b.iter(|| direct.execute(&db, &edges).unwrap())
    });
    let naive = Plan::naive(rules.clone());
    group.bench_function("naive/20x20", |b| {
        b.iter(|| naive.execute(&db, &edges).unwrap())
    });
    group.finish();
}

fn bench_updown(c: &mut Criterion) {
    let mut group = c.benchmark_group("updown");
    group.sample_size(10);
    let rules = vec![rules::up_rule(), rules::down_rule()];
    let analysis = Analysis::of(&rules, None);
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        let chosen = analysis.plan_for(&db, &init);
        assert!(matches!(chosen.shape(), PlanShape::Decomposed { .. }));
        let decomposed = Plan::decomposed(analysis.commutativity().expect("licensed").clone());
        let direct = Plan::direct(rules.clone());
        for (name, plan) in [
            ("planner", &chosen),
            ("decomposed", &decomposed),
            ("direct", &direct),
        ] {
            group.bench_with_input(BenchmarkId::new(name, depth), &depth, |b, _| {
                b.iter(|| plan.execute(&db, &init).unwrap())
            });
        }
    }
    group.finish();
}

/// Maintaining the 1k-chain TC view under a 1% insert batch (10 edges
/// extending the chain: ~10k new closure tuples) vs recomputing the view
/// from scratch on the post-batch EDB. The maintained view and the
/// cross-batch index cache are set up once; each iteration measures one
/// steady-state maintenance step from the same pre-batch state.
fn bench_incremental(c: &mut Criterion) {
    use linrec_datalog::hash::FastMap;
    use linrec_datalog::{Symbol, Value};
    use linrec_service::{MaintenanceMode, ViewDef};
    use std::sync::Arc;

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let n = 1000i64;
    let rules = vec![rules::tc_right()];
    let mut db = linrec_engine::workload::graph_db("q", workload::chain(n));
    let def = ViewDef {
        name: "tc".into(),
        rules: rules.clone(),
        seed: Symbol::new("q"),
    };
    let mut view = linrec_service::MaintainedView::register(def, &db).unwrap();
    assert_eq!(view.mode(), &MaintenanceMode::Incremental);
    let (materialized, _) = view.materialize(&db).unwrap();
    let materialized = Arc::new(materialized);

    // The 1% batch: 10 edges extending the chain to 1010 nodes.
    let mut delta = linrec_datalog::Relation::new(2);
    for i in 0..10 {
        let t = [Value::Int(n + i), Value::Int(n + i + 1)];
        db.insert_tuple(Symbol::new("q"), t);
        delta.insert(t);
    }
    let mut deltas: FastMap<Symbol, Arc<linrec_datalog::Relation>> = FastMap::default();
    deltas.insert(Symbol::new("q"), Arc::new(delta));

    // Sanity: maintenance must agree with the from-scratch recompute.
    let seed = db.relation_or_empty(Symbol::new("q"), 2);
    let plan = Plan::direct(rules.clone());
    let scratch = plan.execute(&db, &seed).unwrap();
    let maintained = view
        .maintain(&materialized, &db, &deltas)
        .unwrap()
        .relation
        .unwrap();
    assert_eq!(maintained.sorted(), scratch.relation.sorted());

    group.bench_function("maintain/1000", |b| {
        b.iter(|| {
            view.maintain(&materialized, &db, &deltas)
                .unwrap()
                .relation
                .unwrap()
        })
    });
    group.bench_function("recompute/1000", |b| {
        b.iter(|| plan.execute(&db, &seed).unwrap())
    });
    group.finish();
}

/// Thread count for the N-thread side of the parallel groups: the
/// engine's own resolution (`LINREC_THREADS` or available parallelism),
/// floored at 4 so the acceptance comparison ("4+ threads vs 1 thread,
/// same binary") is always what gets measured.
fn parallel_threads() -> usize {
    Parallelism::from_env().threads().max(4)
}

fn available_parallelism() -> usize {
    Parallelism::available().threads()
}

/// Same-binary 1-thread vs N-thread medians for the headline recursions.
/// The parallel plan goes through the production path — `Plan::parallelize`
/// with the stock cost model — so what is measured includes the per-round
/// cutover gate, not a hand-tuned harness.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let n = parallel_threads();
    let rules = vec![rules::tc_right()];
    let cases = [
        ("chain_tc_1000", workload::chain(1000)),
        ("grid_tc_20x20", workload::grid(20, 20)),
    ];
    for (name, edges) in cases {
        let db = workload::graph_db("q", edges.clone());
        let sequential = Plan::direct(rules.clone());
        let parallel = Plan::direct(rules.clone()).parallelize(
            &Parallelism::new(n),
            &CostModel::default(),
            &db,
            &edges,
        );
        assert!(
            parallel.rationale().contains("parallel:"),
            "cost model must engage parallelism on {name}: {}",
            parallel.rationale()
        );
        // Exactness guard before timing anything.
        let a = sequential.execute(&db, &edges).unwrap();
        let b = parallel.execute(&db, &edges).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        assert_eq!(a.stats, b.stats);
        group.bench_with_input(BenchmarkId::new(name, "t1"), &1usize, |bch, _| {
            bch.iter(|| sequential.execute(&db, &edges).unwrap())
        });
        group.bench_with_input(BenchmarkId::new(name, format!("t{n}")), &n, |bch, _| {
            bch.iter(|| parallel.execute(&db, &edges).unwrap())
        });
    }
    group.finish();
}

/// The PR 5 tentpole: cold start from a warm checkpoint (snapshot load +
/// empty WAL tail, through the production `open_durable` path) vs the
/// from-scratch fixpoint the service would otherwise pay, plus the cost of
/// writing a checkpoint generation. The recovered state is asserted equal
/// to the fixpoint before anything is timed.
fn bench_persistence(c: &mut Criterion) {
    use linrec_datalog::{Database, Symbol};
    use linrec_service::{open_durable, CheckpointPolicy, ViewDef};

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    let n = 1000i64;
    let rules = vec![rules::tc_right()];
    let edges = workload::chain(n);
    let db = workload::graph_db("q", edges.clone());
    let def = || ViewDef {
        name: "tc".into(),
        rules: rules.clone(),
        seed: Symbol::new("q"),
    };
    let policy = CheckpointPolicy::default();
    let dir = std::env::temp_dir().join(format!("linrec-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm the store: open fresh (writes the baseline checkpoint with the
    // materialized 500k-tuple closure), then drop — the WAL tail is empty,
    // so recover measures pure snapshot-load + registration.
    let scratch = Plan::direct(rules.clone()).execute(&db, &edges).unwrap();
    {
        let (service, report) = open_durable(
            &dir,
            db.clone(),
            vec![def()],
            Parallelism::sequential(),
            policy,
        )
        .expect("fresh open");
        assert!(!report.from_snapshot);
        assert_eq!(
            service.snapshot().view("tc").unwrap().relation.sorted(),
            scratch.relation.sorted(),
            "materialized view must equal the fixpoint"
        );
    }
    {
        // Exactness guard on the path being timed.
        let (service, report) = open_durable(
            &dir,
            Database::new(),
            vec![def()],
            Parallelism::sequential(),
            policy,
        )
        .expect("warm open");
        assert!(report.from_snapshot && report.replayed_batches == 0);
        assert_eq!(
            service.snapshot().view("tc").unwrap().relation.sorted(),
            scratch.relation.sorted(),
            "recovered view must equal the fixpoint"
        );
    }

    group.bench_function("recover/1000", |b| {
        b.iter(|| {
            let (service, _) = open_durable(
                &dir,
                Database::new(),
                vec![def()],
                Parallelism::sequential(),
                policy,
            )
            .expect("cold start");
            assert_eq!(
                service.snapshot().count("tc").unwrap() as i64,
                n * (n + 1) / 2
            );
            service
        })
    });
    group.bench_function("scratch_fixpoint/1000", |b| {
        let plan = Plan::direct(rules.clone());
        b.iter(|| plan.execute(&db, &edges).unwrap())
    });
    group.bench_function("checkpoint/1000", |b| {
        let (service, _) = open_durable(
            &dir,
            Database::new(),
            vec![def()],
            Parallelism::sequential(),
            policy,
        )
        .expect("open for checkpoint bench");
        b.iter(|| assert!(service.checkpoint_now().unwrap()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_planning_cost,
    bench_shopping,
    bench_chain,
    bench_grid,
    bench_updown,
    bench_incremental,
    bench_parallel,
    bench_persistence
);

/// PR 1 seed-engine medians (ns) for the headline workloads, measured on
/// the same machine right before the flat-storage/zero-copy rewrite landed
/// (commit 0666d23). Kept here so `BENCH_pr2.json` carries the comparison.
const PR1_BASELINES: &[(&str, u64)] = &[
    ("chain_tc/direct/1000", 466_733_248),
    ("shopping/direct/100", 1_951_841),
    ("shopping/redundancy_bounded/100", 4_502_166),
    ("shopping/direct/400", 10_457_898),
    ("shopping/redundancy_bounded/400", 21_934_785),
    ("updown/decomposed/10", 35_657_937),
    ("updown/direct/10", 48_715_226),
    ("grid_tc/direct/20x20", 24_488_896),
];

fn write_summary(c: &Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    let threads = parallel_threads();
    let multicore = available_parallelism() > 1;
    let mut out = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(out, "    \"parallel_threads\": {threads},");
    let _ = writeln!(
        out,
        "    \"available_parallelism\": {}",
        available_parallelism()
    );
    out.push_str("  },\n  \"results\": {\n");
    let measurements = c.measurements();
    for (i, (id, median, samples)) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{id}\": {{\"median_ns\": {median:.0}, \"samples\": {samples}}}{comma}"
        );
    }
    out.push_str("  },\n  \"baseline_pr1_ns\": {\n");
    for (i, (id, ns)) in PR1_BASELINES.iter().enumerate() {
        let comma = if i + 1 == PR1_BASELINES.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "    \"{id}\": {ns}{comma}");
    }
    out.push_str("  },\n  \"derived\": {\n");
    let median = |needle: &str| {
        measurements
            .iter()
            .find(|(id, _, _)| id == needle)
            .map(|&(_, m, _)| m)
    };
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => n / d,
        _ => 0.0,
    };
    // The PR 3 headline: maintaining the 1k-chain TC view under a 1%
    // insert batch vs recomputing it from scratch.
    let speedup = ratio(
        median("incremental/recompute/1000"),
        median("incremental/maintain/1000"),
    );
    let _ = writeln!(
        out,
        "    \"chain_tc_1pct_batch_incremental_speedup\": {speedup:.2},"
    );
    // The PR 5 headline: cold start from a warm checkpoint (snapshot load
    // + empty WAL tail) vs the from-scratch fixpoint.
    let cold = ratio(
        median("persistence/scratch_fixpoint/1000"),
        median("persistence/recover/1000"),
    );
    let _ = writeln!(out, "    \"chain_tc_cold_start_speedup\": {cold:.2}");
    // The PR 4 parallel speedups are only meaningful on a multicore host:
    // on a 1-core container they measure pure sharding overhead and would
    // read as misleading sub-1x "speedups", so they are emitted only when
    // the machine actually offers parallelism (the meta block always
    // records what was available).
    if multicore {
        let tn = format!("t{threads}");
        let chain_par = ratio(
            median("parallel/chain_tc_1000/t1"),
            median(&format!("parallel/chain_tc_1000/{tn}")),
        );
        let grid_par = ratio(
            median("parallel/grid_tc_20x20/t1"),
            median(&format!("parallel/grid_tc_20x20/{tn}")),
        );
        let _ = writeln!(out, "    ,\"chain_tc_parallel_speedup\": {chain_par:.2}");
        let _ = writeln!(out, "    ,\"grid_tc_parallel_speedup\": {grid_par:.2}");
    }
    out.push_str("  }\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => eprintln!("planner bench: wrote {path}"),
        Err(e) => eprintln!("planner bench: cannot write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    write_summary(&c);
    criterion::__finalize(&c);
}
