//! Planner dividend: the certificate-backed plan the analysis picks versus
//! a forced `Direct` baseline, on the two workloads where the paper
//! promises a win — the commuting up/down recursion (Theorem 3.1) and the
//! redundant shopping recursion (Theorem 4.2). The planning cost itself
//! (analysis + certificate search) is measured separately so future PRs
//! can track both halves; every measurement lands as a JSON line in
//! `target/criterion.jsonl` for the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_engine::{rules, workload, Analysis, Plan, PlanShape};

fn bench_planner_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_vs_direct");
    group.sample_size(10);

    // --- planning cost (analysis + certificates) -----------------------
    let updown = vec![rules::up_rule(), rules::down_rule()];
    let shopping = vec![rules::shopping_rule()];
    group.bench_function("analyze/updown", |b| {
        b.iter(|| Analysis::of(&updown, None).plan())
    });
    group.bench_function("analyze/shopping", |b| {
        b.iter(|| Analysis::of(&shopping, None).plan())
    });

    // --- up/down: planner picks Decomposed ------------------------------
    let chosen = Analysis::of(&updown, None).plan();
    assert!(matches!(chosen.shape(), PlanShape::Decomposed { .. }));
    let forced = Plan::direct(updown.clone());
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        group.bench_with_input(BenchmarkId::new("updown_planner", depth), &depth, |b, _| {
            b.iter(|| chosen.execute(&db, &init).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("updown_forced_direct", depth),
            &depth,
            |b, _| b.iter(|| forced.execute(&db, &init).unwrap()),
        );
    }

    // --- shopping: planner picks RedundancyBounded ----------------------
    let chosen = Analysis::of(&shopping, None).plan();
    assert_eq!(chosen.shape(), PlanShape::RedundancyBounded);
    let forced = Plan::direct(shopping.clone());
    for people in [100i64, 400, 1600] {
        let (db, init) = workload::shopping(people, 30, 4, 99);
        group.bench_with_input(
            BenchmarkId::new("shopping_planner", people),
            &people,
            |b, _| b.iter(|| chosen.execute(&db, &init).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("shopping_forced_direct", people),
            &people,
            |b, _| b.iter(|| forced.execute(&db, &init).unwrap()),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_planner_vs_direct);
criterion_main!(benches);
