//! E2 (§4.1/§6.1, Theorem 4.1/Algorithm 4.1): the separable algorithm for
//! `σ(A₁+A₂)*` versus select-after-fixpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_engine::{eval_select_after, eval_separable, rules, workload, Selection};

fn bench_separable(c: &mut Criterion) {
    let up = rules::up_rule();
    let down = rules::down_rule();
    let mut group = c.benchmark_group("e2_separable");
    group.sample_size(10);
    for depth in [7u32, 9, 11] {
        let (db, init) = workload::up_down(depth, 11);
        let sel = Selection::eq(1, (1i64 << (depth + 1)) + 1);
        let all = [down.clone(), up.clone()];
        group.bench_with_input(BenchmarkId::new("select_after", depth), &depth, |b, _| {
            b.iter(|| eval_select_after(&all, &db, &init, &sel))
        });
        group.bench_with_input(BenchmarkId::new("separable", depth), &depth, |b, _| {
            b.iter(|| eval_separable(&up, &down, &db, &init, &sel).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_separable);
criterion_main!(benches);
