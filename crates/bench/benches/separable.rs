//! E2 (§4.1/§6.1, Theorem 4.1/Algorithm 4.1): the separable algorithm for
//! `σ(A₁+A₂)*` versus select-after-fixpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_core::SeparabilityCert;
use linrec_engine::{rules, workload, Plan, Selection};

fn bench_separable(c: &mut Criterion) {
    let up = rules::up_rule();
    let down = rules::down_rule();
    let cert = SeparabilityCert::establish(&up, &down)
        .unwrap()
        .expect("up/down commute");
    let all = vec![down, up];
    let mut group = c.benchmark_group("e2_separable");
    group.sample_size(10);
    for depth in [7u32, 9, 11] {
        let (db, init) = workload::up_down(depth, 11);
        let sel = Selection::eq(1, (1i64 << (depth + 1)) + 1);
        let select_after = Plan::select_after(Plan::direct(all.clone()), sel.clone());
        let separable = Plan::separable(cert.clone(), sel).unwrap();
        group.bench_with_input(BenchmarkId::new("select_after", depth), &depth, |b, _| {
            b.iter(|| select_after.execute(&db, &init).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("separable", depth), &depth, |b, _| {
            b.iter(|| separable.execute(&db, &init).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_separable);
criterion_main!(benches);
