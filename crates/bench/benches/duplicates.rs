//! E1 (§3, Theorem 3.1): decomposed evaluation `B*C*` versus direct
//! `(B+C)*` — wall-clock across workload families. Duplicate counts are
//! reported by `cargo run -p linrec-bench --bin experiments e1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_engine::{eval_decomposed, eval_direct, rules, workload};

fn bench_duplicates(c: &mut Criterion) {
    let up = rules::up_rule();
    let down = rules::down_rule();
    let mut group = c.benchmark_group("e1_duplicates");
    group.sample_size(10);
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        group.bench_with_input(BenchmarkId::new("direct", depth), &depth, |b, _| {
            b.iter(|| eval_direct(&[up.clone(), down.clone()], &db, &init))
        });
        group.bench_with_input(BenchmarkId::new("decomposed", depth), &depth, |b, _| {
            b.iter(|| {
                eval_decomposed(&[vec![up.clone()], vec![down.clone()]], &db, &init)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_duplicates);
criterion_main!(benches);
