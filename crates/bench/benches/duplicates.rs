//! E1 (§3, Theorem 3.1): decomposed evaluation `B*C*` versus direct
//! `(B+C)*` — wall-clock across workload families. Duplicate counts are
//! reported by `cargo run -p linrec-bench --bin experiments e1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_core::CommutativityCert;
use linrec_engine::{rules, workload, Plan};

fn bench_duplicates(c: &mut Criterion) {
    let all = vec![rules::up_rule(), rules::down_rule()];
    let direct = Plan::direct(all.clone());
    let decomposed = Plan::decomposed(
        CommutativityCert::establish(&all, 0)
            .unwrap()
            .expect("up/down commute"),
    );
    let mut group = c.benchmark_group("e1_duplicates");
    group.sample_size(10);
    for depth in [6u32, 8, 10] {
        let (db, init) = workload::up_down(depth, 7);
        group.bench_with_input(BenchmarkId::new("direct", depth), &depth, |b, _| {
            b.iter(|| direct.execute(&db, &init).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decomposed", depth), &depth, |b, _| {
            b.iter(|| decomposed.execute(&db, &init).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_duplicates);
criterion_main!(benches);
