//! E4 (§5.3, Theorem 5.3): the exact O(a log a) commutativity test versus
//! the definition-based test (compose + NP-hard equivalence), as the rule
//! size grows; plus the definition test on the repeated-predicate family
//! where the exact test does not apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_bench::{commuting_pair, repeated_pred_pair};
use linrec_core::{commute_by_definition, commutes_exact, commutes_sufficient};

fn bench_commute_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_commute_test");
    for k in [2usize, 8, 32, 128] {
        let (r1, r2) = commuting_pair(k);
        group.bench_with_input(BenchmarkId::new("exact_thm52", k), &k, |b, _| {
            b.iter(|| commutes_exact(&r1, &r2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sufficient_thm51", k), &k, |b, _| {
            b.iter(|| commutes_sufficient(&r1, &r2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("definition", k), &k, |b, _| {
            b.iter(|| commute_by_definition(&r1, &r2).unwrap())
        });
    }
    for k in [2usize, 4, 6] {
        let (r1, r2) = repeated_pred_pair(k);
        group.bench_with_input(
            BenchmarkId::new("definition_repeated_preds", k),
            &k,
            |b, _| b.iter(|| commute_by_definition(&r1, &r2).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_commute_tests);
criterion_main!(benches);
