//! E6 (substrate, Bancilhon [5]): semi-naive versus naive fixpoint
//! evaluation of transitive closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_engine::{rules, workload, Plan};

fn bench_seminaive(c: &mut Criterion) {
    let seminaive = Plan::direct(vec![rules::tc_right()]);
    let naive = Plan::naive(vec![rules::tc_right()]);
    let mut group = c.benchmark_group("e6_seminaive");
    group.sample_size(10);
    for n in [64i64, 256, 1024] {
        let edges = workload::chain(n);
        let db = workload::graph_db("q", edges.clone());
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| seminaive.execute(&db, &edges).unwrap())
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| naive.execute(&db, &edges).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_seminaive);
criterion_main!(benches);
