//! E5 (§3.2 identities and §7 partial commutativity): the decomposition
//! planner and cluster-decomposed evaluation for multi-operator recursions;
//! ablation of minimize-during-powers in the torsion search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_core::{plan_decomposition, CommutativityCert};
use linrec_datalog::parse_linear_rule;
use linrec_engine::{workload, Plan};

fn operators() -> Vec<linrec_datalog::LinearRule> {
    vec![
        parse_linear_rule("p(x,y,z) :- p(x,y,w), a(w,z).").unwrap(),
        parse_linear_rule("p(x,y,z) :- p(w,y,z), b(x,w).").unwrap(),
        parse_linear_rule("p(x,y,z) :- p(x,w,z), c(w,y).").unwrap(),
    ]
}

fn setup(n: i64, seed: u64) -> (linrec_datalog::Database, linrec_datalog::Relation) {
    let mut db = linrec_datalog::Database::new();
    db.set_relation("a", workload::random_graph(n, 2 * n as usize, seed));
    db.set_relation("b", workload::random_graph(n, 2 * n as usize, seed + 1));
    db.set_relation("c", workload::random_graph(n, 2 * n as usize, seed + 2));
    let mut init = linrec_datalog::Relation::new(3);
    for t in workload::random_graph(n, n as usize, seed + 3).iter() {
        init.insert(vec![t[0], t[1], t[0]]);
    }
    (db, init)
}

fn bench_decompose(c: &mut Criterion) {
    let ops = operators();
    let mut group = c.benchmark_group("e5_decompose");
    group.sample_size(10);

    group.bench_function("planning_3_ops", |b| {
        b.iter(|| plan_decomposition(&ops, 0).unwrap())
    });
    group.bench_function("certify_3_ops", |b| {
        b.iter(|| CommutativityCert::establish(&ops, 0).unwrap().unwrap())
    });

    let direct = Plan::direct(ops.clone());
    let decomposed = Plan::decomposed(
        CommutativityCert::establish(&ops, 0)
            .unwrap()
            .expect("mutually commuting"),
    );
    for n in [16i64, 32, 64] {
        let (db, init) = setup(n, 5);
        group.bench_with_input(BenchmarkId::new("direct_3ops", n), &n, |b, _| {
            b.iter(|| direct.execute(&db, &init).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decomposed_3ops", n), &n, |b, _| {
            b.iter(|| decomposed.execute(&db, &init).unwrap())
        });
    }

    // Ablation: torsion search with and without per-step minimization.
    let c_rule = parse_linear_rule("p(w,x,y,z) :- p(x,w,x,z), r(x,y).").unwrap();
    group.bench_function("torsion_minimized_powers", |b| {
        b.iter(|| linrec_core::torsion_index(&c_rule, 8).unwrap())
    });
    group.bench_function("torsion_raw_powers_ablation", |b| {
        b.iter(|| {
            // Raw powers with only pairwise equivalence checks (no
            // minimization): the ablation baseline.
            use linrec_cq::{compose, linear_equivalent};
            let mut powers = vec![c_rule.clone()];
            'outer: for _ in 1..8 {
                let next = compose(powers.last().unwrap(), &c_rule).unwrap();
                for prev in &powers {
                    if linear_equivalent(prev, &next) {
                        break 'outer;
                    }
                }
                powers.push(next);
            }
            powers.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
