//! E3 (§4.2/§6.2, Theorems 4.2/6.4): redundancy-bounded evaluation versus
//! direct evaluation on the Example 6.1 shopping workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linrec_core::RedundancyCert;
use linrec_datalog::Symbol;
use linrec_engine::{rules, workload, Plan};

fn bench_redundancy(c: &mut Criterion) {
    let rule = rules::shopping_rule();
    let direct = Plan::direct(vec![rule.clone()]);
    let bounded = Plan::redundancy_bounded(
        RedundancyCert::establish(&rule, Symbol::new("cheap"), 8)
            .unwrap()
            .expect("cheap is redundant"),
    );
    let mut group = c.benchmark_group("e3_redundancy");
    group.sample_size(10);
    for people in [100i64, 400, 1600] {
        let (db, init) = workload::shopping(people, 30, 4, 99);
        group.bench_with_input(BenchmarkId::new("direct", people), &people, |b, _| {
            b.iter(|| direct.execute(&db, &init).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bounded", people), &people, |b, _| {
            b.iter(|| bounded.execute(&db, &init).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_redundancy);
criterion_main!(benches);
