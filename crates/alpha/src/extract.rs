//! Narrow and wide rules of augmented bridges (paper, Section 5).
//!
//! For an augmented bridge of a rule `r` whose separator satisfies
//! `x ∈ V′ ⇔ h(x) ∈ V′`:
//!
//! * the **narrow rule** keeps only the consequent positions whose variables
//!   appear in the augmented bridge (projecting the recursive predicate) and
//!   the nonrecursive atoms whose arcs lie in the bridge;
//! * the **wide rule** keeps the full arity, turning every distinguished
//!   variable outside the bridge into a free 1-persistent one.
//!
//! Both are unique for a given augmented bridge, and the wide rules of the
//! bridges multiply back to the original operator (Lemma 6.5; checked in the
//! tests and in `linrec-core`).

use crate::bridges::AugmentedBridge;
use crate::graph::{AlphaGraph, EdgeRef};
use linrec_datalog::hash::FastSet;
use linrec_datalog::{Atom, LinearRule, RuleError, Term};

/// The indices of the nonrecursive atoms whose static arcs all lie inside
/// the augmented bridge. Errors if some atom has arcs both inside and
/// outside (cannot happen with the atom-grouped bridge decomposition of this
/// crate, but guards against hand-built bridges).
pub fn atoms_in_bridge(graph: &AlphaGraph, aug: &AugmentedBridge) -> Result<Vec<usize>, RuleError> {
    let edge_set: FastSet<EdgeRef> = aug.edges.iter().copied().collect();
    let mut atoms = Vec::new();
    for ai in 0..graph.rule().nonrec_atoms().len() {
        let arcs = graph.arcs_of_atom(ai);
        let inside = arcs
            .iter()
            .filter(|&&a| edge_set.contains(&EdgeRef::Static(a)))
            .count();
        if inside == arcs.len() {
            atoms.push(ai);
        } else if inside > 0 {
            return Err(RuleError::Parse(format!(
                "atom {} straddles bridges",
                graph.rule().nonrec_atoms()[ai]
            )));
        }
    }
    Ok(atoms)
}

/// The narrow rule of an augmented bridge.
pub fn narrow_rule(graph: &AlphaGraph, aug: &AugmentedBridge) -> Result<LinearRule, RuleError> {
    let rule = graph.rule();
    let keep: Vec<usize> = (0..rule.arity())
        .filter(|&i| {
            rule.head().terms[i]
                .as_var()
                .is_some_and(|v| aug.nodes.contains(&v))
        })
        .collect();
    let head = Atom::new(
        rule.rec_pred(),
        keep.iter().map(|&i| rule.head().terms[i]).collect(),
    );
    let rec = Atom::new(
        rule.rec_pred(),
        keep.iter().map(|&i| rule.rec_atom().terms[i]).collect(),
    );
    let nonrec: Vec<Atom> = atoms_in_bridge(graph, aug)?
        .into_iter()
        .map(|ai| rule.nonrec_atoms()[ai].clone())
        .collect();
    LinearRule::from_parts(head, rec, nonrec)
}

/// The wide rule of an augmented bridge: full arity, with every consequent
/// position outside the bridge made free 1-persistent.
pub fn wide_rule(graph: &AlphaGraph, aug: &AugmentedBridge) -> Result<LinearRule, RuleError> {
    let rule = graph.rule();
    let rec_terms: Vec<Term> = (0..rule.arity())
        .map(|i| {
            let head_var = rule.head().terms[i].as_var().expect("constant-free head");
            if aug.nodes.contains(&head_var) {
                rule.rec_atom().terms[i]
            } else {
                Term::Var(head_var)
            }
        })
        .collect();
    let rec = Atom::new(rule.rec_pred(), rec_terms);
    let nonrec: Vec<Atom> = atoms_in_bridge(graph, aug)?
        .into_iter()
        .map(|ai| rule.nonrec_atoms()[ai].clone())
        .collect();
    LinearRule::from_parts(rule.head().clone(), rec, nonrec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridges::BridgeDecomposition;
    use crate::classify::Classification;
    use linrec_datalog::{parse_linear_rule, Var};

    fn setup(src: &str) -> (AlphaGraph, Classification) {
        let r = parse_linear_rule(src).unwrap();
        (
            AlphaGraph::new(&r).unwrap(),
            Classification::classify(&r).unwrap(),
        )
    }

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn figure_2_narrow_rules() {
        let (g, c) = setup("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        // w's augmented bridge → narrow rule P(u,w) :- P(u,u), R(w)
        // (paper, Example 5.1 narrow rules).
        let bw = d.bridge_containing(v("w")).unwrap();
        let n = narrow_rule(&g, &d.augmented(&g, bw)).unwrap();
        let expected = parse_linear_rule("p(u,w) :- p(u,u), r(w).").unwrap();
        assert_eq!(n, expected);
        // z's: P(y,z) :- P(y,y), T(z).
        let bz = d.bridge_containing(v("z")).unwrap();
        let n = narrow_rule(&g, &d.augmented(&g, bz)).unwrap();
        let expected = parse_linear_rule("p(y,z) :- p(y,y), t(z).").unwrap();
        assert_eq!(n, expected);
    }

    #[test]
    fn figure_2_wide_rules() {
        let (g, c) = setup("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        // w's wide rule (paper): P(u,w,x,y,z) :- P(u,u,x,y,z), R(w).
        let bw = d.bridge_containing(v("w")).unwrap();
        let w = wide_rule(&g, &d.augmented(&g, bw)).unwrap();
        let expected = parse_linear_rule("p(u,w,x,y,z) :- p(u,u,x,y,z), r(w).").unwrap();
        assert_eq!(w, expected);
        // z's wide rule (paper): P(u,w,x,y,z) :- P(u,w,x,y,y), T(z).
        let bz = d.bridge_containing(v("z")).unwrap();
        let w = wide_rule(&g, &d.augmented(&g, bz)).unwrap();
        let expected = parse_linear_rule("p(u,w,x,y,z) :- p(u,w,x,y,y), t(z).").unwrap();
        assert_eq!(w, expected);
    }

    #[test]
    fn example_6_2_wide_rule_is_paper_c() {
        // A: P(w,x,y,z) :- P(x,w,x,u), Q(x,u), R(x,y), S(u,z);
        // the R-bridge's wide rule must be the paper's
        // C: P(w,x,y,z) :- P(x,w,x,z), R(x,y).
        let (g, c) = setup("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).");
        let d = BridgeDecomposition::wrt_i(&g, &c);
        let r_idx = (0..d.bridges().len())
            .find(|&i| {
                d.bridges()[i].edges.iter().any(|e| {
                    matches!(e, EdgeRef::Static(s)
                        if g.static_arcs()[*s].pred == linrec_datalog::Symbol::new("r"))
                })
            })
            .unwrap();
        let aug = d.augmented(&g, r_idx);
        let wide = wide_rule(&g, &aug).unwrap();
        let expected = parse_linear_rule("p(w,x,y,z) :- p(x,w,x,z), r(x,y).").unwrap();
        assert_eq!(wide, expected);
        // Narrow rule: P(w,x,y) :- P(x,w,x), R(x,y).
        let narrow = narrow_rule(&g, &aug).unwrap();
        let expected = parse_linear_rule("p(w,x,y) :- p(x,w,x), r(x,y).").unwrap();
        assert_eq!(narrow, expected);
    }

    #[test]
    fn wide_rules_multiply_back_to_original() {
        // Product of all wide rules (in a bridge-compatible order) must be
        // equivalent to the original rule (Lemma 6.5 / Theorem 5.1 proof).
        let (g, c) = setup("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        let wides: Vec<LinearRule> = (0..d.bridges().len())
            .map(|i| wide_rule(&g, &d.augmented(&g, i)).unwrap())
            .collect();
        let mut product = wides[0].clone();
        for wr in &wides[1..] {
            product = linrec_cq::compose(&product, wr).unwrap();
        }
        assert!(linrec_cq::linear_equivalent(&product, g.rule()));
    }

    #[test]
    fn chord_bridge_narrow_rule() {
        let (g, c) = setup("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        let q_idx = (0..d.bridges().len())
            .find(|&i| {
                d.bridges()[i].edges.iter().all(|e| {
                    matches!(e, EdgeRef::Static(s)
                        if g.static_arcs()[*s].pred == linrec_datalog::Symbol::new("q"))
                })
            })
            .unwrap();
        let n = narrow_rule(&g, &d.augmented(&g, q_idx)).unwrap();
        let expected = parse_linear_rule("p(u,y) :- p(u,y), q(u,u,y).").unwrap();
        assert_eq!(n, expected);
    }
}
