//! α-graphs of linear recursive rules (Ioannidis, VLDB 1989, Sections 5–6).
//!
//! The α-graph is the syntactic object on which the paper's commutativity
//! characterization is stated: one node per variable, *static* arcs for
//! consecutive argument positions of nonrecursive atoms, *dynamic* arcs for
//! the antecedent→consequent flow of the recursive predicate. On top of it
//! this crate provides:
//!
//! * the **persistence classification** of distinguished variables
//!   (free/link n-persistent, general, n-ray) — [`Classification`];
//! * the **bridge decomposition** with respect to a separator subgraph
//!   (link 1-persistent self-arcs for Section 5, `G_I` for Section 6) —
//!   [`BridgeDecomposition`];
//! * **narrow** and **wide rules** of augmented bridges — [`narrow_rule`],
//!   [`wide_rule`] — whose products reconstruct the original operator;
//! * DOT / text **rendering** used to regenerate the paper's Figures 1–9.
//!
//! # Example
//!
//! ```
//! use linrec_datalog::{parse_linear_rule, Var};
//! use linrec_alpha::{AlphaGraph, Classification, PersistenceClass};
//!
//! // Example 6.1: cheap is attached to the link 1-persistent variable y.
//! let r = parse_linear_rule("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).").unwrap();
//! let classes = Classification::classify(&r).unwrap();
//! assert_eq!(
//!     classes.class(Var::new("y")),
//!     Some(PersistenceClass::LinkPersistent(1)),
//! );
//! ```

#![warn(missing_docs)]

pub mod bridges;
pub mod classify;
pub mod extract;
pub mod graph;
pub mod render;
pub mod unionfind;

pub use bridges::{i_separator, link1_separator, AugmentedBridge, Bridge, BridgeDecomposition};
pub use classify::{Classification, PersistenceClass};
pub use extract::{atoms_in_bridge, narrow_rule, wide_rule};
pub use graph::{AlphaGraph, DynamicArc, EdgeRef, StaticArc};
pub use render::{summary, to_dot};
pub use unionfind::UnionFind;
