//! Bridges of the α-graph with respect to a separator subgraph `G′`
//! (paper, Section 5, after Bondy–Murty \[7\]).
//!
//! Two edges of `G − E′` are equivalent iff they are joined by a walk with
//! no internal node in `V′` (the node set of `G′`); the subgraph induced by
//! an equivalence class is a *bridge*. A bridge plus the components of `G′`
//! attached to it is an *augmented bridge*.
//!
//! Implementation: union-find over the non-separator edges, merging every
//! pair of edges that share a node outside `V′` — exactly the transitive
//! closure of the walk relation, in O((n+e)·α) time (Lemma 5.3).

use crate::classify::Classification;
use crate::graph::{AlphaGraph, EdgeRef};
use crate::unionfind::UnionFind;
use linrec_datalog::hash::{FastMap, FastSet};
use linrec_datalog::Var;

/// One bridge: an equivalence class of non-separator edges.
#[derive(Debug, Clone)]
pub struct Bridge {
    /// The edges of the bridge.
    pub edges: Vec<EdgeRef>,
    /// All endpoints of the bridge's edges (including separator nodes).
    pub nodes: FastSet<Var>,
}

/// One augmented bridge: a bridge together with the separator components
/// attached to it.
#[derive(Debug, Clone)]
pub struct AugmentedBridge {
    /// Index of the underlying bridge in the decomposition.
    pub bridge: usize,
    /// Bridge edges plus attached separator edges.
    pub edges: Vec<EdgeRef>,
    /// All endpoints.
    pub nodes: FastSet<Var>,
}

/// The bridge decomposition of an α-graph with respect to a separator.
#[derive(Debug, Clone)]
pub struct BridgeDecomposition {
    separator_edges: Vec<EdgeRef>,
    separator_nodes: FastSet<Var>,
    bridges: Vec<Bridge>,
}

/// The Section-5 separator: dynamic self-arcs of link 1-persistent
/// variables ("the subgraph induced by the dynamic arcs connecting each link
/// 1-persistent variable in the graph to itself").
pub fn link1_separator(graph: &AlphaGraph, classes: &Classification) -> Vec<EdgeRef> {
    graph
        .dynamic_arcs()
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.from == a.to
                && classes
                    .class(a.to)
                    .is_some_and(|c| c.is_link_one_persistent())
        })
        .map(|(i, _)| EdgeRef::Dynamic(i))
        .collect()
}

/// The Section-6 separator `G_I`: dynamic arcs with both endpoints in
/// `I` = link-persistent ∪ ray variables.
pub fn i_separator(graph: &AlphaGraph, classes: &Classification) -> Vec<EdgeRef> {
    let i_set = classes.i_set();
    graph
        .dynamic_arcs()
        .iter()
        .enumerate()
        .filter(|(_, a)| i_set.contains(&a.from) && i_set.contains(&a.to))
        .map(|(i, _)| EdgeRef::Dynamic(i))
        .collect()
}

impl BridgeDecomposition {
    /// Compute the bridges of `graph` with respect to the given separator
    /// edges. The separator node set `V′` is the set of endpoints of the
    /// separator edges.
    pub fn compute(graph: &AlphaGraph, separator_edges: Vec<EdgeRef>) -> BridgeDecomposition {
        let sep_set: FastSet<EdgeRef> = separator_edges.iter().copied().collect();
        let mut separator_nodes: FastSet<Var> = FastSet::default();
        for &e in &separator_edges {
            let (a, b) = graph.endpoints(e);
            separator_nodes.insert(a);
            separator_nodes.insert(b);
        }

        // Enumerate non-separator edges.
        let rest: Vec<EdgeRef> = graph.edges().filter(|e| !sep_set.contains(e)).collect();
        let index: FastMap<EdgeRef, usize> =
            rest.iter().enumerate().map(|(i, &e)| (e, i)).collect();

        // Union edges sharing a non-separator node.
        let mut uf = UnionFind::new(rest.len());
        let mut per_node: FastMap<Var, usize> = FastMap::default();
        for (i, &e) in rest.iter().enumerate() {
            let (a, b) = graph.endpoints(e);
            for v in [a, b] {
                if separator_nodes.contains(&v) {
                    continue;
                }
                match per_node.get(&v) {
                    Some(&first) => {
                        uf.union(first, i);
                    }
                    None => {
                        per_node.insert(v, i);
                    }
                }
            }
        }
        // The paper assigns whole nonrecursive atoms to bridges (their
        // narrow/wide rules are built from atoms), so keep all arcs of one
        // atom in the same class even when they meet only at separator
        // nodes.
        for ai in 0..graph.rule().nonrec_atoms().len() {
            let arcs = graph.arcs_of_atom(ai);
            for w in arcs.windows(2) {
                let (a, b) = (EdgeRef::Static(w[0]), EdgeRef::Static(w[1]));
                if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                    uf.union(ia, ib);
                }
            }
        }

        let bridges = uf
            .groups()
            .into_iter()
            .map(|group| {
                let edges: Vec<EdgeRef> = group.into_iter().map(|i| rest[i]).collect();
                let mut nodes = FastSet::default();
                for &e in &edges {
                    let (a, b) = graph.endpoints(e);
                    nodes.insert(a);
                    nodes.insert(b);
                }
                Bridge { edges, nodes }
            })
            .collect();

        BridgeDecomposition {
            separator_edges,
            separator_nodes,
            bridges,
        }
    }

    /// Convenience: decomposition w.r.t. the link 1-persistent self-arcs.
    pub fn wrt_link1(graph: &AlphaGraph, classes: &Classification) -> BridgeDecomposition {
        BridgeDecomposition::compute(graph, link1_separator(graph, classes))
    }

    /// Convenience: decomposition w.r.t. `G_I` (Section 6).
    pub fn wrt_i(graph: &AlphaGraph, classes: &Classification) -> BridgeDecomposition {
        BridgeDecomposition::compute(graph, i_separator(graph, classes))
    }

    /// The separator edges `E′`.
    pub fn separator_edges(&self) -> &[EdgeRef] {
        &self.separator_edges
    }

    /// The separator nodes `V′`.
    pub fn separator_nodes(&self) -> &FastSet<Var> {
        &self.separator_nodes
    }

    /// The bridges.
    pub fn bridges(&self) -> &[Bridge] {
        &self.bridges
    }

    /// The unique bridge containing non-separator variable `v`, if any.
    /// Separator variables belong to every bridge they touch, so `None` is
    /// returned for them (and for isolated variables).
    pub fn bridge_containing(&self, v: Var) -> Option<usize> {
        if self.separator_nodes.contains(&v) {
            return None;
        }
        self.bridges.iter().position(|b| b.nodes.contains(&v))
    }

    /// The augmented bridge for bridge `idx`: the bridge plus every
    /// connected component of the separator subgraph that shares a node
    /// with it.
    pub fn augmented(&self, graph: &AlphaGraph, idx: usize) -> AugmentedBridge {
        let bridge = &self.bridges[idx];
        // Components of G′ via union-find on separator nodes.
        let sep_nodes: Vec<Var> = {
            let mut v: Vec<Var> = self.separator_nodes.iter().copied().collect();
            v.sort();
            v
        };
        let node_idx: FastMap<Var, usize> =
            sep_nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut uf = UnionFind::new(sep_nodes.len());
        for &e in &self.separator_edges {
            let (a, b) = graph.endpoints(e);
            uf.union(node_idx[&a], node_idx[&b]);
        }
        // Which components touch the bridge?
        let mut touched: FastSet<usize> = FastSet::default();
        for v in &bridge.nodes {
            if let Some(&i) = node_idx.get(v) {
                touched.insert(uf.find(i));
            }
        }
        let mut edges = bridge.edges.clone();
        let mut nodes = bridge.nodes.clone();
        for &e in &self.separator_edges {
            let (a, b) = graph.endpoints(e);
            if touched.contains(&uf.find(node_idx[&a])) {
                edges.push(e);
                nodes.insert(a);
                nodes.insert(b);
            }
        }
        AugmentedBridge {
            bridge: idx,
            edges,
            nodes,
        }
    }

    /// All augmented bridges.
    pub fn augmented_all(&self, graph: &AlphaGraph) -> Vec<AugmentedBridge> {
        (0..self.bridges.len())
            .map(|i| self.augmented(graph, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn setup(src: &str) -> (AlphaGraph, Classification) {
        let r = parse_linear_rule(src).unwrap();
        let g = AlphaGraph::new(&r).unwrap();
        let c = Classification::classify(&r).unwrap();
        (g, c)
    }

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn figure_2_bridges() {
        // P(u,w,x,y,z) :- P(u,u,u,y,y), Q(u,u,y), R(w), S(x), T(z).
        let (g, c) = setup("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        assert_eq!(d.separator_edges().len(), 2); // u→u and y→y dynamic
        assert!(d.separator_nodes().contains(&v("u")));
        assert!(d.separator_nodes().contains(&v("y")));
        // Strict walk-equivalence plus atom grouping: R+dyn(u→w),
        // S+dyn(u→x), T+dyn(y→z), and the chord bridge {Q} whose two arcs
        // touch only separator nodes. (The paper's Figure 2 displays the
        // chord merged into S's bridge — an equivalent grouping, see
        // EXPERIMENTS.md.)
        assert_eq!(d.bridges().len(), 4);
        let bw = d.bridge_containing(v("w")).unwrap();
        let bx = d.bridge_containing(v("x")).unwrap();
        let bz = d.bridge_containing(v("z")).unwrap();
        assert!(bw != bx && bx != bz && bw != bz);
        assert_eq!(d.bridge_containing(v("u")), None);
        // w's bridge has 2 edges: static R and dynamic u→w.
        assert_eq!(d.bridges()[bw].edges.len(), 2);
        // The chord bridge holds both Q arcs.
        let q_idx = (0..d.bridges().len())
            .find(|i| ![bw, bx, bz].contains(i))
            .unwrap();
        assert_eq!(d.bridges()[q_idx].edges.len(), 2);
    }

    #[test]
    fn figure_2_augmented_bridges_attach_self_loops() {
        let (g, c) = setup("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        let bw = d.bridge_containing(v("w")).unwrap();
        let aug = d.augmented(&g, bw);
        // bridge {R(w→w), dyn(u→w)} + attached separator self-loop dyn(u→u).
        assert_eq!(aug.edges.len(), 3);
        assert!(aug.nodes.contains(&v("u")));
        assert!(aug.nodes.contains(&v("w")));
        assert!(!aug.nodes.contains(&v("y")));
    }

    #[test]
    fn example_6_2_bridges_wrt_i() {
        // A: P(w,x,y,z) :- P(x,w,x,u), Q(x,u), R(x,y), S(u,z).
        let (g, c) = setup("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).");
        let d = BridgeDecomposition::wrt_i(&g, &c);
        // G_I: dynamic x→w, w→x, x→y (I = {w,x,y}).
        assert_eq!(d.separator_edges().len(), 3);
        // Bridges: {Q,S,dyn(u→z)} through u/z, and the chord {R(x→y)}.
        assert_eq!(d.bridges().len(), 2);
        let r_bridge = d.bridges().iter().position(|b| b.edges.len() == 1).unwrap();
        let big = 1 - r_bridge;
        assert_eq!(d.bridges()[big].edges.len(), 3);
        // Augmenting the R-chord picks up the whole of G_I.
        let aug = d.augmented(&g, r_bridge);
        assert_eq!(aug.edges.len(), 1 + 3);
        for s in ["w", "x", "y"] {
            assert!(aug.nodes.contains(&v(s)), "{s} should be attached");
        }
        assert!(!aug.nodes.contains(&v("z")));
    }

    #[test]
    fn free_persistent_cycle_forms_its_own_bridge() {
        let (g, c) = setup("p(x,y,u,v) :- p(x,y,v,u), q(x,y).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        // x, y are link 1-persistent (they appear in q): their self-arcs
        // form the separator. The free 2-persistent cycle {u,v} is a bridge
        // of dynamic arcs; the q chord is its own bridge.
        assert_eq!(d.separator_edges().len(), 2);
        let bu = d.bridge_containing(v("u")).unwrap();
        assert_eq!(d.bridge_containing(v("x")), None);
        assert_eq!(d.bridges()[bu].edges.len(), 2);
        assert!(d.bridges()[bu]
            .edges
            .iter()
            .all(|e| matches!(e, EdgeRef::Dynamic(_))));
        assert_eq!(d.bridges().len(), 2);
    }

    #[test]
    fn example_6_1_cheap_is_a_chord_bridge() {
        let (g, c) = setup("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        // Separator: dyn(y→y). cheap(y→y) is a chord: its own bridge.
        assert_eq!(d.separator_edges().len(), 1);
        let cheap_bridge = d
            .bridges()
            .iter()
            .find(|b| b.edges.iter().any(|e| matches!(e, EdgeRef::Static(i) if g.static_arcs()[*i].pred == linrec_datalog::Symbol::new("cheap"))))
            .unwrap();
        assert_eq!(cheap_bridge.edges.len(), 1);
        // Its augmentation attaches y's self-loop.
        let idx = d.bridges().iter().position(|b| b.edges.len() == 1).unwrap();
        let aug = d.augmented(&g, idx);
        assert_eq!(aug.edges.len(), 2);
    }

    #[test]
    fn bridge_containing_isolated_var_is_none() {
        // z is free 1-persistent: its dynamic self-arc is NOT in the
        // separator (free, not link), so it forms a bridge of its own.
        let (g, c) = setup("p(x,z) :- p(y,z), e(x,y).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        let bz = d.bridge_containing(v("z"));
        assert!(bz.is_some());
        let b = &d.bridges()[bz.unwrap()];
        assert_eq!(b.edges.len(), 1);
        assert!(matches!(b.edges[0], EdgeRef::Dynamic(_)));
    }
}
