//! Rendering of α-graphs: Graphviz DOT and plain-text summaries.
//!
//! Static arcs are drawn thin/solid, dynamic arcs bold — the paper's
//! thin-line / thick-line convention for its Figures 1–9.

use crate::bridges::BridgeDecomposition;
use crate::classify::{Classification, PersistenceClass};
use crate::graph::AlphaGraph;
use std::fmt::Write as _;

fn class_label(c: PersistenceClass) -> String {
    match c {
        PersistenceClass::FreePersistent(n) => format!("free {n}-persistent"),
        PersistenceClass::LinkPersistent(n) => format!("link {n}-persistent"),
        PersistenceClass::General { ray: Some(n) } => format!("general, {n}-ray"),
        PersistenceClass::General { ray: None } => "general".to_owned(),
    }
}

/// Render the α-graph in Graphviz DOT format, annotating each node with its
/// persistence class.
pub fn to_dot(graph: &AlphaGraph, classes: &Classification) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph alpha {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for &v in graph.vars() {
        let label = match classes.class(v) {
            Some(c) => format!("{v}\\n{}", class_label(c)),
            None => format!("{v}\\n(nondistinguished)"),
        };
        let _ = writeln!(out, "  \"{v}\" [label=\"{label}\"];");
    }
    for a in graph.static_arcs() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\", penwidth=1];",
            a.from, a.to, a.pred
        );
    }
    for a in graph.dynamic_arcs() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [penwidth=3, color=black];",
            a.from, a.to
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// A plain-text summary: the rule, the per-variable classification, the
/// arcs, and (optionally) the bridges of a decomposition.
pub fn summary(
    graph: &AlphaGraph,
    classes: &Classification,
    bridges: Option<&BridgeDecomposition>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rule: {}", graph.rule());
    let _ = writeln!(out, "variables:");
    for (v, c) in classes.iter() {
        let _ = writeln!(out, "  {v:<4} {}", class_label(c));
    }
    let _ = writeln!(out, "static arcs:");
    for a in graph.static_arcs() {
        let _ = writeln!(out, "  {} -{}-> {}", a.from, a.pred, a.to);
    }
    let _ = writeln!(out, "dynamic arcs:");
    for a in graph.dynamic_arcs() {
        let _ = writeln!(out, "  {} ==> {}  (position {})", a.from, a.to, a.position);
    }
    if let Some(d) = bridges {
        let _ = writeln!(
            out,
            "bridges (separator: {} arcs):",
            d.separator_edges().len()
        );
        for (i, b) in d.bridges().iter().enumerate() {
            let mut nodes: Vec<&str> = b.nodes.iter().map(|v| v.name()).collect();
            nodes.sort();
            let _ = writeln!(
                out,
                "  bridge {i}: {} edges, nodes {{{}}}",
                b.edges.len(),
                nodes.join(", ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn setup(src: &str) -> (AlphaGraph, Classification) {
        let r = parse_linear_rule(src).unwrap();
        (
            AlphaGraph::new(&r).unwrap(),
            Classification::classify(&r).unwrap(),
        )
    }

    #[test]
    fn dot_mentions_every_variable_and_arc_style() {
        let (g, c) = setup("p(x,y) :- p(x,z), e(z,y).");
        let dot = to_dot(&g, &c);
        assert!(dot.contains("digraph alpha"));
        assert!(dot.contains("\"x\""));
        assert!(dot.contains("penwidth=3")); // dynamic
        assert!(dot.contains("label=\"e\"")); // static labelled by predicate
        assert!(dot.contains("free 1-persistent"));
    }

    #[test]
    fn summary_lists_classes_and_bridges() {
        let (g, c) = setup("p(u,w) :- p(u,u), r(w).");
        let d = BridgeDecomposition::wrt_link1(&g, &c);
        let s = summary(&g, &c, Some(&d));
        assert!(s.contains("link 1-persistent"));
        assert!(s.contains("bridge 0"));
        assert!(s.contains("==>"));
    }

    #[test]
    fn summary_marks_nondistinguished() {
        let (g, c) = setup("p(x) :- p(y), e(y,x).");
        let dot = to_dot(&g, &c);
        assert!(dot.contains("nondistinguished"));
    }
}
