//! A small union-find (disjoint-set) structure with path compression and
//! union by rank, used for the bridge decomposition (Lemma 5.3).

/// Disjoint sets over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `true` iff they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Group elements by representative, in first-seen order.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut index: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for x in 0..n {
            let r = self.find(x);
            let slot = *index.entry(r).or_insert_with(|| {
                out.push(Vec::new());
                out.len() - 1
            });
            out[slot].push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.groups().len(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.groups().len(), 3);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(2));
        let groups = uf.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3]);
    }

    #[test]
    fn empty_is_fine() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.groups().is_empty());
    }
}
