//! Classification of distinguished variables (paper, Section 5):
//!
//! * **n-persistent**: `x` lies on an `h`-cycle of length `n` consisting of
//!   distinguished variables (its positions in the antecedent's recursive
//!   atom are a permutation of its positions in the consequent);
//!   * **free** if no member of the cycle occurs anywhere else in the rule,
//!   * **link** otherwise;
//! * **general**: every other distinguished variable;
//! * **n-ray** (Section 6): a general variable whose `h`-chain reaches a
//!   link-persistent variable in `n` steps — equivalently, connected to a
//!   link-persistent variable through dynamic arcs alone.

use linrec_datalog::hash::{FastMap, FastSet};
use linrec_datalog::{LinearRule, RuleError, Var};

/// The persistence class of a distinguished variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistenceClass {
    /// On an `h`-cycle of length `n`, no cycle member occurs elsewhere.
    FreePersistent(usize),
    /// On an `h`-cycle of length `n`, some cycle member occurs elsewhere.
    LinkPersistent(usize),
    /// Not persistent; `ray` is `Some(n)` if the variable is `n`-ray.
    General {
        /// Shortest `h`-chain distance to a link-persistent variable.
        ray: Option<usize>,
    },
}

impl PersistenceClass {
    /// True iff `FreePersistent(1)`.
    pub fn is_free_one_persistent(self) -> bool {
        self == PersistenceClass::FreePersistent(1)
    }

    /// True iff `LinkPersistent(1)`.
    pub fn is_link_one_persistent(self) -> bool {
        self == PersistenceClass::LinkPersistent(1)
    }

    /// True iff persistent (free or link) of any cardinality.
    pub fn is_persistent(self) -> bool {
        matches!(
            self,
            PersistenceClass::FreePersistent(_) | PersistenceClass::LinkPersistent(_)
        )
    }

    /// The cycle length for persistent classes.
    pub fn persistence(self) -> Option<usize> {
        match self {
            PersistenceClass::FreePersistent(n) | PersistenceClass::LinkPersistent(n) => Some(n),
            PersistenceClass::General { .. } => None,
        }
    }
}

/// The classification of every distinguished variable of a rule.
#[derive(Debug, Clone)]
pub struct Classification {
    classes: FastMap<Var, PersistenceClass>,
    order: Vec<Var>,
}

impl Classification {
    /// Classify the distinguished variables of `rule`.
    ///
    /// Requires a constant-free rule with no repeated consequent variables
    /// (otherwise `h` is not a function).
    pub fn classify(rule: &LinearRule) -> Result<Classification, RuleError> {
        if !rule.is_constant_free() {
            return Err(RuleError::HasConstants);
        }
        if rule.has_repeated_head_vars() {
            let mut seen = FastSet::default();
            let var = rule
                .head_vars()
                .into_iter()
                .find(|&v| !seen.insert(v))
                .expect("repeated head var exists");
            return Err(RuleError::RepeatedHeadVars { var: var.name() });
        }

        let distinguished: FastSet<Var> = rule.distinguished();
        let occurrences = rule.occurrence_counts();
        let head_vars = rule.head_vars();

        // Persistence: follow h through distinguished variables, looking for
        // a cycle through the start variable.
        let mut classes: FastMap<Var, PersistenceClass> = FastMap::default();
        for &x in &head_vars {
            let mut y = x;
            let mut cycle = None;
            for n in 1..=head_vars.len() {
                match rule.h_var(y) {
                    Some(next) if distinguished.contains(&next) => {
                        if next == x {
                            cycle = Some(n);
                            break;
                        }
                        y = next;
                    }
                    _ => break, // nondistinguished or (impossible) undefined
                }
            }
            let class = match cycle {
                Some(n) => {
                    // Collect the cycle and check freeness: every member
                    // occurs exactly twice (once in the consequent, once in
                    // the recursive antecedent atom).
                    let mut members = Vec::with_capacity(n);
                    let mut m = x;
                    for _ in 0..n {
                        members.push(m);
                        m = rule.h_var(m).expect("cycle member");
                    }
                    let free = members.iter().all(|v| occurrences[v] == 2);
                    if free {
                        PersistenceClass::FreePersistent(n)
                    } else {
                        PersistenceClass::LinkPersistent(n)
                    }
                }
                None => PersistenceClass::General { ray: None },
            };
            classes.insert(x, class);
        }

        // Rays: follow h from each general variable through distinguished
        // variables until a link-persistent variable is met.
        let ray_targets: FastSet<Var> = classes
            .iter()
            .filter(|(_, c)| matches!(c, PersistenceClass::LinkPersistent(_)))
            .map(|(&v, _)| v)
            .collect();
        for &x in &head_vars {
            if !matches!(classes[&x], PersistenceClass::General { .. }) {
                continue;
            }
            let mut y = x;
            let mut ray = None;
            for n in 1..=head_vars.len() {
                match rule.h_var(y) {
                    Some(next) => {
                        if ray_targets.contains(&next) {
                            ray = Some(n);
                            break;
                        }
                        if !distinguished.contains(&next) {
                            break;
                        }
                        y = next;
                    }
                    None => break,
                }
            }
            classes.insert(x, PersistenceClass::General { ray });
        }

        Ok(Classification {
            classes,
            order: head_vars,
        })
    }

    /// The class of a distinguished variable.
    pub fn class(&self, v: Var) -> Option<PersistenceClass> {
        self.classes.get(&v).copied()
    }

    /// Iterate `(variable, class)` in consequent order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, PersistenceClass)> + '_ {
        self.order.iter().map(move |&v| (v, self.classes[&v]))
    }

    /// All link-persistent variables (any cardinality).
    pub fn link_persistent_vars(&self) -> Vec<Var> {
        self.order
            .iter()
            .copied()
            .filter(|&v| matches!(self.classes[&v], PersistenceClass::LinkPersistent(_)))
            .collect()
    }

    /// All link 1-persistent variables.
    pub fn link_one_persistent_vars(&self) -> Vec<Var> {
        self.order
            .iter()
            .copied()
            .filter(|&v| self.classes[&v].is_link_one_persistent())
            .collect()
    }

    /// All ray variables, with their ray length.
    pub fn ray_vars(&self) -> Vec<(Var, usize)> {
        self.order
            .iter()
            .filter_map(|&v| match self.classes[&v] {
                PersistenceClass::General { ray: Some(n) } => Some((v, n)),
                _ => None,
            })
            .collect()
    }

    /// The set `I` of Section 6: link-persistent ∪ ray variables.
    pub fn i_set(&self) -> FastSet<Var> {
        self.order
            .iter()
            .copied()
            .filter(|&v| match self.classes[&v] {
                PersistenceClass::LinkPersistent(_) => true,
                PersistenceClass::General { ray } => ray.is_some(),
                PersistenceClass::FreePersistent(_) => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn classify(src: &str) -> Classification {
        Classification::classify(&parse_linear_rule(src).unwrap()).unwrap()
    }

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn figure_1_classification() {
        // Reconstruction of Example 5.1 / Figure 1: z free 1-persistent,
        // w and y link 1-persistent, u and v free 2-persistent, x general
        // (h(x) is the nondistinguished s0, so x is not even a ray).
        let c = classify("p(w,x,y,z,u,v) :- p(w,s0,y,z,v,u), q(w,x), q2(x,y), r(y).");
        assert_eq!(c.class(v("z")), Some(PersistenceClass::FreePersistent(1)));
        assert_eq!(c.class(v("w")), Some(PersistenceClass::LinkPersistent(1)));
        assert_eq!(c.class(v("y")), Some(PersistenceClass::LinkPersistent(1)));
        assert_eq!(c.class(v("u")), Some(PersistenceClass::FreePersistent(2)));
        assert_eq!(c.class(v("v")), Some(PersistenceClass::FreePersistent(2)));
        assert_eq!(
            c.class(v("x")),
            Some(PersistenceClass::General { ray: None })
        );
    }

    #[test]
    fn figure_2_classification() {
        // P(u,w,x,y,z) :- P(u,u,u,y,y), Q(u,u,y), R(w), S(x), T(z):
        // u, y link 1-persistent; w, x, z general.
        let c = classify("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).");
        assert!(c.class(v("u")).unwrap().is_link_one_persistent());
        assert!(c.class(v("y")).unwrap().is_link_one_persistent());
        for g in ["w", "x", "z"] {
            assert!(matches!(
                c.class(v(g)),
                Some(PersistenceClass::General { .. })
            ));
        }
        assert_eq!(c.link_one_persistent_vars(), vec![v("u"), v("y")]);
    }

    #[test]
    fn transitive_closure_has_one_free_persistent_side() {
        // r1: p(x,y) :- p(x,z), q(z,y): x is free 1-persistent, y general.
        let c = classify("p(x,y) :- p(x,z), q(z,y).");
        assert!(c.class(v("x")).unwrap().is_free_one_persistent());
        assert_eq!(
            c.class(v("y")),
            Some(PersistenceClass::General { ray: None })
        );
    }

    #[test]
    fn example_6_1_link_and_general() {
        // buys(x,y) :- knows(x,z), buys(z,y), cheap(y): y link 1-persistent.
        let c = classify("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        assert!(c.class(v("y")).unwrap().is_link_one_persistent());
        assert_eq!(
            c.class(v("x")),
            Some(PersistenceClass::General { ray: None })
        );
    }

    #[test]
    fn example_6_2_rays() {
        // A: P(w,x,y,z) :- P(x,w,x,u), Q(x,u), R(x,y), S(u,z):
        // w,x link 2-persistent; y 1-ray; z general non-ray.
        let c = classify("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).");
        assert_eq!(c.class(v("w")), Some(PersistenceClass::LinkPersistent(2)));
        assert_eq!(c.class(v("x")), Some(PersistenceClass::LinkPersistent(2)));
        assert_eq!(
            c.class(v("y")),
            Some(PersistenceClass::General { ray: Some(1) })
        );
        assert_eq!(
            c.class(v("z")),
            Some(PersistenceClass::General { ray: None })
        );
        assert_eq!(c.ray_vars(), vec![(v("y"), 1)]);
        let i = c.i_set();
        assert_eq!(i.len(), 3);
        assert!(i.contains(&v("w")) && i.contains(&v("x")) && i.contains(&v("y")));
    }

    #[test]
    fn longer_rays() {
        // x link 1-persistent; y1 = 1-ray; y2 = 2-ray.
        let c = classify("p(x,y1,y2) :- p(x,x,y1), q(x), r(y2).");
        assert!(c.class(v("x")).unwrap().is_link_one_persistent());
        assert_eq!(
            c.class(v("y1")),
            Some(PersistenceClass::General { ray: Some(1) })
        );
        assert_eq!(
            c.class(v("y2")),
            Some(PersistenceClass::General { ray: Some(2) })
        );
    }

    #[test]
    fn free_persistent_cycles_are_not_ray_targets() {
        // x,y free 2-persistent; z's chain hits the free cycle: not a ray.
        let c = classify("p(x,y,z) :- p(y,x,x), q(z).");
        assert_eq!(c.class(v("x")), Some(PersistenceClass::LinkPersistent(2)));
        // x appears twice in the body-P atom (positions 2 and 3): link, and z
        // is a ray to it.
        assert_eq!(
            c.class(v("z")),
            Some(PersistenceClass::General { ray: Some(1) })
        );
    }

    #[test]
    fn truly_free_cycle_and_non_ray() {
        let c = classify("p(x,y,z) :- p(y,x,z), q(z).");
        assert_eq!(c.class(v("x")), Some(PersistenceClass::FreePersistent(2)));
        assert_eq!(c.class(v("y")), Some(PersistenceClass::FreePersistent(2)));
        // z: 1-persistent and appears in q: link 1-persistent.
        assert!(c.class(v("z")).unwrap().is_link_one_persistent());
    }

    #[test]
    fn three_cycle_persistence() {
        let c = classify("p(a,b,c) :- p(b,c,a).");
        for s in ["a", "b", "c"] {
            assert_eq!(c.class(v(s)), Some(PersistenceClass::FreePersistent(3)));
        }
    }

    #[test]
    fn rejects_unclassifiable_rules() {
        let with_const = parse_linear_rule("p(x) :- p(x), e(x,1).").unwrap();
        assert!(Classification::classify(&with_const).is_err());
    }
}
