//! The α-graph of a linear recursive rule (paper, Section 5).
//!
//! * one node per variable;
//! * a **static arc** `x → y` (labelled `Q`) for every pair of consecutive
//!   argument positions of a nonrecursive atom `Q`, and a static self-arc
//!   for unary atoms;
//! * a **dynamic arc** `x → y` whenever `x` and `y` occupy the same argument
//!   position of the recursive predicate in the antecedent and the
//!   consequent respectively (i.e. `x = h(y)`).

use linrec_datalog::hash::FastMap;
use linrec_datalog::{LinearRule, RuleError, Symbol, Var};

/// A static arc: consecutive argument positions of a nonrecursive atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticArc {
    /// Source variable.
    pub from: Var,
    /// Target variable.
    pub to: Var,
    /// Predicate label.
    pub pred: Symbol,
    /// Index of the atom in `rule.nonrec_atoms()`.
    pub atom: usize,
    /// Index of the first of the two consecutive positions (0 for unary).
    pub pos: usize,
}

/// A dynamic arc: antecedent-to-consequent flow at one recursive position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicArc {
    /// Source: the variable in the recursive *antecedent* atom.
    pub from: Var,
    /// Target: the variable in the consequent.
    pub to: Var,
    /// The shared argument position.
    pub position: usize,
}

/// Identifies an edge of the α-graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeRef {
    /// Index into [`AlphaGraph::static_arcs`].
    Static(usize),
    /// Index into [`AlphaGraph::dynamic_arcs`].
    Dynamic(usize),
}

/// The α-graph of a linear rule.
#[derive(Debug, Clone)]
pub struct AlphaGraph {
    rule: LinearRule,
    vars: Vec<Var>,
    static_arcs: Vec<StaticArc>,
    dynamic_arcs: Vec<DynamicArc>,
    atom_arcs: Vec<Vec<usize>>, // nonrec atom index -> its static arc indices
}

impl AlphaGraph {
    /// Build the α-graph of `rule`.
    ///
    /// Requires a constant-free rule with no repeated consequent variables
    /// (so that `h` is a function) and no zero-arity nonrecursive atoms.
    pub fn new(rule: &LinearRule) -> Result<AlphaGraph, RuleError> {
        if !rule.is_constant_free() {
            return Err(RuleError::HasConstants);
        }
        if rule.has_repeated_head_vars() {
            let mut seen = linrec_datalog::hash::FastSet::default();
            let var = rule
                .head_vars()
                .into_iter()
                .find(|&v| !seen.insert(v))
                .expect("repeated head var exists");
            return Err(RuleError::RepeatedHeadVars { var: var.name() });
        }

        let mut vars: Vec<Var> = Vec::new();
        let mut seen: FastMap<Var, ()> = FastMap::default();
        let mut note = |v: Var, vars: &mut Vec<Var>| {
            if seen.insert(v, ()).is_none() {
                vars.push(v);
            }
        };
        for v in rule.head().vars() {
            note(v, &mut vars);
        }
        for v in rule.rec_atom().vars() {
            note(v, &mut vars);
        }

        let mut static_arcs = Vec::new();
        let mut atom_arcs = Vec::with_capacity(rule.nonrec_atoms().len());
        for (ai, atom) in rule.nonrec_atoms().iter().enumerate() {
            if atom.arity() == 0 {
                return Err(RuleError::Parse(format!(
                    "zero-arity atom {atom} is not representable in an alpha-graph"
                )));
            }
            for v in atom.vars() {
                note(v, &mut vars);
            }
            let terms: Vec<Var> = atom.vars().collect();
            let mut arcs_of_atom = Vec::new();
            if terms.len() == 1 {
                arcs_of_atom.push(static_arcs.len());
                static_arcs.push(StaticArc {
                    from: terms[0],
                    to: terms[0],
                    pred: atom.pred,
                    atom: ai,
                    pos: 0,
                });
            } else {
                for w in 0..terms.len() - 1 {
                    arcs_of_atom.push(static_arcs.len());
                    static_arcs.push(StaticArc {
                        from: terms[w],
                        to: terms[w + 1],
                        pred: atom.pred,
                        atom: ai,
                        pos: w,
                    });
                }
            }
            atom_arcs.push(arcs_of_atom);
        }

        let mut dynamic_arcs = Vec::new();
        for (i, head_term) in rule.head().terms.iter().enumerate() {
            let to = head_term.as_var().expect("head checked constant-free");
            let from = rule.rec_atom().terms[i]
                .as_var()
                .expect("rule checked constant-free");
            dynamic_arcs.push(DynamicArc {
                from,
                to,
                position: i,
            });
        }

        Ok(AlphaGraph {
            rule: rule.clone(),
            vars,
            static_arcs,
            dynamic_arcs,
            atom_arcs,
        })
    }

    /// The underlying rule.
    pub fn rule(&self) -> &LinearRule {
        &self.rule
    }

    /// All variables (nodes), in first-occurrence order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Static arcs.
    pub fn static_arcs(&self) -> &[StaticArc] {
        &self.static_arcs
    }

    /// Dynamic arcs (one per argument position of the recursive predicate).
    pub fn dynamic_arcs(&self) -> &[DynamicArc] {
        &self.dynamic_arcs
    }

    /// The static arc indices contributed by nonrecursive atom `i`.
    pub fn arcs_of_atom(&self, i: usize) -> &[usize] {
        &self.atom_arcs[i]
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.static_arcs.len() + self.dynamic_arcs.len()
    }

    /// The two endpoints of an edge.
    pub fn endpoints(&self, e: EdgeRef) -> (Var, Var) {
        match e {
            EdgeRef::Static(i) => (self.static_arcs[i].from, self.static_arcs[i].to),
            EdgeRef::Dynamic(i) => (self.dynamic_arcs[i].from, self.dynamic_arcs[i].to),
        }
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.static_arcs.len())
            .map(EdgeRef::Static)
            .chain((0..self.dynamic_arcs.len()).map(EdgeRef::Dynamic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn graph(src: &str) -> AlphaGraph {
        AlphaGraph::new(&parse_linear_rule(src).unwrap()).unwrap()
    }

    #[test]
    fn figure_1_graph_shape() {
        // Example 5.1 / Figure 1:
        // P(x,y,z,u,v,w)... the paper's Figure-1 rule (reconstructed):
        // P(w,x,y,z,u,v) with z free 1-persistent, w,y link 1-persistent,
        // u,v free 2-persistent, x general. We use the rule:
        // p(w,x,y,z,u,v) :- p(w,s0,y,z,v,u), q(w,x), q2(x,y), r(y).
        let g = graph("p(w,x,y,z,u,v) :- p(w,s0,y,z,v,u), q(w,x), q2(x,y), r(y).");
        assert_eq!(g.dynamic_arcs().len(), 6);
        // q contributes 1 arc, q2 1 arc, r a self-loop.
        assert_eq!(g.static_arcs().len(), 3);
        let r_arc = g
            .static_arcs()
            .iter()
            .find(|a| a.pred == Symbol::new("r"))
            .unwrap();
        assert_eq!(r_arc.from, r_arc.to);
    }

    #[test]
    fn dynamic_arcs_follow_h() {
        let g = graph("p(x,y) :- p(y,z), e(z,y).");
        // position 0: body y -> head x; position 1: body z -> head y.
        assert_eq!(
            g.dynamic_arcs()[0],
            DynamicArc {
                from: Var::new("y"),
                to: Var::new("x"),
                position: 0
            }
        );
        assert_eq!(
            g.dynamic_arcs()[1],
            DynamicArc {
                from: Var::new("z"),
                to: Var::new("y"),
                position: 1
            }
        );
    }

    #[test]
    fn ternary_atom_contributes_two_arcs() {
        let g = graph("p(u,y) :- p(u,u), q(u,v,y).");
        assert_eq!(g.static_arcs().len(), 2);
        assert_eq!(g.arcs_of_atom(0), &[0, 1]);
    }

    #[test]
    fn rejects_constants_and_repeated_heads() {
        let with_const = parse_linear_rule("p(x,y) :- p(x,z), e(z,1).").unwrap();
        assert!(matches!(
            AlphaGraph::new(&with_const),
            Err(RuleError::HasConstants)
        ));
        let repeated = parse_linear_rule("p(x,x) :- p(x,y), e(y,x).").unwrap();
        assert!(matches!(
            AlphaGraph::new(&repeated),
            Err(RuleError::RepeatedHeadVars { .. })
        ));
    }

    #[test]
    fn rejects_zero_arity_atoms() {
        let r = parse_linear_rule("p(x) :- p(x), flag().").unwrap();
        assert!(AlphaGraph::new(&r).is_err());
    }

    #[test]
    fn nodes_cover_all_variables() {
        let g = graph("p(x,y) :- p(x,z), e(z,w), f(w,y).");
        let names: Vec<&str> = g.vars().iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["x", "y", "z", "w"]);
    }

    #[test]
    fn endpoints_and_edge_iteration() {
        let g = graph("p(x,y) :- p(x,z), e(z,y).");
        assert_eq!(g.num_edges(), 3);
        let edges: Vec<EdgeRef> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        let (a, b) = g.endpoints(EdgeRef::Static(0));
        assert_eq!((a.name(), b.name()), ("z", "y"));
    }
}
