//! Derivation graphs — the proof object of Theorem 3.1.
//!
//! The theorem models a computation of `T = AQ` as a labeled digraph: nodes
//! are the tuples of `T`, and there is an arc `t₁ → t₂` (labeled by an
//! operator) when applying the operator to `t₁` produces `t₂`; "the same
//! tuple is not derived through the same arc more than once". The number of
//! tuple derivations equals the sum of in-degrees `|E|`, so **duplicates =
//! |E| − (derived tuples)**, and removing operators (as the decomposition
//! `B*C*` does with the mixed `…CB…` terms) can only lower in-degrees.
//!
//! [`trace_star`] and [`trace_decomposed`] run the semi-naive computation
//! while materializing this graph, so Theorem 3.1's statement can be
//! checked *literally* (see the tests and `tests/strategies_agree.rs`).
//!
//! Note the measure is slightly coarser than [`crate::stats::EvalStats`]'s
//! `derivations`: the stats count every successful body match, while the
//! graph counts distinct arcs `(source tuple, rule, derived tuple)` — two
//! different EDB witnesses for the same arc coincide, exactly as in the
//! paper's set-of-arcs definition.

use crate::join::Indexes;
use linrec_datalog::hash::{FastMap, FastSet};
use linrec_datalog::{Atom, Database, LinearRule, Relation, Tuple};

/// The derivation graph of a fixpoint computation.
#[derive(Debug, Clone, Default)]
pub struct DerivationGraph {
    in_degree: FastMap<Tuple, u32>,
    seeds: FastSet<Tuple>,
    arcs: u64,
}

impl DerivationGraph {
    /// Number of arcs `|E|` (= tuple derivations in the theorem's model).
    pub fn arcs(&self) -> u64 {
        self.arcs
    }

    /// Number of derived (non-seed) tuples.
    pub fn derived_tuples(&self) -> usize {
        self.in_degree
            .keys()
            .filter(|t| !self.seeds.contains(*t))
            .count()
    }

    /// The theorem's duplicate count: `|E| −` derived tuples (arcs into
    /// seed nodes also only produce duplicates, so they count entirely).
    pub fn duplicates(&self) -> u64 {
        self.arcs - self.derived_tuples() as u64
    }

    /// In-degree of a tuple (0 for seeds never re-derived).
    pub fn in_degree(&self, t: &[linrec_datalog::Value]) -> u32 {
        self.in_degree.get(t).copied().unwrap_or(0)
    }

    /// The largest in-degree in the graph. A duplicate-free computation has
    /// maximum in-degree 1 (paper, discussion after Theorem 3.1).
    pub fn max_in_degree(&self) -> u32 {
        self.in_degree.values().copied().max().unwrap_or(0)
    }

    fn record_arcs(&mut self, pairs: &FastSet<(Tuple, Tuple)>) {
        for (_, dst) in pairs {
            *self.in_degree.entry(dst.clone()).or_insert(0) += 1;
            self.arcs += 1;
        }
    }
}

/// One semi-naive application that also reports the distinct
/// `(source, derived)` arcs. Implemented by evaluating the rule with an
/// extended head `(head, rec-atom)` and splitting the output.
fn apply_traced(
    rule: &LinearRule,
    scratch: &mut Database,
    delta: &Relation,
    indexes: &mut Indexes,
) -> FastSet<(Tuple, Tuple)> {
    let mut ext_terms = rule.head().terms.clone();
    ext_terms.extend(rule.rec_atom().terms.iter().copied());
    let ext_head = Atom::new("\u{b7}trace", ext_terms);
    // Flat rule with the extended head; the recursive atom is pointed at a
    // scratch relation holding the delta (the caller clones the database
    // once per fixpoint; only the delta changes between rounds, and it is
    // the leading atom, so the cached trailing indexes stay valid).
    let mut body = vec![Atom::new("\u{b7}delta", rule.rec_atom().terms.clone())];
    body.extend(rule.nonrec_atoms().iter().cloned());
    let flat = linrec_datalog::Rule::new(ext_head, body);
    scratch.set_relation("\u{b7}delta", delta.clone());
    let (ext, _) = crate::join::apply_flat(&flat, scratch, indexes);
    let arity = rule.arity();
    ext.iter()
        .map(|t| {
            (
                Tuple::from_slice(&t[arity..]),
                Tuple::from_slice(&t[..arity]),
            )
        })
        .collect()
}

/// Semi-naive `(Σ rules)* init` with derivation-graph tracing.
pub fn trace_star(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
) -> (Relation, DerivationGraph) {
    let mut graph = DerivationGraph::default();
    for t in init.iter() {
        graph.seeds.insert(Tuple::from_slice(t));
    }
    let mut indexes = Indexes::new();
    let mut scratch = db.clone();
    let mut total = init.clone();
    let mut delta = init.clone();
    while !delta.is_empty() {
        let mut next = Relation::new(total.arity());
        for rule in rules {
            let pairs = apply_traced(rule, &mut scratch, &delta, &mut indexes);
            graph.record_arcs(&pairs);
            for (_, dst) in pairs {
                if !total.contains(&dst) {
                    next.insert(dst);
                }
            }
        }
        total.union_in_place(&next);
        delta = next;
    }
    (total, graph)
}

/// Decomposed evaluation `Π (Σ group)*` with a single accumulated
/// derivation graph (later phases are seeded by earlier results, but only
/// the original `init` tuples count as seeds).
pub fn trace_decomposed(
    groups: &[Vec<LinearRule>],
    db: &Database,
    init: &Relation,
) -> (Relation, DerivationGraph) {
    let mut graph = DerivationGraph::default();
    for t in init.iter() {
        graph.seeds.insert(Tuple::from_slice(t));
    }
    let mut current = init.clone();
    let mut scratch = db.clone();
    for group in groups.iter().rev() {
        let mut indexes = Indexes::new();
        let mut delta = current.clone();
        while !delta.is_empty() {
            let mut next = Relation::new(current.arity());
            for rule in group {
                let pairs = apply_traced(rule, &mut scratch, &delta, &mut indexes);
                graph.record_arcs(&pairs);
                for (_, dst) in pairs {
                    if !current.contains(&dst) {
                        next.insert(dst);
                    }
                }
            }
            current.union_in_place(&next);
            delta = next;
        }
    }
    (current, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rules, workload};
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn chain_closure_is_duplicate_free() {
        let tc = parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
        let edges = workload::chain(10);
        let db = workload::graph_db("q", edges.clone());
        let (total, graph) = trace_star(std::slice::from_ref(&tc), &db, &edges);
        assert_eq!(total.len(), 55);
        // Every node has in-degree ≤ 1: the theorem's "no improvement
        // possible" case.
        assert_eq!(graph.max_in_degree(), 1);
        assert_eq!(graph.duplicates(), 0);
        assert_eq!(graph.arcs() as usize, graph.derived_tuples());
    }

    #[test]
    fn theorem_3_1_in_degrees_drop_under_decomposition() {
        let (up, down) = (rules::up_rule(), rules::down_rule());
        let (db, init) = workload::up_down(6, 7);
        let (direct, gd) = trace_star(&[up.clone(), down.clone()], &db, &init);
        let (dec, gc) = trace_decomposed(&[vec![up], vec![down]], &db, &init);
        assert_eq!(direct.sorted(), dec.sorted());
        // The decomposed graph is the direct graph minus arcs: fewer arcs,
        // fewer duplicates, same node set.
        assert!(gc.arcs() <= gd.arcs());
        assert!(gc.duplicates() <= gd.duplicates());
        assert!(gd.duplicates() > 0, "workload should exhibit duplicates");
    }

    #[test]
    fn traced_result_matches_untraced() {
        let (up, down) = (rules::up_rule(), rules::down_rule());
        let (db, init) = workload::up_down(5, 3);
        let (a, _) = crate::seminaive::seminaive_star(&[up.clone(), down.clone()], &db, &init);
        let (b, _) = trace_star(&[up, down], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn arc_semantics_collapse_multi_witness_matches() {
        // Two different z-witnesses for the same (src, dst) arc: stats
        // count 2 derivations, the graph counts 1 arc.
        let tc = parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
        let mut db = linrec_datalog::Database::new();
        db.set_relation("q", linrec_datalog::Relation::from_pairs([(1, 9), (2, 9)]));
        let init = {
            let mut r = linrec_datalog::Relation::new(2);
            // One source tuple whose z can be matched two ways? The rec
            // atom binds z, so we need two p-tuples... the arc collapse
            // shows with q(z,·) fan-in from one tuple: p(0,1) with
            // q(1,9): single path. Use a rule with a nondistinguished
            // join instead:
            r.insert(vec![
                linrec_datalog::Value::Int(0),
                linrec_datalog::Value::Int(1),
            ]);
            r
        };
        // p(x,y) :- p(x,w), r2(w,u), q2(u,y): two u-paths, same (src,dst).
        let rule = parse_linear_rule("p(x,y) :- p(x,w), r2(w,u), q2(u,y).").unwrap();
        db.set_relation("r2", linrec_datalog::Relation::from_pairs([(1, 5), (1, 6)]));
        db.set_relation("q2", linrec_datalog::Relation::from_pairs([(5, 7), (6, 7)]));
        let (_, stats) = crate::seminaive::seminaive_star(std::slice::from_ref(&rule), &db, &init);
        let (_, graph) = trace_star(std::slice::from_ref(&rule), &db, &init);
        assert_eq!(stats.derivations, 2, "two body matches");
        assert_eq!(graph.arcs(), 1, "one arc (t1 -> t2)");
        assert_eq!(graph.duplicates(), 0);
        let _ = tc;
    }

    #[test]
    fn seed_rederivation_counts_as_duplicate() {
        // A cycle re-derives the seed tuples: arcs into seeds are pure
        // duplicates.
        let tc = parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
        let edges = workload::cycle(4);
        let db = workload::graph_db("q", edges.clone());
        let (total, graph) = trace_star(std::slice::from_ref(&tc), &db, &edges);
        assert_eq!(total.len(), 16);
        assert!(graph.duplicates() > 0);
        assert_eq!(
            graph.arcs(),
            graph.derived_tuples() as u64 + graph.duplicates()
        );
    }
}
