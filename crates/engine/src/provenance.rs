//! Provenance: why is a tuple in the answer?
//!
//! The paper's §3.2 observes that commutativity is a *proof-tree
//! transformation* (after Ramakrishnan–Sagiv–Ullman–Vardi \[19\]): a
//! derivation of a tuple in `(B+C)*q` is a sequence of operator
//! applications rooted at a seed tuple, and commuting adjacent applications
//! reorders the sequence without changing the result. This module records,
//! for every derived tuple, its *first* derivation (parent tuple + rule
//! index), from which the whole application sequence can be read back —
//! and shows that for commuting rules an equivalent canonical-order
//! derivation exists.

use crate::join::Indexes;
use linrec_datalog::hash::FastMap;
use linrec_datalog::{Atom, Database, LinearRule, Relation, Tuple};

/// One step of a derivation: the rule applied and the parent tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Index of the applied rule.
    pub rule: usize,
    /// The recursive-atom tuple the rule was applied to.
    pub parent: Tuple,
}

/// First-derivation provenance for a fixpoint computation.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    first: FastMap<Tuple, Step>,
}

impl Provenance {
    /// The first recorded derivation step for `t` (`None` for seeds).
    pub fn step(&self, t: &[linrec_datalog::Value]) -> Option<&Step> {
        self.first.get(t)
    }

    /// The full derivation of `t`: the sequence of `(rule, parent)` steps
    /// from a seed tuple to `t`, seed first. Empty for seeds; `None` for
    /// tuples that were never derived.
    pub fn derivation(&self, t: &[linrec_datalog::Value], seeds: &Relation) -> Option<Vec<Step>> {
        if seeds.contains(t) && !self.first.contains_key(t) {
            return Some(Vec::new());
        }
        let mut steps = Vec::new();
        let mut cur = Tuple::from_slice(t);
        loop {
            match self.first.get(cur.as_slice()) {
                Some(step) => {
                    steps.push(step.clone());
                    cur = step.parent.clone();
                    if seeds.contains(&cur) && !self.first.contains_key(cur.as_slice()) {
                        break;
                    }
                    if steps.len() > self.first.len() + 1 {
                        return None; // cycle guard (cannot happen: first
                                     // derivations are acyclic by rounds)
                    }
                }
                None => return None,
            }
        }
        steps.reverse();
        Some(steps)
    }

    /// The multiset of rule indices along `t`'s derivation.
    pub fn rule_sequence(
        &self,
        t: &[linrec_datalog::Value],
        seeds: &Relation,
    ) -> Option<Vec<usize>> {
        self.derivation(t, seeds)
            .map(|steps| steps.iter().map(|s| s.rule).collect())
    }

    /// Render a derivation for humans.
    pub fn explain(
        &self,
        t: &[linrec_datalog::Value],
        seeds: &Relation,
        rules: &[LinearRule],
    ) -> Option<String> {
        let steps = self.derivation(t, seeds)?;
        let mut out = String::new();
        use std::fmt::Write as _;
        if steps.is_empty() {
            let _ = writeln!(out, "{t:?} is a seed tuple");
            return Some(out);
        }
        let _ = writeln!(out, "seed {:?}", steps[0].parent);
        for s in &steps {
            let _ = writeln!(out, "  --[rule {}: {}]-->", s.rule, rules[s.rule]);
        }
        let _ = writeln!(out, "  {t:?}");
        Some(out)
    }
}

/// Semi-naive evaluation recording first-derivation provenance.
pub fn eval_with_provenance(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
) -> (Relation, Provenance) {
    let mut prov = Provenance::default();
    let mut indexes = Indexes::new();
    let mut scratch = db.clone();
    let mut total = init.clone();
    let mut delta = init.clone();
    while !delta.is_empty() {
        let mut next = Relation::new(total.arity());
        for (ri, rule) in rules.iter().enumerate() {
            // Extended-head application: emit (derived, parent) pairs.
            let mut ext_terms = rule.head().terms.clone();
            ext_terms.extend(rule.rec_atom().terms.iter().copied());
            let mut body = vec![Atom::new("\u{b7}pdelta", rule.rec_atom().terms.clone())];
            body.extend(rule.nonrec_atoms().iter().cloned());
            let flat = linrec_datalog::Rule::new(Atom::new("\u{b7}ptrace", ext_terms), body);
            scratch.set_relation("\u{b7}pdelta", delta.clone());
            let (ext, _) = crate::join::apply_flat(&flat, &scratch, &mut indexes);
            let arity = rule.arity();
            for row in ext.iter() {
                let derived = Tuple::from_slice(&row[..arity]);
                let parent = Tuple::from_slice(&row[arity..]);
                if !total.contains(&derived) && !next.contains(&derived) {
                    prov.first
                        .insert(derived.clone(), Step { rule: ri, parent });
                    next.insert(derived);
                }
            }
        }
        total.union_in_place(&next);
        delta = next;
    }
    (total, prov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rules, workload};
    use linrec_datalog::Value;

    fn int_pair(a: i64, b: i64) -> Tuple {
        Tuple::from_slice(&[Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn derivations_lead_back_to_seeds() {
        let (db, init) = workload::up_down(4, 3);
        let rs = [rules::down_rule(), rules::up_rule()];
        let (total, prov) = eval_with_provenance(&rs, &db, &init);
        for t in total.iter() {
            let steps = prov
                .derivation(t, &init)
                .unwrap_or_else(|| panic!("no derivation for {t:?}"));
            // Each step's parent differs from the derived tuple by one rule
            // application; the chain starts at a seed.
            match steps.first() {
                Some(first) => assert!(init.contains(&first.parent)),
                None => assert!(init.contains(t)),
            }
        }
    }

    #[test]
    fn explain_is_readable() {
        let mut db = linrec_datalog::Database::new();
        db.set_relation("q", Relation::from_pairs([(1, 2), (2, 3)]));
        let tc = linrec_datalog::parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
        let init = Relation::from_pairs([(0, 1)]);
        let (total, prov) = eval_with_provenance(std::slice::from_ref(&tc), &db, &init);
        assert!(total.contains(&int_pair(0, 3)));
        let text = prov
            .explain(&int_pair(0, 3), &init, std::slice::from_ref(&tc))
            .unwrap();
        assert!(text.contains("seed"));
        assert!(text.contains("rule 0"));
        let seq = prov.rule_sequence(&int_pair(0, 3), &init).unwrap();
        assert_eq!(seq, vec![0, 0]);
    }

    #[test]
    fn commuting_rules_admit_canonical_order_derivations() {
        // §3.2: commutativity as a proof-tree transformation. For commuting
        // up/down rules, re-deriving with the decomposed strategy (canonical
        // all-up-then-all-down order) reaches every tuple; its provenance
        // sequences are sorted (no down before up... i.e. nondecreasing
        // rule index given groups [down], [up] applied up-first).
        let (db, init) = workload::up_down(5, 8);
        let rs = [rules::down_rule(), rules::up_rule()];
        let (mixed, _) = eval_with_provenance(&rs, &db, &init);

        // Canonical order: up* first, then down*.
        let (after_up, prov_up) = eval_with_provenance(std::slice::from_ref(&rs[1]), &db, &init);
        let (full, prov_down) = eval_with_provenance(std::slice::from_ref(&rs[0]), &db, &after_up);
        assert_eq!(mixed.sorted(), full.sorted());

        // Every tuple has a derivation that is all-up then all-down.
        for t in full.iter() {
            let tail = prov_down.derivation(t, &after_up).unwrap();
            let mid: Tuple = match tail.first() {
                Some(s) => s.parent.clone(),
                None => Tuple::from_slice(t),
            };
            let head = prov_up.derivation(&mid, &init).unwrap();
            // head uses only rule "up", tail only rule "down".
            assert!(head.iter().all(|s| s.rule == 0)); // index within its call
            assert!(tail.iter().all(|s| s.rule == 0));
        }
    }

    #[test]
    fn seed_tuples_have_empty_derivations() {
        let (db, init) = workload::up_down(3, 2);
        let rs = [rules::down_rule(), rules::up_rule()];
        let (_, prov) = eval_with_provenance(&rs, &db, &init);
        for t in init.iter() {
            // A seed may have been re-derived; derivation is then nonempty
            // but must still ground out. Only check the pure-seed case.
            if prov.step(t).is_none() {
                assert_eq!(prov.derivation(t, &init).unwrap(), Vec::<Step>::new());
            }
        }
    }

    #[test]
    fn unknown_tuples_have_no_derivation() {
        let (db, init) = workload::up_down(3, 2);
        let rs = [rules::down_rule(), rules::up_rule()];
        let (_, prov) = eval_with_provenance(&rs, &db, &init);
        assert!(prov.derivation(&int_pair(-5, -6), &init).is_none());
    }
}
