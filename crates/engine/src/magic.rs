//! Frontier ("magic") evaluation of `σA* q` (the first loop of the
//! separable algorithm, Algorithm 4.1).
//!
//! The separable algorithm's first loop "involves manipulating relations
//! that are parameters of the various operators": instead of computing
//! `A* q` and selecting afterwards, the selection constants are propagated
//! *down* the recursion through the parameter relations. This module
//! implements that propagation for a single linear rule:
//!
//! 1. **Binding closure**: starting from the selected head positions, every
//!    nonrecursive atom sharing a bound variable binds all its variables.
//!    The rule is *magic-applicable* if the closure binds the recursive
//!    atom's variables at the same positions.
//! 2. **Magic fixpoint**: `mag ⊇ σ-seed`,
//!    `mag(rec_S) :- mag(head_S) ∧ (bound nonrecursive atoms)` — the set of
//!    relevant binding values, computed with a frontier.
//! 3. **Filtered ascent**: semi-naive evaluation of `A` seeded with
//!    `{t ∈ q | t_S ∈ mag}`, keeping only tuples whose selected columns
//!    stay in `mag`; finally apply `σ`.
//!
//! When the rule is not magic-applicable the caller falls back to
//! select-after-star.

use crate::join::{apply_flat, apply_linear, Indexes};
use crate::selection::Selection;
use crate::stats::EvalStats;
use linrec_datalog::hash::FastSet;
use linrec_datalog::{Atom, Database, LinearRule, Relation, Rule, Symbol, Tuple, Var};

/// The sorted selected positions of a selection.
fn sorted_positions(sel: &Selection) -> Vec<usize> {
    let mut p = sel.positions();
    p.sort_unstable();
    p.dedup();
    p
}

/// The nonrecursive atoms reachable from the given seed variables by
/// shared-variable chaining, in discovery order, together with the final
/// bound-variable set.
fn binding_closure(rule: &LinearRule, seed: &FastSet<Var>) -> (Vec<Atom>, FastSet<Var>) {
    let mut bound = seed.clone();
    let mut used = vec![false; rule.nonrec_atoms().len()];
    let mut chain = Vec::new();
    loop {
        let mut progressed = false;
        for (i, atom) in rule.nonrec_atoms().iter().enumerate() {
            if used[i] {
                continue;
            }
            if atom.vars().any(|v| bound.contains(&v)) {
                used[i] = true;
                chain.push(atom.clone());
                for v in atom.vars() {
                    bound.insert(v);
                }
                progressed = true;
            }
        }
        if !progressed {
            return (chain, bound);
        }
    }
}

/// Can the selection's bindings be pushed through `rule`'s recursion?
/// True iff the binding closure from the selected head positions binds the
/// recursive atom's variables at those same positions.
pub fn magic_applicable(rule: &LinearRule, sel: &Selection) -> bool {
    if rule.has_repeated_head_vars() {
        return false;
    }
    let positions = sorted_positions(sel);
    if positions.iter().any(|&p| p >= rule.arity()) {
        return false;
    }
    let seed: FastSet<Var> = positions
        .iter()
        .filter_map(|&p| rule.head().terms[p].as_var())
        .collect();
    let (_, bound) = binding_closure(rule, &seed);
    positions
        .iter()
        .all(|&p| match rule.rec_atom().terms[p].as_var() {
            Some(v) => bound.contains(&v),
            None => true, // a constant is trivially bound
        })
}

const MAGIC_PRED: &str = "\u{b7}mag";
const MAGIC_DELTA_PRED: &str = "\u{b7}mag\u{394}";

/// Compute `σ A* q` with selection push-down. Returns the result relation
/// and statistics; the derivation counts include the magic phase.
///
/// # Panics
/// If `!magic_applicable(rule, sel)` — callers must check (the planner's
/// separable node falls back to select-after-star automatically).
pub fn eval_selected_star(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    sel: &Selection,
) -> (Relation, EvalStats) {
    assert!(
        magic_applicable(rule, sel),
        "selection cannot be pushed through {rule}; use select-after-star"
    );
    let mut stats = EvalStats::default();
    let positions = sorted_positions(sel);

    // --- Phase 1: magic fixpoint over the parameter relations. ---
    let head_s_vars: Vec<Var> = positions
        .iter()
        .map(|&p| rule.head().terms[p].as_var().expect("checked"))
        .collect();
    let seed_set: FastSet<Var> = head_s_vars.iter().copied().collect();
    let (chain, _) = binding_closure(rule, &seed_set);
    let magic_rule = Rule::new(
        Atom::new(
            MAGIC_PRED,
            positions
                .iter()
                .map(|&p| rule.rec_atom().terms[p])
                .collect(),
        ),
        {
            let mut body = Vec::with_capacity(1 + chain.len());
            body.push(Atom::from_vars(MAGIC_DELTA_PRED, &head_s_vars));
            body.extend(chain);
            body
        },
    );

    let seed: Tuple = {
        // Values in sorted-position order.
        let mut pairs: Vec<(usize, linrec_datalog::Value)> = sel.bindings().to_vec();
        pairs.sort_by_key(|&(p, _)| p);
        pairs.dedup_by_key(|&mut (p, _)| p);
        pairs.into_iter().map(|(_, v)| v).collect()
    };
    let mut mag = Relation::new(positions.len());
    mag.insert(seed.clone());
    let mut mag_delta = mag.clone();
    let mut magic_db = db.clone();
    let mut magic_indexes = Indexes::new();
    while !mag_delta.is_empty() {
        stats.iterations += 1;
        magic_db.set_relation(MAGIC_DELTA_PRED, mag_delta.clone());
        // The delta is the *leading* body atom, which is always scanned, so
        // the cached EDB indexes stay valid across rounds.
        let (derived, count) = apply_flat(&magic_rule, &magic_db, &mut magic_indexes);
        let mut next = Relation::new(positions.len());
        let mut new = 0u64;
        for t in derived.iter() {
            if !mag.contains(t) && next.insert(t) {
                new += 1;
            }
        }
        stats.record(count, new);
        mag.union_in_place(&next);
        mag_delta = next;
    }

    // --- Phase 2: filtered semi-naive ascent. ---
    let project =
        |t: &[linrec_datalog::Value]| -> Tuple { positions.iter().map(|&p| t[p]).collect() };
    let mut total = Relation::new(rule.arity());
    for t in init.iter() {
        if mag.contains(&project(t)) {
            total.insert(t);
        }
    }
    let mut delta = total.clone();
    let mut indexes = Indexes::new();
    while !delta.is_empty() {
        stats.iterations += 1;
        let (derived, count) = apply_linear(rule, db, &delta, &mut indexes);
        let mut next = Relation::new(rule.arity());
        let mut new = 0u64;
        for t in derived.iter() {
            if mag.contains(&project(t)) && !total.contains(t) && next.insert(t) {
                new += 1;
            }
        }
        stats.record(count, new);
        total.union_in_place(&next);
        delta = next;
    }

    let result = sel.apply(&total);
    stats.tuples = result.len();
    (result, stats)
}

/// Expose the magic predicate names for tests and diagnostics.
pub fn magic_pred() -> Symbol {
    Symbol::new(MAGIC_PRED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::seminaive_star;
    use linrec_datalog::parse_linear_rule;

    fn left_rule() -> LinearRule {
        // Expands the source column: p(x,y) :- p(w,y), up(x,w).
        parse_linear_rule("p(x,y) :- p(w,y), up(x,w).").unwrap()
    }

    #[test]
    fn applicability() {
        let r = left_rule();
        // Selecting x: x's binding flows through up(x,w) to w = rec pos 0.
        assert!(magic_applicable(&r, &Selection::eq(0, 1)));
        // Selecting y: y is persistent at position 1: bound trivially.
        assert!(magic_applicable(&r, &Selection::eq(1, 1)));
        // Right-expanding rule, selecting the moving column:
        let right = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert!(magic_applicable(&right, &Selection::eq(1, 1)));
        // Unbindable: h(y) = z appears in no nonrecursive atom.
        let blind = parse_linear_rule("p(x,y) :- p(x,z), e(x,y).").unwrap();
        assert!(!magic_applicable(&blind, &Selection::eq(1, 1)));
    }

    #[test]
    fn selected_star_equals_select_after_star() {
        let r = left_rule();
        let mut db = Database::new();
        db.set_relation(
            "up",
            Relation::from_pairs([(0, 1), (1, 2), (2, 3), (5, 6), (6, 7)]),
        );
        let init = Relation::from_pairs([(3, 30), (7, 70), (1, 10)]);
        let sel = Selection::eq(0, 0);
        let (fast, _) = eval_selected_star(&r, &db, &init, &sel);
        let (full, _) = seminaive_star(std::slice::from_ref(&r), &db, &init);
        let slow = sel.apply(&full);
        assert_eq!(fast.sorted(), slow.sorted());
        assert!(!fast.is_empty());
    }

    #[test]
    fn magic_touches_fewer_tuples() {
        // Long chain; selection on one source: the magic evaluation must
        // derive far fewer tuples than the full star.
        let r = left_rule();
        let mut db = Database::new();
        db.set_relation("up", (0..200).map(|i| (i, i + 1)).collect::<Relation>());
        let init = Relation::from_pairs([(200, 0)]);
        let sel = Selection::eq(0, 199);
        let (fast, fast_stats) = eval_selected_star(&r, &db, &init, &sel);
        let (full, full_stats) = seminaive_star(std::slice::from_ref(&r), &db, &init);
        assert_eq!(fast.sorted(), sel.apply(&full).sorted());
        assert!(
            fast_stats.derivations < full_stats.derivations / 10,
            "magic {} vs full {}",
            fast_stats.derivations,
            full_stats.derivations
        );
    }

    #[test]
    fn empty_selection_result() {
        let r = left_rule();
        let mut db = Database::new();
        db.set_relation("up", Relation::from_pairs([(0, 1)]));
        let init = Relation::from_pairs([(1, 5)]);
        let sel = Selection::eq(0, 42); // 42 reaches nothing
        let (res, _) = eval_selected_star(&r, &db, &init, &sel);
        assert!(res.is_empty());
    }

    #[test]
    #[should_panic(expected = "select-after-star")]
    fn inapplicable_selection_panics() {
        let blind = parse_linear_rule("p(x,y) :- p(x,z), e(x,y).").unwrap();
        let db = Database::new();
        let init = Relation::new(2);
        eval_selected_star(&blind, &db, &init, &Selection::eq(1, 1));
    }
}
