//! The certificate-carrying planner: `Analysis → Plan → Execution`.
//!
//! This module is the single entry point for evaluating a linear recursion.
//! It replaces the six free `eval_*` functions (now deprecated wrappers in
//! [`crate::strategies`]) with a three-stage pipeline:
//!
//! 1. **[`Analysis`]** runs the paper's tests over a rule set (and optional
//!    [`Selection`]) and collects *typed certificates* from `linrec-core`:
//!    [`BoundednessCert`], [`CommutativityCert`], [`SeparabilityCert`],
//!    [`RedundancyCert`].
//! 2. **[`Plan`]** is a composable strategy tree. The specialized nodes —
//!    `Decomposed`, `Separable`, `RedundancyBounded`, `BoundedPrefix` —
//!    can **only** be built from the corresponding certificate, so an
//!    unlicensed plan is unrepresentable; `Direct`, `Naive` and
//!    `SelectAfter` need no premise and are always available.
//! 3. **[`Plan::execute`]** runs the tree over a database and seed
//!    relation, returning an [`ExecOutcome`] with the result relation, the
//!    paper's duplicate/derivation statistics, and a per-phase trace. One
//!    scan/index cache is shared by every phase of the tree.
//!
//! # Choosing among licensed plans
//!
//! Two selectors are provided. [`Analysis::plan`] uses the paper's fixed
//! preference order (bounded, then separable, then decomposed, then
//! redundancy-bounded, then direct) and needs no data — useful for
//! inspection and for showcasing a certificate.
//! [`Analysis::plan_for`] additionally takes the concrete
//! database and seed relation and ranks the licensed candidates with a
//! [`CostModel`]: boundedness and separability keep their fixed priority
//! (provably minimal applications, and selection push-down, respectively),
//! while `Decomposed`, `RedundancyBounded`, and `Direct` compete on
//! estimated cost — so a certificate is exploited only where the data says
//! it pays (a redundancy certificate that *loses* wall-clock on a small
//! dense database no longer gets picked). The decision and both estimates
//! are recorded in the chosen plan's [`Plan::rationale`].
//!
//! ```
//! use linrec_engine::{planner::Analysis, workload, rules};
//!
//! let (db, init) = workload::up_down(5, 42);
//! let analysis = Analysis::of(&[rules::up_rule(), rules::down_rule()], None);
//! let plan = analysis.plan();          // picks Decomposed, certificate-backed
//! let outcome = plan.execute(&db, &init).unwrap();
//! assert!(plan.rationale().contains("Theorem 3.1"));
//! assert_eq!(outcome.relation.len(), outcome.stats.tuples);
//! ```

use crate::decision::{CandidateEstimate, DenseVerdict, ParallelVerdict, PlanDecision};
use crate::dense;
use crate::join::Indexes;
use crate::magic::{eval_selected_star, magic_applicable};
use crate::parallel::Parallelism;
use crate::selection::Selection;
use crate::seminaive::{
    bounded_prefix_in, exact_power_in, naive_star, seminaive_star_in, seminaive_star_par_in,
};
use crate::stats::EvalStats;
use linrec_core::{BoundednessCert, CommutativityCert, RedundancyCert, SeparabilityCert};
use linrec_datalog::hash::{FastMap, FastSet};
use linrec_datalog::{Database, LinearRule, Relation, RuleError, Symbol, Term, Var};

/// Errors from plan construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// The selection does not commute with the operator that must absorb it
    /// (Theorem 4.1's selection premise).
    SelectionDoesNotCommute,
    /// A strategy was requested without the certificate that licenses it.
    MissingCertificate(String),
    /// Underlying rule manipulation failed.
    Rule(RuleError),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::SelectionDoesNotCommute => {
                write!(f, "selection does not commute with the outer operator")
            }
            StrategyError::MissingCertificate(what) => {
                write!(f, "no certificate licenses the strategy: {what}")
            }
            StrategyError::Rule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StrategyError {}

impl From<RuleError> for StrategyError {
    fn from(e: RuleError) -> StrategyError {
        StrategyError::Rule(e)
    }
}

// --- analysis -------------------------------------------------------------

/// Search-depth knobs for [`Analysis`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisEffort {
    /// Bound for power searches (uniform boundedness, torsion,
    /// redundancy): `Bⁿ` is explored for `n ≤ max_power`.
    pub max_power: usize,
    /// Exponent bound for two-operator semi-commutation certificates
    /// (`CB ≤ BᵏCˡ`); `0` disables the search.
    pub semi_exp: usize,
}

impl Default for AnalysisEffort {
    fn default() -> AnalysisEffort {
        AnalysisEffort {
            max_power: 8,
            semi_exp: 0,
        }
    }
}

/// The certificates the paper's analyses produced for one rule set (and
/// optional selection). Feed it to [`Analysis::plan`] to pick a strategy,
/// or inspect the individual certificates (e.g. `linrec analyze`).
#[derive(Debug, Clone)]
pub struct Analysis {
    rules: Vec<LinearRule>,
    selection: Option<Selection>,
    boundedness: Option<BoundednessCert>,
    commutativity: Option<CommutativityCert>,
    redundancy: Option<RedundancyCert>,
    /// `(outer, inner, cert)` candidates for the separable algorithm, in
    /// preference order; only populated when a selection is present.
    separability: Vec<(usize, usize, SeparabilityCert)>,
    notes: Vec<String>,
}

impl Analysis {
    /// Analyze `rules` under an optional selection with default effort.
    pub fn of(rules: &[LinearRule], selection: Option<&Selection>) -> Analysis {
        Analysis::with_effort(rules, selection, AnalysisEffort::default())
    }

    /// Analyze with explicit search bounds.
    pub fn with_effort(
        rules: &[LinearRule],
        selection: Option<&Selection>,
        effort: AnalysisEffort,
    ) -> Analysis {
        let mut analysis = Analysis {
            rules: rules.to_vec(),
            selection: selection.cloned(),
            boundedness: None,
            commutativity: None,
            redundancy: None,
            separability: Vec::new(),
            notes: Vec::new(),
        };

        if rules.len() == 1 {
            match BoundednessCert::establish(&rules[0], effort.max_power) {
                Ok(cert) => analysis.boundedness = cert,
                Err(e) => analysis
                    .notes
                    .push(format!("boundedness search failed: {e}")),
            }
            if analysis.boundedness.is_none() {
                match RedundancyCert::establish_any(&rules[0], effort.max_power) {
                    Ok(cert) => analysis.redundancy = cert,
                    Err(e) => analysis
                        .notes
                        .push(format!("redundancy search failed: {e}")),
                }
            }
        }

        if rules.len() > 1 {
            match CommutativityCert::establish(rules, effort.semi_exp) {
                Ok(cert) => analysis.commutativity = cert,
                Err(e) => analysis
                    .notes
                    .push(format!("commutativity analysis failed: {e}")),
            }
        }

        if let (Some(sel), 2) = (selection, rules.len()) {
            for (outer, inner) in [(0usize, 1usize), (1, 0)] {
                if !sel.commutes_with(&rules[outer]) {
                    continue;
                }
                match SeparabilityCert::establish(&rules[outer], &rules[inner]) {
                    Ok(Some(cert)) => analysis.separability.push((outer, inner, cert)),
                    Ok(None) => {}
                    Err(e) => analysis.notes.push(format!(
                        "separability analysis ({outer},{inner}) failed: {e}"
                    )),
                }
            }
        }

        analysis
    }

    /// The analyzed rules.
    pub fn rules(&self) -> &[LinearRule] {
        &self.rules
    }

    /// The selection the analysis was made for, if any.
    pub fn selection(&self) -> Option<&Selection> {
        self.selection.as_ref()
    }

    /// Uniform-boundedness certificate (single-rule sets only).
    pub fn boundedness(&self) -> Option<&BoundednessCert> {
        self.boundedness.as_ref()
    }

    /// Cluster-decomposition certificate (multi-rule sets only).
    pub fn commutativity(&self) -> Option<&CommutativityCert> {
        self.commutativity.as_ref()
    }

    /// Recursive-redundancy certificate (single-rule sets only).
    pub fn redundancy(&self) -> Option<&RedundancyCert> {
        self.redundancy.as_ref()
    }

    /// Separable-algorithm candidates `(outer, inner, cert)`.
    pub fn separability(&self) -> &[(usize, usize, SeparabilityCert)] {
        &self.separability
    }

    /// Diagnostics from analyses that errored (rather than merely failing
    /// to find a certificate).
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// True iff no specialized strategy is licensed.
    pub fn has_no_certificates(&self) -> bool {
        self.boundedness.is_none()
            && self.commutativity.is_none()
            && self.redundancy.is_none()
            && self.separability.is_empty()
    }

    /// Pick the best licensed strategy, mirroring the paper's preference
    /// order: exhaust a bounded recursion, run the separable algorithm for
    /// selections, decompose commuting clusters, bound a redundant factor,
    /// and fall back to semi-naive over the rule sum.
    pub fn plan(&self) -> Plan {
        if let Some(cert) = &self.boundedness {
            return self.wrap_selection(Plan::bounded_prefix(cert.clone()));
        }
        if let Some(sel) = &self.selection {
            // Candidates were collected only for outers the selection
            // commutes with, so the constructor's premise check holds.
            if let Some((_, _, cert)) = self.separability.first() {
                if let Ok(plan) = Plan::separable(cert.clone(), sel.clone()) {
                    return plan;
                }
            }
        }
        if let Some(cert) = &self.commutativity {
            return self.wrap_selection(Plan::decomposed(cert.clone()));
        }
        if let Some(cert) = &self.redundancy {
            return self.wrap_selection(Plan::redundancy_bounded(cert.clone()));
        }
        let mut plan = Plan::direct(self.rules.clone());
        plan.rationale =
            "no decomposition certificate found: semi-naive on the rule sum".to_owned();
        self.wrap_selection(plan)
    }

    /// Pick the cheapest licensed plan for a *concrete* database and seed,
    /// using the default [`CostModel`]. Unlike [`Analysis::plan`], which
    /// ranks strategies by the paper's fixed preference order, this method
    /// estimates each licensed candidate from relation cardinalities and
    /// picks the minimum — so a certificate is used only when it is
    /// predicted to pay off on the data at hand.
    pub fn plan_for(&self, db: &Database, init: &Relation) -> Plan {
        self.plan_with(db, init, &CostModel::default())
    }

    /// [`Analysis::plan_for`] with an explicit cost model.
    ///
    /// The decision rule: a boundedness certificate always wins (provably
    /// minimal number of applications), and a licensed separable plan
    /// always wins for selection queries (selection push-down bounds the
    /// explored region by construction). Among the remaining licensed
    /// candidates — `Decomposed`, `RedundancyBounded`, and the always-legal
    /// `Direct` — the cheapest estimate is chosen, with `Direct` breaking
    /// ties (fewest phases, no certificate machinery).
    pub fn plan_with(&self, db: &Database, init: &Relation, model: &CostModel) -> Plan {
        if let Some(cert) = &self.boundedness {
            let mut plan = Plan::bounded_prefix(cert.clone());
            let mut dec = PlanDecision::fixed_priority("BoundedPrefix");
            dec.certificates
                .push(format!("boundedness: {}", cert.rationale()));
            plan.decision = Some(Box::new(dec));
            return self
                .wrap_selection(plan)
                .with_dense_budget(model.dense_budget_bytes);
        }
        if let Some(sel) = &self.selection {
            if let Some((_, _, cert)) = self.separability.first() {
                if let Ok(mut plan) = Plan::separable(cert.clone(), sel.clone()) {
                    let mut dec = PlanDecision::fixed_priority("Separable");
                    dec.certificates
                        .push(format!("separability: {}", cert.rationale()));
                    plan.decision = Some(Box::new(dec));
                    return plan.with_dense_budget(model.dense_budget_bytes);
                }
            }
        }
        // One shared estimator: the statistics map (row counts, per-column
        // distinct values) is computed once and reused by every candidate.
        let mut est = Estimator::new(model, db, init);
        let seed = init.len() as f64;
        let seed_doms = est.init_doms.clone();
        let direct = Plan::direct(self.rules.clone());
        let direct_cost = est.node(&direct, seed, &seed_doms);
        let mut best: Option<(Plan, f64)> = None;
        let mut considered: Vec<(&'static str, f64)> = vec![("Direct", direct_cost)];
        if let Some(cert) = &self.commutativity {
            let plan = Plan::decomposed(cert.clone());
            let cost = est.node(&plan, seed, &seed_doms);
            considered.push(("Decomposed", cost));
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        if let Some(cert) = &self.redundancy {
            let plan = Plan::redundancy_bounded(cert.clone());
            let cost = est.node(&plan, seed, &seed_doms);
            considered.push(("RedundancyBounded", cost));
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        let verdict: Vec<String> = considered
            .iter()
            .map(|(name, c)| format!("{name} ≈ {c:.3e}"))
            .collect();
        // Dense gate: a single composition-shaped rule whose closure fits
        // the bitset budget at useful density evaluates in ⌈log₂ diameter⌉
        // squarings instead of one delta round per path length — that
        // beats every sparse candidate above, so the gate pre-empts the
        // competition (whose verdict stays in the rationale for the
        // record). A decline is recorded the same way, so `linrec lint`
        // can quote why the plan stayed sparse.
        let mut dense_note = String::new();
        let mut dense_verdict: Option<DenseVerdict> = None;
        if let [rule] = self.rules.as_slice() {
            if let Some(shape) = dense::composition_shape(rule) {
                match est.dense_decision(rule, &shape, seed, &seed_doms) {
                    Ok((cost, detail)) => {
                        let mut plan = Plan::dense_closure(rule.clone(), model.dense_budget_bytes)
                            .expect("composition shape checked above");
                        let mut dec = PlanDecision::cost_model("DenseClosure");
                        dec.candidates = considered
                            .iter()
                            .map(|&(name, cost)| CandidateEstimate { name, cost })
                            .collect();
                        dec.candidates.push(CandidateEstimate {
                            name: "DenseClosure",
                            cost,
                        });
                        dec.certificates.push(plan.rationale.clone());
                        dec.dense = Some(DenseVerdict {
                            chosen: true,
                            detail: detail.clone(),
                        });
                        dec.estimate = Some(cost);
                        plan.rationale = format!(
                            "{} [cost model: {detail}; over {}]",
                            plan.rationale,
                            verdict.join(", ")
                        );
                        plan.estimate = Some(cost);
                        plan.decision = Some(Box::new(dec));
                        return self
                            .wrap_selection(plan)
                            .with_dense_budget(model.dense_budget_bytes);
                    }
                    Err(reason) => {
                        dense_note = format!("; dense declined: {reason}");
                        dense_verdict = Some(DenseVerdict {
                            chosen: false,
                            detail: reason,
                        });
                    }
                }
            }
        }
        let (mut chosen, chosen_cost) = match best {
            Some((plan, cost)) if cost < direct_cost => (plan, cost),
            _ => (direct, direct_cost),
        };
        let mut dec = PlanDecision::cost_model(chosen.shape().label());
        dec.candidates = considered
            .iter()
            .map(|&(name, cost)| CandidateEstimate { name, cost })
            .collect();
        if !matches!(chosen.node, PlanNode::Direct { .. }) {
            // For certificate-backed winners the pre-competition rationale
            // *is* the certificate's rationale.
            dec.certificates.push(chosen.rationale.clone());
        }
        dec.dense = dense_verdict;
        dec.estimate = Some(chosen_cost);
        chosen.rationale = format!(
            "{} [cost model: {}{dense_note}]",
            chosen.rationale,
            verdict.join(", ")
        );
        chosen.estimate = Some(chosen_cost);
        chosen.decision = Some(Box::new(dec));
        self.wrap_selection(chosen)
            .with_dense_budget(model.dense_budget_bytes)
    }

    fn wrap_selection(&self, plan: Plan) -> Plan {
        match &self.selection {
            Some(sel) => Plan::select_after(plan, sel.clone()),
            None => plan,
        }
    }

    /// A human-readable certificate listing (used by `linrec analyze`).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut any = false;
        if let Some(c) = &self.boundedness {
            out.push_str(&format!("• boundedness: {}\n", c.rationale()));
            any = true;
        }
        if let Some(c) = &self.commutativity {
            out.push_str(&format!("• commutativity: {}\n", c.rationale()));
            any = true;
        }
        if let Some(c) = &self.redundancy {
            out.push_str(&format!("• redundancy: {}\n", c.rationale()));
            any = true;
        }
        for (outer, inner, c) in &self.separability {
            out.push_str(&format!(
                "• separability (outer rule {outer}, inner rule {inner}): {}\n",
                c.rationale()
            ));
            any = true;
        }
        if !any {
            out.push_str("• no certificates: only the baseline strategies are licensed\n");
        }
        for note in &self.notes {
            out.push_str(&format!("• note: {note}\n"));
        }
        out
    }
}

// --- cost model -----------------------------------------------------------

/// A cardinality-based cost model over licensed plans.
///
/// Estimates follow the System-R recipe adapted to fixpoints. Each rule
/// gets a per-delta-tuple **fanout**: the product over its nonrecursive
/// atoms of the expected index-bucket size (`rows / distinct keys`) for
/// the first column bound when the atom is probed, or the full row count
/// for atoms sharing no variable with anything matched before them. A star
/// is then costed by unrolling the semi-naive delta recurrence
/// `δ_{i+1} = δ_i · Σᵣ fanout(r)` for [`CostModel::horizon`] rounds,
/// capping the accumulated relation at a domain estimate
/// (`max column cardinality ^ arity`). This is exactly the paper's §3.1
/// cost measure — tuple derivations — made predictable: the mixed
/// `…CB…` terms that decomposition eliminates show up as the cross terms
/// of `(f_B + f_C)ⁿ`, and a redundant factor with fanout > 1 shows up as
/// an exponential the bounded strategy truncates.
///
/// On top of the derivation charge, every fixpoint phase pays a setup
/// charge proportional to the seed and the EDB rows it touches (relation
/// cloning, scan materialization, allocator traffic) — the term the
/// derivation count alone misses, and the reason a strategy with fewer
/// derivations but many phases (e.g. `RedundancyBounded` on a small, dense
/// workload) can lose wall-clock to one semi-naive star.
///
/// The constants are unit-free ratios calibrated on the repository's bench
/// workloads (shopping / up-down / chain / grid; see `BENCH_pr2.json`):
/// only the *ordering* of candidate estimates matters to the planner.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Charge per estimated tuple derivation (join + dedup work).
    pub per_derivation: f64,
    /// Charge per (seed + EDB) tuple touched by each fixpoint phase.
    pub per_phase_tuple: f64,
    /// Fixpoint rounds unrolled by the delta recurrence. Estimates are
    /// used only to *rank* candidates, so a modest horizon suffices: all
    /// candidates are truncated alike, and the exponential separations the
    /// model exists to detect appear within a few rounds.
    pub horizon: usize,
    /// Multiplicative correction to the fanout-driven derivation charge,
    /// learned from estimate/actual feedback ([`CostModel::calibrate`]).
    /// `1.0` is the uncalibrated default; a model that systematically
    /// overestimates derivations ends up with a scale below 1.
    pub fanout_scale: f64,
    /// Charge per shard for setting up one parallel round (partitioning,
    /// job dispatch, buffer merge), in the same unit as `per_derivation`.
    /// Together with the thread count it fixes the parallel cutover
    /// ([`CostModel::parallel_cutover`]): the delta size below which a
    /// round cannot recoup the sharding overhead and stays sequential.
    pub per_shard_setup: f64,
    /// Byte budget for the dense bitset working set (three
    /// `domain × ⌈domain/64⌉`-word adjacency matrices: operand,
    /// accumulator, scratch). A composition-shaped recursion whose
    /// estimated domain would not fit is planned sparse; the runtime
    /// re-checks against the *actual* domain and falls back to semi-naive
    /// if the estimate was optimistic.
    pub dense_budget_bytes: usize,
    /// Minimum estimated closure density (result tuples over `domain²`)
    /// for the dense plan: below the cutover, word-at-a-time kernels scan
    /// mostly-zero words and round-by-round hash joins win. Since the
    /// closure estimate grows with the seed, this effectively gates on the
    /// seed-to-domain ratio — a point-selection seed over a wide graph
    /// stays sparse.
    pub dense_density_cutover: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            per_derivation: 1.0,
            per_phase_tuple: 0.5,
            horizon: 12,
            fanout_scale: 1.0,
            per_shard_setup: 96.0,
            dense_budget_bytes: 64 << 20,
            dense_density_cutover: 0.05,
        }
    }
}

impl CostModel {
    /// Fold estimate/actual feedback into the model: each pair is a plan's
    /// cost estimate ([`Plan::estimate`]) next to the derivation count the
    /// run actually performed (`EvalStats::derivations`, the unit the
    /// estimate is denominated in). The geometric mean of the
    /// `actual/estimate` ratios rescales [`CostModel::fanout_scale`], so a
    /// model that was systematically off by a constant factor is corrected
    /// after a single round of feedback (the derivation charge is linear
    /// in the scale). Pairs with a non-positive side are ignored; the
    /// scale is clamped to `[1e-3, 1e3]` so one wild outlier cannot wreck
    /// the model.
    pub fn calibrate(&mut self, feedback: &[(f64, u64)]) {
        let (mut sum_log, mut n) = (0.0f64, 0usize);
        for &(estimate, actual) in feedback {
            if estimate > 0.0 && actual > 0 {
                sum_log += (actual as f64 / estimate).ln();
                n += 1;
            }
        }
        if n > 0 {
            let ratio = (sum_log / n as f64).exp();
            self.fanout_scale = (self.fanout_scale * ratio).clamp(1e-3, 1e3);
        }
    }

    /// The smallest per-round delta for which `threads`-way sharding is
    /// predicted to pay: the fixed round price (`per_shard_setup` per
    /// shard) must be recouped by the work the extra threads take over
    /// (a `1 − 1/threads` share of the per-delta-tuple derivation
    /// charge). Rounds below the cutover stay sequential — this is how
    /// the model "charges" shard setup: not as a term in a plan's
    /// estimate (all candidates would pay it alike) but as the gate that
    /// decides whether a round may go parallel at all.
    pub fn parallel_cutover(&self, threads: usize) -> usize {
        if threads < 2 {
            return usize::MAX;
        }
        let saved_share = 1.0 - 1.0 / threads as f64;
        let per_tuple = (self.per_derivation * self.fanout_scale).max(f64::MIN_POSITIVE);
        ((self.per_shard_setup * threads as f64) / (per_tuple * saved_share)).ceil() as usize
    }

    /// Estimated **peak** per-round delta of `(Σ rules)*` from `init` —
    /// the figure [`Plan::parallelize`] compares against the cutover to
    /// decide (and record) whether parallelism can ever engage.
    pub fn estimated_peak_delta(
        &self,
        rules: &[LinearRule],
        db: &Database,
        init: &Relation,
    ) -> f64 {
        if rules.is_empty() {
            return 0.0;
        }
        let mut est = Estimator::new(self, db, init);
        // Raw fanout, deliberately NOT multiplied by `fanout_scale`: the
        // learned scale is a *linear* correction to the derivation charge
        // (see `Estimator::per_deriv`), and compounding it per round here
        // would let calibration distort the delta trajectory geometrically.
        // It still reaches this decision through `parallel_cutover`'s
        // per-tuple charge.
        let f: f64 = rules.iter().map(|r| est.fanout(r)).sum();
        let seed_doms = est.init_doms.clone();
        let doms = est.col_doms(rules, &seed_doms);
        let cap = Estimator::cap(&doms);
        let mut delta = (init.len() as f64).min(cap);
        let mut total = delta;
        let mut peak = delta;
        for _ in 0..self.horizon {
            if delta < 0.5 {
                break;
            }
            let produced = delta * f;
            let new = produced.min((cap - total).max(0.0));
            total += new;
            delta = new;
            peak = peak.max(delta);
        }
        peak
    }
}

/// Cardinalities used by the estimator: row count and per-column distinct
/// counts, computed once per predicate per estimate.
struct PredStats {
    rows: f64,
    ndv: Vec<f64>,
}

struct Estimator<'a> {
    model: &'a CostModel,
    db: &'a Database,
    /// Keyed by `(predicate, arity)`: an atom whose arity disagrees with
    /// the stored relation gets zero-row statistics of its *own* arity
    /// (mirroring the join, where such an atom matches nothing), so two
    /// uses of one predicate at different arities never share an entry.
    stats: FastMap<(Symbol, usize), PredStats>,
    /// Domain estimate: the largest per-column distinct count seen.
    dom: f64,
    /// Per-column distinct counts of the seed relation.
    init_doms: Vec<f64>,
}

impl<'a> Estimator<'a> {
    fn new(model: &'a CostModel, db: &'a Database, init: &Relation) -> Estimator<'a> {
        let init_doms: Vec<f64> = (0..init.arity())
            .map(|c| (init.distinct_in_col(c) as f64).max(1.0))
            .collect();
        let mut dom = 2.0f64;
        for &d in &init_doms {
            dom = dom.max(d);
        }
        Estimator {
            model,
            db,
            stats: FastMap::default(),
            dom,
            init_doms,
        }
    }

    fn pred(&mut self, pred: Symbol, arity: usize) -> &PredStats {
        let key = (pred, arity);
        if !self.stats.contains_key(&key) {
            let entry = match self.db.relation(pred) {
                Some(rel) if rel.arity() == arity => {
                    let ndv: Vec<f64> = (0..rel.arity())
                        .map(|c| rel.distinct_in_col(c) as f64)
                        .collect();
                    for &n in &ndv {
                        self.dom = self.dom.max(n);
                    }
                    PredStats {
                        rows: rel.len() as f64,
                        ndv,
                    }
                }
                _ => PredStats {
                    rows: 0.0,
                    ndv: vec![0.0; arity],
                },
            };
            self.stats.insert(key, entry);
        }
        &self.stats[&key]
    }

    /// The calibrated derivation charge: `per_derivation` corrected by the
    /// feedback-learned fanout scale ([`CostModel::calibrate`]).
    fn per_deriv(&self) -> f64 {
        self.model.per_derivation * self.model.fanout_scale
    }

    /// Expected matches produced per delta tuple by one application of
    /// `rule` (the product of its trailing atoms' candidate-set sizes).
    fn fanout(&mut self, rule: &LinearRule) -> f64 {
        let mut bound: FastSet<Var> = rule.rec_atom().vars().collect();
        let mut f = 1.0f64;
        for atom in rule.nonrec_atoms() {
            let probe = crate::join::first_probe_col(&atom.terms, |v| bound.contains(&v));
            let stats = self.pred(atom.pred, atom.arity());
            let fan = match probe {
                Some(c) => stats.rows / stats.ndv[c].max(1.0),
                None => stats.rows,
            };
            f *= fan;
            bound.extend(atom.vars());
        }
        f
    }

    /// Per-column domain estimates for the closure of `rules` from a seed
    /// with column domains `seed_doms`: a persistent column keeps the
    /// seed's values; a column bound from a nonrecursive atom adds that
    /// atom column's distinct count; a column copied from another
    /// recursive-atom position adds that position's seed domain.
    fn col_doms(&mut self, rules: &[LinearRule], seed_doms: &[f64]) -> Vec<f64> {
        let arity = rules.first().map(|r| r.arity()).unwrap_or(0);
        let mut doms: Vec<f64> = (0..arity)
            .map(|j| seed_doms.get(j).copied().unwrap_or(1.0))
            .collect();
        for rule in rules {
            for (j, dom) in doms.iter_mut().enumerate() {
                let v = match rule.head().terms[j] {
                    Term::Const(_) => {
                        *dom += 1.0;
                        continue;
                    }
                    Term::Var(v) => v,
                };
                // Persistent column: the closure introduces no new values.
                if rule.rec_atom().terms.get(j) == Some(&Term::Var(v)) {
                    continue;
                }
                if let Some((pred, c, ar)) = rule.nonrec_atoms().iter().find_map(|a| {
                    a.terms
                        .iter()
                        .position(|t| *t == Term::Var(v))
                        .map(|c| (a.pred, c, a.arity()))
                }) {
                    *dom += self.pred(pred, ar).ndv[c];
                } else if let Some(c) = rule
                    .rec_atom()
                    .terms
                    .iter()
                    .position(|t| *t == Term::Var(v))
                {
                    *dom += seed_doms.get(c).copied().unwrap_or(self.dom);
                } else {
                    *dom += self.dom;
                }
            }
        }
        doms
    }

    /// Maximum plausible relation size under the given column domains.
    fn cap(doms: &[f64]) -> f64 {
        doms.iter()
            .fold(1.0f64, |acc, &d| (acc * d.max(1.0)).min(1e15))
    }

    /// Distinct EDB rows the given rules touch (scan/index setup volume).
    fn edb_rows(&mut self, rules: &[LinearRule]) -> f64 {
        let mut seen: FastSet<Symbol> = FastSet::default();
        let mut rows = 0.0;
        for rule in rules {
            for atom in rule.nonrec_atoms() {
                if seen.insert(atom.pred) {
                    rows += self.pred(atom.pred, atom.arity()).rows;
                }
            }
        }
        rows
    }

    fn phase_charge(&mut self, rules: &[LinearRule], seed: f64) -> f64 {
        self.model.per_phase_tuple * (seed + self.edb_rows(rules))
    }

    /// Unroll the semi-naive delta recurrence under `cap`, then add the
    /// derivation-graph arc bound `result × Σ fanout` (paper §3.1: total
    /// derivations ≈ arcs ≈ result size × inbound arcs per tuple — this
    /// is where duplicate production, the dominant recursive cost, lives).
    /// Returns (derivations, result estimate).
    fn unroll(&self, f: f64, seed: f64, cap: f64) -> (f64, f64) {
        let mut delta = seed.min(cap);
        let mut total = delta;
        let mut derivs = 0.0;
        for _ in 0..self.model.horizon {
            if delta < 0.5 {
                break;
            }
            let produced = delta * f;
            derivs += produced;
            let new = produced.min((cap - total).max(0.0));
            total += new;
            delta = new;
        }
        derivs += total * f;
        (derivs, total)
    }

    /// Derivation charge, result size, and result column domains of
    /// `(Σ rules)*` from a seed of `seed` tuples with domains `seed_doms`.
    fn star(&mut self, rules: &[LinearRule], seed: f64, seed_doms: &[f64]) -> (f64, f64, Vec<f64>) {
        if rules.is_empty() {
            return (0.0, seed, seed_doms.to_vec());
        }
        let f: f64 = rules.iter().map(|r| self.fanout(r)).sum();
        let doms = self.col_doms(rules, seed_doms);
        let (derivs, total) = self.unroll(f, seed, Self::cap(&doms));
        (self.per_deriv() * derivs, total, doms)
    }

    /// `count` exact applications of `rule`: derivation charge and final
    /// image size (not accumulated).
    fn power_chain(
        &mut self,
        rule: &LinearRule,
        seed: f64,
        seed_doms: &[f64],
        count: usize,
    ) -> (f64, f64) {
        let f = self.fanout(rule);
        let doms = self.col_doms(std::slice::from_ref(rule), seed_doms);
        let cap = Self::cap(&doms);
        let mut cur = seed.min(cap);
        let mut derivs = 0.0;
        for _ in 0..count.min(4 * self.model.horizon) {
            derivs += cur * f;
            cur = (cur * f).min(cap);
        }
        (self.per_deriv() * derivs, cur)
    }

    /// The dense-budget decision for a composition-shaped `rule`: `Ok`
    /// with a cost estimate and a human-readable note when the bitset
    /// kernels are predicted to pay, `Err` with the decline reason
    /// otherwise. Two checks, in order:
    ///
    /// 1. **Budget** — three `domain × ⌈domain/64⌉`-word matrices must fit
    ///    [`CostModel::dense_budget_bytes`], with the domain estimated as
    ///    the **sum of both columns' distinct-value counts of both
    ///    relations**. The runtime domain is the union of all four value
    ///    sets, so the sum is a safe overestimate — erring toward
    ///    declining a plan, never toward admitting one whose actual
    ///    working set exceeds the budget (the runtime re-check before
    ///    allocation remains the hard guard either way).
    /// 2. **Density** — the closure estimate (a *long-horizon* unroll of
    ///    the delta recurrence, `min(domain, 4096)` rounds: the sparse
    ///    horizon-12 truncation would misjudge a fixpoint the dense path
    ///    runs to completion) must fill at least
    ///    [`CostModel::dense_density_cutover`] of `domain²` — below that,
    ///    the word kernels mostly scan zeros and hash joins win.
    fn dense_decision(
        &mut self,
        rule: &LinearRule,
        shape: &dense::CompositionShape,
        seed: f64,
        seed_doms: &[f64],
    ) -> Result<(f64, String), String> {
        let q = self.pred(shape.edge, 2);
        let q_dom: f64 = q.ndv.iter().sum();
        let seed_dom: f64 = seed_doms.iter().sum();
        let d = (seed_dom + q_dom).max(2.0);
        let words = (d / 64.0).ceil();
        let bytes = 3.0 * d * words * 8.0;
        if bytes > self.model.dense_budget_bytes as f64 {
            return Err(format!(
                "working set ≈ {:.1} MiB over the {} MiB budget",
                bytes / (1024.0 * 1024.0),
                self.model.dense_budget_bytes >> 20
            ));
        }
        let f = self.fanout(rule);
        let cap = (d * d).min(1e15);
        let mut delta = seed.min(cap);
        let mut total = delta;
        let mut derivs = 0.0;
        for _ in 0..(d as usize).min(4096) {
            if delta < 0.5 {
                break;
            }
            let produced = delta * f;
            derivs += produced;
            let new = produced.min((cap - total).max(0.0));
            total += new;
            delta = new;
        }
        let density = total / cap;
        if density < self.model.dense_density_cutover {
            return Err(format!(
                "est. density {density:.1e} below the {:.1e} cutover (domain ≈ {d:.0})",
                self.model.dense_density_cutover
            ));
        }
        let cost = self.per_deriv() * derivs + self.phase_charge(std::slice::from_ref(rule), seed);
        Ok((
            cost,
            format!(
                "dense: closure by squaring over '{}' \
                 (domain ≈ {d:.0}, est. density {density:.2}) ≈ {cost:.3e}",
                shape.edge
            ),
        ))
    }

    fn node(&mut self, plan: &Plan, seed: f64, seed_doms: &[f64]) -> f64 {
        match &plan.node {
            PlanNode::Direct { rules } => {
                let (derivs, _, _) = self.star(rules, seed, seed_doms);
                derivs + self.phase_charge(rules, seed)
            }
            PlanNode::Naive { rules } => {
                // Re-joins the whole accumulated relation every round:
                // charge the star as if each round's delta were the total.
                let (derivs, total, _) = self.star(rules, seed, seed_doms);
                let f: f64 = rules.iter().map(|r| self.fanout(r)).sum();
                derivs
                    + self.per_deriv() * total * f * self.model.horizon as f64
                    + self.phase_charge(rules, seed)
            }
            PlanNode::BoundedPrefix { cert } => {
                let rules = std::slice::from_ref(cert.rule());
                let (derivs, _) =
                    self.power_chain(cert.rule(), seed, seed_doms, cert.applications());
                derivs + self.phase_charge(rules, seed)
            }
            PlanNode::Decomposed { cert } => {
                let mut cost = 0.0;
                let mut current = seed;
                let mut doms = seed_doms.to_vec();
                for cluster in cert.clusters().iter().rev() {
                    let group: Vec<LinearRule> =
                        cluster.iter().map(|&i| cert.rules()[i].clone()).collect();
                    let (derivs, result, next_doms) = self.star(&group, current, &doms);
                    cost += derivs + self.phase_charge(&group, current);
                    current = result;
                    doms = next_doms;
                }
                cost
            }
            PlanNode::Separable { cert, sel } => {
                // Selection push-down shrinks the inner seed by the
                // selected columns' selectivity (1/ndv per binding, crude
                // but conservative), then the outer star runs over the
                // selected result.
                let mut selectivity = 1.0f64;
                let mut inner_doms = seed_doms.to_vec();
                for &(p, _) in sel.bindings() {
                    selectivity /= self.dom.max(2.0);
                    if let Some(d) = inner_doms.get_mut(p) {
                        *d = 1.0;
                    }
                }
                let inner_rules = std::slice::from_ref(cert.inner());
                let outer_rules = std::slice::from_ref(cert.outer());
                let inner_seed = (seed * selectivity).max(1.0);
                let (c1, mid, mid_doms) = self.star(inner_rules, inner_seed, &inner_doms);
                let (c2, _, _) = self.star(outer_rules, mid, &mid_doms);
                c1 + c2
                    + self.phase_charge(inner_rules, inner_seed)
                    + self.phase_charge(outer_rules, mid)
            }
            PlanNode::RedundancyBounded { cert } => {
                let dec = cert.decomposition();
                let (k, n, l) = (dec.torsion.k, dec.torsion.n, dec.l);
                let period = n - k;
                let rule = cert.rule();
                let a_rules = std::slice::from_ref(rule);
                let b_rules = std::slice::from_ref(&dec.b);
                // Prefix Σ_{m<KL} Aᵐ q.
                let (mut cost, _) = self.power_chain(rule, seed, seed_doms, k * l - 1);
                cost += self.phase_charge(a_rules, seed);
                // B^{K-1} q, then one branch per residue.
                let (c_img, mut img) = self.power_chain(&dec.b, seed, seed_doms, k - 1);
                cost += c_img;
                let fan_b = self.fanout(&dec.b);
                let fan_c = self.fanout(&dec.c);
                let b_doms = self.col_doms(b_rules, seed_doms);
                let cap = Self::cap(&b_doms);
                let mut acc = 0.0f64;
                for r in 0..period {
                    if r > 0 {
                        cost += self.per_deriv() * img * fan_b;
                        img = (img * fan_b).min(cap);
                    }
                    // (Bᴾ)* — a star whose per-application fanout is Bᴾ's.
                    let f = fan_b.powi(period.min(16) as i32).max(f64::MIN_POSITIVE);
                    let (derivs, total) = self.unroll(f, img, cap);
                    cost += self.per_deriv() * derivs + self.phase_charge(b_rules, img);
                    // C^{(K+r)L}, then one B.
                    let mut cur = total;
                    for _ in 0..((k + r) * l).min(4 * self.model.horizon) {
                        cost += self.per_deriv() * cur * fan_c;
                        cur = (cur * fan_c).min(cap);
                    }
                    cost += self.per_deriv() * cur * fan_b
                        + self.phase_charge(std::slice::from_ref(&dec.c), total);
                    acc += (cur * fan_b).min(cap);
                }
                // Σ_{n<L} Aⁿ acc.
                let (c_tail, _) = self.power_chain(rule, acc.min(cap), seed_doms, l - 1);
                cost + c_tail
            }
            PlanNode::DenseClosure { rule, shape, .. } => {
                match self.dense_decision(rule, shape, seed, seed_doms) {
                    Ok((cost, _)) => cost,
                    Err(_) => {
                        // Would fall back to a sparse star at runtime.
                        let rules = std::slice::from_ref(rule);
                        let (derivs, _, _) = self.star(rules, seed, seed_doms);
                        derivs + self.phase_charge(rules, seed)
                    }
                }
            }
            PlanNode::SelectAfter { inner, sel } => {
                let _ = sel;
                self.node(inner, seed, seed_doms)
            }
        }
    }
}

impl CostModel {
    /// Estimate the execution cost of `plan` over `db` seeded with `init`
    /// (unit-free; meaningful only relative to other estimates from the
    /// same model and database).
    pub fn estimate(&self, plan: &Plan, db: &Database, init: &Relation) -> f64 {
        let mut est = Estimator::new(self, db, init);
        let doms = est.init_doms.clone();
        est.node(plan, init.len() as f64, &doms)
    }
}

// --- plans ----------------------------------------------------------------

/// The strategy tree. Construction of the specialized nodes requires the
/// corresponding certificate; see the module docs.
#[derive(Debug, Clone)]
pub struct Plan {
    node: PlanNode,
    rationale: String,
    /// Cost-model estimate for this plan (unit-free; comparable to actual
    /// derivation counts), recorded by [`Analysis::plan_with`].
    estimate: Option<f64>,
    /// Actual statistics of the latest [`Plan::execute_feedback`] run,
    /// shown next to the estimate in [`Plan::annotated_rationale`].
    actual: Option<EvalStats>,
    /// Parallelism knob for the plan's semi-naive phases (sequential by
    /// default; see [`Plan::parallelize`]).
    par: Parallelism,
    /// Byte budget for any dense bitset working set this plan's execution
    /// may allocate — the `DenseClosure` node's own budget lives in the
    /// node, but exact-power chains (`RedundancyBounded`) also take a
    /// dense fast path, and it must honor the same knob. Defaults to
    /// [`dense::DEFAULT_DENSE_BUDGET_BYTES`]; [`Analysis::plan_with`]
    /// overwrites it with [`CostModel::dense_budget_bytes`].
    dense_budget_bytes: usize,
    /// Structured record of how this plan was chosen (candidates,
    /// estimates, certificates, dense/parallel verdicts), captured by
    /// [`Analysis::plan_with`] and completed by
    /// [`Plan::execute_feedback`]. `None` for hand-built plans and the
    /// fixed-order [`Analysis::plan`]. Boxed: most plans in tests are
    /// hand-built and should not pay for the record.
    decision: Option<Box<PlanDecision>>,
}

impl Plan {
    fn make(node: PlanNode, rationale: String) -> Plan {
        Plan {
            node,
            rationale,
            estimate: None,
            actual: None,
            par: Parallelism::sequential(),
            dense_budget_bytes: dense::DEFAULT_DENSE_BUDGET_BYTES,
            decision: None,
        }
    }
}

#[derive(Debug, Clone)]
enum PlanNode {
    Direct {
        rules: Vec<LinearRule>,
    },
    Naive {
        rules: Vec<LinearRule>,
    },
    BoundedPrefix {
        cert: BoundednessCert,
    },
    Decomposed {
        cert: CommutativityCert,
    },
    Separable {
        cert: SeparabilityCert,
        sel: Selection,
    },
    RedundancyBounded {
        cert: Box<RedundancyCert>,
    },
    DenseClosure {
        rule: LinearRule,
        shape: dense::CompositionShape,
        budget_bytes: usize,
    },
    SelectAfter {
        inner: Box<Plan>,
        sel: Selection,
    },
}

/// A certificate-free view of a plan's structure, for matching and
/// reporting (certificates stay inside the [`Plan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanShape {
    /// Semi-naive over the rule sum.
    Direct,
    /// Naive fixpoint (baseline).
    Naive,
    /// `A* = Σ_{m<N} Aᵐ` with the certified application count.
    BoundedPrefix {
        /// Number of operator applications (`N − 1`).
        applications: usize,
    },
    /// One star per commuting cluster (rule indices).
    Decomposed {
        /// The certified clusters.
        clusters: Vec<Vec<usize>>,
    },
    /// `outer* (σ inner*)`.
    Separable,
    /// Theorem 4.2 bounded evaluation of a redundant factor.
    RedundancyBounded,
    /// Logarithmic transitive closure by boolean-matrix power doubling
    /// over a dense bitset remap (sparse semi-naive fallback if the
    /// runtime domain exceeds the byte budget).
    DenseClosure,
    /// Apply a selection to an inner plan's result.
    SelectAfter(Box<PlanShape>),
}

impl PlanShape {
    /// Short stable label for the *core* shape (a `SelectAfter` wrapper
    /// reports its inner shape) — the key the decision journal and the
    /// drift sentinel group by.
    pub fn label(&self) -> &'static str {
        match self {
            PlanShape::Direct => "Direct",
            PlanShape::Naive => "Naive",
            PlanShape::BoundedPrefix { .. } => "BoundedPrefix",
            PlanShape::Decomposed { .. } => "Decomposed",
            PlanShape::Separable => "Separable",
            PlanShape::RedundancyBounded => "RedundancyBounded",
            PlanShape::DenseClosure => "DenseClosure",
            PlanShape::SelectAfter(inner) => inner.label(),
        }
    }
}

/// The result of [`Plan::execute`]: the relation, the paper's cost
/// counters, and one [`TraceStep`] per executed phase.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The computed relation (with any selection already applied).
    pub relation: Relation,
    /// Aggregated statistics across all phases.
    pub stats: EvalStats,
    /// Per-phase execution record, in execution order.
    pub trace: Vec<TraceStep>,
}

/// One executed phase of a plan.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// What ran (human-readable).
    pub label: String,
    /// That phase's statistics.
    pub stats: EvalStats,
    /// Wall time of the phase in ns (0 when instrumentation is off).
    pub nanos: u64,
}

/// Instruments one plan phase: opens a `plan.node` span before the phase
/// runs and, on [`Phase::finish`], stamps the wall time into the
/// [`TraceStep`] and the `linrec_engine_plan_node_ns` histogram.
struct Phase {
    sp: linrec_obs::Span,
    start: Option<std::time::Instant>,
}

impl Phase {
    fn begin(node: &'static str) -> Phase {
        let mut sp = linrec_obs::span("plan.node");
        sp.attr("node", node);
        Phase {
            sp,
            start: linrec_obs::enabled().then(std::time::Instant::now),
        }
    }

    fn finish(mut self, label: String, stats: EvalStats) -> TraceStep {
        let nanos = self
            .start
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        if self.start.is_some() {
            crate::profile::plan().node_ns.observe(nanos);
            self.sp.attr("label", &label);
            self.sp.attr("derivations", stats.derivations);
            self.sp.attr("tuples", stats.tuples);
        }
        TraceStep {
            label,
            stats,
            nanos,
        }
    }
}

impl Plan {
    /// Semi-naive evaluation of `(Σ rules)*` — always licensed.
    pub fn direct(rules: impl Into<Vec<LinearRule>>) -> Plan {
        Plan::make(
            PlanNode::Direct {
                rules: rules.into(),
            },
            "semi-naive evaluation of the rule sum (the paper's baseline)".to_owned(),
        )
    }

    /// Naive fixpoint — always licensed (substrate baseline).
    pub fn naive(rules: impl Into<Vec<LinearRule>>) -> Plan {
        Plan::make(
            PlanNode::Naive {
                rules: rules.into(),
            },
            "naive fixpoint (re-applies every operator to the whole relation)".to_owned(),
        )
    }

    /// Exhaust a uniformly bounded recursion in `N − 1` applications.
    /// Licensed by a [`BoundednessCert`].
    pub fn bounded_prefix(cert: BoundednessCert) -> Plan {
        let rationale = cert.rationale().to_owned();
        Plan::make(PlanNode::BoundedPrefix { cert }, rationale)
    }

    /// One star per commuting cluster, right-to-left. Licensed by a
    /// [`CommutativityCert`].
    pub fn decomposed(cert: CommutativityCert) -> Plan {
        let rationale = cert.rationale().to_owned();
        Plan::make(PlanNode::Decomposed { cert }, rationale)
    }

    /// The separable algorithm `outer* (σ inner*)` (Algorithm 4.1).
    /// Licensed by a [`SeparabilityCert`] for the operator pair; the
    /// selection premise (σ commutes with `outer`) is checked here and is
    /// the only way construction can fail.
    pub fn separable(cert: SeparabilityCert, sel: Selection) -> Result<Plan, StrategyError> {
        if !sel.commutes_with(cert.outer()) {
            return Err(StrategyError::SelectionDoesNotCommute);
        }
        let rationale = format!(
            "σ commutes with the outer operator and {}",
            cert.rationale()
        );
        Ok(Plan::make(PlanNode::Separable { cert, sel }, rationale))
    }

    /// Theorem 4.2 bounded evaluation. Licensed by a [`RedundancyCert`].
    pub fn redundancy_bounded(cert: RedundancyCert) -> Plan {
        let rationale = cert.rationale().to_owned();
        Plan::make(
            PlanNode::RedundancyBounded {
                cert: Box::new(cert),
            },
            rationale,
        )
    }

    /// Dense transitive closure by power doubling: `init ∪ init∘q⁺`
    /// (right-linear) or `init ∪ q⁺∘init` (left-linear) over u64-word
    /// adjacency matrices. Licensed by the **composition shape** of the
    /// rule ([`crate::dense::composition_shape`]) — the syntactic witness
    /// that operator powers are boolean matrix powers — and construction
    /// fails without it. `budget_bytes` caps the runtime working set
    /// (three `domain × words` matrices); execution falls back to the
    /// sparse star when the actual domain exceeds it.
    pub fn dense_closure(rule: LinearRule, budget_bytes: usize) -> Result<Plan, StrategyError> {
        let shape = dense::composition_shape(&rule).ok_or_else(|| {
            StrategyError::MissingCertificate(
                "dense closure needs a composition-shaped rule \
                 (binary head, one binary EDB atom threading the middle variable)"
                    .to_owned(),
            )
        })?;
        let rationale = format!(
            "the rule is relational composition with '{}', so operator powers are \
             boolean matrix powers and the closure runs by repeated squaring",
            shape.edge
        );
        Ok(Plan::make(
            PlanNode::DenseClosure {
                rule,
                shape,
                budget_bytes,
            },
            rationale,
        ))
    }

    /// Apply `sel` to `inner`'s result — always licensed (`σ` after star).
    pub fn select_after(mut inner: Plan, sel: Selection) -> Plan {
        let rationale = format!("apply σ to the result of: {}", inner.rationale);
        let estimate = inner.estimate;
        // The wrapper owns the decision record: feedback and journaling
        // happen on the outermost plan.
        let decision = inner.decision.take();
        let mut plan = Plan::make(
            PlanNode::SelectAfter {
                inner: Box::new(inner),
                sel,
            },
            rationale,
        );
        plan.estimate = estimate;
        plan.decision = decision;
        plan
    }

    /// Why this plan is licensed (certificate-backed where applicable).
    pub fn rationale(&self) -> &str {
        &self.rationale
    }

    /// The parallelism knob the plan's semi-naive phases execute with.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    fn set_parallelism(&mut self, par: &Parallelism) {
        self.par = par.clone();
        if let PlanNode::SelectAfter { inner, .. } = &mut self.node {
            inner.set_parallelism(par);
        }
    }

    fn set_dense_budget(&mut self, bytes: usize) {
        self.dense_budget_bytes = bytes;
        if let PlanNode::SelectAfter { inner, .. } = &mut self.node {
            inner.set_dense_budget(bytes);
        }
    }

    /// Cap the dense bitset working set of the plan's exact-power fast
    /// paths at `bytes` (see [`CostModel::dense_budget_bytes`]; `0`
    /// keeps those paths fully sparse). [`Analysis::plan_with`] applies
    /// the active model's budget automatically; call this only when
    /// executing a hand-built plan under a non-default budget.
    pub fn with_dense_budget(mut self, bytes: usize) -> Plan {
        self.set_dense_budget(bytes);
        self
    }

    /// Attach a parallelism knob unconditionally (no cost-model gate; the
    /// per-round `min_delta` stays whatever `par` carries). Prefer
    /// [`Plan::parallelize`], which lets the cost model set the cutover
    /// and records the decision.
    pub fn with_parallelism(mut self, par: Parallelism) -> Plan {
        self.set_parallelism(&par);
        self
    }

    /// Offer the plan up to `par.threads()`-way sharded fixpoint rounds,
    /// letting `model` decide whether the data can ever pay for them: the
    /// model estimates the recursion's **peak per-round delta** and
    /// compares it against the [`CostModel::parallel_cutover`] for this
    /// thread count (the delta size at which sharding overhead is
    /// recouped). If the peak clears the cutover, the knob is attached
    /// with `min_delta = cutover`, so each individual round still gates
    /// itself at runtime (early/late rounds with tiny deltas stay
    /// sequential); otherwise the plan stays fully sequential. Either
    /// way, [`Plan::rationale`] records the decision and both figures.
    ///
    /// Only semi-naive star/resume phases parallelize (`Direct`,
    /// `Decomposed` clusters, `Separable`'s stars); the exact-power chains
    /// of `BoundedPrefix`/`RedundancyBounded` run over images that the
    /// certificates already bound to few applications.
    pub fn parallelize(
        mut self,
        par: &Parallelism,
        model: &CostModel,
        db: &Database,
        init: &Relation,
    ) -> Plan {
        if !par.is_parallel() {
            return self;
        }
        if !self.has_parallel_phase() {
            self.rationale = format!(
                "{}; parallel declined: plan shape has no shardable semi-naive rounds",
                self.rationale
            );
            self.record_parallel_verdict(ParallelVerdict {
                engaged: false,
                threads: par.threads(),
                est_peak_delta: 0.0,
                detail: "plan shape has no shardable semi-naive rounds".to_owned(),
            });
            return self;
        }
        let cutover = model.parallel_cutover(par.threads());
        let peak = model.estimated_peak_delta(&self.star_rules(), db, init);
        if peak >= cutover as f64 {
            let detail = format!(
                "up to {}-way sharded rounds when |Δ| ≥ {cutover} \
                 (est. peak |Δ| ≈ {peak:.0})",
                par.threads()
            );
            self.rationale = format!("{}; parallel: {detail}", self.rationale);
            let tuned = par.clone().with_min_delta(cutover);
            self.set_parallelism(&tuned);
            self.record_parallel_verdict(ParallelVerdict {
                engaged: true,
                threads: par.threads(),
                est_peak_delta: peak,
                detail,
            });
        } else {
            let detail = format!(
                "est. peak |Δ| ≈ {peak:.0} below the {}-thread cutover {cutover}",
                par.threads()
            );
            self.rationale = format!("{}; parallel declined: {detail}", self.rationale);
            self.record_parallel_verdict(ParallelVerdict {
                engaged: false,
                threads: par.threads(),
                est_peak_delta: peak,
                detail,
            });
        }
        self
    }

    /// Stamp a [`ParallelVerdict`] into the decision record, creating a
    /// minimal record first when the plan was built without the cost
    /// model (so `parallelize` choices are journaled either way).
    fn record_parallel_verdict(&mut self, verdict: ParallelVerdict) {
        let winner = self.shape().label();
        let dec = self
            .decision
            .get_or_insert_with(|| Box::new(PlanDecision::fixed_priority(winner)));
        dec.parallel = Some(verdict);
    }

    /// Does executing this plan ever consult the parallelism knob? Only
    /// the semi-naive star/resume phases shard; the exact-power chains of
    /// `BoundedPrefix`/`RedundancyBounded` and the naive baseline do not,
    /// so claiming parallel rounds for them would misreport the run.
    fn has_parallel_phase(&self) -> bool {
        match &self.node {
            PlanNode::Direct { .. } | PlanNode::Decomposed { .. } | PlanNode::Separable { .. } => {
                true
            }
            PlanNode::Naive { .. }
            | PlanNode::BoundedPrefix { .. }
            | PlanNode::RedundancyBounded { .. }
            | PlanNode::DenseClosure { .. } => false,
            PlanNode::SelectAfter { inner, .. } => inner.has_parallel_phase(),
        }
    }

    /// The rules whose star(s) the plan evaluates (delta-recurrence input
    /// for the parallel decision).
    fn star_rules(&self) -> Vec<LinearRule> {
        match &self.node {
            PlanNode::Direct { rules } | PlanNode::Naive { rules } => rules.clone(),
            PlanNode::BoundedPrefix { cert } => vec![cert.rule().clone()],
            PlanNode::Decomposed { cert } => cert.rules().to_vec(),
            PlanNode::Separable { cert, .. } => {
                vec![cert.outer().clone(), cert.inner().clone()]
            }
            PlanNode::RedundancyBounded { cert } => vec![cert.rule().clone()],
            PlanNode::DenseClosure { rule, .. } => vec![rule.clone()],
            PlanNode::SelectAfter { inner, .. } => inner.star_rules(),
        }
    }

    /// The cost-model estimate recorded by [`Analysis::plan_with`]
    /// (`None` for plans chosen without the cost model). Unit-free, but
    /// dominated by the per-derivation charge, so it is directly
    /// comparable to the actual derivation count of a run.
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// Actual statistics of the latest [`Plan::execute_feedback`] run.
    pub fn actual(&self) -> Option<&EvalStats> {
        self.actual.as_ref()
    }

    /// The structured decision record captured by [`Analysis::plan_with`]
    /// (`None` for hand-built plans and the fixed-order
    /// [`Analysis::plan`]).
    pub fn decision(&self) -> Option<&PlanDecision> {
        self.decision.as_deref()
    }

    /// Mutable access to the decision record, for callers that amend it —
    /// the service stamps the owning view's name and maintenance mode.
    pub fn decision_mut(&mut self) -> Option<&mut PlanDecision> {
        self.decision.as_deref_mut()
    }

    /// The rationale with the latest run's actual statistics attached next
    /// to the cost-model estimate — the estimate-vs-actual ratio this
    /// exposes per run is the groundwork for feedback-calibrated cost
    /// models (recalibrating [`CostModel`] constants per deployment).
    pub fn annotated_rationale(&self) -> String {
        match &self.actual {
            Some(stats) => {
                let ratio = match self.estimate {
                    Some(est) => format!(
                        "; estimate/actual derivations = {:.3} ({:.3e} vs {})",
                        est / (stats.derivations.max(1) as f64),
                        est,
                        stats.derivations
                    ),
                    None => String::new(),
                };
                format!("{} [actual: {}{}]", self.rationale, stats, ratio)
            }
            None => self.rationale.clone(),
        }
    }

    /// [`Plan::execute`], additionally recording the run's actual
    /// [`EvalStats`] on the plan (see [`Plan::annotated_rationale`]).
    /// A repeated run replaces the previous record.
    pub fn execute_feedback(
        &mut self,
        db: &Database,
        init: &Relation,
    ) -> Result<ExecOutcome, StrategyError> {
        let outcome = self.execute(db, init)?;
        self.actual = Some(outcome.stats);
        if let Some(dec) = self.decision.as_deref_mut() {
            dec.actual = Some(outcome.stats);
        }
        // Calibration drift: estimated over actual derivations, ×1000
        // (1000 = perfect). Observed whenever feedback execution closes
        // the loop, so the histogram tracks drift across the fleet of
        // plans, not one.
        if linrec_obs::enabled() {
            if let Some(est) = self.estimate {
                let actual = outcome.stats.derivations.max(1) as f64;
                let permille = (est / actual * 1000.0).clamp(0.0, u64::MAX as f64) as u64;
                crate::profile::plan().estimate_actual.observe(permille);
            }
            let total_nanos: u64 = outcome.trace.iter().map(|t| t.nanos).sum();
            let (view, json) = match self.decision.as_deref() {
                Some(dec) => (dec.view.clone(), dec.to_json()),
                None => (String::new(), String::new()),
            };
            linrec_obs::journal::journal().record(
                "plan",
                &view,
                self.shape().label(),
                self.estimate.unwrap_or(0.0),
                outcome.stats.derivations,
                total_nanos,
                json,
            );
        }
        Ok(outcome)
    }

    /// The certificate-free structure of the plan.
    pub fn shape(&self) -> PlanShape {
        match &self.node {
            PlanNode::Direct { .. } => PlanShape::Direct,
            PlanNode::Naive { .. } => PlanShape::Naive,
            PlanNode::BoundedPrefix { cert } => PlanShape::BoundedPrefix {
                applications: cert.applications(),
            },
            PlanNode::Decomposed { cert } => PlanShape::Decomposed {
                clusters: cert.clusters().to_vec(),
            },
            PlanNode::Separable { .. } => PlanShape::Separable,
            PlanNode::RedundancyBounded { .. } => PlanShape::RedundancyBounded,
            PlanNode::DenseClosure { .. } => PlanShape::DenseClosure,
            PlanNode::SelectAfter { inner, .. } => PlanShape::SelectAfter(Box::new(inner.shape())),
        }
    }

    /// A multi-line, indented rendering of the plan tree with rationales.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match &self.node {
            PlanNode::Direct { rules } => {
                out.push_str(&format!("{pad}Direct ({} rules)\n", rules.len()));
            }
            PlanNode::Naive { rules } => {
                out.push_str(&format!("{pad}Naive ({} rules)\n", rules.len()));
            }
            PlanNode::BoundedPrefix { cert } => {
                out.push_str(&format!(
                    "{pad}BoundedPrefix (≤ {} applications)\n",
                    cert.applications()
                ));
            }
            PlanNode::Decomposed { cert } => {
                out.push_str(&format!(
                    "{pad}Decomposed ({} clusters, applied right-to-left)\n",
                    cert.clusters().len()
                ));
                for cluster in cert.clusters().iter().rev() {
                    let rules: Vec<String> = cluster
                        .iter()
                        .map(|&i| cert.rules()[i].to_string())
                        .collect();
                    out.push_str(&format!("{pad}  star of {{ {} }}\n", rules.join("  +  ")));
                }
            }
            PlanNode::Separable { cert, sel } => {
                out.push_str(&format!("{pad}Separable outer*(σ inner*)\n"));
                out.push_str(&format!("{pad}  outer: {}\n", cert.outer()));
                out.push_str(&format!(
                    "{pad}  inner: {} (absorbs σ {:?})\n",
                    cert.inner(),
                    sel.bindings()
                ));
            }
            PlanNode::RedundancyBounded { cert } => {
                let dec = cert.decomposition();
                out.push_str(&format!(
                    "{pad}RedundancyBounded ({} elided after {} C-applications)\n",
                    cert.pred(),
                    (dec.torsion.n - 1) * dec.l
                ));
                out.push_str(&format!("{pad}  B: {}\n", dec.b));
                out.push_str(&format!("{pad}  C: {}\n", dec.c));
            }
            PlanNode::DenseClosure {
                rule,
                shape,
                budget_bytes,
            } => {
                out.push_str(&format!(
                    "{pad}DenseClosure over '{}' (≤ {} MiB working set)\n",
                    shape.edge,
                    budget_bytes >> 20
                ));
                out.push_str(&format!("{pad}  rule: {rule}\n"));
            }
            PlanNode::SelectAfter { inner, sel } => {
                out.push_str(&format!("{pad}SelectAfter σ {:?}\n", sel.bindings()));
                inner.describe_into(out, depth + 1);
            }
        }
        out.push_str(&format!(
            "{pad}  rationale: {}\n",
            self.annotated_rationale()
        ));
    }

    /// Run the plan over `db` starting from `init`.
    ///
    /// One scan/index cache ([`Indexes`]) is shared across every phase of
    /// the plan tree — the database is immutable for the whole execution,
    /// so decomposed clusters and redundancy-bounded branches reuse the
    /// EDB scans and indexes the first phase built.
    pub fn execute(&self, db: &Database, init: &Relation) -> Result<ExecOutcome, StrategyError> {
        let mut trace = Vec::new();
        let mut indexes = Indexes::new();
        let (relation, mut stats) = self.run(db, init, &mut trace, &mut indexes)?;
        stats.tuples = relation.len();
        Ok(ExecOutcome {
            relation,
            stats,
            trace,
        })
    }

    fn run(
        &self,
        db: &Database,
        init: &Relation,
        trace: &mut Vec<TraceStep>,
        indexes: &mut Indexes,
    ) -> Result<(Relation, EvalStats), StrategyError> {
        match &self.node {
            PlanNode::Direct { rules } => {
                let phase = Phase::begin("direct");
                let (rel, stats) = seminaive_star_par_in(rules, db, init, indexes, &self.par);
                trace.push(phase.finish(
                    format!("semi-naive star over {} rule(s)", rules.len()),
                    stats,
                ));
                Ok((rel, stats))
            }
            PlanNode::Naive { rules } => {
                let phase = Phase::begin("naive");
                let (rel, stats) = naive_star(rules, db, init);
                trace.push(phase.finish(
                    format!("naive fixpoint over {} rule(s)", rules.len()),
                    stats,
                ));
                Ok((rel, stats))
            }
            PlanNode::BoundedPrefix { cert } => {
                let phase = Phase::begin("bounded-prefix");
                let (rel, stats) =
                    bounded_prefix_in(cert.rule(), db, init, cert.applications(), indexes);
                trace.push(phase.finish(
                    format!("bounded prefix (≤ {} applications)", cert.applications()),
                    stats,
                ));
                Ok((rel, stats))
            }
            PlanNode::Decomposed { cert } => {
                let mut stats = EvalStats::default();
                let mut current = init.clone();
                for cluster in cert.clusters().iter().rev() {
                    let phase = Phase::begin("decomposed-cluster");
                    let group: Vec<LinearRule> =
                        cluster.iter().map(|&i| cert.rules()[i].clone()).collect();
                    let (next, s) = seminaive_star_par_in(&group, db, &current, indexes, &self.par);
                    trace.push(phase.finish(format!("star of cluster {cluster:?}"), s));
                    stats += s;
                    current = next;
                }
                stats.tuples = current.len();
                Ok((current, stats))
            }
            PlanNode::Separable { cert, sel } => exec_separable(
                cert.outer(),
                cert.inner(),
                sel,
                db,
                init,
                trace,
                indexes,
                &self.par,
            ),
            PlanNode::RedundancyBounded { cert } => {
                exec_redundancy_bounded(cert, db, init, trace, indexes, self.dense_budget_bytes)
            }
            PlanNode::DenseClosure {
                rule,
                shape,
                budget_bytes,
            } => {
                let phase = Phase::begin("dense-closure");
                match dense::eval_composition(shape, db, init, *budget_bytes) {
                    Some((rel, stats)) => {
                        trace.push(phase.finish(
                            format!("dense closure by squaring over '{}'", shape.edge),
                            stats,
                        ));
                        Ok((rel, stats))
                    }
                    None => {
                        // The actual domain outgrew the planner's estimate
                        // (or the seed is not binary): evaluate sparse,
                        // identical semantics.
                        let (rel, stats) = seminaive_star_par_in(
                            std::slice::from_ref(rule),
                            db,
                            init,
                            indexes,
                            &self.par,
                        );
                        trace.push(
                            phase.finish(
                                "dense budget exceeded at runtime; sparse semi-naive fallback"
                                    .to_owned(),
                                stats,
                            ),
                        );
                        Ok((rel, stats))
                    }
                }
            }
            PlanNode::SelectAfter { inner, sel } => {
                let (rel, mut stats) = inner.run(db, init, trace, indexes)?;
                let phase = Phase::begin("select-after");
                let out = sel.apply(&rel);
                stats.tuples = out.len();
                trace.push(phase.finish(
                    format!("selection σ {:?}", sel.bindings()),
                    EvalStats {
                        tuples: out.len(),
                        ..EvalStats::default()
                    },
                ));
                Ok((out, stats))
            }
        }
    }
}

/// The separable algorithm (Algorithm 4.1): `outer* (σ inner*)`, pushing
/// the selection into `inner`'s parameter relations when the binding
/// closure allows it.
#[allow(clippy::too_many_arguments)]
fn exec_separable(
    outer: &LinearRule,
    inner: &LinearRule,
    sel: &Selection,
    db: &Database,
    init: &Relation,
    trace: &mut Vec<TraceStep>,
    indexes: &mut Indexes,
    par: &Parallelism,
) -> Result<(Relation, EvalStats), StrategyError> {
    // Re-checked so a cloned-and-mutated selection cannot sneak past the
    // constructor check (construction already guarantees it for planner
    // paths).
    if !sel.commutes_with(outer) {
        return Err(StrategyError::SelectionDoesNotCommute);
    }
    let (selected, mut stats) = if magic_applicable(inner, sel) {
        // The magic phase runs over an augmented scratch database, so it
        // keeps its own internal cache rather than sharing `indexes`.
        let phase = Phase::begin("separable-inner-magic");
        let (rel, s) = eval_selected_star(inner, db, init, sel);
        trace.push(phase.finish("σ-pushed inner star (magic frontier)".to_owned(), s));
        (rel, s)
    } else {
        let phase = Phase::begin("separable-inner");
        let (full, mut s) =
            seminaive_star_par_in(std::slice::from_ref(inner), db, init, indexes, par);
        let rel = sel.apply(&full);
        s.tuples = rel.len();
        trace.push(phase.finish(
            "inner star, then σ (push-down not applicable)".to_owned(),
            s,
        ));
        (rel, s)
    };
    let phase = Phase::begin("separable-outer");
    let (result, s2) =
        seminaive_star_par_in(std::slice::from_ref(outer), db, &selected, indexes, par);
    trace.push(phase.finish("outer star over the selected relation".to_owned(), s2));
    stats += s2;
    // σ commutes with `outer`, so the result is already σ-selected; apply
    // once more for belt and braces (cheap, and keeps the contract obvious).
    let out = sel.apply(&result);
    stats.tuples = out.len();
    Ok((out, stats))
}

/// Redundancy-bounded evaluation (Theorem 4.2 via the Theorem 6.4
/// witnesses): with `Aᴸ = BCᴸ`, `Cᴺ = Cᴷ`, and period `P = N−K`,
///
/// ```text
/// A*q = Σ_{m<KL} Aᵐq  ∪  Σ_{n<L} Aⁿ ( Σ_{r<P} B( C^{(K+r)L} ( (Bᴾ)* ( B^{K−1+r} q ))))
/// ```
///
/// an identity obtained from `A^{mL} = B·C^{mL}·B^{m−1}` (first equality of
/// Theorem 6.4 plus the `Cᴸ`-commutation) and the torsion collapse
/// `C^{mL} = C^{g(m)L}`. `C` is applied at most `(N−1)·L` times per branch —
/// the paper's "C is processed only a fixed finite number of times, beyond
/// which only B is processed".
fn exec_redundancy_bounded(
    cert: &RedundancyCert,
    db: &Database,
    init: &Relation,
    trace: &mut Vec<TraceStep>,
    indexes: &mut Indexes,
    dense_budget_bytes: usize,
) -> Result<(Relation, EvalStats), StrategyError> {
    let rule = cert.rule();
    let dec = cert.decomposition();
    let (k, n, l) = (dec.torsion.k, dec.torsion.n, dec.l);
    let period = n - k;
    let mut stats = EvalStats::default();

    // Part 1: Σ_{m=0}^{KL-1} Aᵐ q.
    let phase = Phase::begin("redundancy-prefix");
    let (mut result, s1) = bounded_prefix_in(rule, db, init, k * l - 1, indexes);
    trace.push(phase.finish(format!("prefix Σ_{{m<{}}} Aᵐ q", k * l), s1));
    stats += s1;

    // (Bᴾ)* is evaluated with the composed rule Bᴾ.
    let b_period = linrec_cq::power(&dec.b, period)?;

    // Part 2 inner sums.
    let phase = Phase::begin("redundancy-branches");
    let branch_stats_before = stats;
    let mut acc = Relation::new(rule.arity());
    let budget = dense_budget_bytes;
    let mut img = exact_power_in(&dec.b, db, init, k - 1, &mut stats, indexes, budget); // B^{K-1} q
    for r in 0..period {
        if r > 0 {
            img = exact_power_in(&dec.b, db, &img, 1, &mut stats, indexes, budget);
            // B^{K-1+r} q
        }
        let (bstar, s) = seminaive_star_in(std::slice::from_ref(&b_period), db, &img, indexes);
        stats += s;
        let after_c = exact_power_in(&dec.c, db, &bstar, (k + r) * l, &mut stats, indexes, budget);
        let with_b = exact_power_in(&dec.b, db, &after_c, 1, &mut stats, indexes, budget);
        acc.union_in_place(&with_b);
    }

    // Σ_{n<L} Aⁿ (acc).
    let mut cur = acc.clone();
    result.union_in_place(&acc);
    for _ in 1..l {
        cur = exact_power_in(rule, db, &cur, 1, &mut stats, indexes, budget);
        result.union_in_place(&cur);
    }
    {
        let mut branch = stats;
        branch.iterations -= branch_stats_before.iterations;
        branch.applications -= branch_stats_before.applications;
        branch.derivations -= branch_stats_before.derivations;
        branch.duplicates -= branch_stats_before.duplicates;
        trace.push(phase.finish(
            format!(
                "{period} periodic branch(es) with C bounded at {} applications",
                (n - 1) * l
            ),
            branch,
        ));
    }

    stats.tuples = result.len();
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rules, workload};
    use linrec_datalog::{parse_linear_rule, Symbol, Value};

    fn updown() -> Vec<LinearRule> {
        vec![rules::down_rule(), rules::up_rule()]
    }

    #[test]
    fn analysis_licenses_decomposition_for_up_down() {
        let rules = updown();
        let analysis = Analysis::of(&rules, None);
        let plan = analysis.plan();
        assert!(matches!(plan.shape(), PlanShape::Decomposed { .. }));
        assert!(plan.rationale().contains("Theorem 3.1"));

        let (db, init) = workload::up_down(5, 3);
        let planned = plan.execute(&db, &init).unwrap();
        let direct = Plan::direct(rules).execute(&db, &init).unwrap();
        assert_eq!(planned.relation.sorted(), direct.relation.sorted());
        assert!(planned.stats.duplicates <= direct.stats.duplicates);
        assert_eq!(planned.trace.len(), 2); // one star per cluster
    }

    #[test]
    fn analysis_uses_separable_for_selected_queries() {
        let rules = updown();
        let sel = Selection::eq(1, (1i64 << 6) + 1);
        let analysis = Analysis::of(&rules, Some(&sel));
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::Separable);

        let (db, init) = workload::up_down(5, 3);
        let fast = plan.execute(&db, &init).unwrap();
        let slow = Plan::select_after(Plan::direct(rules), sel)
            .execute(&db, &init)
            .unwrap();
        assert_eq!(fast.relation.sorted(), slow.relation.sorted());
    }

    #[test]
    fn analysis_detects_bounded_recursion() {
        let rule = parse_linear_rule("p(x,y) :- p(x,y), mark(x).").unwrap();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::BoundedPrefix { applications: 1 });

        let mut db = Database::new();
        db.set_relation("mark", Relation::from_tuples(1, [vec![Value::Int(1)]]));
        let init = Relation::from_pairs([(1, 5), (2, 6)]);
        let outcome = plan.execute(&db, &init).unwrap();
        assert_eq!(outcome.relation.len(), 2);
        assert!(outcome.stats.iterations <= 1);
    }

    #[test]
    fn analysis_licenses_redundancy_bounded_for_shopping() {
        let rule = rules::shopping_rule();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        assert!(analysis.redundancy().is_some());
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::RedundancyBounded);

        let (db, init) = workload::shopping(40, 10, 3, 5);
        let bounded = plan.execute(&db, &init).unwrap();
        let direct = Plan::direct(vec![rule]).execute(&db, &init).unwrap();
        assert_eq!(bounded.relation.sorted(), direct.relation.sorted());
    }

    #[test]
    fn certificate_less_rule_sets_fall_back_to_direct() {
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), a(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(x,z), b(z,y).").unwrap(),
        ];
        let analysis = Analysis::of(&rules, None);
        assert!(analysis.has_no_certificates());
        assert_eq!(analysis.plan().shape(), PlanShape::Direct);

        let sel = Selection::eq(0, 1);
        let analysis = Analysis::of(&rules, Some(&sel));
        assert_eq!(
            analysis.plan().shape(),
            PlanShape::SelectAfter(Box::new(PlanShape::Direct))
        );
    }

    #[test]
    fn separable_construction_rejects_noncommuting_selection() {
        // σ on position 1 does not commute with the down-rule.
        let cert = SeparabilityCert::establish(&rules::down_rule(), &rules::up_rule())
            .unwrap()
            .unwrap();
        assert_eq!(
            Plan::separable(cert, Selection::eq(1, 4)).unwrap_err(),
            StrategyError::SelectionDoesNotCommute
        );
    }

    #[test]
    fn naive_plan_agrees_with_direct() {
        let rules = updown();
        let (db, init) = workload::up_down(4, 9);
        let a = Plan::direct(rules.clone()).execute(&db, &init).unwrap();
        let b = Plan::naive(rules).execute(&db, &init).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        assert!(b.stats.duplicates >= a.stats.duplicates);
    }

    #[test]
    fn outcome_trace_and_describe_are_informative() {
        let rule = rules::shopping_rule();
        let cert = RedundancyCert::establish(&rule, Symbol::new("cheap"), 8)
            .unwrap()
            .unwrap();
        let plan = Plan::select_after(Plan::redundancy_bounded(cert), Selection::eq(0, 1));
        let text = plan.describe();
        assert!(text.contains("SelectAfter"));
        assert!(text.contains("RedundancyBounded"));
        assert!(text.contains("rationale"));

        let (db, init) = workload::shopping(20, 8, 2, 1);
        let outcome = plan.execute(&db, &init).unwrap();
        assert!(outcome.trace.len() >= 3);
        assert_eq!(outcome.stats.tuples, outcome.relation.len());
    }

    #[test]
    fn cost_model_picks_direct_on_shopping() {
        // The PR 1 regression: RedundancyBounded does fewer derivations on
        // the shopping workload but loses wall-clock to Direct (many small
        // phases over small, dense relations). The cost model must side
        // with Direct here, while the fixed preference order still
        // showcases the certificate.
        let rules = vec![rules::shopping_rule()];
        let analysis = Analysis::of(&rules, None);
        assert_eq!(analysis.plan().shape(), PlanShape::RedundancyBounded);
        let (db, init) = workload::shopping(100, 30, 4, 99);
        let plan = analysis.plan_for(&db, &init);
        assert_eq!(plan.shape(), PlanShape::Direct);
        assert!(plan.rationale().contains("cost model"));
        // Both evaluate to the same relation regardless of the choice.
        let a = plan.execute(&db, &init).unwrap();
        let b = analysis.plan().execute(&db, &init).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
    }

    #[test]
    fn execute_feedback_attaches_actuals_to_the_estimate() {
        let rules = vec![rules::shopping_rule()];
        let analysis = Analysis::of(&rules, None);
        let (db, init) = workload::shopping(100, 30, 4, 99);
        let mut plan = analysis.plan_for(&db, &init);
        let est = plan.estimate().expect("plan_for records an estimate");
        assert!(est.is_finite() && est > 0.0);
        assert!(plan.actual().is_none());
        assert_eq!(plan.annotated_rationale(), plan.rationale());

        let outcome = plan.execute_feedback(&db, &init).unwrap();
        assert_eq!(plan.actual().unwrap(), &outcome.stats);
        let annotated = plan.annotated_rationale();
        assert!(annotated.contains("cost model"), "{annotated}");
        assert!(
            annotated.contains("estimate/actual derivations"),
            "{annotated}"
        );
        assert!(plan.describe().contains("estimate/actual"));
        // The per-run record is replaced, not accumulated.
        plan.execute_feedback(&db, &init).unwrap();
        assert_eq!(
            plan.annotated_rationale().matches("actual:").count(),
            1,
            "feedback must not accumulate across runs"
        );
    }

    #[test]
    fn cost_model_keeps_decomposition_on_up_down() {
        let rules = updown();
        let analysis = Analysis::of(&rules, None);
        let (db, init) = workload::up_down(6, 7);
        let plan = analysis.plan_for(&db, &init);
        assert!(matches!(plan.shape(), PlanShape::Decomposed { .. }));
        let planned = plan.execute(&db, &init).unwrap();
        let direct = Plan::direct(rules).execute(&db, &init).unwrap();
        assert_eq!(planned.relation.sorted(), direct.relation.sorted());
    }

    #[test]
    fn cost_model_orders_naive_above_direct() {
        let rules = updown();
        let (db, init) = workload::up_down(5, 3);
        let model = CostModel::default();
        let direct = model.estimate(&Plan::direct(rules.clone()), &db, &init);
        let naive = model.estimate(&Plan::naive(rules), &db, &init);
        assert!(direct.is_finite() && naive.is_finite());
        assert!(
            naive > direct,
            "naive ({naive:.3e}) must cost more than direct ({direct:.3e})"
        );
    }

    #[test]
    fn cost_model_survives_predicates_used_at_two_arities() {
        // `e` is stored at arity 2 but one rule also mentions it at arity
        // 3; the join treats the arity-3 atom as matching nothing, and the
        // estimator must do the same (zero rows) rather than indexing the
        // arity-2 statistics out of bounds.
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(x,z), e(w,u,z), q(w,y).").unwrap(),
        ];
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (2, 3)]));
        db.set_relation("q", Relation::from_pairs([(1, 9)]));
        let init = Relation::from_pairs([(0, 1)]);
        let analysis = Analysis::of(&rules, None);
        let plan = analysis.plan_for(&db, &init); // must not panic
        let planned = plan.execute(&db, &init).unwrap();
        let direct = Plan::direct(rules).execute(&db, &init).unwrap();
        assert_eq!(planned.relation.sorted(), direct.relation.sorted());
    }

    #[test]
    fn cost_model_estimates_follow_database_size() {
        let rules = vec![rules::shopping_rule()];
        let model = CostModel::default();
        let (small_db, small_init) = workload::shopping(50, 20, 3, 1);
        let (big_db, big_init) = workload::shopping(800, 20, 3, 1);
        let plan = Plan::direct(rules);
        let small = model.estimate(&plan, &small_db, &small_init);
        let big = model.estimate(&plan, &big_db, &big_init);
        assert!(big > small, "estimates must grow with the data");
    }

    #[test]
    fn plan_for_respects_selection_and_boundedness_preferences() {
        // Boundedness: provably minimal applications — cost model bypassed.
        let rule = parse_linear_rule("p(x,y) :- p(x,y), mark(x).").unwrap();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        let db = Database::new();
        let init = Relation::new(2);
        assert_eq!(
            analysis.plan_for(&db, &init).shape(),
            PlanShape::BoundedPrefix { applications: 1 }
        );

        // Separable stays preferred for selection queries.
        let rules = updown();
        let sel = Selection::eq(1, (1i64 << 6) + 1);
        let analysis = Analysis::of(&rules, Some(&sel));
        let (db, init) = workload::up_down(5, 3);
        assert_eq!(analysis.plan_for(&db, &init).shape(), PlanShape::Separable);
    }

    #[test]
    fn calibrate_rescales_the_fanout_constant() {
        let mut model = CostModel::default();
        assert_eq!(model.fanout_scale, 1.0);
        // The model overestimated 10x on two runs: scale shrinks to 0.1.
        model.calibrate(&[(1000.0, 100), (5000.0, 500)]);
        assert!(
            (model.fanout_scale - 0.1).abs() < 1e-9,
            "{}",
            model.fanout_scale
        );
        // Feedback folds in multiplicatively…
        model.calibrate(&[(10.0, 100)]);
        assert!((model.fanout_scale - 1.0).abs() < 1e-9);
        // …degenerate pairs are ignored, and the scale stays clamped.
        model.calibrate(&[(0.0, 5), (3.0, 0)]);
        assert!((model.fanout_scale - 1.0).abs() < 1e-9);
        model.calibrate(&[(1.0, u64::MAX)]);
        assert!(model.fanout_scale <= 1e3);
    }

    #[test]
    fn miscalibrated_model_corrects_after_one_round_of_feedback() {
        // A model whose fanout constant is off by 12x: one round of
        // estimate/actual feedback must bring its estimate to within a
        // small factor of the measured derivation count (the derivation
        // charge is linear in the scale; only the small per-phase setup
        // term resists the correction).
        let rules = vec![rules::tc_right()];
        let edges = workload::chain(60);
        let db = workload::graph_db("q", edges.clone());
        let plan = Plan::direct(rules);
        let actual = plan.execute(&db, &edges).unwrap().stats.derivations;

        let mut model = CostModel {
            fanout_scale: 12.0,
            ..CostModel::default()
        };
        let before = model.estimate(&plan, &db, &edges);
        let off_before = (before / actual as f64).ln().abs();
        model.calibrate(&[(before, actual)]);
        let after = model.estimate(&plan, &db, &edges);
        let off_after = (after / actual as f64).ln().abs();
        assert!(
            off_after < off_before,
            "calibration must reduce the error: {before:.3e} -> {after:.3e} vs {actual}"
        );
        assert!(
            (0.25..4.0).contains(&(after / actual as f64)),
            "one feedback round should land within a small factor: \
             {after:.3e} vs actual {actual}"
        );
    }

    #[test]
    fn parallel_cutover_scales_with_threads_and_calibration() {
        let model = CostModel::default();
        assert_eq!(model.parallel_cutover(1), usize::MAX);
        let c4 = model.parallel_cutover(4);
        let c2 = model.parallel_cutover(2);
        assert!(c4 > 0 && c2 > 0);
        assert!(
            c2 < c4,
            "more threads, more setup to amortize: {c2} vs {c4}"
        );
        // A calibrated-down model (cheaper derivations) needs bigger deltas.
        let mut cheap = CostModel::default();
        cheap.calibrate(&[(10.0, 1)]);
        assert!(cheap.parallel_cutover(4) > c4);
    }

    #[test]
    fn parallelize_records_the_decision_and_gates_by_peak_delta() {
        let rules = vec![rules::tc_right()];
        let edges = workload::chain(400);
        let db = workload::graph_db("q", edges.clone());
        // Cheap shard setup so the 400-tuple peak delta clears the
        // 4-thread cutover (the stock constant needs deltas in the
        // hundreds — bench-sized workloads, too slow for a unit test).
        let model = CostModel {
            per_shard_setup: 8.0,
            ..CostModel::default()
        };
        let par = Parallelism::new(4);

        // 400-edge chain: est. peak delta (≈ seed) clears the 4-thread
        // cutover, so the plan goes parallel with the cutover as its
        // per-round gate.
        let plan = Plan::direct(rules.clone()).parallelize(&par, &model, &db, &edges);
        assert!(
            plan.rationale().contains("parallel:"),
            "{}",
            plan.rationale()
        );
        assert!(plan.parallelism().is_parallel());
        assert_eq!(plan.parallelism().min_delta(), model.parallel_cutover(4));
        let a = plan.execute(&db, &edges).unwrap();
        let b = Plan::direct(rules.clone()).execute(&db, &edges).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        assert_eq!(a.stats, b.stats);

        // A tiny workload declines.
        let tiny = workload::chain(6);
        let tiny_db = workload::graph_db("q", tiny.clone());
        let plan = Plan::direct(rules).parallelize(&par, &model, &tiny_db, &tiny);
        assert!(
            plan.rationale().contains("parallel declined"),
            "{}",
            plan.rationale()
        );
        assert!(!plan.parallelism().is_parallel());

        // A sequential knob is a no-op.
        let plan = Plan::direct(vec![rules::tc_right()]).parallelize(
            &Parallelism::sequential(),
            &model,
            &tiny_db,
            &tiny,
        );
        assert!(!plan.rationale().contains("parallel"));
    }

    #[test]
    fn parallelize_declines_shapes_without_shardable_rounds() {
        // BoundedPrefix and RedundancyBounded execute through exact-power
        // chains that never consult the knob — the rationale must not
        // claim parallel rounds for them.
        let rule = rules::shopping_rule();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        let (db, init) = workload::shopping(200, 30, 4, 99);
        let model = CostModel {
            per_shard_setup: 0.01,
            ..CostModel::default()
        };
        let plan = Plan::redundancy_bounded(analysis.redundancy().expect("licensed").clone())
            .parallelize(&Parallelism::new(4), &model, &db, &init);
        assert!(
            plan.rationale().contains("no shardable semi-naive rounds"),
            "{}",
            plan.rationale()
        );
        assert!(!plan.parallelism().is_parallel());
        // But a SelectAfter over a Direct core still qualifies.
        let plan = Plan::select_after(Plan::direct(vec![rules::tc_right()]), Selection::eq(0, 1));
        assert!(plan.has_parallel_phase());
    }

    #[test]
    fn calibration_does_not_compound_into_the_peak_delta_estimate() {
        // fanout_scale is a linear charge correction; the delta trajectory
        // itself must be scale-invariant, or calibration would distort the
        // parallel decision geometrically.
        let rules = vec![rules::tc_right()];
        let edges = workload::chain(100);
        let db = workload::graph_db("q", edges.clone());
        let base = CostModel::default().estimated_peak_delta(&rules, &db, &edges);
        let scaled = CostModel {
            fanout_scale: 12.0,
            ..CostModel::default()
        }
        .estimated_peak_delta(&rules, &db, &edges);
        assert_eq!(base, scaled);
    }

    #[test]
    fn parallelize_reaches_through_select_after() {
        let rules = updown();
        let (db, init) = workload::up_down(6, 7);
        let sel = Selection::eq(0, 1);
        let analysis = Analysis::of(&rules, None);
        let plan = Plan::select_after(analysis.plan(), sel)
            .with_parallelism(Parallelism::new(2).with_min_delta(1));
        // The wrapper and the wrapped plan both carry the knob.
        assert!(plan.parallelism().is_parallel());
        let out = plan.execute(&db, &init).unwrap();
        let seq = Plan::select_after(analysis.plan(), Selection::eq(0, 1))
            .execute(&db, &init)
            .unwrap();
        assert_eq!(out.relation.sorted(), seq.relation.sorted());
        assert_eq!(out.stats, seq.stats);
    }

    #[test]
    fn empty_selection_analysis_on_single_rule() {
        // A single unbounded, irredundant rule: plain direct.
        let rule = rules::tc_right();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        assert!(analysis.has_no_certificates());
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::Direct);
        let edges = workload::chain(10);
        let db = workload::graph_db("q", edges.clone());
        let outcome = plan.execute(&db, &edges).unwrap();
        assert_eq!(outcome.relation.len(), 55);
    }

    #[test]
    fn cost_model_picks_dense_on_a_small_dense_chain() {
        // Full-chain seed over a 200-node domain: the closure fills half
        // of domain², far above the density cutover, and the working set
        // is a few KiB — the dense gate fires.
        let edges = workload::chain(200);
        let db = workload::graph_db("q", edges.clone());
        let analysis = Analysis::of(&[rules::tc_right()], None);
        let plan = analysis.plan_for(&db, &edges);
        assert_eq!(
            plan.shape(),
            PlanShape::DenseClosure,
            "{}",
            plan.rationale()
        );
        assert!(
            plan.rationale().contains("dense: closure by squaring"),
            "{}",
            plan.rationale()
        );
        assert!(plan.estimate().is_some());

        // Same relation and honest (non-zero) derivation counters.
        let outcome = plan.execute(&db, &edges).unwrap();
        let direct = Plan::direct(vec![rules::tc_right()])
            .execute(&db, &edges)
            .unwrap();
        assert_eq!(outcome.relation.sorted(), direct.relation.sorted());
        assert_eq!(outcome.stats.tuples, 200 * 201 / 2);
        assert!(outcome.stats.derivations > 0);
        assert_eq!(outcome.trace.len(), 1);
        assert!(outcome.trace[0].label.contains("dense closure"));
    }

    #[test]
    fn cost_model_declines_dense_on_a_sparse_point_seed() {
        // A single-pair seed over a wide chain: the closure is one thin
        // row of domain² — density ~1/domain, below the cutover.
        let edges = workload::chain(3000);
        let db = workload::graph_db("q", edges);
        let init = Relation::from_pairs([(0, 1)]);
        let analysis = Analysis::of(&[rules::tc_right()], None);
        let plan = analysis.plan_for(&db, &init);
        assert_eq!(plan.shape(), PlanShape::Direct, "{}", plan.rationale());
        assert!(
            plan.rationale().contains("dense declined: est. density"),
            "{}",
            plan.rationale()
        );
    }

    #[test]
    fn cost_model_declines_dense_over_the_byte_budget() {
        let edges = workload::chain(500);
        let db = workload::graph_db("q", edges.clone());
        let model = CostModel {
            dense_budget_bytes: 1 << 10,
            ..CostModel::default()
        };
        let analysis = Analysis::of(&[rules::tc_right()], None);
        let plan = analysis.plan_with(&db, &edges, &model);
        assert_eq!(plan.shape(), PlanShape::Direct, "{}", plan.rationale());
        assert!(
            plan.rationale().contains("dense declined: working set"),
            "{}",
            plan.rationale()
        );
    }

    #[test]
    fn plan_with_threads_the_model_budget_into_the_plan() {
        // The declined plan stays sparse for its closure, but its
        // exact-power fast paths must still run under the *model's*
        // budget, not the module default.
        let edges = workload::chain(500);
        let db = workload::graph_db("q", edges.clone());
        let model = CostModel {
            dense_budget_bytes: 1 << 10,
            ..CostModel::default()
        };
        let analysis = Analysis::of(&[rules::tc_right()], None);
        let plan = analysis.plan_with(&db, &edges, &model);
        assert_eq!(plan.dense_budget_bytes, 1 << 10);
    }

    #[test]
    fn dense_closure_requires_the_composition_shape() {
        // Two nonrecursive atoms: not relational composition.
        let rule = rules::shopping_rule();
        assert!(matches!(
            Plan::dense_closure(rule, 64 << 20),
            Err(StrategyError::MissingCertificate(_))
        ));
    }

    #[test]
    fn dense_closure_falls_back_to_sparse_when_the_runtime_domain_overflows() {
        // Constructed with a budget no real domain fits: execution must
        // take the semi-naive fallback and still be correct.
        let edges = workload::chain(50);
        let db = workload::graph_db("q", edges.clone());
        let plan = Plan::dense_closure(rules::tc_right(), 8).unwrap();
        let outcome = plan.execute(&db, &edges).unwrap();
        assert_eq!(outcome.relation.len(), 50 * 51 / 2);
        assert!(
            outcome.trace[0]
                .label
                .contains("sparse semi-naive fallback"),
            "{}",
            outcome.trace[0].label
        );
    }

    #[test]
    fn dense_feedback_keeps_the_estimate_actual_ratio_sane() {
        // The dense path reports popcount-derived derivation counts, so
        // the estimate/actual ratio stays within a small factor instead of
        // dividing by zero-ish actuals.
        let edges = workload::chain(300);
        let db = workload::graph_db("q", edges.clone());
        let analysis = Analysis::of(&[rules::tc_right()], None);
        let mut plan = analysis.plan_for(&db, &edges);
        assert_eq!(plan.shape(), PlanShape::DenseClosure);
        let outcome = plan.execute_feedback(&db, &edges).unwrap();
        let est = plan.estimate().unwrap();
        let ratio = est / outcome.stats.derivations.max(1) as f64;
        assert!(
            (0.05..20.0).contains(&ratio),
            "estimate {est:.3e} vs actual {} (ratio {ratio:.3})",
            outcome.stats.derivations
        );
        assert!(plan.annotated_rationale().contains("estimate/actual"));
    }

    #[test]
    fn dense_plan_execution_matches_direct_on_a_grid() {
        let edges = workload::grid(20, 20);
        let db = workload::graph_db("q", edges.clone());
        let analysis = Analysis::of(&[rules::tc_right()], None);
        let plan = analysis.plan_for(&db, &edges);
        assert_eq!(
            plan.shape(),
            PlanShape::DenseClosure,
            "{}",
            plan.rationale()
        );
        let dense = plan.execute(&db, &edges).unwrap();
        let direct = Plan::direct(vec![rules::tc_right()])
            .execute(&db, &edges)
            .unwrap();
        assert_eq!(dense.relation.sorted(), direct.relation.sorted());
    }
}
