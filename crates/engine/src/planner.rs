//! The certificate-carrying planner: `Analysis → Plan → Execution`.
//!
//! This module is the single entry point for evaluating a linear recursion.
//! It replaces the six free `eval_*` functions (now deprecated wrappers in
//! [`crate::strategies`]) with a three-stage pipeline:
//!
//! 1. **[`Analysis`]** runs the paper's tests over a rule set (and optional
//!    [`Selection`]) and collects *typed certificates* from `linrec-core`:
//!    [`BoundednessCert`], [`CommutativityCert`], [`SeparabilityCert`],
//!    [`RedundancyCert`].
//! 2. **[`Plan`]** is a composable strategy tree. The specialized nodes —
//!    `Decomposed`, `Separable`, `RedundancyBounded`, `BoundedPrefix` —
//!    can **only** be built from the corresponding certificate, so an
//!    unlicensed plan is unrepresentable; `Direct`, `Naive` and
//!    `SelectAfter` need no premise and are always available.
//! 3. **[`Plan::execute`]** runs the tree over a database and seed
//!    relation, returning an [`ExecOutcome`] with the result relation, the
//!    paper's duplicate/derivation statistics, and a per-phase trace.
//!
//! ```
//! use linrec_engine::{planner::Analysis, workload, rules};
//!
//! let (db, init) = workload::up_down(5, 42);
//! let analysis = Analysis::of(&[rules::up_rule(), rules::down_rule()], None);
//! let plan = analysis.plan();          // picks Decomposed, certificate-backed
//! let outcome = plan.execute(&db, &init).unwrap();
//! assert!(plan.rationale().contains("Theorem 3.1"));
//! assert_eq!(outcome.relation.len(), outcome.stats.tuples);
//! ```

use crate::magic::{eval_selected_star, magic_applicable};
use crate::selection::Selection;
use crate::seminaive::{bounded_prefix, exact_power, naive_star, seminaive_star};
use crate::stats::EvalStats;
use linrec_core::{BoundednessCert, CommutativityCert, RedundancyCert, SeparabilityCert};
use linrec_datalog::{Database, LinearRule, Relation, RuleError};

/// Errors from plan construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// The selection does not commute with the operator that must absorb it
    /// (Theorem 4.1's selection premise).
    SelectionDoesNotCommute,
    /// A strategy was requested without the certificate that licenses it.
    MissingCertificate(String),
    /// Underlying rule manipulation failed.
    Rule(RuleError),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::SelectionDoesNotCommute => {
                write!(f, "selection does not commute with the outer operator")
            }
            StrategyError::MissingCertificate(what) => {
                write!(f, "no certificate licenses the strategy: {what}")
            }
            StrategyError::Rule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StrategyError {}

impl From<RuleError> for StrategyError {
    fn from(e: RuleError) -> StrategyError {
        StrategyError::Rule(e)
    }
}

// --- analysis -------------------------------------------------------------

/// Search-depth knobs for [`Analysis`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisEffort {
    /// Bound for power searches (uniform boundedness, torsion,
    /// redundancy): `Bⁿ` is explored for `n ≤ max_power`.
    pub max_power: usize,
    /// Exponent bound for two-operator semi-commutation certificates
    /// (`CB ≤ BᵏCˡ`); `0` disables the search.
    pub semi_exp: usize,
}

impl Default for AnalysisEffort {
    fn default() -> AnalysisEffort {
        AnalysisEffort {
            max_power: 8,
            semi_exp: 0,
        }
    }
}

/// The certificates the paper's analyses produced for one rule set (and
/// optional selection). Feed it to [`Analysis::plan`] to pick a strategy,
/// or inspect the individual certificates (e.g. `linrec analyze`).
#[derive(Debug, Clone)]
pub struct Analysis {
    rules: Vec<LinearRule>,
    selection: Option<Selection>,
    boundedness: Option<BoundednessCert>,
    commutativity: Option<CommutativityCert>,
    redundancy: Option<RedundancyCert>,
    /// `(outer, inner, cert)` candidates for the separable algorithm, in
    /// preference order; only populated when a selection is present.
    separability: Vec<(usize, usize, SeparabilityCert)>,
    notes: Vec<String>,
}

impl Analysis {
    /// Analyze `rules` under an optional selection with default effort.
    pub fn of(rules: &[LinearRule], selection: Option<&Selection>) -> Analysis {
        Analysis::with_effort(rules, selection, AnalysisEffort::default())
    }

    /// Analyze with explicit search bounds.
    pub fn with_effort(
        rules: &[LinearRule],
        selection: Option<&Selection>,
        effort: AnalysisEffort,
    ) -> Analysis {
        let mut analysis = Analysis {
            rules: rules.to_vec(),
            selection: selection.cloned(),
            boundedness: None,
            commutativity: None,
            redundancy: None,
            separability: Vec::new(),
            notes: Vec::new(),
        };

        if rules.len() == 1 {
            match BoundednessCert::establish(&rules[0], effort.max_power) {
                Ok(cert) => analysis.boundedness = cert,
                Err(e) => analysis
                    .notes
                    .push(format!("boundedness search failed: {e}")),
            }
            if analysis.boundedness.is_none() {
                match RedundancyCert::establish_any(&rules[0], effort.max_power) {
                    Ok(cert) => analysis.redundancy = cert,
                    Err(e) => analysis
                        .notes
                        .push(format!("redundancy search failed: {e}")),
                }
            }
        }

        if rules.len() > 1 {
            match CommutativityCert::establish(rules, effort.semi_exp) {
                Ok(cert) => analysis.commutativity = cert,
                Err(e) => analysis
                    .notes
                    .push(format!("commutativity analysis failed: {e}")),
            }
        }

        if let (Some(sel), 2) = (selection, rules.len()) {
            for (outer, inner) in [(0usize, 1usize), (1, 0)] {
                if !sel.commutes_with(&rules[outer]) {
                    continue;
                }
                match SeparabilityCert::establish(&rules[outer], &rules[inner]) {
                    Ok(Some(cert)) => analysis.separability.push((outer, inner, cert)),
                    Ok(None) => {}
                    Err(e) => analysis.notes.push(format!(
                        "separability analysis ({outer},{inner}) failed: {e}"
                    )),
                }
            }
        }

        analysis
    }

    /// The analyzed rules.
    pub fn rules(&self) -> &[LinearRule] {
        &self.rules
    }

    /// The selection the analysis was made for, if any.
    pub fn selection(&self) -> Option<&Selection> {
        self.selection.as_ref()
    }

    /// Uniform-boundedness certificate (single-rule sets only).
    pub fn boundedness(&self) -> Option<&BoundednessCert> {
        self.boundedness.as_ref()
    }

    /// Cluster-decomposition certificate (multi-rule sets only).
    pub fn commutativity(&self) -> Option<&CommutativityCert> {
        self.commutativity.as_ref()
    }

    /// Recursive-redundancy certificate (single-rule sets only).
    pub fn redundancy(&self) -> Option<&RedundancyCert> {
        self.redundancy.as_ref()
    }

    /// Separable-algorithm candidates `(outer, inner, cert)`.
    pub fn separability(&self) -> &[(usize, usize, SeparabilityCert)] {
        &self.separability
    }

    /// Diagnostics from analyses that errored (rather than merely failing
    /// to find a certificate).
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// True iff no specialized strategy is licensed.
    pub fn has_no_certificates(&self) -> bool {
        self.boundedness.is_none()
            && self.commutativity.is_none()
            && self.redundancy.is_none()
            && self.separability.is_empty()
    }

    /// Pick the best licensed strategy, mirroring the paper's preference
    /// order: exhaust a bounded recursion, run the separable algorithm for
    /// selections, decompose commuting clusters, bound a redundant factor,
    /// and fall back to semi-naive over the rule sum.
    pub fn plan(&self) -> Plan {
        if let Some(cert) = &self.boundedness {
            return self.wrap_selection(Plan::bounded_prefix(cert.clone()));
        }
        if let Some(sel) = &self.selection {
            // Candidates were collected only for outers the selection
            // commutes with, so the constructor's premise check holds.
            if let Some((_, _, cert)) = self.separability.first() {
                if let Ok(plan) = Plan::separable(cert.clone(), sel.clone()) {
                    return plan;
                }
            }
        }
        if let Some(cert) = &self.commutativity {
            return self.wrap_selection(Plan::decomposed(cert.clone()));
        }
        if let Some(cert) = &self.redundancy {
            return self.wrap_selection(Plan::redundancy_bounded(cert.clone()));
        }
        let mut plan = Plan::direct(self.rules.clone());
        plan.rationale =
            "no decomposition certificate found: semi-naive on the rule sum".to_owned();
        self.wrap_selection(plan)
    }

    fn wrap_selection(&self, plan: Plan) -> Plan {
        match &self.selection {
            Some(sel) => Plan::select_after(plan, sel.clone()),
            None => plan,
        }
    }

    /// A human-readable certificate listing (used by `linrec analyze`).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut any = false;
        if let Some(c) = &self.boundedness {
            out.push_str(&format!("• boundedness: {}\n", c.rationale()));
            any = true;
        }
        if let Some(c) = &self.commutativity {
            out.push_str(&format!("• commutativity: {}\n", c.rationale()));
            any = true;
        }
        if let Some(c) = &self.redundancy {
            out.push_str(&format!("• redundancy: {}\n", c.rationale()));
            any = true;
        }
        for (outer, inner, c) in &self.separability {
            out.push_str(&format!(
                "• separability (outer rule {outer}, inner rule {inner}): {}\n",
                c.rationale()
            ));
            any = true;
        }
        if !any {
            out.push_str("• no certificates: only the baseline strategies are licensed\n");
        }
        for note in &self.notes {
            out.push_str(&format!("• note: {note}\n"));
        }
        out
    }
}

// --- plans ----------------------------------------------------------------

/// The strategy tree. Construction of the specialized nodes requires the
/// corresponding certificate; see the module docs.
#[derive(Debug, Clone)]
pub struct Plan {
    node: PlanNode,
    rationale: String,
}

#[derive(Debug, Clone)]
enum PlanNode {
    Direct {
        rules: Vec<LinearRule>,
    },
    Naive {
        rules: Vec<LinearRule>,
    },
    BoundedPrefix {
        cert: BoundednessCert,
    },
    Decomposed {
        cert: CommutativityCert,
    },
    Separable {
        cert: SeparabilityCert,
        sel: Selection,
    },
    RedundancyBounded {
        cert: Box<RedundancyCert>,
    },
    SelectAfter {
        inner: Box<Plan>,
        sel: Selection,
    },
}

/// A certificate-free view of a plan's structure, for matching and
/// reporting (certificates stay inside the [`Plan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanShape {
    /// Semi-naive over the rule sum.
    Direct,
    /// Naive fixpoint (baseline).
    Naive,
    /// `A* = Σ_{m<N} Aᵐ` with the certified application count.
    BoundedPrefix {
        /// Number of operator applications (`N − 1`).
        applications: usize,
    },
    /// One star per commuting cluster (rule indices).
    Decomposed {
        /// The certified clusters.
        clusters: Vec<Vec<usize>>,
    },
    /// `outer* (σ inner*)`.
    Separable,
    /// Theorem 4.2 bounded evaluation of a redundant factor.
    RedundancyBounded,
    /// Apply a selection to an inner plan's result.
    SelectAfter(Box<PlanShape>),
}

/// The result of [`Plan::execute`]: the relation, the paper's cost
/// counters, and one [`TraceStep`] per executed phase.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The computed relation (with any selection already applied).
    pub relation: Relation,
    /// Aggregated statistics across all phases.
    pub stats: EvalStats,
    /// Per-phase execution record, in execution order.
    pub trace: Vec<TraceStep>,
}

/// One executed phase of a plan.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// What ran (human-readable).
    pub label: String,
    /// That phase's statistics.
    pub stats: EvalStats,
}

impl Plan {
    /// Semi-naive evaluation of `(Σ rules)*` — always licensed.
    pub fn direct(rules: impl Into<Vec<LinearRule>>) -> Plan {
        Plan {
            node: PlanNode::Direct {
                rules: rules.into(),
            },
            rationale: "semi-naive evaluation of the rule sum (the paper's baseline)".to_owned(),
        }
    }

    /// Naive fixpoint — always licensed (substrate baseline).
    pub fn naive(rules: impl Into<Vec<LinearRule>>) -> Plan {
        Plan {
            node: PlanNode::Naive {
                rules: rules.into(),
            },
            rationale: "naive fixpoint (re-applies every operator to the whole relation)"
                .to_owned(),
        }
    }

    /// Exhaust a uniformly bounded recursion in `N − 1` applications.
    /// Licensed by a [`BoundednessCert`].
    pub fn bounded_prefix(cert: BoundednessCert) -> Plan {
        let rationale = cert.rationale().to_owned();
        Plan {
            node: PlanNode::BoundedPrefix { cert },
            rationale,
        }
    }

    /// One star per commuting cluster, right-to-left. Licensed by a
    /// [`CommutativityCert`].
    pub fn decomposed(cert: CommutativityCert) -> Plan {
        let rationale = cert.rationale().to_owned();
        Plan {
            node: PlanNode::Decomposed { cert },
            rationale,
        }
    }

    /// The separable algorithm `outer* (σ inner*)` (Algorithm 4.1).
    /// Licensed by a [`SeparabilityCert`] for the operator pair; the
    /// selection premise (σ commutes with `outer`) is checked here and is
    /// the only way construction can fail.
    pub fn separable(cert: SeparabilityCert, sel: Selection) -> Result<Plan, StrategyError> {
        if !sel.commutes_with(cert.outer()) {
            return Err(StrategyError::SelectionDoesNotCommute);
        }
        let rationale = format!(
            "σ commutes with the outer operator and {}",
            cert.rationale()
        );
        Ok(Plan {
            node: PlanNode::Separable { cert, sel },
            rationale,
        })
    }

    /// Theorem 4.2 bounded evaluation. Licensed by a [`RedundancyCert`].
    pub fn redundancy_bounded(cert: RedundancyCert) -> Plan {
        let rationale = cert.rationale().to_owned();
        Plan {
            node: PlanNode::RedundancyBounded {
                cert: Box::new(cert),
            },
            rationale,
        }
    }

    /// Apply `sel` to `inner`'s result — always licensed (`σ` after star).
    pub fn select_after(inner: Plan, sel: Selection) -> Plan {
        let rationale = format!("apply σ to the result of: {}", inner.rationale);
        Plan {
            node: PlanNode::SelectAfter {
                inner: Box::new(inner),
                sel,
            },
            rationale,
        }
    }

    /// Why this plan is licensed (certificate-backed where applicable).
    pub fn rationale(&self) -> &str {
        &self.rationale
    }

    /// The certificate-free structure of the plan.
    pub fn shape(&self) -> PlanShape {
        match &self.node {
            PlanNode::Direct { .. } => PlanShape::Direct,
            PlanNode::Naive { .. } => PlanShape::Naive,
            PlanNode::BoundedPrefix { cert } => PlanShape::BoundedPrefix {
                applications: cert.applications(),
            },
            PlanNode::Decomposed { cert } => PlanShape::Decomposed {
                clusters: cert.clusters().to_vec(),
            },
            PlanNode::Separable { .. } => PlanShape::Separable,
            PlanNode::RedundancyBounded { .. } => PlanShape::RedundancyBounded,
            PlanNode::SelectAfter { inner, .. } => PlanShape::SelectAfter(Box::new(inner.shape())),
        }
    }

    /// A multi-line, indented rendering of the plan tree with rationales.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match &self.node {
            PlanNode::Direct { rules } => {
                out.push_str(&format!("{pad}Direct ({} rules)\n", rules.len()));
            }
            PlanNode::Naive { rules } => {
                out.push_str(&format!("{pad}Naive ({} rules)\n", rules.len()));
            }
            PlanNode::BoundedPrefix { cert } => {
                out.push_str(&format!(
                    "{pad}BoundedPrefix (≤ {} applications)\n",
                    cert.applications()
                ));
            }
            PlanNode::Decomposed { cert } => {
                out.push_str(&format!(
                    "{pad}Decomposed ({} clusters, applied right-to-left)\n",
                    cert.clusters().len()
                ));
                for cluster in cert.clusters().iter().rev() {
                    let rules: Vec<String> = cluster
                        .iter()
                        .map(|&i| cert.rules()[i].to_string())
                        .collect();
                    out.push_str(&format!("{pad}  star of {{ {} }}\n", rules.join("  +  ")));
                }
            }
            PlanNode::Separable { cert, sel } => {
                out.push_str(&format!("{pad}Separable outer*(σ inner*)\n"));
                out.push_str(&format!("{pad}  outer: {}\n", cert.outer()));
                out.push_str(&format!(
                    "{pad}  inner: {} (absorbs σ {:?})\n",
                    cert.inner(),
                    sel.bindings()
                ));
            }
            PlanNode::RedundancyBounded { cert } => {
                let dec = cert.decomposition();
                out.push_str(&format!(
                    "{pad}RedundancyBounded ({} elided after {} C-applications)\n",
                    cert.pred(),
                    (dec.torsion.n - 1) * dec.l
                ));
                out.push_str(&format!("{pad}  B: {}\n", dec.b));
                out.push_str(&format!("{pad}  C: {}\n", dec.c));
            }
            PlanNode::SelectAfter { inner, sel } => {
                out.push_str(&format!("{pad}SelectAfter σ {:?}\n", sel.bindings()));
                inner.describe_into(out, depth + 1);
            }
        }
        out.push_str(&format!("{pad}  rationale: {}\n", self.rationale));
    }

    /// Run the plan over `db` starting from `init`.
    pub fn execute(&self, db: &Database, init: &Relation) -> Result<ExecOutcome, StrategyError> {
        let mut trace = Vec::new();
        let (relation, mut stats) = self.run(db, init, &mut trace)?;
        stats.tuples = relation.len();
        Ok(ExecOutcome {
            relation,
            stats,
            trace,
        })
    }

    fn run(
        &self,
        db: &Database,
        init: &Relation,
        trace: &mut Vec<TraceStep>,
    ) -> Result<(Relation, EvalStats), StrategyError> {
        match &self.node {
            PlanNode::Direct { rules } => {
                let (rel, stats) = seminaive_star(rules, db, init);
                trace.push(TraceStep {
                    label: format!("semi-naive star over {} rule(s)", rules.len()),
                    stats,
                });
                Ok((rel, stats))
            }
            PlanNode::Naive { rules } => {
                let (rel, stats) = naive_star(rules, db, init);
                trace.push(TraceStep {
                    label: format!("naive fixpoint over {} rule(s)", rules.len()),
                    stats,
                });
                Ok((rel, stats))
            }
            PlanNode::BoundedPrefix { cert } => {
                let (rel, stats) = bounded_prefix(cert.rule(), db, init, cert.applications());
                trace.push(TraceStep {
                    label: format!("bounded prefix (≤ {} applications)", cert.applications()),
                    stats,
                });
                Ok((rel, stats))
            }
            PlanNode::Decomposed { cert } => {
                let mut stats = EvalStats::default();
                let mut current = init.clone();
                for cluster in cert.clusters().iter().rev() {
                    let group: Vec<LinearRule> =
                        cluster.iter().map(|&i| cert.rules()[i].clone()).collect();
                    let (next, s) = seminaive_star(&group, db, &current);
                    trace.push(TraceStep {
                        label: format!("star of cluster {cluster:?}"),
                        stats: s,
                    });
                    stats += s;
                    current = next;
                }
                stats.tuples = current.len();
                Ok((current, stats))
            }
            PlanNode::Separable { cert, sel } => {
                exec_separable(cert.outer(), cert.inner(), sel, db, init, trace)
            }
            PlanNode::RedundancyBounded { cert } => exec_redundancy_bounded(cert, db, init, trace),
            PlanNode::SelectAfter { inner, sel } => {
                let (rel, mut stats) = inner.run(db, init, trace)?;
                let out = sel.apply(&rel);
                stats.tuples = out.len();
                trace.push(TraceStep {
                    label: format!("selection σ {:?}", sel.bindings()),
                    stats: EvalStats {
                        tuples: out.len(),
                        ..EvalStats::default()
                    },
                });
                Ok((out, stats))
            }
        }
    }
}

/// The separable algorithm (Algorithm 4.1): `outer* (σ inner*)`, pushing
/// the selection into `inner`'s parameter relations when the binding
/// closure allows it.
fn exec_separable(
    outer: &LinearRule,
    inner: &LinearRule,
    sel: &Selection,
    db: &Database,
    init: &Relation,
    trace: &mut Vec<TraceStep>,
) -> Result<(Relation, EvalStats), StrategyError> {
    // Re-checked so a cloned-and-mutated selection cannot sneak past the
    // constructor check (construction already guarantees it for planner
    // paths).
    if !sel.commutes_with(outer) {
        return Err(StrategyError::SelectionDoesNotCommute);
    }
    let (selected, mut stats) = if magic_applicable(inner, sel) {
        let (rel, s) = eval_selected_star(inner, db, init, sel);
        trace.push(TraceStep {
            label: "σ-pushed inner star (magic frontier)".to_owned(),
            stats: s,
        });
        (rel, s)
    } else {
        let (full, mut s) = seminaive_star(std::slice::from_ref(inner), db, init);
        let rel = sel.apply(&full);
        s.tuples = rel.len();
        trace.push(TraceStep {
            label: "inner star, then σ (push-down not applicable)".to_owned(),
            stats: s,
        });
        (rel, s)
    };
    let (result, s2) = seminaive_star(std::slice::from_ref(outer), db, &selected);
    trace.push(TraceStep {
        label: "outer star over the selected relation".to_owned(),
        stats: s2,
    });
    stats += s2;
    // σ commutes with `outer`, so the result is already σ-selected; apply
    // once more for belt and braces (cheap, and keeps the contract obvious).
    let out = sel.apply(&result);
    stats.tuples = out.len();
    Ok((out, stats))
}

/// Redundancy-bounded evaluation (Theorem 4.2 via the Theorem 6.4
/// witnesses): with `Aᴸ = BCᴸ`, `Cᴺ = Cᴷ`, and period `P = N−K`,
///
/// ```text
/// A*q = Σ_{m<KL} Aᵐq  ∪  Σ_{n<L} Aⁿ ( Σ_{r<P} B( C^{(K+r)L} ( (Bᴾ)* ( B^{K−1+r} q ))))
/// ```
///
/// an identity obtained from `A^{mL} = B·C^{mL}·B^{m−1}` (first equality of
/// Theorem 6.4 plus the `Cᴸ`-commutation) and the torsion collapse
/// `C^{mL} = C^{g(m)L}`. `C` is applied at most `(N−1)·L` times per branch —
/// the paper's "C is processed only a fixed finite number of times, beyond
/// which only B is processed".
fn exec_redundancy_bounded(
    cert: &RedundancyCert,
    db: &Database,
    init: &Relation,
    trace: &mut Vec<TraceStep>,
) -> Result<(Relation, EvalStats), StrategyError> {
    let rule = cert.rule();
    let dec = cert.decomposition();
    let (k, n, l) = (dec.torsion.k, dec.torsion.n, dec.l);
    let period = n - k;
    let mut stats = EvalStats::default();

    // Part 1: Σ_{m=0}^{KL-1} Aᵐ q.
    let (mut result, s1) = bounded_prefix(rule, db, init, k * l - 1);
    trace.push(TraceStep {
        label: format!("prefix Σ_{{m<{}}} Aᵐ q", k * l),
        stats: s1,
    });
    stats += s1;

    // (Bᴾ)* is evaluated with the composed rule Bᴾ.
    let b_period = linrec_cq::power(&dec.b, period)?;

    // Part 2 inner sums.
    let branch_stats_before = stats;
    let mut acc = Relation::new(rule.arity());
    let mut img = exact_power(&dec.b, db, init, k - 1, &mut stats); // B^{K-1} q
    for r in 0..period {
        if r > 0 {
            img = exact_power(&dec.b, db, &img, 1, &mut stats); // B^{K-1+r} q
        }
        let (bstar, s) = seminaive_star(std::slice::from_ref(&b_period), db, &img);
        stats += s;
        let after_c = exact_power(&dec.c, db, &bstar, (k + r) * l, &mut stats);
        let with_b = exact_power(&dec.b, db, &after_c, 1, &mut stats);
        acc.union_in_place(&with_b);
    }

    // Σ_{n<L} Aⁿ (acc).
    let mut cur = acc.clone();
    result.union_in_place(&acc);
    for _ in 1..l {
        cur = exact_power(rule, db, &cur, 1, &mut stats);
        result.union_in_place(&cur);
    }
    {
        let mut branch = stats;
        branch.iterations -= branch_stats_before.iterations;
        branch.applications -= branch_stats_before.applications;
        branch.derivations -= branch_stats_before.derivations;
        branch.duplicates -= branch_stats_before.duplicates;
        trace.push(TraceStep {
            label: format!(
                "{period} periodic branch(es) with C bounded at {} applications",
                (n - 1) * l
            ),
            stats: branch,
        });
    }

    stats.tuples = result.len();
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rules, workload};
    use linrec_datalog::{parse_linear_rule, Symbol, Value};

    fn updown() -> Vec<LinearRule> {
        vec![rules::down_rule(), rules::up_rule()]
    }

    #[test]
    fn analysis_licenses_decomposition_for_up_down() {
        let rules = updown();
        let analysis = Analysis::of(&rules, None);
        let plan = analysis.plan();
        assert!(matches!(plan.shape(), PlanShape::Decomposed { .. }));
        assert!(plan.rationale().contains("Theorem 3.1"));

        let (db, init) = workload::up_down(5, 3);
        let planned = plan.execute(&db, &init).unwrap();
        let direct = Plan::direct(rules).execute(&db, &init).unwrap();
        assert_eq!(planned.relation.sorted(), direct.relation.sorted());
        assert!(planned.stats.duplicates <= direct.stats.duplicates);
        assert_eq!(planned.trace.len(), 2); // one star per cluster
    }

    #[test]
    fn analysis_uses_separable_for_selected_queries() {
        let rules = updown();
        let sel = Selection::eq(1, (1i64 << 6) + 1);
        let analysis = Analysis::of(&rules, Some(&sel));
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::Separable);

        let (db, init) = workload::up_down(5, 3);
        let fast = plan.execute(&db, &init).unwrap();
        let slow = Plan::select_after(Plan::direct(rules), sel)
            .execute(&db, &init)
            .unwrap();
        assert_eq!(fast.relation.sorted(), slow.relation.sorted());
    }

    #[test]
    fn analysis_detects_bounded_recursion() {
        let rule = parse_linear_rule("p(x,y) :- p(x,y), mark(x).").unwrap();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::BoundedPrefix { applications: 1 });

        let mut db = Database::new();
        db.set_relation("mark", Relation::from_tuples(1, [vec![Value::Int(1)]]));
        let init = Relation::from_pairs([(1, 5), (2, 6)]);
        let outcome = plan.execute(&db, &init).unwrap();
        assert_eq!(outcome.relation.len(), 2);
        assert!(outcome.stats.iterations <= 1);
    }

    #[test]
    fn analysis_licenses_redundancy_bounded_for_shopping() {
        let rule = rules::shopping_rule();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        assert!(analysis.redundancy().is_some());
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::RedundancyBounded);

        let (db, init) = workload::shopping(40, 10, 3, 5);
        let bounded = plan.execute(&db, &init).unwrap();
        let direct = Plan::direct(vec![rule]).execute(&db, &init).unwrap();
        assert_eq!(bounded.relation.sorted(), direct.relation.sorted());
    }

    #[test]
    fn certificate_less_rule_sets_fall_back_to_direct() {
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), a(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(x,z), b(z,y).").unwrap(),
        ];
        let analysis = Analysis::of(&rules, None);
        assert!(analysis.has_no_certificates());
        assert_eq!(analysis.plan().shape(), PlanShape::Direct);

        let sel = Selection::eq(0, 1);
        let analysis = Analysis::of(&rules, Some(&sel));
        assert_eq!(
            analysis.plan().shape(),
            PlanShape::SelectAfter(Box::new(PlanShape::Direct))
        );
    }

    #[test]
    fn separable_construction_rejects_noncommuting_selection() {
        // σ on position 1 does not commute with the down-rule.
        let cert = SeparabilityCert::establish(&rules::down_rule(), &rules::up_rule())
            .unwrap()
            .unwrap();
        assert_eq!(
            Plan::separable(cert, Selection::eq(1, 4)).unwrap_err(),
            StrategyError::SelectionDoesNotCommute
        );
    }

    #[test]
    fn naive_plan_agrees_with_direct() {
        let rules = updown();
        let (db, init) = workload::up_down(4, 9);
        let a = Plan::direct(rules.clone()).execute(&db, &init).unwrap();
        let b = Plan::naive(rules).execute(&db, &init).unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
        assert!(b.stats.duplicates >= a.stats.duplicates);
    }

    #[test]
    fn outcome_trace_and_describe_are_informative() {
        let rule = rules::shopping_rule();
        let cert = RedundancyCert::establish(&rule, Symbol::new("cheap"), 8)
            .unwrap()
            .unwrap();
        let plan = Plan::select_after(Plan::redundancy_bounded(cert), Selection::eq(0, 1));
        let text = plan.describe();
        assert!(text.contains("SelectAfter"));
        assert!(text.contains("RedundancyBounded"));
        assert!(text.contains("rationale"));

        let (db, init) = workload::shopping(20, 8, 2, 1);
        let outcome = plan.execute(&db, &init).unwrap();
        assert!(outcome.trace.len() >= 3);
        assert_eq!(outcome.stats.tuples, outcome.relation.len());
    }

    #[test]
    fn empty_selection_analysis_on_single_rule() {
        // A single unbounded, irredundant rule: plain direct.
        let rule = rules::tc_right();
        let analysis = Analysis::of(std::slice::from_ref(&rule), None);
        assert!(analysis.has_no_certificates());
        let plan = analysis.plan();
        assert_eq!(plan.shape(), PlanShape::Direct);
        let edges = workload::chain(10);
        let db = workload::graph_db("q", edges.clone());
        let outcome = plan.execute(&db, &edges).unwrap();
        assert_eq!(outcome.relation.len(), 55);
    }
}
