//! The engine's parallelism knob: how many threads a fixpoint may use, and
//! the shared worker pool they run on.
//!
//! [`Parallelism`] is a small, cheaply clonable handle threaded through the
//! planner ([`crate::planner::Plan::parallelize`]), the parallel semi-naive
//! variants ([`crate::seminaive::seminaive_star_par_in`] /
//! [`crate::seminaive::seminaive_resume_par_in`]), and the service's delta
//! maintenance. It carries:
//!
//! * the **thread count** (= shard count per parallel round), and
//! * the **minimum delta size** below which a round stays sequential — the
//!   cost model's cutover point ([`crate::planner::CostModel::parallel_cutover`]):
//!   sharding, dispatch, and merge have a fixed per-round price that only a
//!   large enough delta amortizes.
//!
//! Pools are **engine-owned and shared**: two `Parallelism` handles asking
//! for the same thread count reuse one process-wide [`WorkerPool`] (kept in
//! a registry of weak references), so the planner's fixpoints and the
//! service's maintenance never stack two competing pools of threads.
//! `Parallelism::sequential()` carries no pool at all and makes every
//! `*_par_in` entry point degrade to the plain sequential implementation —
//! the default everywhere, so existing callers are bit-for-bit unchanged.

use crate::pool::WorkerPool;
use linrec_datalog::hash::FastMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Process-wide pool registry: one pool per distinct thread count, kept
/// alive only while some `Parallelism` handle references it.
fn shared_pool(threads: usize) -> Arc<WorkerPool> {
    static POOLS: OnceLock<Mutex<FastMap<usize, Weak<WorkerPool>>>> = OnceLock::new();
    let registry = POOLS.get_or_init(|| Mutex::new(FastMap::default()));
    let mut map = registry.lock().expect("pool registry poisoned");
    if let Some(pool) = map.get(&threads).and_then(Weak::upgrade) {
        return pool;
    }
    let pool = Arc::new(WorkerPool::new(threads));
    map.insert(threads, Arc::downgrade(&pool));
    pool
}

/// Environment variable overriding the engine's default thread count
/// (read by [`Parallelism::from_env`]; used by CI to force the concurrent
/// path on machines whose available parallelism is low).
pub const THREADS_ENV: &str = "LINREC_THREADS";

/// How parallel a fixpoint evaluation may be. See the module docs.
#[derive(Clone)]
pub struct Parallelism {
    threads: usize,
    min_delta: usize,
    pool: Option<Arc<WorkerPool>>,
}

impl Parallelism {
    /// No parallelism: every round runs on the calling thread. This is the
    /// default for every plan and the behavior of all pre-existing entry
    /// points.
    pub fn sequential() -> Parallelism {
        Parallelism {
            threads: 1,
            min_delta: usize::MAX,
            pool: None,
        }
    }

    /// Up to `threads`-way sharding per round, on the shared engine pool.
    /// The sequential cutover defaults to the stock cost model's
    /// [`crate::planner::CostModel::parallel_cutover`]; tune it with
    /// [`Parallelism::with_min_delta`]. `threads <= 1` is sequential.
    pub fn new(threads: usize) -> Parallelism {
        if threads <= 1 {
            return Parallelism::sequential();
        }
        Parallelism {
            threads,
            min_delta: crate::planner::CostModel::default().parallel_cutover(threads),
            pool: Some(shared_pool(threads)),
        }
    }

    /// One thread per available core (`std::thread::available_parallelism`).
    pub fn available() -> Parallelism {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Thread count from the `LINREC_THREADS` environment variable, falling
    /// back to [`Parallelism::available`] when unset or unparsable.
    pub fn from_env() -> Parallelism {
        match std::env::var(THREADS_ENV).ok().and_then(|v| v.parse().ok()) {
            Some(n) => Parallelism::new(n),
            None => Parallelism::available(),
        }
    }

    /// Override the minimum delta size for a parallel round (rounds with
    /// `|Δ| <` this stay sequential). Property tests set it to 1 so tiny
    /// random deltas still exercise the concurrent path.
    pub fn with_min_delta(mut self, min_delta: usize) -> Parallelism {
        if self.pool.is_some() {
            self.min_delta = min_delta;
        }
        self
    }

    /// The maximum shard/thread count per round (1 when sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rounds with a delta smaller than this run sequentially.
    pub fn min_delta(&self) -> usize {
        self.min_delta
    }

    /// True iff this knob can ever run a round in parallel.
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// The shared pool, when parallel.
    pub(crate) fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::sequential()
    }
}

impl fmt::Debug for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Parallelism")
            .field("threads", &self.threads)
            .field("min_delta", &self.min_delta)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_has_no_pool_and_never_fires() {
        let p = Parallelism::sequential();
        assert_eq!(p.threads(), 1);
        assert!(!p.is_parallel());
        assert!(p.pool().is_none());
        // min_delta override on a sequential knob is a no-op.
        assert!(!p.with_min_delta(1).is_parallel());
    }

    #[test]
    fn same_thread_count_shares_one_pool() {
        let a = Parallelism::new(3);
        let b = Parallelism::new(3);
        let c = Parallelism::new(2);
        assert!(Arc::ptr_eq(a.pool().unwrap(), b.pool().unwrap()));
        assert!(!Arc::ptr_eq(a.pool().unwrap(), c.pool().unwrap()));
        assert_eq!(a.pool().unwrap().threads(), 3);
    }

    #[test]
    fn one_thread_degrades_to_sequential() {
        assert!(!Parallelism::new(1).is_parallel());
        assert!(!Parallelism::new(0).is_parallel());
        assert!(Parallelism::new(2).is_parallel());
    }

    #[test]
    fn min_delta_override_sticks() {
        let p = Parallelism::new(4).with_min_delta(1);
        assert_eq!(p.min_delta(), 1);
        assert!(Parallelism::new(4).min_delta() > 1);
    }
}
