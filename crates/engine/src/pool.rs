//! A small fixed-size worker pool over `std::thread` (the container has no
//! async runtime; jobs are short and CPU-bound, so threads suffice).
//!
//! Promoted out of `linrec-service` so the evaluation engine itself can fan
//! work out: the parallel semi-naive fixpoint ([`crate::seminaive`])
//! dispatches one job per delta shard per round, and the service keeps
//! using the same type for its TCP front end. Jobs are closures dispatched
//! over an MPSC channel shared by the workers (`Arc<Mutex<Receiver>>` — the
//! classic std-only work queue); [`WorkerPool::submit`] returns a receiver
//! for the job's result so callers can join on it.
//!
//! A panicking job no longer kills its worker: each job runs under
//! `catch_unwind`, so a pool keeps its full thread count for the life of
//! the process (the engine's fixpoint pool is shared and long-lived — see
//! [`crate::parallel::Parallelism`]). The panic still surfaces to anyone
//! joining on the job's result: the result sender is dropped without a
//! send, so `recv` returns `Err`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads executing queued jobs.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("linrec-worker-{i}"))
                    .spawn(move || loop {
                        // Take the next job while holding the receiver
                        // lock, run it without.
                        let job = match rx.lock().expect("worker queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break, // pool dropped
                        };
                        // Isolate panics: the worker survives, the job's
                        // result channel (if any) reports the failure by
                        // hanging up.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queue a fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("worker queue closed");
    }

    /// Queue a job and get a receiver for its result. Dropping the
    /// receiver abandons the result; the job still runs. If the job
    /// panics, `recv` on the receiver returns `Err`.
    pub fn submit<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Receiver<T> {
        let (tx, rx) = channel();
        self.execute(move || {
            let _ = tx.send(job());
        });
        rx
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; join so
        // queued jobs finish before the pool's owner proceeds.
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let rxs: Vec<_> = (0..32).map(|i| pool.submit(move || i * 2)).collect();
        let mut results: Vec<i32> = rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn drop_waits_for_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn zero_threads_still_works() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.submit(|| 7).recv().unwrap(), 7);
    }

    #[test]
    fn a_panicking_job_reports_err_and_the_worker_survives() {
        let pool = WorkerPool::new(1);
        let rx = pool.submit(|| -> u32 { panic!("job blew up") });
        assert!(rx.recv().is_err());
        // The single worker must still be alive to serve the next job.
        assert_eq!(pool.submit(|| 41 + 1).recv().unwrap(), 42);
    }
}
