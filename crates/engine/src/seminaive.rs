//! Naive and semi-naive fixpoint evaluation (Bancilhon \[5\]).
//!
//! `star(rules, db, init)` computes `(Σᵢ Aᵢ)* init` — the minimal solution
//! of `P = Σᵢ Aᵢ(P) ∪ init` (paper, eq. 2.3). Semi-naive applies each
//! operator only to the tuples new in the previous round, which realizes
//! the derivation-graph model of Theorem 3.1 ("the same tuple is not
//! derived through the same arc more than once"); naive evaluation re-joins
//! the whole accumulated relation each round and serves as the substrate
//! baseline (experiment E6).

use crate::join::{apply_linear, Indexes};
use crate::stats::EvalStats;
use linrec_datalog::{Database, LinearRule, Relation};

/// Semi-naive least fixpoint of `init ∪ Σᵢ Aᵢ(P)`.
pub fn seminaive_star(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
) -> (Relation, EvalStats) {
    seminaive_star_in(rules, db, init, &mut Indexes::new())
}

/// [`seminaive_star`] with a caller-provided scan/index cache, so
/// multi-phase strategies over the same database (decomposed clusters,
/// redundancy-bounded branches) materialize each EDB relation only once.
pub fn seminaive_star_in(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    indexes: &mut Indexes,
) -> (Relation, EvalStats) {
    let mut total = init.clone();
    let stats = seminaive_resume_in(rules, db, &mut total, init.clone(), None, indexes);
    (total, stats)
}

/// Resume a semi-naive fixpoint from an already-materialized relation —
/// the primitive behind incremental view maintenance.
///
/// Preconditions (the caller's obligations, not checked):
/// * every tuple of `delta` is already in `total`;
/// * `total` is closed under the rules *except* through `delta`, i.e.
///   `Aᵢ(total) ⊆ total ∪ Aᵢ(delta)` for every rule — for linear rules
///   (union-distributive in the recursive predicate) this holds whenever
///   `total = old ∪ delta` with `old` a fixpoint of the rules over the
///   *previous* EDB and `delta` covering every rule application that
///   involves a changed EDB tuple.
///
/// Under those premises the loop extends `total` in place to the least
/// fixpoint of `init ∪ Σᵢ Aᵢ(P)` for any `init ⊆ total`, re-deriving
/// nothing reachable only from the unchanged region. `round_cap` bounds
/// the number of delta rounds: sound when a boundedness certificate
/// guarantees the fixpoint is reached within that many applications
/// (`None` runs to fixpoint).
pub fn seminaive_resume_in(
    rules: &[LinearRule],
    db: &Database,
    total: &mut Relation,
    mut delta: Relation,
    round_cap: Option<usize>,
    indexes: &mut Indexes,
) -> EvalStats {
    let mut stats = EvalStats::default();
    while !delta.is_empty() && round_cap.is_none_or(|cap| stats.iterations < cap) {
        stats.iterations += 1;
        let mut next_delta = Relation::new(total.arity());
        for rule in rules {
            let (derived, count) = apply_linear(rule, db, &delta, indexes);
            let mut new = 0u64;
            for t in derived.iter() {
                if !total.contains(t) && next_delta.insert(t) {
                    new += 1;
                }
            }
            // `new` counts tuples unseen in `total`; duplicates within
            // `derived` itself were already collapsed by the relation, so
            // recover them from the derivation count.
            stats.record(count, new);
        }
        total.union_in_place(&next_delta);
        delta = next_delta;
    }
    stats.tuples = total.len();
    stats
}

/// Naive least fixpoint: re-applies every operator to the whole accumulated
/// relation until nothing changes.
pub fn naive_star(rules: &[LinearRule], db: &Database, init: &Relation) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut indexes = Indexes::new();
    let mut total = init.clone();
    loop {
        stats.iterations += 1;
        let mut round = Relation::new(total.arity());
        for rule in rules {
            let (derived, count) = apply_linear(rule, db, &total, &mut indexes);
            let mut new = 0u64;
            for t in derived.iter() {
                if !total.contains(t) && round.insert(t) {
                    new += 1;
                }
            }
            stats.record(count, new);
        }
        if round.is_empty() {
            break;
        }
        total.union_in_place(&round);
    }
    stats.tuples = total.len();
    (total, stats)
}

/// The bounded prefix `Σ_{m=0}^{count} Aᵐ init` for a single operator,
/// evaluated semi-naively (used by the redundancy-bounded strategy,
/// Theorem 4.2).
pub fn bounded_prefix(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
) -> (Relation, EvalStats) {
    bounded_prefix_in(rule, db, init, count, &mut Indexes::new())
}

/// [`bounded_prefix`] with a caller-provided scan/index cache.
pub fn bounded_prefix_in(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
    indexes: &mut Indexes,
) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut total = init.clone();
    let mut delta = init.clone();
    for _ in 0..count {
        if delta.is_empty() {
            break;
        }
        stats.iterations += 1;
        let (derived, count) = apply_linear(rule, db, &delta, indexes);
        let mut next_delta = Relation::new(total.arity());
        let mut new = 0u64;
        for t in derived.iter() {
            if !total.contains(t) && next_delta.insert(t) {
                new += 1;
            }
        }
        stats.record(count, new);
        total.union_in_place(&next_delta);
        delta = next_delta;
    }
    stats.tuples = total.len();
    (total, stats)
}

/// The exact power image `Aᶜᵒᵘⁿᵗ(init)` (not accumulated).
pub fn exact_power(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
    stats: &mut EvalStats,
) -> Relation {
    exact_power_in(rule, db, init, count, stats, &mut Indexes::new())
}

/// [`exact_power`] with a caller-provided scan/index cache.
pub fn exact_power_in(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
    stats: &mut EvalStats,
    indexes: &mut Indexes,
) -> Relation {
    let mut current = init.clone();
    for _ in 0..count {
        let (next, derivs) = apply_linear(rule, db, &current, indexes);
        stats.record(derivs, next.len() as u64);
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn tc_rule() -> LinearRule {
        parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap()
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        db.set_relation("e", (0..n).map(|i| (i, i + 1)).collect::<Relation>());
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let db = chain_db(4); // 0→1→2→3→4
        let init = db.relation_named("e").unwrap().clone();
        let (result, stats) = seminaive_star(&[tc_rule()], &db, &init);
        // All pairs i<j: C(5,2) = 10.
        assert_eq!(result.len(), 10);
        assert_eq!(stats.tuples, 10);
        // A chain admits exactly one derivation per pair: no duplicates.
        assert_eq!(stats.duplicates, 0);
    }

    #[test]
    fn naive_equals_seminaive() {
        let db = chain_db(6);
        let init = db.relation_named("e").unwrap().clone();
        let (a, sa) = seminaive_star(&[tc_rule()], &db, &init);
        let (b, sb) = naive_star(&[tc_rule()], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
        // Naive re-derives everything each round: strictly more duplicates.
        assert!(sb.duplicates > sa.duplicates);
    }

    #[test]
    fn cycle_terminates() {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(0, 1), (1, 2), (2, 0)]));
        let init = db.relation_named("e").unwrap().clone();
        let (result, _) = seminaive_star(&[tc_rule()], &db, &init);
        assert_eq!(result.len(), 9); // complete digraph on 3 nodes
    }

    #[test]
    fn two_rule_sum() {
        let up = parse_linear_rule("p(x,y) :- p(x,z), up(z,y).").unwrap();
        let down = parse_linear_rule("p(x,y) :- p(w,y), down(x,w).").unwrap();
        let mut db = Database::new();
        db.set_relation("up", Relation::from_pairs([(1, 2)]));
        db.set_relation("down", Relation::from_pairs([(0, 1)]));
        let init = Relation::from_pairs([(1, 1)]);
        let (result, _) = seminaive_star(&[up, down], &db, &init);
        // {(1,1), (1,2), (0,1), (0,2)}.
        assert_eq!(result.len(), 4);
        assert!(result.contains(&[linrec_datalog::Value::Int(0), linrec_datalog::Value::Int(2)]));
    }

    #[test]
    fn bounded_prefix_stops_early() {
        let db = chain_db(10);
        let init = Relation::from_pairs([(0, 1)]);
        let (r2, _) = bounded_prefix(&tc_rule(), &db, &init, 2);
        // init ∪ A init ∪ A² init = {(0,1),(0,2),(0,3)}.
        assert_eq!(r2.len(), 3);
        let (rbig, _) = bounded_prefix(&tc_rule(), &db, &init, 100);
        assert_eq!(rbig.len(), 10);
    }

    #[test]
    fn exact_power_is_an_image() {
        let db = chain_db(10);
        let init = Relation::from_pairs([(0, 1)]);
        let mut stats = EvalStats::default();
        let p3 = exact_power(&tc_rule(), &db, &init, 3, &mut stats);
        assert_eq!(p3.sorted(), Relation::from_pairs([(0, 4)]).sorted());
    }

    #[test]
    fn resume_extends_a_materialized_fixpoint() {
        // Materialize TC of the chain 0→…→4, then append the edge (4,5)
        // and resume from a delta seeded with the new-edge consequences:
        // the result must equal the from-scratch fixpoint on the new EDB.
        let rule = tc_rule();
        let db = chain_db(4);
        let init = db.relation_named("e").unwrap().clone();
        let (mut total, _) = seminaive_star(std::slice::from_ref(&rule), &db, &init);

        let mut db2 = db.clone();
        db2.insert_tuple(
            linrec_datalog::Symbol::new("e"),
            Relation::from_pairs([(4, 5)]).row(0),
        );
        // Seed delta: the new edge plus every rule application through it.
        let mut delta_db = db2.clone();
        delta_db.set_relation("e", Relation::from_pairs([(4, 5)]));
        let mut idx = Indexes::new();
        let (through_new, _) = apply_linear(&rule, &delta_db, &total, &mut idx);
        let mut delta = Relation::from_pairs([(4, 5)]);
        for t in through_new.iter() {
            if !total.contains(t) {
                delta.insert(t);
            }
        }
        total.union_in_place(&delta);

        let stats = seminaive_resume_in(
            std::slice::from_ref(&rule),
            &db2,
            &mut total,
            delta,
            None,
            &mut Indexes::new(),
        );
        let init2 = db2.relation_named("e").unwrap().clone();
        let (scratch, _) = seminaive_star(&[rule], &db2, &init2);
        assert_eq!(total.sorted(), scratch.sorted());
        assert_eq!(stats.tuples, total.len());
        // C(6,2) = 15 pairs.
        assert_eq!(total.len(), 15);
    }

    #[test]
    fn resume_round_cap_limits_rounds() {
        let rule = tc_rule();
        let db = chain_db(10);
        let mut total = Relation::from_pairs([(0, 1)]);
        let delta = total.clone();
        let stats = seminaive_resume_in(
            &[rule],
            &db,
            &mut total,
            delta,
            Some(2),
            &mut Indexes::new(),
        );
        assert_eq!(stats.iterations, 2);
        // init ∪ A init ∪ A² init.
        assert_eq!(total.len(), 3);
    }

    #[test]
    fn empty_init_is_empty_star() {
        let db = chain_db(3);
        let init = Relation::new(2);
        let (result, stats) = seminaive_star(&[tc_rule()], &db, &init);
        assert!(result.is_empty());
        assert_eq!(stats.iterations, 0);
    }
}
