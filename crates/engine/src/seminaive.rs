//! Naive and semi-naive fixpoint evaluation (Bancilhon \[5\]), with an
//! optional shard-parallel round executor.
//!
//! `star(rules, db, init)` computes `(Σᵢ Aᵢ)* init` — the minimal solution
//! of `P = Σᵢ Aᵢ(P) ∪ init` (paper, eq. 2.3). Semi-naive applies each
//! operator only to the tuples new in the previous round, which realizes
//! the derivation-graph model of Theorem 3.1 ("the same tuple is not
//! derived through the same arc more than once"); naive evaluation re-joins
//! the whole accumulated relation each round and serves as the substrate
//! baseline (experiment E6).
//!
//! # Parallel rounds and the shard-by-join-key invariant
//!
//! The `*_par_in` variants run each round's rule applications over `K`
//! hash-partitioned shards of the delta on the shared engine pool
//! ([`crate::parallel::Parallelism`]). This is sound for exactly the
//! reason the paper cares about commutativity: within one semi-naive
//! round, every delta tuple is an **independent** premise. A linear
//! operator distributes over union — `A(Δ₁ ∪ … ∪ Δ_K) = A(Δ₁) ∪ … ∪
//! A(Δ_K)` — so any partition of `Δ` evaluates to the same derived set,
//! and the per-tuple derivations commute (this is the commutative case of
//! the commutativity-verification framing: operations on independently
//! derivable tuples can be reordered freely). Partitioning therefore
//! *commutes with the licensed plan*: a certificate that licenses a
//! cluster order `B* C*` speaks about the order of **operator stars**,
//! and sharding only reorders work *inside one application* of one
//! operator, never across applications. We hash on the recursive atom's
//! join-feeding column (`crate::join::partition_col`) purely for load
//! balance and probe locality — correctness holds for any partition.
//!
//! The round protocol keeps the output bit-identical to the sequential
//! executor:
//!
//! 1. **prepare** (one thread): scans revalidated, column indexes and join
//!    plans built ([`crate::join::prepare_rules`]);
//! 2. **probe** (K workers): each shard evaluates *every* rule body
//!    read-only ([`crate::join::apply_linear_rows`]), pre-filtering
//!    against the round-frozen total, into a private output buffer;
//! 3. **merge** (one thread): per rule, shard buffers fold into the next
//!    delta with a single deduplicating pass against the total's row-id
//!    table — the same `contains`/`insert` sequence the sequential loop
//!    runs, so results *and* statistics (derivations, duplicates, new
//!    tuples, per-rule attribution) are identical.
//!
//! Rounds whose delta is smaller than the cost model's cutover
//! ([`crate::planner::CostModel::parallel_cutover`]) stay sequential —
//! the fixed sharding/dispatch/merge price is only paid where the delta
//! can amortize it.

use crate::join::{apply_linear, apply_linear_rows, partition_col, prepare_rules, Indexes};
use crate::parallel::Parallelism;
use crate::profile;
use crate::stats::EvalStats;
use linrec_datalog::{Database, LinearRule, Relation, ShardView};
use std::sync::Arc;
use std::time::Instant;

/// Close out a fixpoint: fold the evaluation's stats into the engine
/// counters and annotate its span (no-op when instrumentation is off).
fn finish_fixpoint(sp: &mut linrec_obs::Span, stats: &EvalStats) {
    if !linrec_obs::enabled() {
        return;
    }
    let prof = profile::rounds();
    prof.fixpoints.inc();
    prof.rounds.inc_by(stats.iterations as u64);
    prof.derivations.inc_by(stats.derivations);
    prof.duplicates.inc_by(stats.duplicates);
    sp.attr("rounds", stats.iterations);
    sp.attr("derivations", stats.derivations);
    sp.attr("duplicates", stats.duplicates);
    sp.attr("tuples", stats.tuples);
}

/// Semi-naive least fixpoint of `init ∪ Σᵢ Aᵢ(P)`.
pub fn seminaive_star(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
) -> (Relation, EvalStats) {
    seminaive_star_in(rules, db, init, &mut Indexes::new())
}

/// [`seminaive_star`] with a caller-provided scan/index cache, so
/// multi-phase strategies over the same database (decomposed clusters,
/// redundancy-bounded branches) materialize each EDB relation only once.
pub fn seminaive_star_in(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    indexes: &mut Indexes,
) -> (Relation, EvalStats) {
    let mut total = init.clone();
    let stats = seminaive_resume_in(rules, db, &mut total, init.clone(), None, indexes);
    (total, stats)
}

/// Resume a semi-naive fixpoint from an already-materialized relation —
/// the primitive behind incremental view maintenance.
///
/// Preconditions (the caller's obligations, not checked):
/// * every tuple of `delta` is already in `total`;
/// * `total` is closed under the rules *except* through `delta`, i.e.
///   `Aᵢ(total) ⊆ total ∪ Aᵢ(delta)` for every rule — for linear rules
///   (union-distributive in the recursive predicate) this holds whenever
///   `total = old ∪ delta` with `old` a fixpoint of the rules over the
///   *previous* EDB and `delta` covering every rule application that
///   involves a changed EDB tuple.
///
/// Under those premises the loop extends `total` in place to the least
/// fixpoint of `init ∪ Σᵢ Aᵢ(P)` for any `init ⊆ total`, re-deriving
/// nothing reachable only from the unchanged region. `round_cap` bounds
/// the number of delta rounds: sound when a boundedness certificate
/// guarantees the fixpoint is reached within that many applications
/// (`None` runs to fixpoint).
pub fn seminaive_resume_in(
    rules: &[LinearRule],
    db: &Database,
    total: &mut Relation,
    mut delta: Relation,
    round_cap: Option<usize>,
    indexes: &mut Indexes,
) -> EvalStats {
    let mut sp = linrec_obs::span("engine.fixpoint");
    let prof = linrec_obs::enabled().then(profile::rounds);
    let mut round_start = prof.map(|_| Instant::now());
    let mut stats = EvalStats::default();
    while !delta.is_empty() && round_cap.is_none_or(|cap| stats.iterations < cap) {
        stats.iterations += 1;
        let delta_in = delta.len() as u64;
        delta = sequential_round(rules, db, total, &delta, indexes, &mut stats);
        if let (Some(p), Some(t0)) = (prof, round_start) {
            let now = Instant::now();
            p.round_ns.observe((now - t0).as_nanos() as u64);
            p.round_delta.observe(delta_in);
            round_start = Some(now);
        }
        total.union_in_place(&delta);
    }
    stats.tuples = total.len();
    finish_fixpoint(&mut sp, &stats);
    stats
}

/// One sequential semi-naive round: apply every rule to `delta`, returning
/// the next delta (tuples not yet in `total`). The caller unions it into
/// `total`.
fn sequential_round(
    rules: &[LinearRule],
    db: &Database,
    total: &Relation,
    delta: &Relation,
    indexes: &mut Indexes,
    stats: &mut EvalStats,
) -> Relation {
    let mut next_delta = Relation::new(total.arity());
    for rule in rules {
        let (derived, count) = apply_linear(rule, db, delta, indexes);
        let mut new = 0u64;
        for t in derived.iter() {
            if !total.contains(t) && next_delta.insert(t) {
                new += 1;
            }
        }
        // `new` counts tuples unseen in `total`; duplicates within
        // `derived` itself were already collapsed by the relation, so
        // recover them from the derivation count.
        stats.record(count, new);
    }
    next_delta
}

/// [`seminaive_star_in`] with a [`Parallelism`] knob: rounds whose delta
/// reaches the knob's cutover are evaluated over hash-partitioned shards
/// on the shared engine pool (see the module docs for the protocol and why
/// it is exact). With a sequential knob this *is* `seminaive_star_in`.
pub fn seminaive_star_par_in(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    indexes: &mut Indexes,
    par: &Parallelism,
) -> (Relation, EvalStats) {
    let mut total = init.clone();
    let stats = seminaive_resume_par_in(rules, db, &mut total, init.clone(), None, indexes, par);
    (total, stats)
}

/// [`seminaive_resume_in`] with a [`Parallelism`] knob — the parallel
/// variant behind both `Plan::execute` and the service's delta
/// maintenance. Preconditions and semantics are identical to the
/// sequential resume; output and statistics are too (module docs).
pub fn seminaive_resume_par_in(
    rules: &[LinearRule],
    db: &Database,
    total: &mut Relation,
    mut delta: Relation,
    round_cap: Option<usize>,
    indexes: &mut Indexes,
    par: &Parallelism,
) -> EvalStats {
    if !par.is_parallel() {
        return seminaive_resume_in(rules, db, total, delta, round_cap, indexes);
    }
    let mut sp = linrec_obs::span("engine.fixpoint");
    sp.attr("par", par.threads());
    let prof = linrec_obs::enabled().then(profile::rounds);
    let mut round_start = prof.map(|_| Instant::now());
    let mut stats = EvalStats::default();
    while !delta.is_empty() && round_cap.is_none_or(|cap| stats.iterations < cap) {
        stats.iterations += 1;
        let delta_in = delta.len() as u64;
        delta = seminaive_round_par(rules, db, total, delta, indexes, par, &mut stats);
        if let (Some(p), Some(t0)) = (prof, round_start) {
            let now = Instant::now();
            p.round_ns.observe((now - t0).as_nanos() as u64);
            p.round_delta.observe(delta_in);
            round_start = Some(now);
        }
        total.union_in_place(&delta);
    }
    stats.tuples = total.len();
    finish_fixpoint(&mut sp, &stats);
    stats
}

/// One semi-naive round under a [`Parallelism`] knob: apply every rule to
/// `delta`, returning the next delta (derived tuples not in `total`).
/// `total` is **not** updated — the caller unions the result in, and may
/// also fold it into other accumulators (the service's per-cluster
/// maintenance keeps a cross-cluster frontier this way). Rounds below the
/// knob's `min_delta` (or with no pool) run the plain sequential body;
/// results and statistics are identical either way. `stats.iterations` is
/// the caller's to advance.
pub fn seminaive_round_par(
    rules: &[LinearRule],
    db: &Database,
    total: &mut Relation,
    delta: Relation,
    indexes: &mut Indexes,
    par: &Parallelism,
    stats: &mut EvalStats,
) -> Relation {
    let Some(pool) = par.pool().filter(|_| delta.len() >= par.min_delta()) else {
        return sequential_round(rules, db, total, &delta, indexes, stats);
    };
    // Prepare: all cache mutation happens here, on this thread.
    let obs_on = linrec_obs::enabled();
    let prepared = {
        let _sp = linrec_obs::span("round.prepare");
        let t0 = obs_on.then(Instant::now);
        let prepared = prepare_rules(rules, delta.arity(), db, indexes);
        if let Some(t0) = t0 {
            profile::rounds()
                .prepare_ns
                .observe(t0.elapsed().as_nanos() as u64);
        }
        prepared
    };

    // Share the round-frozen state with the workers. Nothing is copied:
    // the relations and the cache are *moved* behind `Arc`s and moved
    // back out once every worker is done.
    let rules_arc: Arc<Vec<LinearRule>> = Arc::new(rules.to_vec());
    let delta_arc = Arc::new(delta);
    let total_arc = Arc::new(std::mem::take(total));
    let idx_arc = Arc::new(std::mem::take(indexes));

    // Probe: one job per non-empty shard; each evaluates every rule body
    // read-only, pre-filtered against the frozen total.
    let ctx = linrec_obs::trace::context();
    let receivers: Vec<_> = ShardView::partition(&delta_arc, partition_col(rules), pool.threads())
        .into_iter()
        .filter(|shard| !shard.is_empty())
        .enumerate()
        .map(|(shard_no, shard)| {
            let rules = Arc::clone(&rules_arc);
            let idx = Arc::clone(&idx_arc);
            let frozen = Arc::clone(&total_arc);
            let flags = prepared.clone();
            pool.submit(move || {
                let _g = ctx.enter();
                let mut sp = linrec_obs::span("round.probe");
                sp.attr("shard", shard_no);
                let t0 = linrec_obs::enabled().then(Instant::now);
                let out = rules
                    .iter()
                    .zip(&flags)
                    .map(|(rule, &ok)| {
                        if ok {
                            apply_linear_rows(rule, shard.iter(), &idx, Some(&frozen))
                        } else {
                            (Relation::new(rule.head().arity()), 0)
                        }
                    })
                    .collect::<Vec<(Relation, u64)>>();
                if let Some(t0) = t0 {
                    profile::rounds()
                        .probe_ns
                        .observe(t0.elapsed().as_nanos() as u64);
                }
                out
            })
        })
        .collect();
    let shard_outs: Vec<Vec<(Relation, u64)>> = receivers
        .into_iter()
        .map(|rx| rx.recv().expect("parallel fixpoint worker panicked"))
        .collect();

    // Every worker has finished and dropped its clones; reclaim the
    // shared state.
    let Ok(idx) = Arc::try_unwrap(idx_arc) else {
        unreachable!("index cache still shared after round")
    };
    *indexes = idx;
    let Ok(tot) = Arc::try_unwrap(total_arc) else {
        unreachable!("total still shared after round")
    };
    *total = tot;
    drop(delta_arc);

    // Merge, rule-major so per-rule attribution matches the sequential
    // loop: a tuple derived by several rules counts as new for the first
    // and as a duplicate for the rest.
    let _sp = linrec_obs::span("round.merge");
    let t0 = obs_on.then(Instant::now);
    let mut next_delta = Relation::new(total.arity());
    for r in 0..rules.len() {
        let mut derivs = 0u64;
        let mut new = 0u64;
        for out in &shard_outs {
            let (rel, d) = &out[r];
            derivs += d;
            for t in rel.iter() {
                if next_delta.insert(t) {
                    new += 1;
                }
            }
        }
        stats.record(derivs, new);
    }
    if let Some(t0) = t0 {
        profile::rounds()
            .merge_ns
            .observe(t0.elapsed().as_nanos() as u64);
    }
    next_delta
}

/// Naive least fixpoint: re-applies every operator to the whole accumulated
/// relation until nothing changes.
pub fn naive_star(rules: &[LinearRule], db: &Database, init: &Relation) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut indexes = Indexes::new();
    let mut total = init.clone();
    loop {
        stats.iterations += 1;
        let mut round = Relation::new(total.arity());
        for rule in rules {
            let (derived, count) = apply_linear(rule, db, &total, &mut indexes);
            let mut new = 0u64;
            for t in derived.iter() {
                if !total.contains(t) && round.insert(t) {
                    new += 1;
                }
            }
            stats.record(count, new);
        }
        if round.is_empty() {
            break;
        }
        total.union_in_place(&round);
    }
    stats.tuples = total.len();
    (total, stats)
}

/// The bounded prefix `Σ_{m=0}^{count} Aᵐ init` for a single operator,
/// evaluated semi-naively (used by the redundancy-bounded strategy,
/// Theorem 4.2).
pub fn bounded_prefix(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
) -> (Relation, EvalStats) {
    bounded_prefix_in(rule, db, init, count, &mut Indexes::new())
}

/// [`bounded_prefix`] with a caller-provided scan/index cache.
pub fn bounded_prefix_in(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
    indexes: &mut Indexes,
) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut total = init.clone();
    let mut delta = init.clone();
    for _ in 0..count {
        if delta.is_empty() {
            break;
        }
        stats.iterations += 1;
        let (derived, count) = apply_linear(rule, db, &delta, indexes);
        let mut next_delta = Relation::new(total.arity());
        let mut new = 0u64;
        for t in derived.iter() {
            if !total.contains(t) && next_delta.insert(t) {
                new += 1;
            }
        }
        stats.record(count, new);
        total.union_in_place(&next_delta);
        delta = next_delta;
    }
    stats.tuples = total.len();
    (total, stats)
}

/// The exact power image `Aᶜᵒᵘⁿᵗ(init)` (not accumulated). The dense
/// fast path runs under [`crate::dense::DEFAULT_DENSE_BUDGET_BYTES`];
/// planner execution uses [`exact_power_in`] with the active cost
/// model's budget instead.
pub fn exact_power(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
    stats: &mut EvalStats,
) -> Relation {
    exact_power_in(
        rule,
        db,
        init,
        count,
        stats,
        &mut Indexes::new(),
        crate::dense::DEFAULT_DENSE_BUDGET_BYTES,
    )
}

/// [`exact_power`] with a caller-provided scan/index cache and dense
/// byte budget. `dense_budget_bytes` caps the working set of the dense
/// fast path (three `domain × words` bitset matrices) — pass the active
/// [`crate::planner::CostModel::dense_budget_bytes`] so a deployment
/// that tightened its budget never sees larger transient dense
/// allocations; `0` disables the fast path outright.
#[allow(clippy::too_many_arguments)]
pub fn exact_power_in(
    rule: &LinearRule,
    db: &Database,
    init: &Relation,
    count: usize,
    stats: &mut EvalStats,
    indexes: &mut Indexes,
    dense_budget_bytes: usize,
) -> Relation {
    // Dense fast path: a composition-shaped rule's power image is
    // `init ∘ qᶜ` (or `qᶜ ∘ init`), and `qᶜ` by binary exponentiation
    // needs O(log c) matrix composes instead of c joins. Only worth the
    // two domain remaps for chains long enough that squaring saves work.
    if count >= 4 {
        if let Some(shape) = crate::dense::composition_shape(rule) {
            if let Some(rel) =
                crate::dense::exact_power(&shape, db, init, count, dense_budget_bytes, stats)
            {
                return rel;
            }
        }
    }
    let mut current = init.clone();
    for _ in 0..count {
        let (next, derivs) = apply_linear(rule, db, &current, indexes);
        stats.record(derivs, next.len() as u64);
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn tc_rule() -> LinearRule {
        parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap()
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        db.set_relation("e", (0..n).map(|i| (i, i + 1)).collect::<Relation>());
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let db = chain_db(4); // 0→1→2→3→4
        let init = db.relation_named("e").unwrap().clone();
        let (result, stats) = seminaive_star(&[tc_rule()], &db, &init);
        // All pairs i<j: C(5,2) = 10.
        assert_eq!(result.len(), 10);
        assert_eq!(stats.tuples, 10);
        // A chain admits exactly one derivation per pair: no duplicates.
        assert_eq!(stats.duplicates, 0);
    }

    #[test]
    fn naive_equals_seminaive() {
        let db = chain_db(6);
        let init = db.relation_named("e").unwrap().clone();
        let (a, sa) = seminaive_star(&[tc_rule()], &db, &init);
        let (b, sb) = naive_star(&[tc_rule()], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
        // Naive re-derives everything each round: strictly more duplicates.
        assert!(sb.duplicates > sa.duplicates);
    }

    #[test]
    fn exact_power_in_honors_the_dense_budget() {
        let db = chain_db(40);
        let init = db.relation_named("e").unwrap().clone();
        let rule = tc_rule();
        let mut sparse_stats = EvalStats::default();
        let sparse = exact_power_in(
            &rule,
            &db,
            &init,
            8,
            &mut sparse_stats,
            &mut Indexes::new(),
            0,
        );
        let mut dense_stats = EvalStats::default();
        let dense = exact_power_in(
            &rule,
            &db,
            &init,
            8,
            &mut dense_stats,
            &mut Indexes::new(),
            crate::dense::DEFAULT_DENSE_BUDGET_BYTES,
        );
        assert_eq!(sparse.sorted(), dense.sorted());
        // One record per sparse join vs O(log c) dense composes: the
        // stats betray which path ran, so a tightened (here: zero)
        // budget demonstrably keeps the power chain off dense matrices.
        assert_eq!(
            sparse_stats.applications, 8,
            "a zero budget must stay on the sparse join path"
        );
        assert!(
            dense_stats.applications < 8,
            "the default budget licenses O(log c) dense composes"
        );
    }

    #[test]
    fn cycle_terminates() {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(0, 1), (1, 2), (2, 0)]));
        let init = db.relation_named("e").unwrap().clone();
        let (result, _) = seminaive_star(&[tc_rule()], &db, &init);
        assert_eq!(result.len(), 9); // complete digraph on 3 nodes
    }

    #[test]
    fn two_rule_sum() {
        let up = parse_linear_rule("p(x,y) :- p(x,z), up(z,y).").unwrap();
        let down = parse_linear_rule("p(x,y) :- p(w,y), down(x,w).").unwrap();
        let mut db = Database::new();
        db.set_relation("up", Relation::from_pairs([(1, 2)]));
        db.set_relation("down", Relation::from_pairs([(0, 1)]));
        let init = Relation::from_pairs([(1, 1)]);
        let (result, _) = seminaive_star(&[up, down], &db, &init);
        // {(1,1), (1,2), (0,1), (0,2)}.
        assert_eq!(result.len(), 4);
        assert!(result.contains(&[linrec_datalog::Value::Int(0), linrec_datalog::Value::Int(2)]));
    }

    #[test]
    fn bounded_prefix_stops_early() {
        let db = chain_db(10);
        let init = Relation::from_pairs([(0, 1)]);
        let (r2, _) = bounded_prefix(&tc_rule(), &db, &init, 2);
        // init ∪ A init ∪ A² init = {(0,1),(0,2),(0,3)}.
        assert_eq!(r2.len(), 3);
        let (rbig, _) = bounded_prefix(&tc_rule(), &db, &init, 100);
        assert_eq!(rbig.len(), 10);
    }

    #[test]
    fn exact_power_is_an_image() {
        let db = chain_db(10);
        let init = Relation::from_pairs([(0, 1)]);
        let mut stats = EvalStats::default();
        let p3 = exact_power(&tc_rule(), &db, &init, 3, &mut stats);
        assert_eq!(p3.sorted(), Relation::from_pairs([(0, 4)]).sorted());
    }

    #[test]
    fn resume_extends_a_materialized_fixpoint() {
        // Materialize TC of the chain 0→…→4, then append the edge (4,5)
        // and resume from a delta seeded with the new-edge consequences:
        // the result must equal the from-scratch fixpoint on the new EDB.
        let rule = tc_rule();
        let db = chain_db(4);
        let init = db.relation_named("e").unwrap().clone();
        let (mut total, _) = seminaive_star(std::slice::from_ref(&rule), &db, &init);

        let mut db2 = db.clone();
        db2.insert_tuple(
            linrec_datalog::Symbol::new("e"),
            Relation::from_pairs([(4, 5)]).row(0),
        );
        // Seed delta: the new edge plus every rule application through it.
        let mut delta_db = db2.clone();
        delta_db.set_relation("e", Relation::from_pairs([(4, 5)]));
        let mut idx = Indexes::new();
        let (through_new, _) = apply_linear(&rule, &delta_db, &total, &mut idx);
        let mut delta = Relation::from_pairs([(4, 5)]);
        for t in through_new.iter() {
            if !total.contains(t) {
                delta.insert(t);
            }
        }
        total.union_in_place(&delta);

        let stats = seminaive_resume_in(
            std::slice::from_ref(&rule),
            &db2,
            &mut total,
            delta,
            None,
            &mut Indexes::new(),
        );
        let init2 = db2.relation_named("e").unwrap().clone();
        let (scratch, _) = seminaive_star(&[rule], &db2, &init2);
        assert_eq!(total.sorted(), scratch.sorted());
        assert_eq!(stats.tuples, total.len());
        // C(6,2) = 15 pairs.
        assert_eq!(total.len(), 15);
    }

    #[test]
    fn resume_round_cap_limits_rounds() {
        let rule = tc_rule();
        let db = chain_db(10);
        let mut total = Relation::from_pairs([(0, 1)]);
        let delta = total.clone();
        let stats = seminaive_resume_in(
            &[rule],
            &db,
            &mut total,
            delta,
            Some(2),
            &mut Indexes::new(),
        );
        assert_eq!(stats.iterations, 2);
        // init ∪ A init ∪ A² init.
        assert_eq!(total.len(), 3);
    }

    #[test]
    fn empty_init_is_empty_star() {
        let db = chain_db(3);
        let init = Relation::new(2);
        let (result, stats) = seminaive_star(&[tc_rule()], &db, &init);
        assert!(result.is_empty());
        assert_eq!(stats.iterations, 0);
    }

    /// A parallel knob that always engages (any delta size, k shards).
    fn eager(k: usize) -> Parallelism {
        Parallelism::new(k).with_min_delta(1)
    }

    #[test]
    fn parallel_star_is_bit_identical_to_sequential() {
        let db = chain_db(40);
        let init = db.relation_named("e").unwrap().clone();
        let (seq, seq_stats) = seminaive_star(&[tc_rule()], &db, &init);
        for k in [1usize, 2, 3, 8] {
            let (par, par_stats) =
                seminaive_star_par_in(&[tc_rule()], &db, &init, &mut Indexes::new(), &eager(k));
            assert_eq!(par.sorted(), seq.sorted(), "k={k}");
            assert_eq!(par_stats, seq_stats, "k={k}: statistics must match too");
        }
    }

    #[test]
    fn parallel_multi_rule_star_matches_and_attributes_stats_identically() {
        // Two rules that derive overlapping tuples: per-rule new/duplicate
        // attribution in the merge must mirror the sequential rule order.
        let up = parse_linear_rule("p(x,y) :- p(x,z), up(z,y).").unwrap();
        let down = parse_linear_rule("p(x,y) :- p(w,y), down(x,w).").unwrap();
        let mut db = Database::new();
        db.set_relation("up", Relation::from_pairs((0..12).map(|i| (i, i + 1))));
        db.set_relation("down", Relation::from_pairs((0..12).map(|i| (i + 1, i))));
        let init = Relation::from_pairs((0..12).map(|i| (i, i)));
        let rules = vec![up, down];
        let (seq, seq_stats) = seminaive_star(&rules, &db, &init);
        let (par, par_stats) =
            seminaive_star_par_in(&rules, &db, &init, &mut Indexes::new(), &eager(3));
        assert_eq!(par.sorted(), seq.sorted());
        assert_eq!(par_stats, seq_stats);
    }

    #[test]
    fn parallel_resume_matches_sequential_resume() {
        let rule = tc_rule();
        let db = chain_db(30);
        let init = db.relation_named("e").unwrap().clone();
        let (fix, _) = seminaive_star(std::slice::from_ref(&rule), &db, &init);
        // Extend the chain and seed the resume delta as maintenance would.
        let mut db2 = db.clone();
        for i in 30..34 {
            db2.insert_tuple(
                linrec_datalog::Symbol::new("e"),
                Relation::from_pairs([(i, i + 1)]).row(0),
            );
        }
        let mut delta_db = db2.clone();
        delta_db.set_relation("e", Relation::from_pairs((30..34).map(|i| (i, i + 1))));
        let mut seed = Relation::from_pairs((30..34).map(|i| (i, i + 1)));
        let (through_new, _) = apply_linear(&rule, &delta_db, &fix, &mut Indexes::new());
        for t in through_new.iter() {
            if !fix.contains(t) {
                seed.insert(t);
            }
        }

        let run = |par: Option<Parallelism>| {
            let mut total = fix.clone();
            total.union_in_place(&seed);
            let stats = match par {
                Some(par) => seminaive_resume_par_in(
                    std::slice::from_ref(&rule),
                    &db2,
                    &mut total,
                    seed.clone(),
                    None,
                    &mut Indexes::new(),
                    &par,
                ),
                None => seminaive_resume_in(
                    std::slice::from_ref(&rule),
                    &db2,
                    &mut total,
                    seed.clone(),
                    None,
                    &mut Indexes::new(),
                ),
            };
            (total, stats)
        };
        let (seq_total, seq_stats) = run(None);
        for k in [2usize, 8] {
            let (par_total, par_stats) = run(Some(eager(k)));
            assert_eq!(par_total.sorted(), seq_total.sorted(), "k={k}");
            assert_eq!(par_stats, seq_stats, "k={k}");
        }
        // Sanity: the resume really reaches the from-scratch fixpoint.
        let init2 = db2.relation_named("e").unwrap().clone();
        let (scratch, _) = seminaive_star(&[rule], &db2, &init2);
        assert_eq!(seq_total.sorted(), scratch.sorted());
    }

    #[test]
    fn parallel_resume_respects_the_round_cap() {
        let rule = tc_rule();
        let db = chain_db(10);
        let mut total = Relation::from_pairs([(0, 1)]);
        let delta = total.clone();
        let stats = seminaive_resume_par_in(
            &[rule],
            &db,
            &mut total,
            delta,
            Some(2),
            &mut Indexes::new(),
            &eager(4),
        );
        assert_eq!(stats.iterations, 2);
        assert_eq!(total.len(), 3);
    }

    #[test]
    fn sequential_knob_runs_without_a_pool() {
        let db = chain_db(6);
        let init = db.relation_named("e").unwrap().clone();
        let (a, sa) = seminaive_star_par_in(
            &[tc_rule()],
            &db,
            &init,
            &mut Indexes::new(),
            &Parallelism::sequential(),
        );
        let (b, sb) = seminaive_star(&[tc_rule()], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
        assert_eq!(sa, sb);
    }

    #[test]
    fn high_min_delta_keeps_every_round_sequential_but_exact() {
        let db = chain_db(25);
        let init = db.relation_named("e").unwrap().clone();
        let gated = Parallelism::new(4).with_min_delta(usize::MAX);
        let (a, sa) = seminaive_star_par_in(&[tc_rule()], &db, &init, &mut Indexes::new(), &gated);
        let (b, sb) = seminaive_star(&[tc_rule()], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
        assert_eq!(sa, sb);
    }

    #[test]
    fn parallel_round_with_arity_mismatched_rule_matches_sequential() {
        // `e` stored at arity 2, second rule uses it at arity 3: the
        // prepared flag disables it in parallel rounds exactly as the
        // sequential join treats it as empty.
        let rules = vec![
            tc_rule(),
            parse_linear_rule("p(x,y) :- p(x,z), e(w,u,z).").unwrap(),
        ];
        let db = chain_db(20);
        let init = db.relation_named("e").unwrap().clone();
        let (seq, seq_stats) = seminaive_star(&rules, &db, &init);
        let (par, par_stats) =
            seminaive_star_par_in(&rules, &db, &init, &mut Indexes::new(), &eager(3));
        assert_eq!(par.sorted(), seq.sorted());
        assert_eq!(par_stats, seq_stats);
    }
}
