//! Structured plan-decision records.
//!
//! Every call to [`Analysis::plan_with`](crate::planner::Analysis::plan_with)
//! weighs candidates (Direct, Decomposed, RedundancyBounded, DenseClosure)
//! against a cost model, leans on typed certificates, and picks a winner;
//! [`Plan::parallelize`](crate::Plan::parallelize) then decides whether to
//! shard semi-naive rounds, and
//! [`Plan::execute_feedback`](crate::Plan::execute_feedback) learns what the
//! plan actually cost. Historically all of that was flattened into a
//! free-text rationale string — good for humans, useless for tools.
//!
//! [`PlanDecision`] is the machine-readable counterpart: one record per
//! planned query or registered view, carrying the candidate list with
//! estimates, the certificates the winner leaned on, the dense-gate and
//! parallel verdicts, the maintenance mode the service derived, and —
//! after execution — the actual [`EvalStats`] and the estimate/actual
//! ratio. Records serialize to JSON by hand (the workspace is
//! dependency-free) and flow into `linrec_obs::journal` plus the optional
//! on-disk `decisions.log`.

use crate::stats::EvalStats;
use linrec_obs::trace::json_escape;

/// One plan candidate the cost model weighed, with its estimated cost.
#[derive(Debug, Clone)]
pub struct CandidateEstimate {
    /// Candidate name (`"Direct"`, `"Decomposed"`, `"DenseClosure"`, …).
    pub name: &'static str,
    /// Estimated cost in the model's abstract derivation units.
    pub cost: f64,
}

/// The dense gate's verdict for a single-rule composition shape.
#[derive(Debug, Clone)]
pub struct DenseVerdict {
    /// Did the dense closure-by-squaring plan win?
    pub chosen: bool,
    /// The gate's reasoning: the cost breakdown when chosen, or the
    /// decline reason (budget / density cutover) when not.
    pub detail: String,
}

/// The outcome of [`Plan::parallelize`](crate::Plan::parallelize).
#[derive(Debug, Clone)]
pub struct ParallelVerdict {
    /// Did the plan engage sharded semi-naive rounds?
    pub engaged: bool,
    /// Worker threads the parallelism policy would use.
    pub threads: usize,
    /// Estimated peak |Δ| the decision compared against the cutover.
    pub est_peak_delta: f64,
    /// Human-readable reasoning for the verdict.
    pub detail: String,
}

/// A structured record of one planning decision, completed with actuals
/// after `execute_feedback`.
#[derive(Debug, Clone, Default)]
pub struct PlanDecision {
    /// View the plan belongs to; empty for ad-hoc queries.
    pub view: String,
    /// Winning plan shape label (core shape, ignoring `SelectAfter`).
    pub winner: String,
    /// `"cost-model"` when candidates were compared by estimate,
    /// `"fixed-priority"` when a certificate short-circuited the
    /// competition (boundedness, separability).
    pub picked_by: &'static str,
    /// Every candidate considered, with its estimate.
    pub candidates: Vec<CandidateEstimate>,
    /// Rationales of the certificates the winner leaned on.
    pub certificates: Vec<String>,
    /// Dense-gate verdict, when a composition shape made dense eligible.
    pub dense: Option<DenseVerdict>,
    /// Parallelization verdict, when `parallelize` made a real choice.
    pub parallel: Option<ParallelVerdict>,
    /// Maintenance mode the service derived from the shape
    /// (`"incremental"`, `"recompute"`, …); `None` for ad-hoc plans.
    pub maintenance_mode: Option<&'static str>,
    /// The winner's estimated cost, when the cost model produced one.
    pub estimate: Option<f64>,
    /// Actual evaluation statistics, filled in by `execute_feedback`.
    pub actual: Option<EvalStats>,
}

impl PlanDecision {
    /// Start a record for a winner picked by comparing cost estimates.
    pub fn cost_model(winner: impl Into<String>) -> PlanDecision {
        PlanDecision {
            winner: winner.into(),
            picked_by: "cost-model",
            ..PlanDecision::default()
        }
    }

    /// Start a record for a winner a certificate short-circuited to.
    pub fn fixed_priority(winner: impl Into<String>) -> PlanDecision {
        PlanDecision {
            winner: winner.into(),
            picked_by: "fixed-priority",
            ..PlanDecision::default()
        }
    }

    /// Estimate divided by actual derivations, when both are known.
    /// Actual derivations are clamped to ≥ 1 so the ratio stays finite.
    pub fn ratio(&self) -> Option<f64> {
        match (self.estimate, &self.actual) {
            (Some(est), Some(stats)) => Some(est / stats.derivations.max(1) as f64),
            _ => None,
        }
    }

    /// One-line human summary: winner, how it was picked, the candidate
    /// estimates, and the dense/parallel verdicts. This is what lint
    /// diagnostics and `explain` print.
    pub fn summary(&self) -> String {
        let mut out = format!("picked {} by {}", self.winner, self.picked_by);
        if !self.candidates.is_empty() {
            let listed: Vec<String> = self
                .candidates
                .iter()
                .map(|c| format!("{} ≈ {:.3e}", c.name, c.cost))
                .collect();
            out.push_str(&format!(" over {{{}}}", listed.join(", ")));
        }
        if let Some(dense) = &self.dense {
            if dense.chosen {
                out.push_str(&format!("; dense chosen: {}", dense.detail));
            } else {
                out.push_str(&format!("; dense declined: {}", dense.detail));
            }
        }
        if let Some(par) = &self.parallel {
            if par.engaged {
                out.push_str(&format!("; parallel engaged: {}", par.detail));
            } else {
                out.push_str(&format!("; parallel declined: {}", par.detail));
            }
        }
        if let Some(ratio) = self.ratio() {
            out.push_str(&format!("; estimate/actual = {ratio:.3}"));
        }
        out
    }

    /// Serialize the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_str_field(&mut out, "view", &self.view);
        push_str_field(&mut out, "winner", &self.winner);
        push_str_field(&mut out, "picked_by", self.picked_by);
        out.push_str("\"candidates\":[");
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cost\":{}}}",
                json_escape(c.name),
                json_f64(c.cost)
            ));
        }
        out.push_str("],\"certificates\":[");
        for (i, cert) in self.certificates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(cert));
            out.push('"');
        }
        out.push_str("],");
        match &self.dense {
            Some(d) => out.push_str(&format!(
                "\"dense\":{{\"chosen\":{},\"detail\":\"{}\"}},",
                d.chosen,
                json_escape(&d.detail)
            )),
            None => out.push_str("\"dense\":null,"),
        }
        match &self.parallel {
            Some(p) => out.push_str(&format!(
                "\"parallel\":{{\"engaged\":{},\"threads\":{},\"est_peak_delta\":{},\
                 \"detail\":\"{}\"}},",
                p.engaged,
                p.threads,
                json_f64(p.est_peak_delta),
                json_escape(&p.detail)
            )),
            None => out.push_str("\"parallel\":null,"),
        }
        match self.maintenance_mode {
            Some(mode) => out.push_str(&format!("\"maintenance_mode\":\"{}\",", json_escape(mode))),
            None => out.push_str("\"maintenance_mode\":null,"),
        }
        match self.estimate {
            Some(est) => out.push_str(&format!("\"estimate\":{},", json_f64(est))),
            None => out.push_str("\"estimate\":null,"),
        }
        match &self.actual {
            Some(s) => out.push_str(&format!(
                "\"actual\":{{\"tuples\":{},\"derivations\":{},\"duplicates\":{},\
                 \"iterations\":{},\"applications\":{}}},",
                s.tuples, s.derivations, s.duplicates, s.iterations, s.applications
            )),
            None => out.push_str("\"actual\":null,"),
        }
        match self.ratio() {
            Some(r) => out.push_str(&format!("\"estimate_actual_ratio\":{}", json_f64(r))),
            None => out.push_str("\"estimate_actual_ratio\":null"),
        }
        out.push('}');
        out
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{key}\":\"{}\",", json_escape(value)));
}

/// JSON-safe float: finite values verbatim, NaN/∞ become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_names_the_winner_and_the_verdicts() {
        let mut d = PlanDecision::cost_model("Direct");
        d.candidates.push(CandidateEstimate {
            name: "Direct",
            cost: 120.0,
        });
        d.candidates.push(CandidateEstimate {
            name: "Decomposed",
            cost: 450.0,
        });
        d.dense = Some(DenseVerdict {
            chosen: false,
            detail: "est. density 1.0e-5 below the 5.0e-2 cutover (domain ≈ 3000)".to_string(),
        });
        let s = d.summary();
        assert!(s.contains("picked Direct by cost-model"), "{s}");
        assert!(s.contains("Direct ≈ 1.200e2"), "{s}");
        assert!(s.contains("dense declined: est. density"), "{s}");
    }

    #[test]
    fn json_round_trips_the_interesting_fields() {
        let mut d = PlanDecision::cost_model("DenseClosure");
        d.view = "tc".to_string();
        d.estimate = Some(1234.5);
        d.certificates
            .push("composition shape over \"e\"".to_string());
        d.actual = Some(EvalStats {
            iterations: 4,
            applications: 8,
            derivations: 1000,
            duplicates: 12,
            tuples: 988,
        });
        d.maintenance_mode = Some("recompute");
        let json = d.to_json();
        assert!(json.contains("\"view\":\"tc\""), "{json}");
        assert!(json.contains("\"winner\":\"DenseClosure\""), "{json}");
        assert!(json.contains("\"estimate\":1234.5"), "{json}");
        assert!(json.contains("\"derivations\":1000"), "{json}");
        assert!(
            json.contains("\"maintenance_mode\":\"recompute\""),
            "{json}"
        );
        assert!(json.contains("composition shape over \\\"e\\\""), "{json}");
        assert!(json.contains("\"estimate_actual_ratio\":1.2345"), "{json}");
        assert!(json.contains("\"dense\":null"), "{json}");
    }

    #[test]
    fn non_finite_costs_serialize_as_null() {
        let mut d = PlanDecision::fixed_priority("BoundedPrefix");
        d.candidates.push(CandidateEstimate {
            name: "Direct",
            cost: f64::INFINITY,
        });
        let json = d.to_json();
        assert!(json.contains("\"cost\":null"), "{json}");
        assert!(json.contains("\"picked_by\":\"fixed-priority\""), "{json}");
    }
}
