//! Selections `σ` on the recursive relation and their commutation with
//! operators (paper §4.1).
//!
//! A selection binds argument positions of the recursive predicate to
//! constants. `σ` commutes with an operator `A` (`σA = Aσ`) whenever every
//! selected position is 1-persistent in `A`'s rule — the column's value
//! passes through each application unchanged, so selecting before or after
//! is indifferent. This is the (syntactic, sufficient) "full selection"
//! check used by Theorem 4.1 / Theorem 6.1.

use linrec_datalog::{LinearRule, Relation, Tuple, Value};

/// A conjunction of position/value equality predicates on the recursive
/// relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    bindings: Vec<(usize, Value)>,
}

impl Selection {
    /// Select `position = value`.
    pub fn eq(position: usize, value: impl Into<Value>) -> Selection {
        Selection {
            bindings: vec![(position, value.into())],
        }
    }

    /// Conjoin another equality.
    pub fn and(mut self, position: usize, value: impl Into<Value>) -> Selection {
        self.bindings.push((position, value.into()));
        self
    }

    /// The position/value pairs.
    pub fn bindings(&self) -> &[(usize, Value)] {
        &self.bindings
    }

    /// The selected positions.
    pub fn positions(&self) -> Vec<usize> {
        self.bindings.iter().map(|&(p, _)| p).collect()
    }

    /// Does a tuple satisfy the selection? Positions beyond the tuple's
    /// arity match nothing (rather than panicking), mirroring
    /// [`Selection::commutes_with`]'s treatment of out-of-range positions.
    pub fn matches(&self, t: &[Value]) -> bool {
        self.bindings.iter().all(|&(p, v)| t.get(p) == Some(&v))
    }

    /// Apply to a whole relation.
    pub fn apply(&self, rel: &Relation) -> Relation {
        let mut out = Relation::new(rel.arity());
        for t in rel.iter() {
            if self.matches(t) {
                out.insert(t);
            }
        }
        out
    }

    /// The seed tuple over the selected positions, in `positions()` order.
    pub fn seed(&self) -> Tuple {
        self.bindings.iter().map(|&(_, v)| v).collect()
    }

    /// Syntactic commutation check: `σA = Aσ` holds if every selected
    /// position is 1-persistent in `rule` (the head variable at that
    /// position reappears at the same position of the recursive body atom).
    pub fn commutes_with(&self, rule: &LinearRule) -> bool {
        self.bindings.iter().all(|&(p, _)| {
            p < rule.arity()
                && rule.head().terms[p]
                    .as_var()
                    .is_some_and(|v| rule.h_var(v) == Some(v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn apply_filters_tuples() {
        let rel = Relation::from_pairs([(1, 2), (1, 3), (2, 3)]);
        let sel = Selection::eq(0, 1);
        assert_eq!(sel.apply(&rel).len(), 2);
        let both = Selection::eq(0, 1).and(1, 3);
        assert_eq!(both.apply(&rel).len(), 1);
    }

    #[test]
    fn commutes_with_persistent_column() {
        // x is 1-persistent in the right-expanding rule.
        let right = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert!(Selection::eq(0, 5).commutes_with(&right));
        assert!(!Selection::eq(1, 5).commutes_with(&right));
    }

    #[test]
    fn commutes_with_link_persistent_column_too() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y), mark(x).").unwrap();
        assert!(Selection::eq(0, 5).commutes_with(&r));
    }

    #[test]
    fn out_of_range_position_never_commutes() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert!(!Selection::eq(7, 5).commutes_with(&r));
    }

    #[test]
    fn out_of_range_position_matches_nothing() {
        let rel = Relation::from_pairs([(1, 2), (3, 4)]);
        let sel = Selection::eq(9, 1);
        assert!(!sel.matches(&[Value::Int(1), Value::Int(2)]));
        assert!(sel.apply(&rel).is_empty());
    }

    #[test]
    fn multi_position_selection_requires_all_persistent() {
        let r = parse_linear_rule("p(x,y,z) :- p(x,y,w), e(w,z).").unwrap();
        assert!(Selection::eq(0, 1).and(1, 2).commutes_with(&r));
        assert!(!Selection::eq(0, 1).and(2, 3).commutes_with(&r));
    }
}
