//! Profiling hooks: the engine's metric handles in the global
//! [`linrec_obs`] registry.
//!
//! The paper's §3.1 cost measures (derivations, duplicates, iterations)
//! are counted per evaluation in [`crate::EvalStats`]; this module
//! aggregates them process-wide and attributes **wall time** to the
//! places it is actually spent:
//!
//! * per semi-naive **round** — `linrec_engine_round_ns` /
//!   `linrec_engine_round_delta_tuples` (one histogram sample per round);
//! * per parallel-round **phase** — `..._par_prepare_ns`,
//!   `..._par_probe_ns` (one sample per shard), `..._par_merge_ns`;
//! * per **plan node** — `linrec_engine_plan_node_ns` plus a `nanos`
//!   field on every [`crate::TraceStep`];
//! * per dense **compose** — `linrec_engine_dense_compose_ns` /
//!   `linrec_engine_dense_words` (one sample per boolean matrix product);
//! * cost-model **calibration drift** —
//!   `linrec_engine_estimate_actual_permille`, the planner's estimated
//!   over actual derivations ×1000, recorded whenever feedback execution
//!   observes the actual cost (1000 = perfectly calibrated).
//!
//! Handles are resolved once through a `OnceLock` and then shared
//! atomics; instrumentation sites additionally gate on
//! [`linrec_obs::enabled`] before taking clocks, so the disabled cost is
//! one relaxed load per site.

use linrec_obs::{Counter, Histogram};
use std::sync::OnceLock;

/// Metric handles for fixpoint rounds and parallel-round phases.
pub struct RoundProfile {
    /// Wall time of one semi-naive round (ns).
    pub round_ns: Histogram,
    /// Input-delta size of one semi-naive round (tuples).
    pub round_delta: Histogram,
    /// Parallel-round prepare phase (ns, one sample per parallel round).
    pub prepare_ns: Histogram,
    /// Parallel-round probe phase (ns, one sample per shard).
    pub probe_ns: Histogram,
    /// Parallel-round merge phase (ns, one sample per parallel round).
    pub merge_ns: Histogram,
    /// Semi-naive rounds executed.
    pub rounds: Counter,
    /// Fixpoint evaluations (star or resume) completed.
    pub fixpoints: Counter,
    /// Tuple derivations (paper §3.1).
    pub derivations: Counter,
    /// Duplicate derivations (paper §3.1).
    pub duplicates: Counter,
}

/// The engine's round-level metric handles (registered on first use).
pub fn rounds() -> &'static RoundProfile {
    static HANDLES: OnceLock<RoundProfile> = OnceLock::new();
    HANDLES.get_or_init(|| RoundProfile {
        round_ns: linrec_obs::histogram("linrec_engine_round_ns"),
        round_delta: linrec_obs::histogram("linrec_engine_round_delta_tuples"),
        prepare_ns: linrec_obs::histogram("linrec_engine_par_prepare_ns"),
        probe_ns: linrec_obs::histogram("linrec_engine_par_probe_ns"),
        merge_ns: linrec_obs::histogram("linrec_engine_par_merge_ns"),
        rounds: linrec_obs::counter("linrec_engine_rounds_total"),
        fixpoints: linrec_obs::counter("linrec_engine_fixpoints_total"),
        derivations: linrec_obs::counter("linrec_engine_derivations_total"),
        duplicates: linrec_obs::counter("linrec_engine_duplicates_total"),
    })
}

/// Metric handles for the join layer's scan/index cache (cold paths:
/// one event per relation rebuild, never per tuple).
pub struct JoinProfile {
    /// Relation scans (re)materialized into the cache.
    pub scan_builds: Counter,
    /// Column indexes built on cached scans.
    pub col_index_builds: Counter,
}

/// The engine's join-cache metric handles (registered on first use).
pub fn join() -> &'static JoinProfile {
    static HANDLES: OnceLock<JoinProfile> = OnceLock::new();
    HANDLES.get_or_init(|| JoinProfile {
        scan_builds: linrec_obs::counter("linrec_engine_scan_builds_total"),
        col_index_builds: linrec_obs::counter("linrec_engine_col_index_builds_total"),
    })
}

/// Metric handles for the dense bitset kernels (one event per compose /
/// closure, never per tuple or per word).
pub struct DenseProfile {
    /// Wall time of one boolean matrix compose (ns).
    pub compose_ns: Histogram,
    /// Adjacency words per compose operand (domain × words-per-row) —
    /// the dense working-set size the budget rule admitted.
    pub words: Histogram,
    /// Closures evaluated by power doubling.
    pub closures: Counter,
}

/// The engine's dense-kernel metric handles (registered on first use).
pub fn dense() -> &'static DenseProfile {
    static HANDLES: OnceLock<DenseProfile> = OnceLock::new();
    HANDLES.get_or_init(|| DenseProfile {
        compose_ns: linrec_obs::histogram("linrec_engine_dense_compose_ns"),
        words: linrec_obs::histogram("linrec_engine_dense_words"),
        closures: linrec_obs::counter("linrec_engine_dense_closures_total"),
    })
}

/// Metric handles for plan-node execution and cost-model calibration.
pub struct PlanProfile {
    /// Wall time of one executed plan node (ns).
    pub node_ns: Histogram,
    /// Planner estimate ÷ actual derivations, ×1000 (1000 = calibrated).
    pub estimate_actual: Histogram,
}

/// The engine's plan-level metric handles (registered on first use).
pub fn plan() -> &'static PlanProfile {
    static HANDLES: OnceLock<PlanProfile> = OnceLock::new();
    HANDLES.get_or_init(|| PlanProfile {
        node_ns: linrec_obs::histogram("linrec_engine_plan_node_ns"),
        estimate_actual: linrec_obs::histogram("linrec_engine_estimate_actual_permille"),
    })
}
