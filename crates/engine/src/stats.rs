//! Evaluation statistics.
//!
//! Following the paper's Section 3.1 argument that duplicate production and
//! elimination dominate recursive computation cost, every strategy reports
//! the number of tuple *derivations* and the implied *duplicates*
//! (derivations minus distinct new tuples) alongside iteration counts —
//! these are the tractable cost measures Theorem 3.1 compares.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated during a fixpoint evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations (delta rounds).
    pub iterations: usize,
    /// Operator applications (rule × delta joins executed).
    pub applications: u64,
    /// Successful body matches (tuples derived, counting repeats).
    pub derivations: u64,
    /// Derivations that produced an already-known tuple
    /// (`derivations − new tuples`): the paper's duplicate count.
    pub duplicates: u64,
    /// Tuples in the final result.
    pub tuples: usize,
}

impl EvalStats {
    /// Record an operator application that matched `derived` bindings of
    /// which `new` produced previously unknown tuples. `new > derived`
    /// would be a caller bug (a "new" tuple that was never derived):
    /// debug builds assert, release builds saturate the duplicate count
    /// at zero rather than wrapping.
    pub fn record(&mut self, derived: u64, new: u64) {
        debug_assert!(
            new <= derived,
            "EvalStats::record: new ({new}) exceeds derived ({derived})"
        );
        self.applications += 1;
        self.derivations += derived;
        self.duplicates += derived.saturating_sub(new);
    }
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, rhs: EvalStats) {
        self.iterations += rhs.iterations;
        self.applications += rhs.applications;
        self.derivations += rhs.derivations;
        self.duplicates += rhs.duplicates;
        self.tuples = rhs.tuples; // final size comes from the last phase
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuples={} derivations={} duplicates={} iterations={} applications={}",
            self.tuples, self.derivations, self.duplicates, self.iterations, self.applications
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_duplicates() {
        let mut s = EvalStats::default();
        s.record(10, 7);
        s.record(5, 5);
        assert_eq!(s.applications, 2);
        assert_eq!(s.derivations, 15);
        assert_eq!(s.duplicates, 3);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn record_saturates_instead_of_wrapping() {
        let mut s = EvalStats::default();
        s.record(3, 5); // caller bug: saturate, don't wrap
        assert_eq!(s.duplicates, 0);
        assert_eq!(s.derivations, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "new (5) exceeds derived (3)")]
    fn record_asserts_on_underflow_in_debug() {
        let mut s = EvalStats::default();
        s.record(3, 5);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalStats {
            iterations: 2,
            applications: 4,
            derivations: 10,
            duplicates: 1,
            tuples: 9,
        };
        let b = EvalStats {
            iterations: 3,
            applications: 5,
            derivations: 20,
            duplicates: 2,
            tuples: 29,
        };
        a += b;
        assert_eq!(a.iterations, 5);
        assert_eq!(a.derivations, 30);
        assert_eq!(a.duplicates, 3);
        assert_eq!(a.tuples, 29);
    }

    #[test]
    fn display_is_informative() {
        let s = EvalStats::default();
        let text = s.to_string();
        assert!(text.contains("duplicates=0"));
    }
}
