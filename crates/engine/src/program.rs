//! Whole-program API: parse a Datalog program, analyze it with the paper's
//! machinery, and run it through the certificate-carrying planner.
//!
//! This is the "downstream user" entry point. A [`Program`] is one
//! recursive predicate with its rules, EDB facts and seed; [`Program::analyze`]
//! produces the typed certificates, [`Program::plan`] /
//! [`Program::plan_for`] pick a licensed [`Plan`] (by preference order and
//! by cost model, respectively), and [`Program::run`] executes the
//! cost-chosen plan:
//!
//! ```
//! use linrec_engine::{PlanShape, Program};
//!
//! let prog = Program::parse(
//!     "p(x,y) :- p(x,z), down(z,y).
//!      p(x,y) :- p(w,y), up(x,w).
//!      up(1,2). down(10,11). p(1,10).",
//! ).unwrap();
//! // The certificate preference order showcases the decomposition…
//! assert!(matches!(prog.plan(None).shape(), PlanShape::Decomposed { .. }));
//! // …and execution computes the closure either way.
//! let (outcome, _plan) = prog.run(None).unwrap();
//! assert_eq!(outcome.relation.len(), 2);
//! ```

use crate::planner::{Analysis, AnalysisEffort, ExecOutcome, Plan, StrategyError};
use crate::selection::Selection;
use linrec_datalog::{parse_program, Clause, Database, LinearRule, Relation, RuleError, Symbol};

/// A parsed recursive query program: one recursive (IDB) predicate defined
/// by linear rules, plus ground facts for the EDB relations and the seed of
/// the recursive relation.
#[derive(Clone)]
pub struct Program {
    rec_pred: Symbol,
    rules: Vec<LinearRule>,
    db: Database,
    init: Relation,
}

impl Program {
    /// Parse program text. Clauses with bodies must all be linear recursive
    /// rules over the same head predicate; ground facts for that predicate
    /// seed the recursion, all other facts populate the EDB.
    pub fn parse(src: &str) -> Result<Program, RuleError> {
        let clauses = parse_program(src)?;
        let mut rules: Vec<LinearRule> = Vec::new();
        let mut facts: Vec<linrec_datalog::Atom> = Vec::new();
        for clause in clauses {
            match clause {
                Clause::Rule(r) => rules.push(LinearRule::from_rule(&r)?),
                Clause::Fact(a) => facts.push(a),
            }
        }
        let first = rules
            .first()
            .ok_or_else(|| RuleError::Parse("program has no rules".into()))?;
        let rec_pred = first.rec_pred();
        let arity = first.arity();
        let head = first.head().clone();
        let rules: Vec<LinearRule> = rules
            .iter()
            .map(|r| {
                if r.rec_pred() != rec_pred {
                    Err(RuleError::Parse(format!(
                        "all rules must define {rec_pred}; found {}",
                        r.rec_pred()
                    )))
                } else {
                    r.align_consequent(&head)
                }
            })
            .collect::<Result<_, _>>()?;

        let mut db = Database::new();
        let mut init = Relation::new(arity);
        for atom in facts {
            if atom.pred == rec_pred {
                if atom.arity() != arity {
                    return Err(RuleError::ArityMismatch {
                        pred: rec_pred,
                        head: arity,
                        body: atom.arity(),
                    });
                }
                let mut db_tmp = Database::new();
                db_tmp.insert_fact(&atom)?;
                init.union_in_place(db_tmp.relation(rec_pred).unwrap());
            } else {
                db.insert_fact(&atom)?;
            }
        }
        Ok(Program {
            rec_pred,
            rules,
            db,
            init,
        })
    }

    /// The recursive predicate.
    pub fn rec_pred(&self) -> Symbol {
        self.rec_pred
    }

    /// The (aligned) rules.
    pub fn rules(&self) -> &[LinearRule] {
        &self.rules
    }

    /// The EDB.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The seed relation.
    pub fn init(&self) -> &Relation {
        &self.init
    }

    /// Replace the seed relation (e.g. for programmatic workloads).
    pub fn with_init(mut self, init: Relation) -> Program {
        self.init = init;
        self
    }

    /// Replace an EDB relation.
    pub fn with_relation(mut self, pred: &str, rel: Relation) -> Program {
        self.db.set_relation(pred, rel);
        self
    }

    /// Run the paper's analyses for this program (and optional selection),
    /// collecting the certificates that license specialized strategies.
    pub fn analyze(&self, sel: Option<&Selection>) -> Analysis {
        Analysis::of(&self.rules, sel)
    }

    /// Analyze with explicit search bounds.
    pub fn analyze_with_effort(&self, sel: Option<&Selection>, effort: AnalysisEffort) -> Analysis {
        Analysis::with_effort(&self.rules, sel, effort)
    }

    /// Choose an evaluation strategy (certificate-backed) for this program
    /// and optional selection, by the paper's fixed preference order.
    pub fn plan(&self, sel: Option<&Selection>) -> Plan {
        self.analyze(sel).plan()
    }

    /// Choose the cheapest licensed strategy for this program's *data*
    /// (cost-model ranked; see [`Analysis::plan_for`]).
    pub fn plan_for(&self, sel: Option<&Selection>) -> Plan {
        self.analyze(sel).plan_for(&self.db, &self.init)
    }

    /// Plan (cost-model ranked against this program's data) and execute.
    /// Returns the execution outcome (with the selection applied, if any)
    /// and the plan that was used — annotated with the run's actual
    /// statistics next to the cost-model estimate
    /// ([`Plan::annotated_rationale`]).
    pub fn run(&self, sel: Option<&Selection>) -> Result<(ExecOutcome, Plan), StrategyError> {
        self.run_with_parallelism(sel, &crate::parallel::Parallelism::sequential())
    }

    /// [`Program::run`] under a [`crate::parallel::Parallelism`] knob: the
    /// chosen plan is offered parallel fixpoint rounds, cost-model gated
    /// ([`Plan::parallelize`] — the decision lands in the plan rationale).
    pub fn run_with_parallelism(
        &self,
        sel: Option<&Selection>,
        par: &crate::parallel::Parallelism,
    ) -> Result<(ExecOutcome, Plan), StrategyError> {
        let mut plan = self.plan_for(sel).parallelize(
            par,
            &crate::planner::CostModel::default(),
            &self.db,
            &self.init,
        );
        let outcome = plan.execute_feedback(&self.db, &self.init)?;
        Ok((outcome, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanShape;
    use linrec_datalog::Value;

    const UPDOWN: &str = "
        p(x,y) :- p(x,z), down(z,y).
        p(x,y) :- p(w,y), up(x,w).
        up(1,2). up(2,3).
        down(10,11). down(11,12).
        p(1,10).
    ";

    #[test]
    fn parse_splits_rules_facts_and_seed() {
        let prog = Program::parse(UPDOWN).unwrap();
        assert_eq!(prog.rules().len(), 2);
        assert_eq!(prog.init().len(), 1);
        assert_eq!(prog.database().relation_named("up").unwrap().len(), 2);
        assert_eq!(prog.rec_pred(), Symbol::new("p"));
    }

    #[test]
    fn planner_decomposes_commuting_program() {
        let prog = Program::parse(UPDOWN).unwrap();
        let plan = prog.plan(None);
        assert!(matches!(plan.shape(), PlanShape::Decomposed { .. }));
        assert!(plan.rationale().contains("commuting clusters"));
        let (outcome, _) = prog.run(None).unwrap();
        // p(1,10) closed under up/down: {1,2,3} × {10,11,12}... only
        // reachable combinations: up extends x backwards? up(x,w): x
        // new, w old: from (1,10): up(?,1): none... up(1,2) means
        // x=1,w=2: so p(2,...) derives p(1,...): seeds flow down from
        // (1,10): down: (1,11),(1,12); up needs p(w,y) with up(x,w): w ∈
        // {1}: no up(_,1)... up(1,2): p(2,y) would derive p(1,y): p(2,_)
        // unknown. So result = {(1,10),(1,11),(1,12)}.
        assert_eq!(outcome.relation.len(), 3);
    }

    #[test]
    fn planner_uses_separable_for_selected_queries() {
        let prog = Program::parse(UPDOWN).unwrap();
        let sel = Selection::eq(1, 12);
        let plan = prog.plan(Some(&sel));
        assert_eq!(plan.shape(), PlanShape::Separable, "{plan:?}");
        let (outcome, _) = prog.run(Some(&sel)).unwrap();
        assert_eq!(
            outcome.relation.sorted(),
            vec![vec![Value::Int(1), Value::Int(12)]]
        );
    }

    #[test]
    fn planner_detects_bounded_recursion() {
        let prog = Program::parse("p(x,y) :- p(x,y), mark(x). mark(1). p(1,5). p(2,6).").unwrap();
        let plan = prog.plan(None);
        assert_eq!(plan.shape(), PlanShape::BoundedPrefix { applications: 1 });
        let (outcome, _) = prog.run(None).unwrap();
        assert_eq!(outcome.relation.len(), 2); // seeds only (rule derives nothing new)
        assert!(outcome.stats.iterations <= 1);
    }

    #[test]
    fn planner_falls_back_to_direct() {
        let prog = Program::parse(
            "p(x,y) :- p(x,z), a(z,y).
             p(x,y) :- p(x,z), b(z,y).
             a(1,2). b(2,3). p(0,1).",
        )
        .unwrap();
        let plan = prog.plan(None);
        assert_eq!(plan.shape(), PlanShape::Direct);
        let (outcome, _) = prog.run(None).unwrap();
        assert_eq!(outcome.relation.len(), 3); // (0,1),(0,2),(0,3)
    }

    #[test]
    fn plans_agree_with_direct_evaluation() {
        let prog = Program::parse(UPDOWN).unwrap();
        let (planned, _) = prog.run(None).unwrap();
        let direct = Plan::direct(prog.rules().to_vec())
            .execute(prog.database(), prog.init())
            .unwrap();
        assert_eq!(planned.relation.sorted(), direct.relation.sorted());
    }

    #[test]
    fn cost_choice_agrees_with_preference_choice_on_results() {
        let prog = Program::parse(UPDOWN).unwrap();
        let costed = prog.plan_for(None);
        assert!(costed.rationale().contains("cost model"));
        let a = costed.execute(prog.database(), prog.init()).unwrap();
        let b = prog
            .plan(None)
            .execute(prog.database(), prog.init())
            .unwrap();
        assert_eq!(a.relation.sorted(), b.relation.sorted());
    }

    #[test]
    fn analysis_is_exposed_for_reporting() {
        let prog = Program::parse(UPDOWN).unwrap();
        let analysis = prog.analyze(None);
        assert!(analysis.commutativity().is_some());
        assert!(analysis.summary().contains("commutativity"));
    }

    #[test]
    fn parse_rejects_mixed_idb() {
        let bad = "p(x) :- p(x), a(x). q(x) :- q(x), b(x). a(1).";
        assert!(Program::parse(bad).is_err());
    }

    #[test]
    fn parse_rejects_empty_program() {
        assert!(Program::parse("a(1).").is_err());
    }

    #[test]
    fn seed_arity_is_checked() {
        let bad = "p(x,y) :- p(x,z), e(z,y). p(1).";
        assert!(matches!(
            Program::parse(bad),
            Err(RuleError::ArityMismatch { .. })
        ));
    }
}
