//! Whole-program API: parse a Datalog program, analyze it with the paper's
//! machinery, pick an evaluation strategy, and run it.
//!
//! This is the "downstream user" entry point: the analysis results of
//! `linrec-core` (commutativity clusters, uniform boundedness, separability
//! premises) become *certificates* that license the specialized strategies,
//! with a human-readable rationale attached to the chosen plan.

use crate::selection::Selection;
use crate::seminaive::bounded_prefix;
use crate::stats::EvalStats;
use crate::strategies::{
    eval_decomposed, eval_direct, eval_select_after, eval_separable, StrategyError,
};
use linrec_datalog::{
    parse_program, Clause, Database, LinearRule, Relation, RuleError, Symbol,
};

/// A parsed recursive query program: one recursive (IDB) predicate defined
/// by linear rules, plus ground facts for the EDB relations and the seed of
/// the recursive relation.
#[derive(Clone)]
pub struct Program {
    rec_pred: Symbol,
    rules: Vec<LinearRule>,
    db: Database,
    init: Relation,
}

impl Program {
    /// Parse program text. Clauses with bodies must all be linear recursive
    /// rules over the same head predicate; ground facts for that predicate
    /// seed the recursion, all other facts populate the EDB.
    pub fn parse(src: &str) -> Result<Program, RuleError> {
        let clauses = parse_program(src)?;
        let mut rules: Vec<LinearRule> = Vec::new();
        let mut facts: Vec<linrec_datalog::Atom> = Vec::new();
        for clause in clauses {
            match clause {
                Clause::Rule(r) => rules.push(LinearRule::from_rule(&r)?),
                Clause::Fact(a) => facts.push(a),
            }
        }
        let first = rules
            .first()
            .ok_or_else(|| RuleError::Parse("program has no rules".into()))?;
        let rec_pred = first.rec_pred();
        let arity = first.arity();
        let head = first.head().clone();
        let rules: Vec<LinearRule> = rules
            .iter()
            .map(|r| {
                if r.rec_pred() != rec_pred {
                    Err(RuleError::Parse(format!(
                        "all rules must define {rec_pred}; found {}",
                        r.rec_pred()
                    )))
                } else {
                    r.align_consequent(&head)
                }
            })
            .collect::<Result<_, _>>()?;

        let mut db = Database::new();
        let mut init = Relation::new(arity);
        for atom in facts {
            if atom.pred == rec_pred {
                if atom.arity() != arity {
                    return Err(RuleError::ArityMismatch {
                        pred: rec_pred,
                        head: arity,
                        body: atom.arity(),
                    });
                }
                let mut db_tmp = Database::new();
                db_tmp.insert_fact(&atom)?;
                init.union_in_place(db_tmp.relation(rec_pred).unwrap());
            } else {
                db.insert_fact(&atom)?;
            }
        }
        Ok(Program {
            rec_pred,
            rules,
            db,
            init,
        })
    }

    /// The recursive predicate.
    pub fn rec_pred(&self) -> Symbol {
        self.rec_pred
    }

    /// The (aligned) rules.
    pub fn rules(&self) -> &[LinearRule] {
        &self.rules
    }

    /// The EDB.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The seed relation.
    pub fn init(&self) -> &Relation {
        &self.init
    }

    /// Replace the seed relation (e.g. for programmatic workloads).
    pub fn with_init(mut self, init: Relation) -> Program {
        self.init = init;
        self
    }

    /// Replace an EDB relation.
    pub fn with_relation(mut self, pred: &str, rel: Relation) -> Program {
        self.db.set_relation(pred, rel);
        self
    }

    /// Choose an evaluation strategy for this program (and optional
    /// selection) using the paper's analyses.
    pub fn plan(&self, sel: Option<&Selection>) -> QueryPlan {
        plan_query(&self.rules, sel)
    }

    /// Plan and execute. Returns the result (with the selection applied, if
    /// any), the statistics, and the plan that was used.
    pub fn run(
        &self,
        sel: Option<&Selection>,
    ) -> Result<(Relation, EvalStats, QueryPlan), StrategyError> {
        let plan = self.plan(sel);
        let (rel, stats) = execute_plan(&plan, &self.rules, &self.db, &self.init, sel)?;
        Ok((rel, stats, plan))
    }
}

/// The strategy chosen for a query.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// The recursion is uniformly bounded: `A* = Σ_{m<N} Aᵐ` (finitely many
    /// applications regardless of the data).
    BoundedPrefix {
        /// Number of operator applications needed (`N − 1`).
        applications: usize,
    },
    /// Commuting clusters: `(ΣA)* = Π (Σ cluster)*` (Theorems 5.1/5.2 +
    /// §3 decomposition). Cluster indices refer to the program's rules.
    Decomposed {
        /// The clusters, applied right-to-left.
        clusters: Vec<Vec<usize>>,
    },
    /// The separable algorithm (Algorithm 4.1 / Theorem 4.1): evaluate
    /// `outer*(σ inner*)`.
    Separable {
        /// Index of the operator that commutes with the selection.
        outer: usize,
        /// Index of the operator absorbing the selection.
        inner: usize,
    },
    /// Plain semi-naive on the whole rule sum.
    Direct,
}

/// A chosen strategy plus the certificate-backed rationale.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// What to execute.
    pub kind: PlanKind,
    /// Why it is licensed (which theorem/check).
    pub rationale: String,
}

/// Decide a strategy for `rules` under an optional selection.
pub fn plan_query(rules: &[LinearRule], sel: Option<&Selection>) -> QueryPlan {
    // 1. Bounded recursion: a uniformly bounded operator sum needs only a
    //    finite prefix. (Checked for the single-rule case, where the
    //    certificate is the paper's uniform-boundedness witness.)
    if rules.len() == 1 {
        if let Ok(Some(w)) = linrec_core::uniformly_bounded(&rules[0], 6) {
            return QueryPlan {
                kind: PlanKind::BoundedPrefix {
                    applications: w.n - 1,
                },
                rationale: format!(
                    "uniformly bounded: A^{} ≤ A^{} (Lemma 6.2 search), so A* = Σ_{{m<{}}} Aᵐ",
                    w.n, w.k, w.n
                ),
            };
        }
    }

    // 2. Separable algorithm for two operators and a selection.
    if let (Some(sel), 2) = (sel, rules.len()) {
        for (outer, inner) in [(0usize, 1usize), (1, 0)] {
            if sel.commutes_with(&rules[outer])
                && linrec_core::pair_commutes(&rules[outer], &rules[inner]).unwrap_or(false)
            {
                return QueryPlan {
                    kind: PlanKind::Separable { outer, inner },
                    rationale: format!(
                        "rules commute and σ commutes with rule {outer}: σ(A₁+A₂)* = A{outer}*(σA{inner}*) (Theorem 4.1)"
                    ),
                };
            }
        }
    }

    // 3. Cluster decomposition.
    if rules.len() > 1 {
        if let Ok(plan) = linrec_core::plan_decomposition(rules, 0) {
            if plan.is_decomposed() {
                return QueryPlan {
                    kind: PlanKind::Decomposed {
                        clusters: plan.clusters.clone(),
                    },
                    rationale: format!(
                        "{} commuting clusters: (ΣA)* = Π (Σ cluster)* (Theorems 5.1/5.2, §3)",
                        plan.clusters.len()
                    ),
                };
            }
        }
    }

    QueryPlan {
        kind: PlanKind::Direct,
        rationale: "no decomposition certificate found: semi-naive on the rule sum".into(),
    }
}

/// Execute a plan.
pub fn execute_plan(
    plan: &QueryPlan,
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    sel: Option<&Selection>,
) -> Result<(Relation, EvalStats), StrategyError> {
    match &plan.kind {
        PlanKind::BoundedPrefix { applications } => {
            let (rel, mut stats) = bounded_prefix(&rules[0], db, init, *applications);
            let out = match sel {
                Some(s) => s.apply(&rel),
                None => rel,
            };
            stats.tuples = out.len();
            Ok((out, stats))
        }
        PlanKind::Decomposed { clusters } => {
            let groups: Vec<Vec<LinearRule>> = clusters
                .iter()
                .map(|c| c.iter().map(|&i| rules[i].clone()).collect())
                .collect();
            let (rel, mut stats) = eval_decomposed(&groups, db, init);
            let out = match sel {
                Some(s) => s.apply(&rel),
                None => rel,
            };
            stats.tuples = out.len();
            Ok((out, stats))
        }
        PlanKind::Separable { outer, inner } => {
            let sel = sel.expect("separable plan requires a selection");
            eval_separable(&rules[*outer], &rules[*inner], db, init, sel)
        }
        PlanKind::Direct => Ok(match sel {
            Some(s) => eval_select_after(rules, db, init, s),
            None => eval_direct(rules, db, init),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::Value;

    const UPDOWN: &str = "
        p(x,y) :- p(x,z), down(z,y).
        p(x,y) :- p(w,y), up(x,w).
        up(1,2). up(2,3).
        down(10,11). down(11,12).
        p(1,10).
    ";

    #[test]
    fn parse_splits_rules_facts_and_seed() {
        let prog = Program::parse(UPDOWN).unwrap();
        assert_eq!(prog.rules().len(), 2);
        assert_eq!(prog.init().len(), 1);
        assert_eq!(prog.database().relation_named("up").unwrap().len(), 2);
        assert_eq!(prog.rec_pred(), Symbol::new("p"));
    }

    #[test]
    fn planner_decomposes_commuting_program() {
        let prog = Program::parse(UPDOWN).unwrap();
        let plan = prog.plan(None);
        assert!(matches!(plan.kind, PlanKind::Decomposed { .. }));
        assert!(plan.rationale.contains("commuting clusters"));
        let (result, _, _) = prog.run(None).unwrap();
        // p(1,10) closed under up/down: {1,2,3} × {10,11,12}... only
        // reachable combinations: up extends x backwards? up(x,w): x
        // new, w old: from (1,10): up(?,1): none... up(1,2) means
        // x=1,w=2: so p(2,...) derives p(1,...): seeds flow down from
        // (1,10): down: (1,11),(1,12); up needs p(w,y) with up(x,w): w ∈
        // {1}: no up(_,1)... up(1,2): p(2,y) would derive p(1,y): p(2,_)
        // unknown. So result = {(1,10),(1,11),(1,12)}.
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn planner_uses_separable_for_selected_queries() {
        let prog = Program::parse(UPDOWN).unwrap();
        let sel = Selection::eq(1, 12);
        let plan = prog.plan(Some(&sel));
        assert!(matches!(plan.kind, PlanKind::Separable { .. }), "{plan:?}");
        let (result, _, _) = prog.run(Some(&sel)).unwrap();
        assert_eq!(result.sorted(), vec![vec![Value::Int(1), Value::Int(12)]]);
    }

    #[test]
    fn planner_detects_bounded_recursion() {
        let prog = Program::parse(
            "p(x,y) :- p(x,y), mark(x). mark(1). p(1,5). p(2,6).",
        )
        .unwrap();
        let plan = prog.plan(None);
        match plan.kind {
            PlanKind::BoundedPrefix { applications } => assert_eq!(applications, 1),
            other => panic!("expected bounded prefix, got {other:?}"),
        }
        let (result, stats, _) = prog.run(None).unwrap();
        assert_eq!(result.len(), 2); // seeds only (rule derives nothing new)
        assert!(stats.iterations <= 1);
    }

    #[test]
    fn planner_falls_back_to_direct() {
        let prog = Program::parse(
            "p(x,y) :- p(x,z), a(z,y).
             p(x,y) :- p(x,z), b(z,y).
             a(1,2). b(2,3). p(0,1).",
        )
        .unwrap();
        let plan = prog.plan(None);
        assert!(matches!(plan.kind, PlanKind::Direct));
        let (result, _, _) = prog.run(None).unwrap();
        assert_eq!(result.len(), 3); // (0,1),(0,2),(0,3)
    }

    #[test]
    fn plans_agree_with_direct_evaluation() {
        let prog = Program::parse(UPDOWN).unwrap();
        let (planned, _, _) = prog.run(None).unwrap();
        let (direct, _) = eval_direct(prog.rules(), prog.database(), prog.init());
        assert_eq!(planned.sorted(), direct.sorted());
    }

    #[test]
    fn parse_rejects_mixed_idb() {
        let bad = "p(x) :- p(x), a(x). q(x) :- q(x), b(x). a(1).";
        assert!(Program::parse(bad).is_err());
    }

    #[test]
    fn parse_rejects_empty_program() {
        assert!(Program::parse("a(1).").is_err());
    }

    #[test]
    fn seed_arity_is_checked() {
        let bad = "p(x,y) :- p(x,z), e(z,y). p(1).";
        assert!(matches!(
            Program::parse(bad),
            Err(RuleError::ArityMismatch { .. })
        ));
    }
}
