//! Evaluation of operator expressions over data.
//!
//! [`eval_expr`] gives every [`OpExpr`] its semantics:
//! `0·P = ∅`, `1·P = P`, `Base(i)·P = Aᵢ(P)`, sums are unions, products
//! apply right-to-left, and `E*·P` is the least fixpoint `S = P ∪ E(S)`
//! computed semi-naively (applying `E` to the delta only — valid because
//! every expression denotes a *linear* operator: tuples of `E(S)` depend on
//! one tuple of `S`).
//!
//! Together with `linrec_core::decompose_stars` this closes the loop of the
//! paper's Section 2 abstraction: rewrite the expression algebraically,
//! then evaluate any equivalent form — the integration tests check
//! `eval(E) = eval(rewrite(E))` on random data.

use crate::join::{apply_linear, Indexes};
use crate::stats::EvalStats;
use linrec_core::{ExprContext, OpExpr};
use linrec_datalog::{Database, Relation};

/// Evaluate `expr · init` over `db`.
pub fn eval_expr(
    expr: &OpExpr,
    ctx: &ExprContext,
    db: &Database,
    init: &Relation,
) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut indexes = Indexes::new();
    let out = go(expr, ctx, db, init, &mut stats, &mut indexes);
    stats.tuples = out.len();
    (out, stats)
}

fn go(
    expr: &OpExpr,
    ctx: &ExprContext,
    db: &Database,
    input: &Relation,
    stats: &mut EvalStats,
    indexes: &mut Indexes,
) -> Relation {
    match expr {
        OpExpr::Zero => Relation::new(input.arity()),
        OpExpr::One => input.clone(),
        OpExpr::Base(i) => {
            let (out, derivs) = apply_linear(ctx.rule(*i), db, input, indexes);
            stats.record(derivs, out.len() as u64);
            out
        }
        OpExpr::Sum(terms) => {
            let mut acc = Relation::new(input.arity());
            for t in terms {
                let part = go(t, ctx, db, input, stats, indexes);
                let added = acc.union_in_place(&part);
                // Tuples produced by several summands are duplicates.
                stats.duplicates += (part.len() - added) as u64;
            }
            acc
        }
        OpExpr::Product(factors) => {
            let mut current = input.clone();
            for f in factors.iter().rev() {
                current = go(f, ctx, db, &current, stats, indexes);
            }
            current
        }
        OpExpr::Star(inner) => {
            let mut total = input.clone();
            let mut delta = input.clone();
            while !delta.is_empty() {
                stats.iterations += 1;
                let derived = go(inner, ctx, db, &delta, stats, indexes);
                let mut next = Relation::new(total.arity());
                for t in derived.iter() {
                    if !total.contains(t) {
                        next.insert(t);
                    }
                }
                // Tuples re-derived across rounds are duplicates (the
                // within-application ones were already recorded at the
                // Base level).
                stats.duplicates += (derived.len() - next.len()) as u64;
                total.union_in_place(&next);
                delta = next;
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rules, seminaive_star, workload};
    use linrec_core::{decompose_stars, ExprContext, OpExpr};

    fn ctx_updown() -> ExprContext {
        ExprContext::new(vec![
            ("B".into(), rules::down_rule()),
            ("C".into(), rules::up_rule()),
        ])
        .unwrap()
    }

    #[test]
    fn star_of_sum_matches_eval_direct() {
        let ctx = ctx_updown();
        let (db, init) = workload::up_down(5, 9);
        let e = OpExpr::star_of_sum([0, 1]);
        let (via_expr, _) = eval_expr(&e, &ctx, &db, &init);
        let (direct, _) = seminaive_star(&ctx.rules(), &db, &init);
        assert_eq!(via_expr.sorted(), direct.sorted());
    }

    #[test]
    fn rewritten_expression_evaluates_identically() {
        let ctx = ctx_updown();
        let (db, init) = workload::up_down(6, 21);
        let e = OpExpr::star_of_sum([0, 1]);
        let (rewritten, log) = decompose_stars(&e, &ctx).unwrap();
        assert!(!log.is_empty());
        let (a, sa) = eval_expr(&e, &ctx, &db, &init);
        let (b, sb) = eval_expr(&rewritten, &ctx, &db, &init);
        assert_eq!(a.sorted(), b.sorted());
        // The decomposed form also produces no more duplicates (Thm 3.1).
        assert!(sb.duplicates <= sa.duplicates);
    }

    #[test]
    fn products_apply_right_to_left() {
        let ctx = ctx_updown();
        let (db, init) = workload::up_down(4, 2);
        // B·C : apply C (up) first, then B (down).
        let e = OpExpr::Product(vec![OpExpr::Base(0), OpExpr::Base(1)]);
        let (out, _) = eval_expr(&e, &ctx, &db, &init);
        let (up_first, _) = eval_expr(&OpExpr::Base(1), &ctx, &db, &init);
        let (expected, _) = eval_expr(&OpExpr::Base(0), &ctx, &db, &up_first);
        assert_eq!(out.sorted(), expected.sorted());
    }

    #[test]
    fn units_behave() {
        let ctx = ctx_updown();
        let (db, init) = workload::up_down(3, 1);
        let (zero, _) = eval_expr(&OpExpr::Zero, &ctx, &db, &init);
        assert!(zero.is_empty());
        let (one, _) = eval_expr(&OpExpr::One, &ctx, &db, &init);
        assert_eq!(one.sorted(), init.sorted());
        let (star_one, _) = eval_expr(&OpExpr::Star(Box::new(OpExpr::One)), &ctx, &db, &init);
        assert_eq!(star_one.sorted(), init.sorted());
    }

    #[test]
    fn nested_star_products_evaluate() {
        // ((B* C*))* is wasteful but legal; must equal (B+C)* on data
        // because B*C* ⊇ B + C and ⊆ (B+C)*.
        let ctx = ctx_updown();
        let (db, init) = workload::up_down(4, 5);
        let inner = OpExpr::Product(vec![
            OpExpr::Star(Box::new(OpExpr::Base(0))),
            OpExpr::Star(Box::new(OpExpr::Base(1))),
        ]);
        let nested = OpExpr::Star(Box::new(inner));
        let (a, _) = eval_expr(&nested, &ctx, &db, &init);
        let (b, _) = eval_expr(&OpExpr::star_of_sum([0, 1]), &ctx, &db, &init);
        assert_eq!(a.sorted(), b.sorted());
    }
}
