//! A library of named rules: every rule and rule pair appearing in the
//! paper's examples and figures, plus the workload rules used by the
//! experiment harness. Each constant is the paper's rule transliterated
//! into the parser syntax (lowercase predicate names).

use linrec_datalog::{parse_linear_rule, LinearRule};

/// Parse one of the constants below (infallible by construction).
fn rule(src: &str) -> LinearRule {
    parse_linear_rule(src).unwrap_or_else(|e| panic!("bad builtin rule {src:?}: {e}"))
}

/// Right-linear transitive closure over `q` (Example 5.2, first rule):
/// `P(x,y) :- P(x,z) ∧ Q(z,y)`.
pub fn tc_right() -> LinearRule {
    rule("p(x,y) :- p(x,z), q(z,y).")
}

/// Left-linear transitive closure over `q` (Example 5.2, second rule):
/// `P(x,y) :- P(w,y) ∧ Q(x,w)`.
pub fn tc_left() -> LinearRule {
    rule("p(x,y) :- p(w,y), q(x,w).")
}

/// The up/down pair (distinct EDB relations; the canonical separable /
/// commuting workload): expand the right column through `down`.
pub fn down_rule() -> LinearRule {
    rule("p(x,y) :- p(x,z), down(z,y).")
}

/// Expand the left column through `up`.
pub fn up_rule() -> LinearRule {
    rule("p(x,y) :- p(w,y), up(x,w).")
}

/// Example 5.1 / Figure 1 (reconstructed — the scanned original is
/// unreadable; classes match the paper's text: z free 1-persistent, w and y
/// link 1-persistent, u and v free 2-persistent, x general).
pub fn figure_1() -> LinearRule {
    rule("p(w,x,y,z,u,v) :- p(w,s0,y,z,v,u), q(w,x), q2(x,y), r(y).")
}

/// Example 5.1 / Figure 2: `P(u,w,x,y,z) :- P(u,u,u,y,y) ∧ Q(u,u,y) ∧ R(w)
/// ∧ S(x) ∧ T(z)`.
pub fn figure_2() -> LinearRule {
    rule("p(u,w,x,y,z) :- p(u,u,u,y,y), q(u,u,y), r(w), s(x), t(z).")
}

/// Example 5.3, first rule: `P(x,y,z) :- P(u,y,z) ∧ Q(x,y)`.
pub fn example_5_3_r1() -> LinearRule {
    rule("p(x,y,z) :- p(u,y,z), q(x,y).")
}

/// Example 5.3, second rule: `P(x,y,z) :- P(x,y,v) ∧ R(z,y)`.
pub fn example_5_3_r2() -> LinearRule {
    rule("p(x,y,z) :- p(x,y,v), r(z,y).")
}

/// Example 5.4, first rule: `P(x,y) :- P(y,w) ∧ Q(x)` — commutes with
/// [`example_5_4_r2`] although Theorem 5.1's condition fails.
pub fn example_5_4_r1() -> LinearRule {
    rule("p(x,y) :- p(y,w), q(x).")
}

/// Example 5.4, second rule: `P(x,y) :- P(u,v) ∧ Q(x) ∧ Q(y)`.
pub fn example_5_4_r2() -> LinearRule {
    rule("p(x,y) :- p(u,v), q(x), q(y).")
}

/// Example 6.1 / Figure 6: `buys(x,y) :- knows(x,z) ∧ buys(z,y) ∧ cheap(y)`
/// — `cheap` is recursively redundant.
pub fn shopping_rule() -> LinearRule {
    rule("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).")
}

/// Example 6.2 / Figure 7: `P(w,x,y,z) :- P(x,w,x,u) ∧ Q(x,u) ∧ R(x,y) ∧
/// S(u,z)` — `R` is recursively redundant, `A² = BC²`.
pub fn example_6_2() -> LinearRule {
    rule("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).")
}

/// Example 6.3 / Figure 9: like Example 6.2 but with `Q(y,u)` — `BC² ≠ C²B`
/// yet `C²(BC²) = C²(C²B)`.
pub fn example_6_3() -> LinearRule {
    rule("p(w,x,y,z) :- p(x,w,x,u), q(y,u), r(x,y), s(u,z).")
}

/// The same-generation recursive rule (Section 5.2's side remark: the
/// product of the two transitive-closure forms): `sg(x,y) :- up(x,u) ∧
/// sg(u,v) ∧ down(v,y)`.
pub fn same_generation() -> LinearRule {
    rule("sg(x,y) :- up(x,u), sg(u,v), down(v,y).")
}

/// All paper rules, with labels (used by the figures binary).
pub fn paper_rules() -> Vec<(&'static str, LinearRule)> {
    vec![
        ("figure-1 (Example 5.1)", figure_1()),
        ("figure-2 (Example 5.1)", figure_2()),
        ("figure-3a (Example 5.2, right TC)", tc_right()),
        ("figure-3b (Example 5.2, left TC)", tc_left()),
        ("figure-4a (Example 5.3, r1)", example_5_3_r1()),
        ("figure-4b (Example 5.3, r2)", example_5_3_r2()),
        ("figure-5a (Example 5.4, r1)", example_5_4_r1()),
        ("figure-5b (Example 5.4, r2)", example_5_4_r2()),
        ("figure-6 (Example 6.1)", shopping_rule()),
        ("figure-7 (Example 6.2)", example_6_2()),
        ("figure-9 (Example 6.3)", example_6_3()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_rules_parse_and_validate() {
        for (name, r) in paper_rules() {
            assert!(r.arity() > 0, "{name}");
        }
        assert_eq!(same_generation().nonrec_atoms().len(), 2);
        assert_eq!(up_rule().rec_pred(), down_rule().rec_pred());
    }

    #[test]
    fn tc_pair_shares_consequent() {
        assert_eq!(tc_right().head(), tc_left().head());
    }
}
