//! Conjunctive joins: applying one rule body to concrete relations.
//!
//! A linear operator application `A(P)` evaluates the rule body as a
//! backtracking join. The recursive atom is matched first (its relation is
//! the small delta in semi-naive evaluation); nonrecursive atoms are matched
//! through per-column hash indexes that are built once per `(predicate,
//! column)` and cached across iterations (the EDB never changes during a
//! fixpoint).

use linrec_datalog::hash::FastMap;
use linrec_datalog::{Atom, Database, LinearRule, Relation, Symbol, Term, Tuple, Value, Var};

/// Hash indexes `(predicate, column) → value → tuples`, built lazily and
/// cached for the lifetime of a fixpoint computation.
#[derive(Default)]
pub struct Indexes {
    by_col: FastMap<(Symbol, usize), FastMap<Value, Vec<Tuple>>>,
}

impl Indexes {
    /// Fresh empty index cache.
    pub fn new() -> Indexes {
        Indexes::default()
    }

    /// Ensure an index exists for every column of `atom`'s relation.
    fn ensure(&mut self, atom: &Atom, rel: &Relation) {
        for col in 0..atom.arity() {
            self.by_col.entry((atom.pred, col)).or_insert_with(|| {
                let mut idx: FastMap<Value, Vec<Tuple>> = FastMap::default();
                for t in rel.iter() {
                    idx.entry(t[col]).or_default().push(t.clone());
                }
                idx
            });
        }
    }

    fn lookup(&self, pred: Symbol, col: usize, val: Value) -> Option<&[Tuple]> {
        self.by_col
            .get(&(pred, col))
            .and_then(|idx| idx.get(&val))
            .map(|v| v.as_slice())
    }
}

/// Bindings from variables to values during a join.
type Bindings = FastMap<Var, Value>;

fn match_tuple(atom: &Atom, tuple: &[Value], bind: &mut Bindings, trail: &mut Vec<Var>) -> bool {
    let depth = trail.len();
    for (term, &val) in atom.terms.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Const(c) => *c == val,
            Term::Var(v) => match bind.get(v) {
                Some(&b) => b == val,
                None => {
                    bind.insert(*v, val);
                    trail.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in trail.drain(depth..) {
                bind.remove(&v);
            }
            return false;
        }
    }
    true
}

fn first_bound_col(atom: &Atom, bind: &Bindings) -> Option<(usize, Value)> {
    atom.terms.iter().enumerate().find_map(|(i, t)| match t {
        Term::Const(c) => Some((i, *c)),
        Term::Var(v) => bind.get(v).map(|&val| (i, val)),
    })
}

struct JoinRun<'a> {
    head: &'a Atom,
    atoms: &'a [Atom],
    first_rel: &'a Relation,
    full_scans: &'a [Vec<Tuple>], // per trailing atom, for unbound fallback
    indexes: &'a Indexes,
    out: Relation,
    derivations: u64,
}

impl<'a> JoinRun<'a> {
    fn emit(&mut self, bind: &Bindings) {
        let tuple: Tuple = self
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *bind.get(v).unwrap_or_else(|| {
                    panic!("head variable {v} unbound: rule not range-restricted over its body")
                }),
            })
            .collect();
        self.derivations += 1;
        self.out.insert(tuple);
    }

    fn descend(&mut self, depth: usize, bind: &mut Bindings, trail: &mut Vec<Var>) {
        if depth == self.atoms.len() {
            self.emit(bind);
            return;
        }
        let atom: &'a Atom = &self.atoms[depth];
        let marker = trail.len();
        // Candidate tuples for this atom; all three sources borrow data that
        // outlives `self`, so the loop can call `descend` freely.
        let candidates: CandidateIter<'a> = if depth == 0 {
            CandidateIter::Rel(self.first_rel)
        } else {
            match first_bound_col(atom, bind) {
                Some((col, val)) => {
                    CandidateIter::Slice(self.indexes.lookup(atom.pred, col, val).unwrap_or(&[]))
                }
                None => CandidateIter::Slice(&self.full_scans[depth - 1]),
            }
        };
        match candidates {
            CandidateIter::Rel(rel) => {
                for t in rel.iter() {
                    if match_tuple(atom, t, bind, trail) {
                        self.descend(depth + 1, bind, trail);
                        for v in trail.drain(marker..) {
                            bind.remove(&v);
                        }
                    }
                }
            }
            CandidateIter::Slice(tuples) => {
                for t in tuples {
                    if match_tuple(atom, t, bind, trail) {
                        self.descend(depth + 1, bind, trail);
                        for v in trail.drain(marker..) {
                            bind.remove(&v);
                        }
                    }
                }
            }
        }
    }
}

enum CandidateIter<'a> {
    Rel(&'a Relation),
    Slice(&'a [Tuple]),
}

/// Apply the body `atoms` (with `atoms[0]`'s relation given explicitly as
/// `first_rel` and the rest resolved in `db`), emitting one head tuple per
/// complete match. Returns the produced relation and the number of
/// derivations (successful matches, including duplicates).
fn join_emit(
    head: &Atom,
    atoms: &[Atom],
    first_rel: &Relation,
    db: &Database,
    indexes: &mut Indexes,
) -> (Relation, u64) {
    // An atom whose arity disagrees with the stored relation's schema can
    // match nothing (the typeless system identifies a predicate with one
    // arity); treat it as empty rather than indexing out of bounds.
    if first_rel.arity() != atoms[0].arity() {
        return (Relation::new(head.arity()), 0);
    }
    let mut full_scans: Vec<Vec<Tuple>> = Vec::with_capacity(atoms.len().saturating_sub(1));
    for a in &atoms[1..] {
        let rel = db.relation_or_empty(a.pred, a.arity());
        if rel.arity() != a.arity() {
            return (Relation::new(head.arity()), 0);
        }
        indexes.ensure(a, &rel);
        full_scans.push(rel.iter().cloned().collect());
    }
    let mut run = JoinRun {
        head,
        atoms,
        first_rel,
        full_scans: &full_scans,
        indexes,
        out: Relation::new(head.arity()),
        derivations: 0,
    };
    let mut bind: Bindings = FastMap::default();
    let mut trail: Vec<Var> = Vec::new();
    run.descend(0, &mut bind, &mut trail);
    (run.out, run.derivations)
}

/// Apply a linear operator once: `A(p_rel)` with nonrecursive parameters
/// taken from `db`. Returns the derived relation and the derivation count.
pub fn apply_linear(
    rule: &LinearRule,
    db: &Database,
    p_rel: &Relation,
    indexes: &mut Indexes,
) -> (Relation, u64) {
    let mut atoms = Vec::with_capacity(1 + rule.nonrec_atoms().len());
    atoms.push(rule.rec_atom().clone());
    atoms.extend(rule.nonrec_atoms().iter().cloned());
    join_emit(rule.head(), &atoms, p_rel, db, indexes)
}

/// Evaluate a plain nonrecursive rule over `db` (used by the magic phase).
/// The first body atom's relation is resolved in `db` as well.
pub fn apply_flat(
    rule: &linrec_datalog::Rule,
    db: &Database,
    indexes: &mut Indexes,
) -> (Relation, u64) {
    assert!(!rule.body.is_empty(), "flat rule needs a body");
    let first_rel = db.relation_or_empty(rule.body[0].pred, rule.body[0].arity());
    join_emit(&rule.head, &rule.body, &first_rel, db, indexes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn single_step_application() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (2, 3)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        let (out, derivs) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 2)]).sorted());
        assert_eq!(derivs, 1);
    }

    #[test]
    fn derivations_count_duplicates() {
        // Two z-paths produce the same head tuple: 2 derivations, 1 tuple.
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 9), (2, 9)]));
        let p = Relation::from_pairs([(0, 1), (0, 2)]);
        let (out, derivs) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.len(), 1);
        assert_eq!(derivs, 2);
    }

    #[test]
    fn filters_with_unary_atoms() {
        let r = parse_linear_rule("p(x,y) :- p(x,y), good(y).").unwrap();
        let mut db = Database::new();
        db.set_relation("good", Relation::from_tuples(1, [vec![Value::Int(2)]]));
        let p = Relation::from_pairs([(1, 2), (1, 3)]);
        let (out, _) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.sorted(), Relation::from_pairs([(1, 2)]).sorted());
    }

    #[test]
    fn constants_in_body_restrict() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y), anchor(x, 7).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        db.set_relation("anchor", Relation::from_pairs([(0, 7), (5, 8)]));
        let p = Relation::from_pairs([(0, 1), (5, 1)]);
        let (out, _) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 2)]).sorted());
    }

    #[test]
    fn missing_edb_relation_is_empty() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), nothere(z,y).").unwrap();
        let db = Database::new();
        let p = Relation::from_pairs([(0, 1)]);
        let (out, derivs) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert!(out.is_empty());
        assert_eq!(derivs, 0);
    }

    #[test]
    fn repeated_variables_in_atoms() {
        let r = parse_linear_rule("p(x,y) :- p(x,y), loop(y,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("loop", Relation::from_pairs([(2, 2), (3, 4)]));
        let p = Relation::from_pairs([(1, 2), (1, 3)]);
        let (out, _) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.sorted(), Relation::from_pairs([(1, 2)]).sorted());
    }

    #[test]
    fn flat_rule_evaluation() {
        let rule = linrec_datalog::parse_rule("m(z) :- m0(x), e(x,z).").unwrap();
        let mut db = Database::new();
        db.set_relation("m0", Relation::from_tuples(1, [vec![Value::Int(1)]]));
        db.set_relation("e", Relation::from_pairs([(1, 2), (1, 3), (9, 9)]));
        let (out, derivs) = apply_flat(&rule, &db, &mut Indexes::new());
        assert_eq!(out.len(), 2);
        assert_eq!(derivs, 2);
    }

    #[test]
    fn cartesian_product_when_unconnected() {
        let r = parse_linear_rule("p(x,y) :- p(x,w), a(y).").unwrap();
        let mut db = Database::new();
        db.set_relation(
            "a",
            Relation::from_tuples(1, [vec![Value::Int(7)], vec![Value::Int(8)]]),
        );
        let p = Relation::from_pairs([(1, 1), (2, 2)]);
        let (out, derivs) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.len(), 4);
        assert_eq!(derivs, 4);
    }
}
