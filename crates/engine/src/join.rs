//! Conjunctive joins: applying one rule body to concrete relations.
//!
//! A linear operator application `A(P)` evaluates the rule body as a
//! backtracking join. The recursive atom is matched first (its relation is
//! the small delta in semi-naive evaluation); the trailing atoms are
//! reordered once per application by estimated selectivity and matched
//! through per-column hash indexes over arena row ids.
//!
//! # Index lifecycle
//!
//! [`Indexes`] is the scan/index cache. The EDB never changes during a
//! fixpoint computation, so each trailing-atom relation is materialized
//! into the cache **once** per fixpoint (a single flat copy of the
//! relation's arena — see `linrec_datalog::relation` for the layout), and
//! per-column hash indexes are built over **row ids** into that arena
//! rather than cloned tuples. Rounds of the fixpoint reuse both; nothing
//! about the EDB is re-scanned, re-cloned, or re-hashed after the first
//! round. A fresh fixpoint (new `Indexes`) starts empty.
//!
//! Since the incremental-view service reuses one `Indexes` **across**
//! fixpoints while the EDB grows between batches, every cached scan
//! remembers the [`Relation::version`] it was built from and is
//! revalidated on each operator application: a version mismatch rebuilds
//! that relation's scan and indexes (and the affected join plans) before
//! any row is served. Relations untouched by a batch keep their cache —
//! that is the point of sharing the cache across batches. Versions are
//! globally unique per mutation, so revalidation is a single integer
//! compare and can never serve stale rows. [`Indexes::invalidate`] drops
//! one predicate's entry explicitly.
//!
//! Column indexes are only built for columns that can ever hold a bound
//! value when the atom is matched: a column whose term is a variable that
//! occurs in no *other* body atom can never be bound at probe time (the
//! join binds variables strictly left-to-right across atoms), so indexing
//! it would be wasted work. The runtime falls back to a linear arena scan
//! for un-indexed columns — the per-tuple [`match_tuple`] check re-verifies
//! every column, so indexes are purely a candidate filter and never affect
//! the result.
//!
//! # Atom ordering
//!
//! Before descending, the trailing atoms are ordered greedily by estimated
//! selectivity: starting from the variables bound by the recursive atom,
//! repeatedly pick the atom whose first bound column has the smallest
//! expected index bucket (`rows / distinct keys`), atoms with no bound
//! column scoring their full row count. This keeps the candidate sets small
//! early, which shrinks the whole search tree; it changes only enumeration
//! order, never the set of matches or the derivation count.
//!
//! # Parallel rounds: prepare, then probe
//!
//! All cache mutation (scan revalidation, column-index building, join-plan
//! computation) happens in [`prepare_rules`], on one thread, before a
//! parallel fixpoint round starts. After that, the round's workers share
//! the cache **read-only** through [`apply_linear_rows`]: `Indexes` is
//! plain data (`Sync`), the database is frozen for the round, and a probe
//! never writes — so one `Indexes` built once serves every shard of every
//! rule concurrently. The sequential path ([`apply_linear`]) keeps doing
//! both steps per application, which is cheaper when there is nothing to
//! fan out.

use linrec_datalog::hash::{FastMap, FastSet};
use linrec_datalog::{Atom, Database, LinearRule, Relation, Symbol, Term, Value, Var};

/// Per-predicate scan/index cache. Valid across fixpoints: every cached
/// scan is revalidated against its relation's content version on each
/// operator application and rebuilt when the relation changed. See the
/// module docs for lifecycle.
#[derive(Default)]
pub struct Indexes {
    cache: FastMap<Symbol, RelCache>,
    /// Per-body join plans (trailing-atom order), keyed by the body atoms:
    /// the order depends only on the rule text and the cached statistics,
    /// so it is computed once and recomputed only when a scan of one of
    /// the body's predicates has been rebuilt since — tracked by stamping
    /// each scan with the rebuild generation it was built at and each plan
    /// with the highest generation it observed (so a rebuild retires the
    /// plans of *every* body over that predicate, not just the body whose
    /// application happened to trigger the rebuild).
    plans: FastMap<Vec<Atom>, JoinPlan>,
    /// Monotone counter of scan (re)builds, the source of the stamps.
    generation: u64,
}

/// The scan-invariant part of one body's evaluation.
#[derive(Clone)]
struct JoinPlan {
    /// Trailing-atom match order (indices into the body, all ≥ 1).
    order: Vec<usize>,
    /// Highest scan rebuild generation among the body's predicates when
    /// the plan was computed; a scan with a newer stamp retires the plan.
    generation: u64,
}

/// One cached relation: a flat snapshot of its arena plus lazily built
/// per-column indexes of row ids.
struct RelCache {
    arity: usize,
    /// Row-major copy of the relation's arena (one `memcpy` at build time).
    arena: Vec<Value>,
    rows: usize,
    /// [`Relation::version`] the snapshot was taken at (0 for a predicate
    /// that was missing from the database).
    version: u64,
    /// [`Indexes::generation`] at which this scan was (re)built.
    built_at: u64,
    /// `cols[c]` maps a value to the row ids holding it in column `c`;
    /// `None` while unbuilt (never-bindable or not yet requested).
    cols: Vec<Option<FastMap<Value, Vec<u32>>>>,
}

impl RelCache {
    fn of(rel: &Relation, built_at: u64) -> RelCache {
        debug_assert_eq!(
            rel.flat().len(),
            rel.len() * rel.arity(),
            "relation arena must be exactly len()*arity values at snapshot time"
        );
        RelCache {
            arity: rel.arity(),
            arena: rel.flat().to_vec(),
            rows: rel.len(),
            version: rel.version(),
            built_at,
            cols: (0..rel.arity()).map(|_| None).collect(),
        }
    }

    fn missing(arity: usize, built_at: u64) -> RelCache {
        RelCache {
            arity,
            arena: Vec::new(),
            rows: 0,
            version: 0,
            built_at,
            cols: (0..arity).map(|_| None).collect(),
        }
    }

    fn row(&self, r: u32) -> &[Value] {
        let start = r as usize * self.arity;
        &self.arena[start..start + self.arity]
    }

    fn build_col(&mut self, col: usize) {
        if self.cols[col].is_some() {
            return;
        }
        if linrec_obs::enabled() {
            crate::profile::join().col_index_builds.inc();
        }
        let mut idx: FastMap<Value, Vec<u32>> = FastMap::default();
        for r in 0..self.rows {
            idx.entry(self.arena[r * self.arity + col])
                .or_default()
                .push(r as u32);
        }
        debug_assert_eq!(
            idx.values().map(Vec::len).sum::<usize>(),
            self.rows,
            "a column index must reference every cached row exactly once"
        );
        self.cols[col] = Some(idx);
    }

    /// Row ids whose column `col` holds `val`, when that column is indexed.
    fn lookup(&self, col: usize, val: Value) -> Option<&[u32]> {
        self.cols[col]
            .as_ref()
            .map(|idx| idx.get(&val).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// Expected candidate-set size when probing `col` bound (average index
    /// bucket), or the full row count when the column is not indexed.
    fn est_bound(&self, col: usize) -> f64 {
        match &self.cols[col] {
            Some(idx) if !idx.is_empty() => self.rows as f64 / idx.len() as f64,
            _ => self.rows as f64,
        }
    }
}

impl Indexes {
    /// Fresh empty cache (start of a fixpoint).
    pub fn new() -> Indexes {
        Indexes::default()
    }

    /// Drop the cached scan/indexes for `pred`, forcing a rebuild on the
    /// next application that touches it. Rarely needed — version
    /// revalidation already catches every mutation — but available for
    /// callers that want to bound the cache's memory between batches.
    pub fn invalidate(&mut self, pred: Symbol) {
        self.cache.remove(&pred);
    }

    /// Materialize `atom`'s relation from `db`, revalidating an existing
    /// entry against the relation's content version (a mutated relation is
    /// re-scanned; an untouched one is served from cache). Returns the
    /// generation the scan was built at, or `None` when the stored
    /// relation's arity disagrees with the atom's (the atom then matches
    /// nothing). Column indexes are built separately ([`Indexes::build_cols`])
    /// and only when a join plan is (re)computed.
    fn revalidate(&mut self, atom: &Atom, db: &Database) -> Option<u64> {
        let rel = db.relation(atom.pred);
        let current_version = rel.map_or(0, |r| r.version());
        let next_gen = self.generation + 1;
        let mut built = false;
        let cache = self
            .cache
            .entry(atom.pred)
            .and_modify(|c| {
                if c.version != current_version {
                    *c = match rel {
                        Some(rel) => RelCache::of(rel, next_gen),
                        None => RelCache::missing(atom.arity(), next_gen),
                    };
                    built = true;
                }
            })
            .or_insert_with(|| {
                built = true;
                match rel {
                    Some(rel) => RelCache::of(rel, next_gen),
                    // Missing predicate: cache an empty relation of the
                    // atom's arity so later lookups stay cheap.
                    None => RelCache::missing(atom.arity(), next_gen),
                }
            });
        debug_assert_eq!(
            cache.version, current_version,
            "a revalidated scan must match the relation's content version"
        );
        let built_at = cache.built_at;
        let arity_ok = cache.arity == atom.arity();
        if built {
            self.generation = next_gen;
            if linrec_obs::enabled() {
                crate::profile::join().scan_builds.inc();
            }
        }
        arity_ok.then_some(built_at)
    }

    /// Build the column indexes flagged bindable on `pred`'s cached scan
    /// (idempotent per column).
    fn build_cols(&mut self, pred: Symbol, bindable: &[bool]) {
        let cache = self.cache.get_mut(&pred).expect("scan revalidated first");
        for (col, &b) in bindable.iter().enumerate() {
            if b {
                cache.build_col(col);
            }
        }
    }

    fn get(&self, pred: Symbol) -> &RelCache {
        &self.cache[&pred]
    }
}

/// Bindings from variables to values during a join.
type Bindings = FastMap<Var, Value>;

fn match_tuple(atom: &Atom, tuple: &[Value], bind: &mut Bindings, trail: &mut Vec<Var>) -> bool {
    let depth = trail.len();
    for (term, &val) in atom.terms.iter().zip(tuple.iter()) {
        let ok = match term {
            Term::Const(c) => *c == val,
            Term::Var(v) => match bind.get(v) {
                Some(&b) => b == val,
                None => {
                    bind.insert(*v, val);
                    trail.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in trail.drain(depth..) {
                bind.remove(&v);
            }
            return false;
        }
    }
    true
}

/// The first column of `terms` that carries a concrete value when the atom
/// is probed (a constant, or a variable `is_bound`). Shared by the join's
/// selectivity ordering and the planner's fanout estimation so the cost
/// model always ranks candidates against the probe column the engine will
/// actually use.
pub(crate) fn first_probe_col(terms: &[Term], is_bound: impl Fn(Var) -> bool) -> Option<usize> {
    terms.iter().enumerate().find_map(|(c, t)| match t {
        Term::Const(_) => Some(c),
        Term::Var(v) if is_bound(*v) => Some(c),
        Term::Var(_) => None,
    })
}

/// For each column of trailing atom `i`, can the column's value be bound
/// when the atom is probed? A constant always is; a variable only if it
/// also occurs in some *other* body atom (the recursive atom or another
/// trailing atom) — a variable private to this atom is bound, if at all,
/// only while matching the atom itself, after the candidate set was chosen.
fn bindable_columns(atoms: &[Atom], i: usize) -> Vec<bool> {
    let elsewhere: FastSet<Var> = atoms
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .flat_map(|(_, a)| a.vars())
        .collect();
    atoms[i]
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => elsewhere.contains(v),
        })
        .collect()
}

/// Greedy selectivity order for the trailing atoms: repeatedly pick the
/// atom with the cheapest estimated candidate set given the variables bound
/// so far. Returns indices into `atoms` (all ≥ 1; index 0 stays first).
fn selectivity_order(atoms: &[Atom], indexes: &Indexes) -> Vec<usize> {
    let mut bound: FastSet<Var> = atoms[0].vars().collect();
    let mut remaining: Vec<usize> = (1..atoms.len()).collect();
    let mut order = Vec::with_capacity(atoms.len() - 1);
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (k, &i) in remaining.iter().enumerate() {
            let atom = &atoms[i];
            let cache = indexes.get(atom.pred);
            let probe_col = first_probe_col(&atom.terms, |v| bound.contains(&v));
            let cost = match probe_col {
                Some(c) => cache.est_bound(c),
                None => cache.rows as f64, // unbound: full cross product
            };
            if cost < best_cost {
                best_cost = cost;
                best = k;
            }
        }
        let i = remaining.swap_remove(best);
        bound.extend(atoms[i].vars());
        order.push(i);
    }
    order
}

struct JoinRun<'a> {
    head: &'a Atom,
    /// Body atoms in match order: the recursive/leading atom first, then
    /// the trailing atoms in selectivity order.
    atoms: Vec<&'a Atom>,
    indexes: &'a Indexes,
    /// When set, head tuples already present here are counted as
    /// derivations but not emitted into `out` — the parallel fixpoint's
    /// workers pre-filter against the (round-frozen) total so the merge
    /// pass only sees genuinely new candidates.
    skip_known: Option<&'a Relation>,
    out: Relation,
    derivations: u64,
    scratch: Vec<Value>,
}

impl<'a> JoinRun<'a> {
    fn emit(&mut self, bind: &Bindings) {
        self.scratch.clear();
        for t in &self.head.terms {
            self.scratch.push(match t {
                Term::Const(c) => *c,
                Term::Var(v) => *bind.get(v).unwrap_or_else(|| {
                    panic!("head variable {v} unbound: rule not range-restricted over its body")
                }),
            });
        }
        self.derivations += 1;
        if let Some(known) = self.skip_known {
            if known.contains(&self.scratch) {
                return;
            }
        }
        let scratch = std::mem::take(&mut self.scratch);
        self.out.insert(&scratch);
        self.scratch = scratch;
    }

    /// Drive the join: match the leading atom against each of `rows`, then
    /// descend through the trailing atoms.
    fn run_rows<'r>(&mut self, rows: impl Iterator<Item = &'r [Value]>) {
        let mut bind: Bindings = FastMap::default();
        let mut trail: Vec<Var> = Vec::new();
        let atom = self.atoms[0];
        for t in rows {
            if match_tuple(atom, t, &mut bind, &mut trail) {
                self.descend(1, &mut bind, &mut trail);
                for v in trail.drain(..) {
                    bind.remove(&v);
                }
            }
        }
    }

    fn descend(&mut self, depth: usize, bind: &mut Bindings, trail: &mut Vec<Var>) {
        if depth == self.atoms.len() {
            self.emit(bind);
            return;
        }
        let atom: &'a Atom = self.atoms[depth];
        let marker = trail.len();
        let cache = self.indexes.get(atom.pred);
        // Candidate rows: an index bucket when a bound, indexed column
        // exists; a linear arena scan otherwise. match_tuple re-checks
        // every column, so the fallback is always sound.
        let indexed: Option<&'a [u32]> = atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(c, t)| match t {
                Term::Const(v) => Some((c, *v)),
                Term::Var(v) => bind.get(v).map(|&val| (c, val)),
            })
            .find_map(|(col, val)| cache.lookup(col, val));
        match indexed {
            Some(rows) => {
                for &r in rows {
                    if match_tuple(atom, cache.row(r), bind, trail) {
                        self.descend(depth + 1, bind, trail);
                        for v in trail.drain(marker..) {
                            bind.remove(&v);
                        }
                    }
                }
            }
            None => {
                for r in 0..cache.rows as u32 {
                    if match_tuple(atom, cache.row(r), bind, trail) {
                        self.descend(depth + 1, bind, trail);
                        for v in trail.drain(marker..) {
                            bind.remove(&v);
                        }
                    }
                }
            }
        }
    }
}

/// Apply the body `atoms` (with `atoms[0]`'s relation given explicitly as
/// `first_rel` and the rest resolved in `db`), emitting one head tuple per
/// complete match. Returns the produced relation and the number of
/// derivations (successful matches, including duplicates).
fn join_emit(
    head: &Atom,
    atoms: &[Atom],
    first_rel: &Relation,
    db: &Database,
    indexes: &mut Indexes,
) -> (Relation, u64) {
    // An atom whose arity disagrees with the stored relation's schema can
    // match nothing (the typeless system identifies a predicate with one
    // arity); treat it as empty rather than indexing out of bounds.
    if first_rel.arity() != atoms[0].arity() {
        return (Relation::new(head.arity()), 0);
    }
    let Some(order) = ensure_plan(atoms, db, indexes) else {
        return (Relation::new(head.arity()), 0);
    };
    let mut run = JoinRun {
        head,
        atoms: ordered_atoms(atoms, &order),
        indexes,
        skip_known: None,
        out: Relation::new(head.arity()),
        derivations: 0,
        scratch: Vec::with_capacity(head.arity()),
    };
    run.run_rows(first_rel.iter());
    (run.out, run.derivations)
}

/// Revalidate every trailing atom's scan and ensure a current join plan
/// for the body, returning the trailing-atom order (`None` when an arity
/// mismatch means the body matches nothing).
///
/// Scans are revalidated on each application (a version compare per atom
/// when nothing changed): the cache outlives a single fixpoint, so
/// relations may have been mutated since the last call. The cached atom
/// order is reused only when no scan it depends on has been rebuilt since
/// the order was computed — including rebuilds triggered by *other* bodies
/// over the same predicates.
fn ensure_plan(atoms: &[Atom], db: &Database, indexes: &mut Indexes) -> Option<Vec<usize>> {
    let mut scan_gen = 0u64;
    for a in atoms.iter().skip(1) {
        scan_gen = scan_gen.max(indexes.revalidate(a, db)?);
    }
    let order = match indexes.plans.get(atoms) {
        Some(plan) if plan.generation >= scan_gen => plan.order.clone(),
        _ => {
            // Bindable masks depend only on the rule text, so they are
            // (re)computed only here, at plan-build time, and the column
            // indexes they request are built on the freshly revalidated
            // scans before the order is estimated.
            for (i, a) in atoms.iter().enumerate().skip(1) {
                let bindable = bindable_columns(atoms, i);
                indexes.build_cols(a.pred, &bindable);
            }
            let order = selectivity_order(atoms, indexes);
            indexes.plans.insert(
                atoms.to_vec(),
                JoinPlan {
                    order: order.clone(),
                    generation: scan_gen,
                },
            );
            order
        }
    };
    Some(order)
}

fn ordered_atoms<'a>(atoms: &'a [Atom], order: &[usize]) -> Vec<&'a Atom> {
    let mut ordered: Vec<&Atom> = Vec::with_capacity(atoms.len());
    ordered.push(&atoms[0]);
    ordered.extend(order.iter().map(|&i| &atoms[i]));
    ordered
}

/// The body of a linear rule as the join machinery sees it: the recursive
/// atom first, then the trailing atoms in rule order.
fn body_atoms(rule: &LinearRule) -> Vec<Atom> {
    let mut atoms = Vec::with_capacity(1 + rule.nonrec_atoms().len());
    atoms.push(rule.rec_atom().clone());
    atoms.extend(rule.nonrec_atoms().iter().cloned());
    atoms
}

/// Prepare every rule for a round of concurrent read-only probing
/// ([`apply_linear_rows`]): revalidate all scans first, then build column
/// indexes and join plans. The two passes matter — revalidating *all*
/// predicates before planning *any* body means a rebuild triggered by a
/// later rule can never retire a plan cached moments earlier in the same
/// round, so the subsequent `&Indexes` probes always find a current plan.
///
/// Returns one flag per rule; `false` marks a rule that can derive nothing
/// this round (its recursive atom's arity disagrees with `delta_arity`, or
/// a trailing atom's arity disagrees with the stored relation).
pub fn prepare_rules(
    rules: &[LinearRule],
    delta_arity: usize,
    db: &Database,
    indexes: &mut Indexes,
) -> Vec<bool> {
    for rule in rules {
        for atom in rule.nonrec_atoms() {
            let _ = indexes.revalidate(atom, db);
        }
    }
    rules
        .iter()
        .map(|rule| {
            if rule.rec_atom().arity() != delta_arity {
                return false;
            }
            let atoms = body_atoms(rule);
            ensure_plan(&atoms, db, indexes).is_some()
        })
        .collect()
}

/// Apply one rule's body to the given outer rows through a **shared,
/// read-only** scan/index cache — the concurrent half of a parallel
/// fixpoint round. The caller must have run [`prepare_rules`] (same rules,
/// same database, same `Indexes`) since the database last changed; this
/// function then only reads the cache, so any number of workers can probe
/// it simultaneously (`Indexes` is `Sync` — it is plain data).
///
/// `skip_known` tuples are counted as derivations but not emitted, letting
/// workers pre-filter against the round-frozen total.
///
/// # Panics
/// If the body's join plan is missing from the cache (no `prepare_rules`).
pub fn apply_linear_rows<'r>(
    rule: &LinearRule,
    rows: impl Iterator<Item = &'r [Value]>,
    indexes: &Indexes,
    skip_known: Option<&Relation>,
) -> (Relation, u64) {
    let head = rule.head();
    let atoms = body_atoms(rule);
    let order = &indexes
        .plans
        .get(&atoms)
        .expect("apply_linear_rows needs prepare_rules first")
        .order;
    let mut run = JoinRun {
        head,
        atoms: ordered_atoms(&atoms, order),
        indexes,
        skip_known,
        out: Relation::new(head.arity()),
        derivations: 0,
        scratch: Vec::with_capacity(head.arity()),
    };
    run.run_rows(rows);
    (run.out, run.derivations)
}

/// The recursive-atom column to hash-partition a delta by: the first
/// position holding a variable that some trailing atom also mentions —
/// i.e. the column whose values feed the round's first index probe, so
/// rows sharing a join key land in one shard and probe the same index
/// buckets (cache locality). Falls back to column 0 when no position
/// qualifies; the choice affects only shard balance, never results (see
/// `crate::seminaive` module docs for why).
pub(crate) fn partition_col(rules: &[LinearRule]) -> usize {
    for rule in rules {
        let elsewhere: FastSet<Var> = rule.nonrec_atoms().iter().flat_map(|a| a.vars()).collect();
        for (c, t) in rule.rec_atom().terms.iter().enumerate() {
            if let Term::Var(v) = t {
                if elsewhere.contains(v) {
                    return c;
                }
            }
        }
    }
    0
}

/// Apply a linear operator once: `A(p_rel)` with nonrecursive parameters
/// taken from `db`. Returns the derived relation and the derivation count.
pub fn apply_linear(
    rule: &LinearRule,
    db: &Database,
    p_rel: &Relation,
    indexes: &mut Indexes,
) -> (Relation, u64) {
    let atoms = body_atoms(rule);
    join_emit(rule.head(), &atoms, p_rel, db, indexes)
}

/// Evaluate a plain nonrecursive rule over `db` (used by the magic phase).
/// The first body atom's relation is resolved in `db` as well.
pub fn apply_flat(
    rule: &linrec_datalog::Rule,
    db: &Database,
    indexes: &mut Indexes,
) -> (Relation, u64) {
    assert!(!rule.body.is_empty(), "flat rule needs a body");
    let fallback;
    let first_rel = match db.relation(rule.body[0].pred) {
        Some(rel) => rel,
        None => {
            fallback = Relation::new(rule.body[0].arity());
            &fallback
        }
    };
    join_emit(&rule.head, &rule.body, first_rel, db, indexes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn single_step_application() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (2, 3)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        let (out, derivs) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 2)]).sorted());
        assert_eq!(derivs, 1);
    }

    #[test]
    fn derivations_count_duplicates() {
        // Two z-paths produce the same head tuple: 2 derivations, 1 tuple.
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 9), (2, 9)]));
        let p = Relation::from_pairs([(0, 1), (0, 2)]);
        let (out, derivs) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.len(), 1);
        assert_eq!(derivs, 2);
    }

    #[test]
    fn filters_with_unary_atoms() {
        let r = parse_linear_rule("p(x,y) :- p(x,y), good(y).").unwrap();
        let mut db = Database::new();
        db.set_relation("good", Relation::from_tuples(1, [vec![Value::Int(2)]]));
        let p = Relation::from_pairs([(1, 2), (1, 3)]);
        let (out, _) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.sorted(), Relation::from_pairs([(1, 2)]).sorted());
    }

    #[test]
    fn constants_in_body_restrict() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y), anchor(x, 7).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        db.set_relation("anchor", Relation::from_pairs([(0, 7), (5, 8)]));
        let p = Relation::from_pairs([(0, 1), (5, 1)]);
        let (out, _) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 2)]).sorted());
    }

    #[test]
    fn missing_edb_relation_is_empty() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), nothere(z,y).").unwrap();
        let db = Database::new();
        let p = Relation::from_pairs([(0, 1)]);
        let (out, derivs) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert!(out.is_empty());
        assert_eq!(derivs, 0);
    }

    #[test]
    fn repeated_variables_in_atoms() {
        let r = parse_linear_rule("p(x,y) :- p(x,y), loop(y,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("loop", Relation::from_pairs([(2, 2), (3, 4)]));
        let p = Relation::from_pairs([(1, 2), (1, 3)]);
        let (out, _) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.sorted(), Relation::from_pairs([(1, 2)]).sorted());
    }

    #[test]
    fn flat_rule_evaluation() {
        let rule = linrec_datalog::parse_rule("m(z) :- m0(x), e(x,z).").unwrap();
        let mut db = Database::new();
        db.set_relation("m0", Relation::from_tuples(1, [vec![Value::Int(1)]]));
        db.set_relation("e", Relation::from_pairs([(1, 2), (1, 3), (9, 9)]));
        let (out, derivs) = apply_flat(&rule, &db, &mut Indexes::new());
        assert_eq!(out.len(), 2);
        assert_eq!(derivs, 2);
    }

    #[test]
    fn cartesian_product_when_unconnected() {
        let r = parse_linear_rule("p(x,y) :- p(x,w), a(y).").unwrap();
        let mut db = Database::new();
        db.set_relation(
            "a",
            Relation::from_tuples(1, [vec![Value::Int(7)], vec![Value::Int(8)]]),
        );
        let p = Relation::from_pairs([(1, 1), (2, 2)]);
        let (out, derivs) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(out.len(), 4);
        assert_eq!(derivs, 4);
    }

    #[test]
    fn reuse_across_rounds_matches_fresh_indexes() {
        // The cache must serve the same answers on round 2 as a fresh build.
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        let mut idx = Indexes::new();
        let p1 = Relation::from_pairs([(0, 1)]);
        let (out1, _) = apply_linear(&r, &db, &p1, &mut idx);
        let (out2_cached, d2c) = apply_linear(&r, &db, &out1, &mut idx);
        let (out2_fresh, d2f) = apply_linear(&r, &db, &out1, &mut Indexes::new());
        assert_eq!(out2_cached.sorted(), out2_fresh.sorted());
        assert_eq!(d2c, d2f);
    }

    #[test]
    fn private_variable_columns_are_not_indexed() {
        // In p(x,y) :- p(x,w), a(y): `y` occurs only in `a` (and the head),
        // so a's single column must never get an index; the full scan
        // fallback still enumerates the cross product.
        let r = parse_linear_rule("p(x,y) :- p(x,w), a(y).").unwrap();
        let mut db = Database::new();
        db.set_relation("a", Relation::from_tuples(1, [vec![Value::Int(7)]]));
        let p = Relation::from_pairs([(1, 1)]);
        let mut idx = Indexes::new();
        let (out, _) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out.len(), 1);
        let cache = idx.get(linrec_datalog::Symbol::new("a"));
        assert!(cache.cols.iter().all(|c| c.is_none()));
    }

    #[test]
    fn stale_cache_is_rebuilt_when_relation_changes_between_fixpoints() {
        // Regression for cross-fixpoint cache reuse (the service keeps one
        // `Indexes` across maintenance batches): after the EDB relation
        // grows, the next application must serve from a rebuilt scan, not
        // the stale one.
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        let (out1, _) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out1.sorted(), Relation::from_pairs([(0, 2)]).sorted());
        let stale_version = idx.get(Symbol::new("e")).version;

        // Mutate the relation between fixpoints (insert + full replace).
        db.insert_tuple(Symbol::new("e"), vec![Value::Int(1), Value::Int(5)]);
        let (out2, derivs2) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(
            out2.sorted(),
            Relation::from_pairs([(0, 2), (0, 5)]).sorted(),
            "stale index served rows from before the insert"
        );
        assert_eq!(derivs2, 2);
        let cache = idx.get(Symbol::new("e"));
        assert_ne!(cache.version, stale_version, "scan was not rebuilt");
        assert_eq!(cache.rows, 2);

        db.set_relation("e", Relation::from_pairs([(1, 7)]));
        let (out3, _) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out3.sorted(), Relation::from_pairs([(0, 7)]).sorted());
        assert_eq!(idx.get(Symbol::new("e")).rows, 1);
    }

    #[test]
    fn sibling_bodies_retire_their_plans_after_a_shared_rebuild() {
        // Two rules join against the same predicate. When a batch mutates
        // it, *both* bodies' cached atom orders must be recomputed — not
        // only the one whose application happened to trigger the scan
        // rebuild (the other would otherwise keep an order based on stale
        // statistics forever).
        let r1 = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let r2 = parse_linear_rule("p(x,y) :- p(z,x), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        apply_linear(&r1, &db, &p, &mut idx);
        apply_linear(&r2, &db, &p, &mut idx);
        let plan_gen = |idx: &Indexes, r: &LinearRule| {
            let mut atoms = vec![r.rec_atom().clone()];
            atoms.extend(r.nonrec_atoms().iter().cloned());
            idx.plans[&atoms].generation
        };
        let g1 = plan_gen(&idx, &r1);
        let g2 = plan_gen(&idx, &r2);

        db.insert_tuple(Symbol::new("e"), vec![Value::Int(2), Value::Int(3)]);
        // r1's application observes the rebuild; r2's must still see it.
        apply_linear(&r1, &db, &p, &mut idx);
        apply_linear(&r2, &db, &p, &mut idx);
        assert!(plan_gen(&idx, &r1) > g1, "r1's plan not recomputed");
        assert!(
            plan_gen(&idx, &r2) > g2,
            "r2's plan kept stale statistics after the shared scan rebuilt"
        );
    }

    #[test]
    fn invalidate_drops_the_cached_scan() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        apply_linear(&r, &db, &p, &mut idx);
        idx.invalidate(Symbol::new("e"));
        assert!(!idx.cache.contains_key(&Symbol::new("e")));
        // The next application rebuilds transparently.
        let (out, _) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 2)]).sorted());
    }

    #[test]
    fn predicate_appearing_after_first_fixpoint_is_picked_up() {
        // The service creates relations on first insert: a predicate that
        // was missing (cached as empty) must be re-scanned once it exists.
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        let (out, _) = apply_linear(&r, &db, &p, &mut idx);
        assert!(out.is_empty());
        db.set_relation("e", Relation::from_pairs([(1, 3)]));
        let (out, _) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 3)]).sorted());
    }

    #[test]
    fn prepared_row_application_matches_apply_linear() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
        let p = Relation::from_pairs([(0, 1), (0, 2), (9, 3)]);
        let mut idx = Indexes::new();
        let flags = prepare_rules(std::slice::from_ref(&r), p.arity(), &db, &mut idx);
        assert_eq!(flags, vec![true]);
        let (rows_out, rows_d) = apply_linear_rows(&r, p.iter(), &idx, None);
        let (seq_out, seq_d) = apply_linear(&r, &db, &p, &mut Indexes::new());
        assert_eq!(rows_out.sorted(), seq_out.sorted());
        assert_eq!(rows_d, seq_d);
    }

    #[test]
    fn row_application_over_a_partition_is_additive() {
        // The union of per-shard outputs equals the whole-delta output, and
        // derivation counts add up — the invariant the parallel round's
        // merge relies on.
        use linrec_datalog::ShardView;
        use std::sync::Arc;
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs((0..20).map(|i| (i, i + 1))));
        let p = Arc::new(Relation::from_pairs((0..20).map(|i| (0, i))));
        let mut idx = Indexes::new();
        prepare_rules(std::slice::from_ref(&r), p.arity(), &db, &mut idx);
        let (whole, whole_d) = apply_linear_rows(&r, p.iter(), &idx, None);
        let mut merged = Relation::new(2);
        let mut merged_d = 0;
        for shard in ShardView::partition(&p, partition_col(std::slice::from_ref(&r)), 3) {
            let (out, d) = apply_linear_rows(&r, shard.iter(), &idx, None);
            merged.union_in_place(&out);
            merged_d += d;
        }
        assert_eq!(merged.sorted(), whole.sorted());
        assert_eq!(merged_d, whole_d);
    }

    #[test]
    fn skip_known_counts_derivations_but_drops_tuples() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (1, 3)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        prepare_rules(std::slice::from_ref(&r), p.arity(), &db, &mut idx);
        let known = Relation::from_pairs([(0, 2)]);
        let (out, derivs) = apply_linear_rows(&r, p.iter(), &idx, Some(&known));
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 3)]).sorted());
        assert_eq!(derivs, 2, "filtered tuples still count as derivations");
    }

    #[test]
    fn prepare_flags_arity_mismatches() {
        let rules = vec![
            parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(x,z), e(w,u,z).").unwrap(), // e at arity 3
        ];
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        let mut idx = Indexes::new();
        assert_eq!(prepare_rules(&rules, 2, &db, &mut idx), vec![true, false]);
        // A delta of the wrong arity disables every rule.
        assert_eq!(prepare_rules(&rules, 3, &db, &mut idx), vec![false, false]);
    }

    #[test]
    fn partition_col_tracks_the_probe_position() {
        let right = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert_eq!(partition_col(std::slice::from_ref(&right)), 1); // z feeds the probe
        let left = parse_linear_rule("p(x,y) :- p(w,y), e(x,w).").unwrap();
        assert_eq!(partition_col(std::slice::from_ref(&left)), 0); // w does
        let none = parse_linear_rule("p(x,y) :- p(x,y), a(u).").unwrap();
        assert_eq!(partition_col(std::slice::from_ref(&none)), 0); // fallback
    }

    #[test]
    fn selectivity_order_prefers_small_buckets() {
        // big(z,u) fans out 100-wide per z; tiny(z,y) is 1:1. The greedy
        // order must probe tiny first regardless of textual order.
        let r = parse_linear_rule("p(x,y) :- p(x,z), big(z,u), tiny(z,y).").unwrap();
        let mut db = Database::new();
        let mut big = Relation::new(2);
        for u in 0..100 {
            big.insert([Value::Int(1), Value::Int(u)]);
        }
        db.set_relation("big", big);
        db.set_relation("tiny", Relation::from_pairs([(1, 5)]));
        let p = Relation::from_pairs([(0, 1)]);
        let mut idx = Indexes::new();
        let mut atoms = vec![r.rec_atom().clone()];
        atoms.extend(r.nonrec_atoms().iter().cloned());
        for (i, a) in atoms.iter().enumerate().skip(1) {
            let bindable = bindable_columns(&atoms, i);
            idx.revalidate(a, &db).expect("arity matches");
            idx.build_cols(a.pred, &bindable);
        }
        let order = selectivity_order(&atoms, &idx);
        assert_eq!(order[0], 2, "tiny (atom 2) must be probed first");
        let (out, derivs) = apply_linear(&r, &db, &p, &mut idx);
        assert_eq!(out.sorted(), Relation::from_pairs([(0, 5)]).sorted());
        // 100 matches regardless of order (join cardinality is invariant).
        assert_eq!(derivs, 100);
    }
}
