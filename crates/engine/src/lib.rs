//! Evaluation engine for linear recursion.
//!
//! Implements every processing strategy the paper discusses, instrumented
//! with the duplicate/derivation counters its Section 3.1 argues are the
//! tractable cost measure:
//!
//! * semi-naive and naive fixpoints ([`seminaive_star`], [`naive_star`]),
//! * **decomposed** evaluation `(B+C)* = B*C*` for commuting operators
//!   ([`eval_decomposed`], Theorem 3.1),
//! * the **separable algorithm** for selections (Algorithm 4.1 /
//!   Theorems 4.1, 6.1) with magic-style selection push-down
//!   ([`eval_separable`], [`magic`]),
//! * **redundancy-bounded** evaluation (Theorems 4.2/6.4)
//!   ([`eval_redundancy_bounded`]),
//! * deterministic workload generators ([`workload`]) and the paper's
//!   example rules ([`rules`]).
//!
//! # Example: decomposing a commuting recursion
//!
//! ```
//! use linrec_engine::{rules, workload, eval_direct, eval_decomposed};
//!
//! let (db, init) = workload::up_down(5, 42);
//! let (up, down) = (rules::up_rule(), rules::down_rule());
//! let (direct, sd) = eval_direct(&[up.clone(), down.clone()], &db, &init);
//! let (decomposed, sc) = eval_decomposed(&[vec![up], vec![down]], &db, &init);
//! assert_eq!(direct.sorted(), decomposed.sorted());
//! assert!(sc.duplicates <= sd.duplicates); // Theorem 3.1
//! ```

#![warn(missing_docs)]

pub mod join;
pub mod derivation;
pub mod expr_eval;
pub mod magic;
pub mod program;
pub mod provenance;
pub mod rules;
pub mod selection;
pub mod seminaive;
pub mod stats;
pub mod strategies;
pub mod workload;

pub use join::{apply_flat, apply_linear, Indexes};
pub use derivation::{trace_decomposed, trace_star, DerivationGraph};
pub use expr_eval::eval_expr;
pub use magic::{eval_selected_star, magic_applicable};
pub use program::{execute_plan, plan_query, PlanKind, Program, QueryPlan};
pub use provenance::{eval_with_provenance, Provenance, Step};
pub use selection::Selection;
pub use seminaive::{bounded_prefix, exact_power, naive_star, seminaive_star};
pub use stats::EvalStats;
pub use strategies::{
    eval_decomposed, eval_direct, eval_naive, eval_redundancy_bounded, eval_select_after,
    eval_separable, StrategyError,
};
