//! Evaluation engine for linear recursion: `Analysis → Plan → Execution`.
//!
//! Every processing strategy the paper discusses sits behind one
//! certificate-carrying pipeline ([`planner`]):
//!
//! 1. [`Analysis`] runs the paper's tests over a rule set (and optional
//!    [`Selection`]) and collects typed certificates from `linrec-core` —
//!    commutativity clusters (Theorems 5.1–5.3), separability premises
//!    (Theorems 4.1/6.1), uniform boundedness (Lemma 6.2) and recursive
//!    redundancy (Theorems 6.3/6.4).
//! 2. [`Analysis::plan`] picks a licensed [`Plan`]: `Direct`, `Naive`,
//!    `BoundedPrefix`, `Decomposed`, `Separable`, `RedundancyBounded` or a
//!    `SelectAfter` wrapper. The specialized nodes are *unconstructible*
//!    without their certificate.
//! 3. [`Plan::execute`] evaluates the tree, instrumented with the
//!    duplicate/derivation counters of Section 3.1 ([`EvalStats`]), and
//!    returns an [`ExecOutcome`] with a per-phase [`TraceStep`] record.
//!
//! # Example: decomposing a commuting recursion
//!
//! ```
//! use linrec_engine::{planner::Analysis, rules, workload, Plan};
//!
//! let (db, init) = workload::up_down(5, 42);
//! let rules = vec![rules::up_rule(), rules::down_rule()];
//!
//! // Analysis finds the Theorem 5.2 commutativity certificate…
//! let plan = Analysis::of(&rules, None).plan();
//! assert!(plan.rationale().contains("Theorem 3.1"));
//!
//! // …and the decomposed plan `up* down*` produces the same relation as
//! // the direct baseline with no more duplicates (Theorem 3.1):
//! let decomposed = plan.execute(&db, &init).unwrap();
//! let direct = Plan::direct(rules).execute(&db, &init).unwrap();
//! assert_eq!(decomposed.relation.sorted(), direct.relation.sorted());
//! assert!(decomposed.stats.duplicates <= direct.stats.duplicates);
//! ```
//!
//! The six legacy entry points (`eval_direct`, `eval_naive`,
//! `eval_decomposed`, `eval_select_after`, `eval_separable`,
//! `eval_redundancy_bounded`) are deprecated wrappers over this pipeline;
//! see [`strategies`] for the migration table.

#![warn(missing_docs)]

pub mod decision;
pub mod dense;
pub mod derivation;
pub mod expr_eval;
pub mod join;
pub mod magic;
pub mod parallel;
pub mod planner;
pub mod pool;
pub mod profile;
pub mod program;
pub mod provenance;
pub mod rules;
pub mod selection;
pub mod seminaive;
pub mod stats;
pub mod strategies;
pub mod workload;

pub use decision::{CandidateEstimate, DenseVerdict, ParallelVerdict, PlanDecision};
pub use dense::{closure_by_squaring, composition_shape, CompositionShape, CompositionSide};
pub use derivation::{trace_decomposed, trace_star, DerivationGraph};
pub use expr_eval::eval_expr;
pub use join::{apply_flat, apply_linear, apply_linear_rows, prepare_rules, Indexes};
pub use magic::{eval_selected_star, magic_applicable};
pub use parallel::Parallelism;
pub use planner::{
    Analysis, AnalysisEffort, CostModel, ExecOutcome, Plan, PlanShape, StrategyError, TraceStep,
};
pub use pool::WorkerPool;
pub use program::Program;
pub use provenance::{eval_with_provenance, Provenance, Step};
pub use selection::Selection;
pub use seminaive::{
    bounded_prefix, exact_power, naive_star, seminaive_resume_in, seminaive_resume_par_in,
    seminaive_round_par, seminaive_star, seminaive_star_par_in,
};
pub use stats::EvalStats;
#[allow(deprecated)]
pub use strategies::{
    eval_decomposed, eval_direct, eval_naive, eval_redundancy_bounded, eval_select_after,
    eval_separable,
};
