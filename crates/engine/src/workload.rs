//! Synthetic workload generators.
//!
//! The paper reports no machine experiments; these are the classic graph
//! shapes of the transitive-closure literature it cites (\[1\], \[11\]) plus
//! the workloads its own examples motivate (up/down hierarchies for
//! separable queries, a knows/buys/cheap shopping network for Example 6.1).
//! All generators are deterministic given a seed.

use linrec_datalog::{Database, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simple path `0 → 1 → … → n`.
pub fn chain(n: i64) -> Relation {
    (0..n).map(|i| (i, i + 1)).collect()
}

/// A directed cycle on `n` nodes.
pub fn cycle(n: i64) -> Relation {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// A complete binary tree with `depth` levels, edges parent → child.
pub fn binary_tree(depth: u32) -> Relation {
    let mut edges = Vec::new();
    let nodes = (1i64 << depth) - 1;
    for v in 1..=nodes {
        for c in [2 * v, 2 * v + 1] {
            if c <= nodes {
                edges.push((v, c));
            }
        }
    }
    Relation::from_pairs(edges)
}

/// `G(n, m)`: a random digraph with `n` nodes and `m` distinct edges
/// (no self-loops).
pub fn random_graph(n: i64, m: usize, seed: u64) -> Relation {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(2);
    let mut attempts = 0usize;
    while rel.len() < m && attempts < m * 64 {
        attempts += 1;
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            rel.insert(vec![Value::Int(a), Value::Int(b)]);
        }
    }
    rel
}

/// A layered DAG: `layers` layers of `width` nodes; each node gets
/// `fanout` random edges into the next layer. Node ids are
/// `layer * width + index`.
pub fn layered(layers: i64, width: i64, fanout: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(2);
    for l in 0..layers - 1 {
        for i in 0..width {
            let from = l * width + i;
            for _ in 0..fanout {
                let to = (l + 1) * width + rng.random_range(0..width);
                rel.insert(vec![Value::Int(from), Value::Int(to)]);
            }
        }
    }
    rel
}

/// A `w × h` grid with right and down edges. Node id = `row * w + col`.
pub fn grid(w: i64, h: i64) -> Relation {
    let mut rel = Relation::new(2);
    for r in 0..h {
        for c in 0..w {
            let v = r * w + c;
            if c + 1 < w {
                rel.insert(vec![Value::Int(v), Value::Int(v + 1)]);
            }
            if r + 1 < h {
                rel.insert(vec![Value::Int(v), Value::Int(v + w)]);
            }
        }
    }
    rel
}

/// An up/down workload for the separable/commuting experiments: a database
/// with an `up` tree (child → parent, fanning in) and a structurally
/// similar `down` tree, plus a seed relation `p0` linking the two sides.
///
/// Returns `(db, init)` where `init` pairs each `up`-leaf with a
/// `down`-root region.
pub fn up_down(depth: u32, seed: u64) -> (Database, Relation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let up: Relation = binary_tree(depth)
        .iter()
        .map(|t| match (t[0], t[1]) {
            (Value::Int(a), Value::Int(b)) => (b, a), // child → parent
            _ => unreachable!(),
        })
        .collect();
    let offset = 1i64 << (depth + 1);
    let down: Relation = binary_tree(depth)
        .iter()
        .map(|t| match (t[0], t[1]) {
            (Value::Int(a), Value::Int(b)) => (a + offset, b + offset),
            _ => unreachable!(),
        })
        .collect();
    let mut db = Database::new();
    db.set_relation("up", up);
    db.set_relation("down", down);
    // Seed: random cross links between node spaces.
    let nodes = (1i64 << depth) - 1;
    let mut init = Relation::new(2);
    for _ in 0..nodes.max(1) {
        let a = rng.random_range(1..=nodes);
        let b = rng.random_range(1..=nodes) + offset;
        init.insert(vec![Value::Int(a), Value::Int(b)]);
    }
    (db, init)
}

/// The Example 6.1 shopping workload: `knows` is a random digraph over
/// `people`, `cheap` marks a fraction of `items`, and the initial `buys`
/// relation links random people to random items.
pub fn shopping(
    people: i64,
    items: i64,
    knows_per_person: usize,
    seed: u64,
) -> (Database, Relation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut knows = Relation::new(2);
    for p in 0..people {
        for _ in 0..knows_per_person {
            let q = rng.random_range(0..people);
            if p != q {
                knows.insert(vec![Value::Int(p), Value::Int(q)]);
            }
        }
    }
    let mut cheap = Relation::new(1);
    for i in 0..items {
        if i % 3 != 0 {
            cheap.insert(vec![Value::Int(1000 + i)]);
        }
    }
    let mut init = Relation::new(2);
    for _ in 0..people {
        let p = rng.random_range(0..people);
        let i = rng.random_range(0..items);
        init.insert(vec![Value::Int(p), Value::Int(1000 + i)]);
    }
    let mut db = Database::new();
    db.set_relation("knows", knows);
    db.set_relation("cheap", cheap);
    (db, init)
}

/// A database exposing one binary relation under the given name.
pub fn graph_db(name: &str, rel: Relation) -> Database {
    let mut db = Database::new();
    db.set_relation(name, rel);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_and_cycle_sizes() {
        assert_eq!(chain(5).len(), 5);
        assert_eq!(cycle(5).len(), 5);
    }

    #[test]
    fn binary_tree_edge_count() {
        // 2^d - 2 edges for a complete binary tree with 2^d - 1 nodes.
        assert_eq!(binary_tree(4).len(), 14);
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(50, 100, 7);
        let b = random_graph(50, 100, 7);
        assert_eq!(a.sorted(), b.sorted());
        assert_eq!(a.len(), 100);
        let c = random_graph(50, 100, 8);
        assert_ne!(a.sorted(), c.sorted());
    }

    #[test]
    fn layered_has_no_cycles() {
        let rel = layered(4, 3, 2, 1);
        for t in rel.iter() {
            match (t[0], t[1]) {
                (Value::Int(a), Value::Int(b)) => assert!(b / 3 == a / 3 + 1),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn grid_edge_count() {
        // w*h nodes; (w-1)*h right + w*(h-1) down edges.
        assert_eq!(grid(3, 4).len(), 2 * 4 + 3 * 3);
    }

    #[test]
    fn up_down_is_consistent() {
        let (db, init) = up_down(4, 3);
        assert!(!db.relation_named("up").unwrap().is_empty());
        assert!(!db.relation_named("down").unwrap().is_empty());
        assert!(!init.is_empty());
    }

    #[test]
    fn shopping_has_cheap_items() {
        let (db, init) = shopping(20, 9, 3, 5);
        assert_eq!(db.relation_named("cheap").unwrap().len(), 6);
        assert!(!init.is_empty());
    }
}
