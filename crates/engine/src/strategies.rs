//! Evaluation strategies for linear recursion.
//!
//! | Strategy | Paper | Use |
//! |---|---|---|
//! | [`eval_direct`] | semi-naive `(ΣAᵢ)*` \[5\] | baseline |
//! | [`eval_naive`] | naive fixpoint | substrate baseline (E6) |
//! | [`eval_decomposed`] | `(B+C)* = B*C*` (§3, Thm 3.1) | commuting operators |
//! | [`eval_separable`] | Algorithm 4.1, Theorems 4.1/6.1 | selections |
//! | [`eval_select_after`] | `σ((ΣAᵢ)* q)` | selection baseline |
//! | [`eval_redundancy_bounded`] | Theorem 4.2/6.4 | redundant predicates |

use crate::magic::{eval_selected_star, magic_applicable};
use crate::selection::Selection;
use crate::seminaive::{bounded_prefix, exact_power, naive_star, seminaive_star};
use crate::stats::EvalStats;
use linrec_core::Decomposition;
use linrec_datalog::{Database, LinearRule, Relation, RuleError};

/// Errors from strategy preconditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// The selection does not commute with the operator that must absorb it
    /// (Theorem 4.1's premise).
    SelectionDoesNotCommute,
    /// Underlying rule manipulation failed.
    Rule(RuleError),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::SelectionDoesNotCommute => {
                write!(f, "selection does not commute with the outer operator")
            }
            StrategyError::Rule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StrategyError {}

impl From<RuleError> for StrategyError {
    fn from(e: RuleError) -> StrategyError {
        StrategyError::Rule(e)
    }
}

/// Semi-naive evaluation of `(Σ rules)* init` — the paper's general
/// baseline.
pub fn eval_direct(rules: &[LinearRule], db: &Database, init: &Relation) -> (Relation, EvalStats) {
    seminaive_star(rules, db, init)
}

/// Naive evaluation (every operator re-applied to the whole relation each
/// round).
pub fn eval_naive(rules: &[LinearRule], db: &Database, init: &Relation) -> (Relation, EvalStats) {
    naive_star(rules, db, init)
}

/// Decomposed evaluation `(Σ all)* = Π_g (Σ g)*`, with groups applied
/// right-to-left: `groups[k-1]` is applied to `init` first, matching the
/// paper's reading of `A* = B*C*` (compute `C* q`, then run `B` over the
/// result — Section 2's closing remark).
pub fn eval_decomposed(
    groups: &[Vec<LinearRule>],
    db: &Database,
    init: &Relation,
) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut current = init.clone();
    for group in groups.iter().rev() {
        let (next, s) = seminaive_star(group, db, &current);
        stats += s;
        current = next;
    }
    stats.tuples = current.len();
    (current, stats)
}

/// Baseline for selection queries: full star, then select.
pub fn eval_select_after(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    sel: &Selection,
) -> (Relation, EvalStats) {
    let (full, mut stats) = seminaive_star(rules, db, init);
    let out = sel.apply(&full);
    stats.tuples = out.len();
    (out, stats)
}

/// The separable algorithm (Algorithm 4.1) for `σ(A₁+A₂)*` under
/// Theorem 4.1's premises: `A₁`, `A₂` commute and `σ` commutes with `A₁`.
/// Computes `A₁*(σ A₂* q)`, pushing the selection into `A₂`'s parameter
/// relations when possible (falling back to select-after-star for the
/// inner part otherwise).
///
/// The commutativity of the pair is the *caller's* certificate (checked by
/// `linrec-core`); this function verifies the selection premise.
pub fn eval_separable(
    a1: &LinearRule,
    a2: &LinearRule,
    db: &Database,
    init: &Relation,
    sel: &Selection,
) -> Result<(Relation, EvalStats), StrategyError> {
    if !sel.commutes_with(a1) {
        return Err(StrategyError::SelectionDoesNotCommute);
    }
    let (selected, mut stats) = if magic_applicable(a2, sel) {
        eval_selected_star(a2, db, init, sel)
    } else {
        eval_select_after(std::slice::from_ref(a2), db, init, sel)
    };
    let (result, s2) = seminaive_star(std::slice::from_ref(a1), db, &selected);
    stats += s2;
    // σ commutes with A₁, so the final result is already σ-selected; apply
    // once more for belt and braces (cheap, and keeps the contract obvious).
    let out = sel.apply(&result);
    stats.tuples = out.len();
    Ok((out, stats))
}

/// Redundancy-bounded evaluation (Theorem 4.2 via the Theorem 6.4
/// witnesses): with `Aᴸ = BCᴸ`, `Cᴺ = Cᴷ`, and period `P = N−K`,
///
/// ```text
/// A*q = Σ_{m<KL} Aᵐq  ∪  Σ_{n<L} Aⁿ ( Σ_{r<P} B( C^{(K+r)L} ( (Bᴾ)* ( B^{K−1+r} q ))))
/// ```
///
/// an identity obtained from `A^{mL} = B·C^{mL}·B^{m−1}` (first equality of
/// Theorem 6.4 plus the `Cᴸ`-commutation) and the torsion collapse
/// `C^{mL} = C^{g(m)L}`. `C` is applied at most `(N−1)·L` times per branch —
/// the paper's "C is processed only a fixed finite number of times, beyond
/// which only B is processed".
pub fn eval_redundancy_bounded(
    rule: &LinearRule,
    dec: &Decomposition,
    db: &Database,
    init: &Relation,
) -> Result<(Relation, EvalStats), StrategyError> {
    let (k, n, l) = (dec.torsion.k, dec.torsion.n, dec.l);
    let period = n - k;
    let mut stats = EvalStats::default();

    // Part 1: Σ_{m=0}^{KL-1} Aᵐ q.
    let (mut result, s1) = bounded_prefix(rule, db, init, k * l - 1);
    stats += s1;

    // (Bᴾ)* is evaluated with the composed rule Bᴾ.
    let b_period = linrec_cq::power(&dec.b, period)?;

    // Part 2 inner sums.
    let mut acc = Relation::new(rule.arity());
    let mut img = exact_power(&dec.b, db, init, k - 1, &mut stats); // B^{K-1} q
    for r in 0..period {
        if r > 0 {
            img = exact_power(&dec.b, db, &img, 1, &mut stats); // B^{K-1+r} q
        }
        let (bstar, s) = seminaive_star(std::slice::from_ref(&b_period), db, &img);
        stats += s;
        let after_c = exact_power(&dec.c, db, &bstar, (k + r) * l, &mut stats);
        let with_b = exact_power(&dec.b, db, &after_c, 1, &mut stats);
        acc.union_in_place(&with_b);
    }

    // Σ_{n<L} Aⁿ (acc).
    let mut cur = acc.clone();
    result.union_in_place(&acc);
    for _ in 1..l {
        cur = exact_power(rule, db, &cur, 1, &mut stats);
        result.union_in_place(&cur);
    }

    stats.tuples = result.len();
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn updown() -> (LinearRule, LinearRule) {
        (
            parse_linear_rule("p(x,y) :- p(x,z), down(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(w,y), up(x,w).").unwrap(),
        )
    }

    fn updown_db() -> (Database, Relation) {
        let mut db = Database::new();
        db.set_relation("up", Relation::from_pairs([(0, 1), (1, 2), (10, 11)]));
        db.set_relation("down", Relation::from_pairs([(2, 3), (3, 4), (11, 12)]));
        let init = Relation::from_pairs([(2, 2), (11, 11)]);
        (db, init)
    }

    #[test]
    fn decomposed_equals_direct_for_commuting_rules() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        let (direct, sd) =
            eval_direct(&[down_rule.clone(), up_rule.clone()], &db, &init);
        let (dec, sc) = eval_decomposed(
            &[vec![up_rule.clone()], vec![down_rule.clone()]],
            &db,
            &init,
        );
        assert_eq!(direct.sorted(), dec.sorted());
        // Theorem 3.1: the decomposed computation produces no more
        // duplicates.
        assert!(sc.duplicates <= sd.duplicates);
    }

    #[test]
    fn decomposed_order_does_not_matter_for_commuting_rules() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        let (a, _) = eval_decomposed(
            &[vec![up_rule.clone()], vec![down_rule.clone()]],
            &db,
            &init,
        );
        let (b, _) = eval_decomposed(&[vec![down_rule], vec![up_rule]], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn separable_matches_select_after() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        // σ on column 1 (the `down`-moving column) commutes with the
        // up-rule (its position-1 variable is persistent).
        let sel = Selection::eq(1, 4);
        let rules = [down_rule.clone(), up_rule.clone()];
        let (baseline, _) = eval_select_after(&rules, &db, &init, &sel);
        let (fast, _) = eval_separable(&up_rule, &down_rule, &db, &init, &sel).unwrap();
        assert_eq!(fast.sorted(), baseline.sorted());
        assert!(!fast.is_empty());
    }

    #[test]
    fn separable_rejects_noncommuting_selection() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        // σ on column 1 does NOT commute with the down-rule.
        let sel = Selection::eq(1, 4);
        assert_eq!(
            eval_separable(&down_rule, &up_rule, &db, &init, &sel).unwrap_err(),
            StrategyError::SelectionDoesNotCommute
        );
    }

    #[test]
    fn redundancy_bounded_equals_direct_example_6_1() {
        let a = parse_linear_rule("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).")
            .unwrap();
        let dec = linrec_core::decomposition_for_pred(
            &a,
            linrec_datalog::Symbol::new("cheap"),
            8,
        )
        .unwrap()
        .expect("cheap is redundant");
        let mut db = Database::new();
        db.set_relation(
            "knows",
            Relation::from_pairs([(1, 2), (2, 3), (3, 4), (2, 5), (5, 1)]),
        );
        db.set_relation(
            "cheap",
            Relation::from_tuples(
                1,
                [vec![linrec_datalog::Value::Int(100)], vec![linrec_datalog::Value::Int(200)]],
            ),
        );
        let init = Relation::from_pairs([(4, 100), (4, 200), (4, 300), (1, 100)]);
        let (direct, _) = eval_direct(std::slice::from_ref(&a), &db, &init);
        let (bounded, _) = eval_redundancy_bounded(&a, &dec, &db, &init).unwrap();
        assert_eq!(bounded.sorted(), direct.sorted());
    }

    #[test]
    fn redundancy_bounded_equals_direct_example_6_2() {
        let a = parse_linear_rule("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).")
            .unwrap();
        let dec = linrec_core::decomposition_for_pred(&a, linrec_datalog::Symbol::new("r"), 8)
            .unwrap()
            .expect("r is redundant");
        let mut db = Database::new();
        db.set_relation("q", Relation::from_pairs([(1, 2), (2, 3), (3, 1), (2, 2)]));
        db.set_relation("r", Relation::from_pairs([(1, 2), (2, 1), (3, 3), (1, 1)]));
        db.set_relation("s", Relation::from_pairs([(2, 1), (3, 2), (1, 3), (2, 2)]));
        let mut init = Relation::new(4);
        for a0 in 1..=3i64 {
            for b in 1..=3i64 {
                for c in 1..=3i64 {
                    for d in 1..=3i64 {
                        if (a0 + b + c + d) % 3 == 0 {
                            init.insert(vec![
                                linrec_datalog::Value::Int(a0),
                                linrec_datalog::Value::Int(b),
                                linrec_datalog::Value::Int(c),
                                linrec_datalog::Value::Int(d),
                            ]);
                        }
                    }
                }
            }
        }
        let (direct, _) = eval_direct(std::slice::from_ref(&a), &db, &init);
        let (bounded, _) = eval_redundancy_bounded(&a, &dec, &db, &init).unwrap();
        assert_eq!(bounded.sorted(), direct.sorted());
    }

    #[test]
    fn naive_and_direct_agree() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        let rules = [down_rule, up_rule];
        let (a, _) = eval_direct(&rules, &db, &init);
        let (b, _) = eval_naive(&rules, &db, &init);
        assert_eq!(a.sorted(), b.sorted());
    }
}
