//! Deprecated free-function strategy entry points.
//!
//! These six functions were the engine's original API. They are now thin
//! wrappers over the certificate-carrying planner ([`crate::planner`]) and
//! will be removed; migrate as follows:
//!
//! | Legacy call | Replacement |
//! |---|---|
//! | `eval_direct(rules, db, q)` | `Plan::direct(rules.to_vec()).execute(db, q)` |
//! | `eval_naive(rules, db, q)` | `Plan::naive(rules.to_vec()).execute(db, q)` |
//! | `eval_decomposed(groups, db, q)` | `Plan::decomposed(CommutativityCert::establish(rules, 0)?…)` `.execute(db, q)` |
//! | `eval_select_after(rules, db, q, σ)` | `Plan::select_after(Plan::direct(…), σ).execute(db, q)` |
//! | `eval_separable(a1, a2, db, q, σ)` | `Plan::separable(SeparabilityCert::establish(a1, a2)?…, σ)?` `.execute(db, q)` |
//! | `eval_redundancy_bounded(rule, dec, db, q)` | `Plan::redundancy_bounded(RedundancyCert::establish(rule, pred, 8)?…)` `.execute(db, q)` |
//!
//! Or let the analysis pick: `Analysis::of(rules, sel).plan().execute(db, q)`.
//!
//! Semantics note: the legacy functions took the commutativity premises on
//! faith ("the caller's certificate"). The wrappers re-establish (or
//! re-verify) the certificates, so a call whose premise does not actually
//! hold now fails with [`StrategyError::MissingCertificate`] instead of
//! silently computing from an unlicensed identity. `eval_decomposed` is the
//! exception: its group structure *is* the caller's claim, so it executes
//! the product of group-stars literally (which is correct exactly when the
//! groups commute — same contract as before).

use crate::planner::Plan;
pub use crate::planner::StrategyError;
use crate::selection::Selection;
use crate::stats::EvalStats;
use linrec_core::{Decomposition, RedundancyCert, SeparabilityCert};
use linrec_datalog::{Database, LinearRule, Relation};

/// Semi-naive evaluation of `(Σ rules)* init` — the paper's general
/// baseline.
#[deprecated(
    since = "0.2.0",
    note = "use `planner::Plan::direct(rules.to_vec()).execute(db, init)`"
)]
pub fn eval_direct(rules: &[LinearRule], db: &Database, init: &Relation) -> (Relation, EvalStats) {
    let out = Plan::direct(rules.to_vec())
        .execute(db, init)
        .expect("direct plans cannot fail");
    (out.relation, out.stats)
}

/// Naive evaluation (every operator re-applied to the whole relation each
/// round).
#[deprecated(
    since = "0.2.0",
    note = "use `planner::Plan::naive(rules.to_vec()).execute(db, init)`"
)]
pub fn eval_naive(rules: &[LinearRule], db: &Database, init: &Relation) -> (Relation, EvalStats) {
    let out = Plan::naive(rules.to_vec())
        .execute(db, init)
        .expect("naive plans cannot fail");
    (out.relation, out.stats)
}

/// Decomposed evaluation `(Σ all)* = Π_g (Σ g)*`, with groups applied
/// right-to-left: `groups[k-1]` is applied to `init` first, matching the
/// paper's reading of `A* = B*C*` (compute `C* q`, then run `B` over the
/// result — Section 2's closing remark). The grouping is the *caller's*
/// claim; prefer `Plan::decomposed(CommutativityCert::establish(…))`, which
/// proves it.
#[deprecated(
    since = "0.2.0",
    note = "use `planner::Plan::decomposed(CommutativityCert::establish(rules, 0)…)` (certificate-checked)"
)]
pub fn eval_decomposed(
    groups: &[Vec<LinearRule>],
    db: &Database,
    init: &Relation,
) -> (Relation, EvalStats) {
    let mut stats = EvalStats::default();
    let mut current = init.clone();
    for group in groups.iter().rev() {
        let out = Plan::direct(group.clone())
            .execute(db, &current)
            .expect("direct plans cannot fail");
        stats += out.stats;
        current = out.relation;
    }
    stats.tuples = current.len();
    (current, stats)
}

/// Baseline for selection queries: full star, then select.
#[deprecated(
    since = "0.2.0",
    note = "use `planner::Plan::select_after(Plan::direct(rules.to_vec()), sel.clone()).execute(db, init)`"
)]
pub fn eval_select_after(
    rules: &[LinearRule],
    db: &Database,
    init: &Relation,
    sel: &Selection,
) -> (Relation, EvalStats) {
    let out = Plan::select_after(Plan::direct(rules.to_vec()), sel.clone())
        .execute(db, init)
        .expect("select-after plans cannot fail");
    (out.relation, out.stats)
}

/// The separable algorithm (Algorithm 4.1) for `σ(A₁+A₂)*` under
/// Theorem 4.1's premises: `A₁`, `A₂` commute and `σ` commutes with `A₁`.
/// Computes `A₁*(σ A₂* q)`, pushing the selection into `A₂`'s parameter
/// relations when possible (falling back to select-after-star for the
/// inner part otherwise).
///
/// Both premises are now *checked*: the commutativity of the pair through
/// [`SeparabilityCert::establish`] (it used to be the caller's unverified
/// certificate) and the selection premise as before.
#[deprecated(
    since = "0.2.0",
    note = "use `planner::Plan::separable(SeparabilityCert::establish(a1, a2)…, sel.clone())`"
)]
pub fn eval_separable(
    a1: &LinearRule,
    a2: &LinearRule,
    db: &Database,
    init: &Relation,
    sel: &Selection,
) -> Result<(Relation, EvalStats), StrategyError> {
    if !sel.commutes_with(a1) {
        return Err(StrategyError::SelectionDoesNotCommute);
    }
    let cert = SeparabilityCert::establish(a1, a2)?.ok_or_else(|| {
        StrategyError::MissingCertificate(format!(
            "the operators do not commute (Theorem 4.1 premise): {a1} / {a2}"
        ))
    })?;
    let out = Plan::separable(cert, sel.clone())?.execute(db, init)?;
    Ok((out.relation, out.stats))
}

/// Redundancy-bounded evaluation (Theorem 4.2 via the Theorem 6.4
/// witnesses); see [`crate::planner`] for the evaluated identity.
///
/// The supplied witnesses are re-verified ([`RedundancyCert::verify`])
/// before execution; unverifiable witnesses fail with
/// [`StrategyError::MissingCertificate`].
#[deprecated(
    since = "0.2.0",
    note = "use `planner::Plan::redundancy_bounded(RedundancyCert::establish(rule, pred, 8)…)`"
)]
pub fn eval_redundancy_bounded(
    rule: &LinearRule,
    dec: &Decomposition,
    db: &Database,
    init: &Relation,
) -> Result<(Relation, EvalStats), StrategyError> {
    let pred = dec
        .c
        .nonrec_atoms()
        .first()
        .map(|a| a.pred)
        .unwrap_or_else(|| rule.rec_pred());
    let cert = RedundancyCert::verify(rule, pred, dec)?.ok_or_else(|| {
        StrategyError::MissingCertificate(
            "the supplied Theorem 6.4 witnesses failed re-verification".to_owned(),
        )
    })?;
    let out = Plan::redundancy_bounded(cert).execute(db, init)?;
    Ok((out.relation, out.stats))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn updown() -> (LinearRule, LinearRule) {
        (
            parse_linear_rule("p(x,y) :- p(x,z), down(z,y).").unwrap(),
            parse_linear_rule("p(x,y) :- p(w,y), up(x,w).").unwrap(),
        )
    }

    fn updown_db() -> (Database, Relation) {
        let mut db = Database::new();
        db.set_relation("up", Relation::from_pairs([(0, 1), (1, 2), (10, 11)]));
        db.set_relation("down", Relation::from_pairs([(2, 3), (3, 4), (11, 12)]));
        let init = Relation::from_pairs([(2, 2), (11, 11)]);
        (db, init)
    }

    #[test]
    fn decomposed_equals_direct_for_commuting_rules() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        let (direct, sd) = eval_direct(&[down_rule.clone(), up_rule.clone()], &db, &init);
        let (dec, sc) = eval_decomposed(
            &[vec![up_rule.clone()], vec![down_rule.clone()]],
            &db,
            &init,
        );
        assert_eq!(direct.sorted(), dec.sorted());
        // Theorem 3.1: the decomposed computation produces no more
        // duplicates.
        assert!(sc.duplicates <= sd.duplicates);
    }

    #[test]
    fn decomposed_order_does_not_matter_for_commuting_rules() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        let (a, _) = eval_decomposed(
            &[vec![up_rule.clone()], vec![down_rule.clone()]],
            &db,
            &init,
        );
        let (b, _) = eval_decomposed(&[vec![down_rule], vec![up_rule]], &db, &init);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn separable_matches_select_after() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        // σ on column 1 (the `down`-moving column) commutes with the
        // up-rule (its position-1 variable is persistent).
        let sel = Selection::eq(1, 4);
        let rules = [down_rule.clone(), up_rule.clone()];
        let (baseline, _) = eval_select_after(&rules, &db, &init, &sel);
        let (fast, _) = eval_separable(&up_rule, &down_rule, &db, &init, &sel).unwrap();
        assert_eq!(fast.sorted(), baseline.sorted());
        assert!(!fast.is_empty());
    }

    #[test]
    fn separable_rejects_noncommuting_selection() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        // σ on column 1 does NOT commute with the down-rule.
        let sel = Selection::eq(1, 4);
        assert_eq!(
            eval_separable(&down_rule, &up_rule, &db, &init, &sel).unwrap_err(),
            StrategyError::SelectionDoesNotCommute
        );
    }

    #[test]
    fn separable_now_rejects_noncommuting_pairs() {
        // New behavior: the wrapper re-establishes the operator premise and
        // refuses pairs that do not commute (previously the caller's
        // unchecked certificate).
        let a = parse_linear_rule("p(x,y) :- p(x,z), a(z,y).").unwrap();
        let b = parse_linear_rule("p(x,y) :- p(x,z), b(z,y).").unwrap();
        let (db, init) = updown_db();
        let sel = Selection::eq(0, 2); // commutes with both (position 0 persists)
        assert!(matches!(
            eval_separable(&a, &b, &db, &init, &sel).unwrap_err(),
            StrategyError::MissingCertificate(_)
        ));
    }

    #[test]
    fn redundancy_bounded_equals_direct_example_6_1() {
        let a = parse_linear_rule("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).").unwrap();
        let dec = linrec_core::decomposition_for_pred(&a, linrec_datalog::Symbol::new("cheap"), 8)
            .unwrap()
            .expect("cheap is redundant");
        let mut db = Database::new();
        db.set_relation(
            "knows",
            Relation::from_pairs([(1, 2), (2, 3), (3, 4), (2, 5), (5, 1)]),
        );
        db.set_relation(
            "cheap",
            Relation::from_tuples(
                1,
                [
                    vec![linrec_datalog::Value::Int(100)],
                    vec![linrec_datalog::Value::Int(200)],
                ],
            ),
        );
        let init = Relation::from_pairs([(4, 100), (4, 200), (4, 300), (1, 100)]);
        let (direct, _) = eval_direct(std::slice::from_ref(&a), &db, &init);
        let (bounded, _) = eval_redundancy_bounded(&a, &dec, &db, &init).unwrap();
        assert_eq!(bounded.sorted(), direct.sorted());
    }

    #[test]
    fn redundancy_bounded_equals_direct_example_6_2() {
        let a = parse_linear_rule("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).").unwrap();
        let dec = linrec_core::decomposition_for_pred(&a, linrec_datalog::Symbol::new("r"), 8)
            .unwrap()
            .expect("r is redundant");
        let mut db = Database::new();
        db.set_relation("q", Relation::from_pairs([(1, 2), (2, 3), (3, 1), (2, 2)]));
        db.set_relation("r", Relation::from_pairs([(1, 2), (2, 1), (3, 3), (1, 1)]));
        db.set_relation("s", Relation::from_pairs([(2, 1), (3, 2), (1, 3), (2, 2)]));
        let mut init = Relation::new(4);
        for a0 in 1..=3i64 {
            for b in 1..=3i64 {
                for c in 1..=3i64 {
                    for d in 1..=3i64 {
                        if (a0 + b + c + d) % 3 == 0 {
                            init.insert(vec![
                                linrec_datalog::Value::Int(a0),
                                linrec_datalog::Value::Int(b),
                                linrec_datalog::Value::Int(c),
                                linrec_datalog::Value::Int(d),
                            ]);
                        }
                    }
                }
            }
        }
        let (direct, _) = eval_direct(std::slice::from_ref(&a), &db, &init);
        let (bounded, _) = eval_redundancy_bounded(&a, &dec, &db, &init).unwrap();
        assert_eq!(bounded.sorted(), direct.sorted());
    }

    #[test]
    fn naive_and_direct_agree() {
        let (down_rule, up_rule) = updown();
        let (db, init) = updown_db();
        let rules = [down_rule, up_rule];
        let (a, _) = eval_direct(&rules, &db, &init);
        let (b, _) = eval_naive(&rules, &db, &init);
        assert_eq!(a.sorted(), b.sorted());
    }
}
