//! Dense bitset execution: boolean matrix kernels and logarithmic
//! transitive closure by power doubling.
//!
//! For a **composition-shaped** rule — a binary linear recursion whose
//! body is exactly relational composition with one binary EDB atom,
//!
//! ```text
//! p(x,y) :- p(x,z), q(z,y).    (right-linear: A(P) = P ∘ q)
//! p(x,y) :- p(w,y), q(x,w).    (left-linear:  A(P) = q ∘ P)
//! ```
//!
//! the fixpoint `A*(init)` is `init ∪ init∘q⁺` (respectively
//! `init ∪ q⁺∘init`), where `q⁺` is the transitive closure of `q` — the
//! paper's `Aⁿ` power analysis made concrete: every operator power is a
//! power of the boolean adjacency matrix of `q`. Over a
//! [`DenseDomain`] remap this evaluates with word-wide kernels
//! ([`BitsetRelation`]), and the closure needs only `⌈log₂ diameter⌉`
//! squarings (`A ∪ A² ∪ A⁴ ∪ …` until no new bits) instead of one
//! semi-naive round per path length — Frühwirth's repeated recursion
//! unfolding, specialised to graphs.
//!
//! Everything here is semantics-preserving with respect to
//! [`crate::seminaive::seminaive_star_in`] on the same rule (the
//! `dense_props` suite holds the two against each other); the planner
//! decides *when* it pays through the cost model's dense-budget rule.

use crate::stats::EvalStats;
use linrec_datalog::{BitsetRelation, Database, DenseDomain, LinearRule, Relation, Symbol, Term};
use std::sync::Arc;

/// Default byte budget for the dense working set (three `domain × words`
/// matrices: operand, accumulator, scratch) when no cost model supplies
/// one — used by entry points with no planner context (e.g. the
/// [`crate::seminaive::exact_power`] convenience wrapper). Planner-driven
/// execution threads [`crate::planner::CostModel::dense_budget_bytes`]
/// instead.
pub const DEFAULT_DENSE_BUDGET_BYTES: usize = 64 << 20;

/// Which side of the recursive atom the EDB relation composes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositionSide {
    /// `p(x,y) :- p(x,z), q(z,y)` — the fixpoint is `init ∘ q*`.
    Right,
    /// `p(x,y) :- p(w,y), q(x,w)` — the fixpoint is `q* ∘ init`.
    Left,
}

/// The license for dense evaluation: the rule *is* relational composition
/// with one binary EDB predicate, so operator powers are matrix powers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositionShape {
    /// The composed EDB predicate.
    pub edge: Symbol,
    /// Which side it composes on.
    pub side: CompositionSide,
}

/// Recognize a composition-shaped rule: binary head `p(x,y)` with two
/// distinct variables, a recursive atom sharing exactly the persistent
/// head variable, and exactly one binary nonrecursive atom threading the
/// fresh middle variable to the other head variable. Constants anywhere
/// disqualify the rule. This syntactic check is the dense license — for
/// such a rule, `Aⁿ(init)` is literally `init ∘ qⁿ` (or `qⁿ ∘ init`),
/// which is what lets the closure run as repeated matrix squaring.
pub fn composition_shape(rule: &LinearRule) -> Option<CompositionShape> {
    if rule.arity() != 2 {
        return None;
    }
    let head = rule.head();
    let rec = rule.rec_atom();
    let [q] = rule.nonrec_atoms() else {
        return None;
    };
    if q.arity() != 2 {
        return None;
    }
    let (Term::Var(hx), Term::Var(hy)) = (&head.terms[0], &head.terms[1]) else {
        return None;
    };
    if hx == hy {
        return None;
    }
    let (r0, r1) = (&rec.terms[0], &rec.terms[1]);
    let (q0, q1) = (&q.terms[0], &q.terms[1]);
    // Right-linear: rec = p(hx, z), q = q(z, hy), z fresh.
    if let (Term::Var(rx), Term::Var(z)) = (r0, r1) {
        if rx == hx && z != hx && z != hy && *q0 == Term::Var(*z) && *q1 == Term::Var(*hy) {
            return Some(CompositionShape {
                edge: q.pred,
                side: CompositionSide::Right,
            });
        }
    }
    // Left-linear: rec = p(w, hy), q = q(hx, w), w fresh.
    if let (Term::Var(w), Term::Var(ry)) = (r0, r1) {
        if ry == hy && w != hx && w != hy && *q0 == Term::Var(*hx) && *q1 == Term::Var(*w) {
            return Some(CompositionShape {
                edge: q.pred,
                side: CompositionSide::Left,
            });
        }
    }
    None
}

/// Instrumented boolean matrix product `a ∘ b` (see
/// [`BitsetRelation::compose`]): one `linrec_engine_dense_compose_ns` /
/// `linrec_engine_dense_words` sample per call.
pub fn compose(a: &BitsetRelation, b: &BitsetRelation) -> BitsetRelation {
    let start = linrec_obs::enabled().then(std::time::Instant::now);
    let out = a.compose(b);
    if let Some(t) = start {
        let p = crate::profile::dense();
        p.compose_ns.observe(t.elapsed().as_nanos() as u64);
        p.words.observe(a.total_words() as u64);
    }
    out
}

/// Word-at-a-time union `a ∪= b`; returns the popcount delta (newly set
/// bits). Thin alias over [`BitsetRelation::or_assign`] so the dense
/// kernel surface is complete in one module.
pub fn union_in_place(a: &mut BitsetRelation, b: &BitsetRelation) -> u64 {
    a.or_assign(b)
}

/// The boolean matrix square `a ∘ a`.
pub fn square(a: &BitsetRelation) -> BitsetRelation {
    compose(a, a)
}

/// Transitive closure by power doubling: iterate `T ← T ∪ T²` until no
/// new bits. After `k` rounds `T` holds every path of length `≤ 2ᵏ`, so
/// the loop runs `⌈log₂ diameter⌉ + 1` times. [`EvalStats`] counters come
/// from popcount deltas: each squaring is one application whose *derived*
/// count is the square's popcount and whose *new* count is the union's
/// popcount delta — same accounting the sparse semi-naive path reports,
/// so downstream estimate/actual feedback stays meaningful.
pub fn closure_by_squaring(a: &BitsetRelation) -> (BitsetRelation, EvalStats) {
    let mut sp = linrec_obs::span("dense.closure");
    let mut total = a.clone();
    let mut stats = EvalStats::default();
    loop {
        stats.iterations += 1;
        let sq = square(&total);
        let derived = sq.len();
        let new = total.or_assign(&sq);
        stats.record(derived, new);
        if new == 0 {
            break;
        }
    }
    stats.tuples = total.len() as usize;
    if linrec_obs::enabled() {
        crate::profile::dense().closures.inc();
        sp.attr("domain", total.domain().len());
        sp.attr("words", total.total_words());
        sp.attr("bits", stats.tuples);
        sp.attr("squarings", stats.applications);
    }
    (total, stats)
}

/// The operands of a dense evaluation: the seed and EDB relation
/// densified over one shared domain. `None` when the shapes cannot
/// densify (non-binary seed, or EDB stored at a different arity — the
/// join treats the latter as matching nothing, so the dense side uses an
/// empty matrix the same way), or when three `domain × words` matrices
/// would exceed `budget_bytes`.
///
/// Order matters here: the [`DenseDomain`] (input-proportional — a
/// sorted value list plus its inverse map) is built first, the byte
/// budget is checked against it, and only then are the `domain²`-bit
/// adjacency matrices allocated. Checking after allocation would defeat
/// the budget's purpose — a large runtime domain would OOM the process
/// on the very matrices the budget exists to refuse, instead of taking
/// the graceful sparse fallback.
fn densify(
    shape: &CompositionShape,
    db: &Database,
    init: &Relation,
    budget_bytes: usize,
) -> Option<(BitsetRelation, BitsetRelation)> {
    if init.arity() != 2 {
        return None;
    }
    let empty = Relation::new(2);
    let edge = match db.relation(shape.edge) {
        Some(rel) if rel.arity() == 2 => rel,
        _ => &empty,
    };
    let domain = Arc::new(DenseDomain::from_relations([init, edge]));
    if domain.matrix_bytes().saturating_mul(3) > budget_bytes {
        return None;
    }
    let a = BitsetRelation::from_relation(init, Arc::clone(&domain)).ok()?;
    let e = BitsetRelation::from_relation(edge, Arc::clone(&domain)).ok()?;
    Some((a, e))
}

/// Evaluate the fixpoint of a composition-shaped rule densely:
/// `init ∪ init∘q⁺` (right-linear) or `init ∪ q⁺∘init` (left-linear),
/// converted back to a flat-arena [`Relation`] at the boundary. Returns
/// `None` when densification is not possible or the working set exceeds
/// `budget_bytes` (three `domain × words` matrices; checked before any
/// matrix allocation) — callers fall back to the sparse semi-naive path.
pub fn eval_composition(
    shape: &CompositionShape,
    db: &Database,
    init: &Relation,
    budget_bytes: usize,
) -> Option<(Relation, EvalStats)> {
    let (mut a, e) = densify(shape, db, init, budget_bytes)?;
    let (closure, mut stats) = closure_by_squaring(&e);
    let image = match shape.side {
        CompositionSide::Right => compose(&a, &closure),
        CompositionSide::Left => compose(&closure, &a),
    };
    let derived = image.len();
    let new = a.or_assign(&image);
    stats.record(derived, new);
    let relation = a.to_relation();
    stats.tuples = relation.len();
    Some((relation, stats))
}

/// Dense fast path for the exact power image `Aᶜ(init) = init ∘ qᶜ`
/// (right-linear; `qᶜ ∘ init` left-linear): `qᶜ` by binary
/// exponentiation — `O(log c)` composes instead of `c` joins. Derivation
/// counters come from popcount deltas, one [`EvalStats::record`] per
/// compose. Returns `None` when densification fails or the working set
/// exceeds `budget_bytes` (checked before any matrix allocation).
pub fn exact_power(
    shape: &CompositionShape,
    db: &Database,
    init: &Relation,
    count: usize,
    budget_bytes: usize,
    stats: &mut EvalStats,
) -> Option<Relation> {
    debug_assert!(count > 0, "count 0 is the identity; callers skip it");
    let (a, e) = densify(shape, db, init, budget_bytes)?;
    // q^count by square-and-multiply over the bit positions of `count`.
    let mut power: Option<BitsetRelation> = None;
    let mut base = e;
    let mut c = count;
    loop {
        if c & 1 == 1 {
            power = Some(match power {
                Some(p) => {
                    let next = compose(&p, &base);
                    stats.record(next.len(), next.len());
                    next
                }
                None => base.clone(),
            });
        }
        c >>= 1;
        if c == 0 {
            break;
        }
        base = square(&base);
        stats.record(base.len(), base.len());
    }
    let power = power.expect("count > 0 always selects at least one factor");
    let image = match shape.side {
        CompositionSide::Right => compose(&a, &power),
        CompositionSide::Left => compose(&power, &a),
    };
    stats.record(image.len(), image.len());
    Some(image.to_relation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::{exact_power as sparse_exact_power, seminaive_star};
    use crate::{rules, workload};
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn shape_recognizes_both_linear_forms_and_rejects_the_rest() {
        let right = rules::tc_right();
        let left = rules::tc_left();
        assert_eq!(
            composition_shape(&right).map(|s| s.side),
            Some(CompositionSide::Right)
        );
        assert_eq!(
            composition_shape(&left).map(|s| s.side),
            Some(CompositionSide::Left)
        );
        for bad in [
            "p(x,y) :- p(x,z), q(y,z).",         // transposed edge
            "p(x,y) :- p(x,y), q(z,z).",         // disconnected edge
            "p(x,y) :- p(x,z), q(z,w), r(w,y).", // two-hop body
            "p(x,y) :- p(x,z), q(z,y), r(z).",   // extra guard atom
            "p(x,x) :- p(x,z), q(z,x).",         // repeated head variable
            "p(x,y,u) :- p(x,z,u), q(z,y).",     // arity 3
        ] {
            let rule = parse_linear_rule(bad).unwrap();
            assert!(composition_shape(&rule).is_none(), "{bad}");
        }
    }

    #[test]
    fn closure_matches_seminaive_on_a_chain_and_a_cycle() {
        for edges in [workload::chain(40), workload::cycle(17)] {
            let db = workload::graph_db("q", edges.clone());
            let rule = rules::tc_right();
            let shape = composition_shape(&rule).unwrap();
            let (dense_rel, dense_stats) =
                eval_composition(&shape, &db, &edges, DEFAULT_DENSE_BUDGET_BYTES).unwrap();
            let (sparse_rel, _) = seminaive_star(&[rule], &db, &edges);
            assert_eq!(dense_rel.sorted(), sparse_rel.sorted());
            assert_eq!(dense_stats.tuples, sparse_rel.len());
            assert!(dense_stats.derivations >= dense_stats.tuples as u64 / 2);
        }
    }

    #[test]
    fn left_linear_composes_on_the_other_side() {
        let edges = workload::chain(12);
        let db = workload::graph_db("q", edges.clone());
        let init = Relation::from_pairs([(11, 12)]);
        let rule = rules::tc_left();
        let shape = composition_shape(&rule).unwrap();
        let (dense_rel, _) =
            eval_composition(&shape, &db, &init, DEFAULT_DENSE_BUDGET_BYTES).unwrap();
        let (sparse_rel, _) = seminaive_star(&[rule], &db, &init);
        assert_eq!(dense_rel.sorted(), sparse_rel.sorted());
    }

    #[test]
    fn exact_power_matches_the_sparse_power_chain() {
        let edges = workload::chain(30);
        let db = workload::graph_db("q", edges.clone());
        let rule = rules::tc_right();
        let shape = composition_shape(&rule).unwrap();
        for count in [1usize, 2, 3, 5, 8, 13] {
            let mut dense_stats = EvalStats::default();
            let dense = exact_power(
                &shape,
                &db,
                &edges,
                count,
                DEFAULT_DENSE_BUDGET_BYTES,
                &mut dense_stats,
            )
            .unwrap();
            let mut sparse_stats = EvalStats::default();
            let sparse = sparse_exact_power(&rule, &db, &edges, count, &mut sparse_stats);
            assert_eq!(dense.sorted(), sparse.sorted(), "count {count}");
        }
    }

    #[test]
    fn budget_overflow_falls_back() {
        let edges = workload::chain(100);
        let db = workload::graph_db("q", edges.clone());
        let shape = composition_shape(&rules::tc_right()).unwrap();
        assert!(eval_composition(&shape, &db, &edges, 64).is_none());
    }

    #[test]
    fn budget_check_precedes_matrix_allocation_on_wide_domains() {
        // 100k+1 distinct values: one adjacency matrix alone would be
        // ~1.2 GiB, far past the 64 MiB default budget. The decline must
        // come from the domain size alone — if the gate ever moves back
        // behind the matrix allocations, this test balloons to gigabytes
        // of transient memory instead of returning in microseconds.
        let edges = workload::chain(100_000);
        let db = workload::graph_db("q", edges.clone());
        let shape = composition_shape(&rules::tc_right()).unwrap();
        assert!(eval_composition(&shape, &db, &edges, DEFAULT_DENSE_BUDGET_BYTES).is_none());
        let mut stats = EvalStats::default();
        assert!(exact_power(
            &shape,
            &db,
            &edges,
            8,
            DEFAULT_DENSE_BUDGET_BYTES,
            &mut stats
        )
        .is_none());
    }

    #[test]
    fn missing_or_misshapen_edge_relation_is_the_empty_matrix() {
        let rule = rules::tc_right();
        let shape = composition_shape(&rule).unwrap();
        let init = Relation::from_pairs([(1, 2), (2, 3)]);
        // No `q` at all.
        let db = Database::new();
        let (dense_rel, _) =
            eval_composition(&shape, &db, &init, DEFAULT_DENSE_BUDGET_BYTES).unwrap();
        let (sparse_rel, _) = seminaive_star(std::slice::from_ref(&rule), &db, &init);
        assert_eq!(dense_rel.sorted(), sparse_rel.sorted());
        // `q` stored at arity 3: the join matches nothing; so must we.
        let mut db = Database::new();
        db.set_relation(
            "q",
            Relation::from_tuples(
                3,
                [vec![
                    linrec_datalog::Value::Int(1),
                    linrec_datalog::Value::Int(2),
                    linrec_datalog::Value::Int(3),
                ]],
            ),
        );
        let (dense_rel, _) =
            eval_composition(&shape, &db, &init, DEFAULT_DENSE_BUDGET_BYTES).unwrap();
        let (sparse_rel, _) = seminaive_star(std::slice::from_ref(&rule), &db, &init);
        assert_eq!(dense_rel.sorted(), sparse_rel.sorted());
    }
}
