//! Best-effort canonical labeling of conjunctive queries.
//!
//! Produces a deterministic variable renaming and body ordering so that
//! α-renamed copies of a rule (and most atom permutations) compare equal
//! with `==`. The output is always isomorphic to the input (soundness);
//! completeness — identical output for *every* isomorphic pair — would
//! require canonical graph labeling, so callers that need exact equivalence
//! fall back to [`crate::containment::equivalent`]. Canonicalization is used
//! to deduplicate rule sets cheaply (e.g. power sequences in the torsion
//! search) and to print rules stably.

use linrec_datalog::hash::FastMap;
use linrec_datalog::{Atom, LinearRule, Rule, Term, Var};

/// Sort key of a term given the current variable ranking.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum TermKey {
    Const(linrec_datalog::Value),
    Ranked(u32),
    Unranked,
}

fn term_key(t: Term, ranks: &FastMap<Var, u32>) -> TermKey {
    match t {
        Term::Const(c) => TermKey::Const(c),
        Term::Var(v) => match ranks.get(&v) {
            Some(&r) => TermKey::Ranked(r),
            None => TermKey::Unranked,
        },
    }
}

fn atom_key(a: &Atom, ranks: &FastMap<Var, u32>) -> (String, Vec<TermKey>) {
    (
        a.pred.as_str().to_owned(),
        a.terms.iter().map(|&t| term_key(t, ranks)).collect(),
    )
}

/// Canonicalize a rule: deterministic variable names (`v0`, `v1`, …) and a
/// deterministic body order.
pub fn canonicalize(rule: &Rule) -> Rule {
    let mut ranks: FastMap<Var, u32> = FastMap::default();
    let mut next = 0u32;
    // Head variables first, in consequent order.
    for v in rule.head.vars() {
        ranks.entry(v).or_insert_with(|| {
            let r = next;
            next += 1;
            r
        });
    }
    // Iteratively rank body variables: repeatedly sort atoms under the
    // current partial ranking and rank the unranked variables of the first
    // atom that has any, in argument order.
    loop {
        let mut order: Vec<usize> = (0..rule.body.len()).collect();
        order.sort_by_key(|&i| atom_key(&rule.body[i], &ranks));
        let mut assigned = false;
        for &i in &order {
            let a = &rule.body[i];
            let unranked: Vec<Var> = a.vars().filter(|v| !ranks.contains_key(v)).collect();
            if !unranked.is_empty() {
                for v in unranked {
                    ranks.entry(v).or_insert_with(|| {
                        let r = next;
                        next += 1;
                        r
                    });
                }
                assigned = true;
                break;
            }
        }
        if !assigned {
            break;
        }
    }
    // Rename and sort.
    let rename = |v: Var| -> Term { Term::Var(Var::new(&format!("v{}", ranks[&v]))) };
    let head = rule.head.map_vars(rename);
    let mut body: Vec<Atom> = rule.body.iter().map(|a| a.map_vars(rename)).collect();
    body.sort_by_key(|a| atom_key(a, &FastMap::default()));
    // After renaming every variable is "unranked" under the empty map, so
    // sort on the rendered form for full determinism.
    body.sort_by_key(|a| a.to_string());
    Rule::new(head, body)
}

/// Canonicalize a linear rule (through its underlying rule, restoring the
/// recursive atom afterwards).
pub fn canonicalize_linear(rule: &LinearRule) -> LinearRule {
    let u = canonicalize(&rule.underlying());
    let in_pred = linrec_datalog::input_pred(rule.rec_pred());
    let rec = u
        .body
        .iter()
        .find(|a| a.pred == in_pred)
        .expect("underlying rule keeps its recursive atom")
        .clone();
    let nonrec: Vec<Atom> = u
        .body
        .iter()
        .filter(|a| a.pred != in_pred)
        .cloned()
        .collect();
    LinearRule::from_parts(u.head, Atom::new(rule.rec_pred(), rec.terms), nonrec)
        .expect("canonicalization preserves linearity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use linrec_datalog::parse_rule;

    fn r(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn renaming_invariant() {
        let a = r("p(x,y) :- e(x,w), f(w,y).");
        let b = r("p(x,y) :- e(x,banana), f(banana,y).");
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn atom_order_invariant() {
        let a = r("p(x,y) :- e(x,w), f(w,y).");
        let b = r("p(x,y) :- f(w,y), e(x,w).");
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn output_is_isomorphic_to_input() {
        let a = r("p(x,y) :- e(x,w), f(w,y), g(w,q), g(q,w).");
        let c = canonicalize(&a);
        assert!(equivalent(&a, &c));
    }

    #[test]
    fn distinguishes_inequivalent_rules() {
        let a = r("p(x,y) :- e(x,y).");
        let b = r("p(x,y) :- e(y,x).");
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn head_vars_get_stable_names() {
        let a = canonicalize(&r("p(alpha,beta) :- e(alpha,beta)."));
        assert_eq!(a.to_string(), "p(v0,v1) :- e(v0,v1).");
    }

    #[test]
    fn linear_canonicalization_round_trips() {
        let a = linrec_datalog::parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let c = canonicalize_linear(&a);
        assert_eq!(c.rec_pred(), a.rec_pred());
        assert!(crate::containment::linear_equivalent(&a, &c));
    }
}
