//! Minimization (core computation) of conjunctive queries.
//!
//! Every conjunctive query has a unique minimal equivalent form up to
//! isomorphism (Chandra–Merlin \[8\]; the paper relies on rules being "in
//! their unique minimal form" in the proof of Theorem 5.1). The core is
//! obtained by repeatedly dropping body atoms whose removal preserves
//! equivalence — an atom can be dropped iff there is a homomorphism from
//! the rule into the rule-without-the-atom.

use crate::homomorphism::find_homomorphism;
use linrec_datalog::{LinearRule, Rule};

/// Remove duplicate body atoms (conjunction is idempotent).
pub fn dedup_atoms(rule: &Rule) -> Rule {
    let mut seen: Vec<&linrec_datalog::Atom> = Vec::new();
    let mut body = Vec::with_capacity(rule.body.len());
    for a in &rule.body {
        if !seen.contains(&a) {
            seen.push(a);
            body.push(a.clone());
        }
    }
    Rule::new(rule.head.clone(), body)
}

/// Compute the core of `rule`: a minimal equivalent subquery.
pub fn minimize(rule: &Rule) -> Rule {
    let mut current = dedup_atoms(rule);
    loop {
        let mut shrunk = false;
        for i in 0..current.body.len() {
            let mut candidate_body = current.body.clone();
            candidate_body.remove(i);
            let candidate = Rule::new(current.head.clone(), candidate_body);
            // Removing an atom relaxes the query (current ≤ candidate
            // always); they are equivalent iff candidate ≤ current, i.e. a
            // homomorphism current → candidate exists.
            if find_homomorphism(&current, &candidate).is_some() {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Minimize a linear rule.
///
/// The recursive atom is never dropped (a homomorphism must map the `P·in`
/// atom of the underlying rule to a `P·in` atom, and the underlying rule has
/// exactly one), so the core of the underlying rule is again linear.
pub fn minimize_linear(rule: &LinearRule) -> LinearRule {
    let u = minimize(&rule.underlying());
    // Reconstruct: find the single P·in atom, restore the predicate name.
    let in_pred = linrec_datalog::input_pred(rule.rec_pred());
    let rec = u
        .body
        .iter()
        .find(|a| a.pred == in_pred)
        .expect("core of a linear rule keeps its recursive atom")
        .clone();
    let nonrec: Vec<linrec_datalog::Atom> = u
        .body
        .iter()
        .filter(|a| a.pred != in_pred)
        .cloned()
        .collect();
    let rec = linrec_datalog::Atom::new(rule.rec_pred(), rec.terms);
    LinearRule::from_parts(u.head, rec, nonrec).expect("core of a linear rule is linear")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{equivalent, linear_equivalent};
    use linrec_datalog::{parse_linear_rule, parse_rule};

    fn r(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn dedup_removes_copies() {
        let q = r("p(x) :- e(x,y), e(x,y), f(y).");
        assert_eq!(dedup_atoms(&q).body.len(), 2);
    }

    #[test]
    fn core_drops_foldable_atom() {
        let q = r("p(x,y) :- e(x,y), e(x,w).");
        let m = minimize(&q);
        assert_eq!(m.body.len(), 1);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn core_of_minimal_query_is_itself() {
        let q = r("p(x,y) :- e(x,z), e(z,y).");
        let m = minimize(&q);
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn core_handles_chains_onto_cycles() {
        // A 3-walk from x folds into a self-loop at x? No head constraint on
        // the walk's end, and e(x,x) present: everything folds onto the loop.
        let q = r("p(x) :- e(x,x), e(x,a), e(a,b), e(b,c).");
        let m = minimize(&q);
        assert_eq!(m.body.len(), 1);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn minimize_linear_keeps_recursive_atom() {
        let q = parse_linear_rule("p(x,y) :- p(x,z), e(z,y), e(z,w).").unwrap();
        let m = minimize_linear(&q);
        assert_eq!(m.rec_pred(), q.rec_pred());
        assert_eq!(m.nonrec_atoms().len(), 1);
        assert!(linear_equivalent(&q, &m));
    }

    #[test]
    fn minimize_is_idempotent() {
        let q = r("p(x) :- e(x,a), e(a,b), e(x,b), e(b,b).");
        let m1 = minimize(&q);
        let m2 = minimize(&m1);
        assert_eq!(m1.body.len(), m2.body.len());
        assert!(equivalent(&m1, &m2));
    }
}
