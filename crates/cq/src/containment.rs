//! Containment and equivalence of conjunctive queries.
//!
//! `s ≤ r` (the answer of `s` is a subset of the answer of `r` on every
//! database) holds iff there is a homomorphism from `r` to `s`
//! (Chandra–Merlin; paper Section 5). Equivalence is containment both ways.

use crate::homomorphism::find_homomorphism;
use linrec_datalog::{LinearRule, Rule};

/// True iff `sub ≤ sup` (every answer of `sub` is an answer of `sup`).
pub fn contains(sup: &Rule, sub: &Rule) -> bool {
    find_homomorphism(sup, sub).is_some()
}

/// True iff the two queries are equivalent (`a ≤ b` and `b ≤ a`).
pub fn equivalent(a: &Rule, b: &Rule) -> bool {
    contains(a, b) && contains(b, a)
}

/// Containment of linear rules, compared through their *underlying
/// nonrecursive rules* (body `P` marked as `P·in`).
pub fn linear_contains(sup: &LinearRule, sub: &LinearRule) -> bool {
    contains(&sup.underlying(), &sub.underlying())
}

/// Equivalence of linear rules (see [`linear_contains`]).
pub fn linear_equivalent(a: &LinearRule, b: &LinearRule) -> bool {
    linear_contains(a, b) && linear_contains(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::{parse_linear_rule, parse_rule};

    fn r(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn shorter_walk_contains_longer() {
        // Every 2-step pair is a 1-step pair superset?  No: the 1-atom query
        // e(x,y) does NOT contain the 2-step query; but the 2-step query with
        // an extra free endpoint contains the specialized one.
        let general = r("p(x) :- e(x,u).");
        let specific = r("p(x) :- e(x,u), f(u).");
        assert!(contains(&general, &specific));
        assert!(!contains(&specific, &general));
    }

    #[test]
    fn equivalence_modulo_redundant_atom() {
        let a = r("p(x,y) :- e(x,y).");
        let b = r("p(x,y) :- e(x,y), e(x,w).");
        // b's extra atom e(x,w) folds onto e(x,y): equivalent.
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn inequivalent_queries() {
        let a = r("p(x,y) :- e(x,y).");
        let b = r("p(x,y) :- e(y,x).");
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn containment_is_reflexive_and_transitive() {
        let q1 = r("p(x) :- e(x,a), e(a,b).");
        let q2 = r("p(x) :- e(x,a), e(a,b), f(b).");
        let q3 = r("p(x) :- e(x,a), e(a,b), f(b), g(b).");
        assert!(contains(&q1, &q1));
        assert!(contains(&q1, &q2));
        assert!(contains(&q2, &q3));
        assert!(contains(&q1, &q3));
    }

    #[test]
    fn linear_rules_compare_via_underlying() {
        let a = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let b = parse_linear_rule("p(x,y) :- p(x,w), e(w,y).").unwrap();
        assert!(linear_equivalent(&a, &b));
        let c = parse_linear_rule("p(x,y) :- p(z,x), e(z,y).").unwrap();
        assert!(!linear_equivalent(&a, &c));
    }

    #[test]
    fn recursive_atom_does_not_match_nonrecursive() {
        // p·in in the body must map to p·in, not to e.
        let a = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let b = parse_linear_rule("p(x,y) :- p(z,y), e(x,z).").unwrap();
        assert!(!linear_equivalent(&a, &b));
    }
}
