//! Homomorphisms between conjunctive queries.
//!
//! A homomorphism `f : r → s` (paper, Section 5) maps the variables of `r`
//! into the terms of `s` such that (i) distinguished variables are fixed —
//! generalized here to "the heads must match under `f`" — and (ii) every
//! antecedent atom of `r` is carried to an antecedent atom of `s`.
//!
//! Finding a homomorphism is NP-complete in general; the backtracking search
//! below uses most-constrained-first atom ordering, which is fast on the
//! rule sizes arising from compositions and powers.

use linrec_datalog::hash::FastMap;
use linrec_datalog::{Atom, Rule, Term, Var};

/// A variable substitution.
pub type Subst = FastMap<Var, Term>;

/// Apply a substitution to a term (unbound variables stay put).
pub fn apply_term(t: Term, s: &Subst) -> Term {
    match t {
        Term::Var(v) => s.get(&v).copied().unwrap_or(t),
        c => c,
    }
}

/// Apply a substitution to an atom.
pub fn apply_atom(a: &Atom, s: &Subst) -> Atom {
    Atom::new(a.pred, a.terms.iter().map(|&t| apply_term(t, s)).collect())
}

/// Apply a substitution to a whole rule.
pub fn apply_rule(r: &Rule, s: &Subst) -> Rule {
    Rule::new(
        apply_atom(&r.head, s),
        r.body.iter().map(|a| apply_atom(a, s)).collect(),
    )
}

/// Try to extend `subst` so that term `from` maps onto term `to`.
/// Returns the bound variable when a fresh binding was added (for undo).
fn unify_onto(from: Term, to: Term, subst: &mut Subst) -> Result<Option<Var>, ()> {
    match from {
        Term::Const(c) => match to {
            Term::Const(d) if c == d => Ok(None),
            _ => Err(()),
        },
        Term::Var(v) => match subst.get(&v) {
            Some(&bound) => {
                if bound == to {
                    Ok(None)
                } else {
                    Err(())
                }
            }
            None => {
                subst.insert(v, to);
                Ok(Some(v))
            }
        },
    }
}

/// Try to map atom `from` onto atom `to` under `subst`, recording fresh
/// bindings in `trail` for backtracking.
fn match_atom(from: &Atom, to: &Atom, subst: &mut Subst, trail: &mut Vec<Var>) -> bool {
    debug_assert_eq!(from.pred, to.pred);
    if from.arity() != to.arity() {
        return false;
    }
    let depth = trail.len();
    for (&f, &t) in from.terms.iter().zip(to.terms.iter()) {
        match unify_onto(f, t, subst) {
            Ok(Some(v)) => trail.push(v),
            Ok(None) => {}
            Err(()) => {
                for v in trail.drain(depth..) {
                    subst.remove(&v);
                }
                return false;
            }
        }
    }
    true
}

/// Search for a homomorphism from `from` into `to`, starting from the given
/// initial bindings. Returns the completed substitution if one exists.
pub fn find_homomorphism_with(from: &Rule, to: &Rule, init: Subst) -> Option<Subst> {
    // Head compatibility: map head position-wise.
    if from.head.pred != to.head.pred || from.head.arity() != to.head.arity() {
        return None;
    }
    let mut subst = init;
    for (&f, &t) in from.head.terms.iter().zip(to.head.terms.iter()) {
        if unify_onto(f, t, &mut subst).is_err() {
            return None;
        }
    }

    // Candidate atoms in `to`, grouped by predicate.
    let mut by_pred: FastMap<linrec_datalog::Symbol, Vec<&Atom>> = FastMap::default();
    for a in &to.body {
        by_pred.entry(a.pred).or_default().push(a);
    }
    // Fail fast if some predicate has no candidates at all.
    for a in &from.body {
        if !by_pred.contains_key(&a.pred) {
            return None;
        }
    }

    let atoms: Vec<&Atom> = from.body.iter().collect();
    let mut used = vec![false; atoms.len()];

    fn bound_count(a: &Atom, subst: &Subst) -> usize {
        a.terms
            .iter()
            .filter(|t| match t {
                Term::Var(v) => subst.contains_key(v),
                Term::Const(_) => true,
            })
            .count()
    }

    fn solve(
        atoms: &[&Atom],
        used: &mut [bool],
        by_pred: &FastMap<linrec_datalog::Symbol, Vec<&Atom>>,
        subst: &mut Subst,
    ) -> bool {
        // Most-constrained-first: among unmatched atoms pick the one with the
        // most already-bound argument positions; tie-break on fewer
        // candidates.
        let mut best: Option<(usize, usize, usize)> = None; // (idx, -bound, cands)
        for (i, a) in atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let bound = bound_count(a, subst);
            let cands = by_pred.get(&a.pred).map_or(0, |v| v.len());
            let better = match best {
                None => true,
                Some((_, b_bound, b_cands)) => {
                    bound > b_bound || (bound == b_bound && cands < b_cands)
                }
            };
            if better {
                best = Some((i, bound, cands));
            }
        }
        let (idx, _, _) = match best {
            None => return true, // all matched
            Some(b) => b,
        };
        used[idx] = true;
        let from_atom = atoms[idx];
        let mut trail: Vec<Var> = Vec::new();
        for cand in by_pred.get(&from_atom.pred).into_iter().flatten() {
            if match_atom(from_atom, cand, subst, &mut trail) {
                if solve(atoms, used, by_pred, subst) {
                    return true;
                }
                for v in trail.drain(..) {
                    subst.remove(&v);
                }
            }
        }
        used[idx] = false;
        false
    }

    if solve(&atoms, &mut used, &by_pred, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

/// Search for a homomorphism from `from` into `to`.
///
/// Exists iff `to ≤ from` (the output of `to` is contained in the output of
/// `from` for every database) — see Chandra–Merlin and the paper's
/// Section 5.
pub fn find_homomorphism(from: &Rule, to: &Rule) -> Option<Subst> {
    find_homomorphism_with(from, to, Subst::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_rule;

    fn r(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let q = r("p(x,y) :- e(x,z), e(z,y).");
        let h = find_homomorphism(&q, &q).unwrap();
        assert_eq!(apply_rule(&q, &h), q);
    }

    #[test]
    fn folding_homomorphism() {
        // from: two-step walk; to: self-loop — hom exists (z ↦ x, y ↦ x won't
        // work since head vars fixed; use matching heads).
        let from = r("p(x) :- e(x,z), e(z,w).");
        let to = r("p(x) :- e(x,x).");
        let h = find_homomorphism(&from, &to).unwrap();
        assert_eq!(
            apply_term(Term::Var(Var::new("z")), &h),
            Term::Var(Var::new("x"))
        );
    }

    #[test]
    fn no_homomorphism_when_head_vars_diverge() {
        let from = r("p(x,y) :- e(x,y).");
        let to = r("p(x,y) :- e(y,x).");
        assert!(find_homomorphism(&from, &to).is_none());
    }

    #[test]
    fn respects_predicates() {
        let from = r("p(x) :- q(x).");
        let to = r("p(x) :- r(x).");
        assert!(find_homomorphism(&from, &to).is_none());
    }

    #[test]
    fn respects_constants() {
        let from = r("p(x) :- e(x, 1).");
        let to_good = r("p(x) :- e(x, 1).");
        let to_bad = r("p(x) :- e(x, 2).");
        assert!(find_homomorphism(&from, &to_good).is_some());
        assert!(find_homomorphism(&from, &to_bad).is_none());
    }

    #[test]
    fn constant_can_absorb_variable() {
        // from has a variable where to has a constant: allowed (var ↦ const).
        let from = r("p(x) :- e(x, w).");
        let to = r("p(x) :- e(x, 3).");
        assert!(find_homomorphism(&from, &to).is_some());
        // But not the reverse.
        assert!(find_homomorphism(&to, &from).is_none());
    }

    #[test]
    fn heads_of_different_shape_fail() {
        let a = r("p(x) :- e(x,x).");
        let b = r("q(x) :- e(x,x).");
        assert!(find_homomorphism(&a, &b).is_none());
        let c = r("p(x,y) :- e(x,y).");
        assert!(find_homomorphism(&a, &c).is_none());
    }

    #[test]
    fn multi_atom_backtracking() {
        // `from` needs to pick the right e-atom for each conjunct.
        let from = r("p(x,y) :- e(x,a), e(a,b), e(b,y).");
        let to = r("p(x,y) :- e(x,u), e(u,v), e(v,y), e(y,x).");
        assert!(find_homomorphism(&from, &to).is_some());
    }

    #[test]
    fn repeated_variable_constraints_are_respected() {
        let from = r("p(x) :- e(x,w), f(w,w).");
        let to1 = r("p(x) :- e(x,u), f(u,u).");
        let to2 = r("p(x) :- e(x,u), f(u,v).");
        assert!(find_homomorphism(&from, &to1).is_some());
        assert!(find_homomorphism(&from, &to2).is_none());
    }
}
