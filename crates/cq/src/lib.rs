//! Conjunctive-query theory for the `linrec` workspace.
//!
//! Linear recursive rules are compared through their *underlying
//! nonrecursive rules* — ordinary conjunctive queries. This crate provides
//! the classical machinery the paper builds on:
//!
//! * **homomorphisms** between rules ([`find_homomorphism`]),
//! * **containment** and **equivalence** (Chandra–Merlin; [`contains`],
//!   [`equivalent`]) — the paper's partial order `≤` on operators,
//! * **minimization** to the unique core ([`minimize()`](minimize::minimize)),
//! * **composition** `r₁r₂` and powers `rⁿ` of linear rules ([`compose()`](compose::compose),
//!   [`power`]) — the operator product of the paper's closed semi-ring,
//! * the **O(a log a) isomorphism test** of Lemma 5.4 for restricted rules
//!   ([`restricted_isomorphism`]),
//! * best-effort **canonical labeling** for cheap deduplication
//!   ([`canonicalize`]).
//!
//! # Example: commutativity by definition
//!
//! ```
//! use linrec_datalog::parse_linear_rule;
//! use linrec_cq::{compose, linear_equivalent};
//!
//! // The two linear forms of transitive closure (paper, Example 5.2).
//! let up = parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
//! let dn = parse_linear_rule("p(x,y) :- p(w,y), q(x,w).").unwrap();
//! let a = compose(&up, &dn).unwrap();
//! let b = compose(&dn, &up).unwrap();
//! assert!(linear_equivalent(&a, &b)); // they commute
//! ```

#![warn(missing_docs)]

pub mod canonical;
pub mod compose;
pub mod containment;
pub mod homomorphism;
pub mod isomorphism;
pub mod minimize;

pub use canonical::{canonicalize, canonicalize_linear};
pub use compose::{compose, compose_aligned, power, power_minimized, PowerSequence};
pub use containment::{contains, equivalent, linear_contains, linear_equivalent};
pub use homomorphism::{apply_atom, apply_rule, apply_term, find_homomorphism, Subst};
pub use isomorphism::{
    has_unique_body_preds, linear_restricted_isomorphic, restricted_isomorphism,
};
pub use minimize::{dedup_atoms, minimize, minimize_linear};
