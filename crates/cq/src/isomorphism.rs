//! Fast isomorphism test for restricted rules (Lemma 5.4).
//!
//! For range-restricted rules with no repeated variables in the consequent
//! and no repeated nonrecursive predicates in the antecedent, equivalence
//! coincides with isomorphism, and because every predicate occurs at most
//! once per antecedent the candidate mapping is forced: pair the atoms by
//! predicate and read the variable map off the paired argument positions.
//! The whole test is O(a·log a) in the number of argument positions.

use linrec_datalog::hash::FastMap;
use linrec_datalog::{LinearRule, Rule, Symbol, Term, Var};

/// Check the preconditions of Lemma 5.4 for a (possibly underlying) rule:
/// every body predicate symbol occurs at most once.
pub fn has_unique_body_preds(rule: &Rule) -> bool {
    let mut seen: Vec<Symbol> = Vec::with_capacity(rule.body.len());
    for a in &rule.body {
        if seen.contains(&a.pred) {
            return false;
        }
        seen.push(a.pred);
    }
    true
}

/// Decide isomorphism of two rules in which every body predicate occurs at
/// most once and the consequents are identical with distinct variables.
/// Returns the witnessing variable bijection (identity on distinguished
/// variables) if the rules are isomorphic.
///
/// Returns `None` both when the rules are not isomorphic and when the
/// preconditions fail; use [`has_unique_body_preds`] to distinguish.
pub fn restricted_isomorphism(r1: &Rule, r2: &Rule) -> Option<FastMap<Var, Var>> {
    if r1.head != r2.head {
        return None;
    }
    if !has_unique_body_preds(r1) || !has_unique_body_preds(r2) {
        return None;
    }
    if r1.body.len() != r2.body.len() {
        return None;
    }

    // Step 1 (Lemma 5.4): same predicate sets, paired by sorting.
    let mut a1: Vec<&linrec_datalog::Atom> = r1.body.iter().collect();
    let mut a2: Vec<&linrec_datalog::Atom> = r2.body.iter().collect();
    a1.sort_by_key(|a| a.pred.as_str());
    a2.sort_by_key(|a| a.pred.as_str());

    // Step 2: read f off the paired argument positions; check it is a
    // well-defined injection fixing the distinguished variables.
    let distinguished: linrec_datalog::hash::FastSet<Var> = r1.head.vars().collect();
    let mut f: FastMap<Var, Var> = FastMap::default();
    let mut image: FastMap<Var, Var> = FastMap::default();
    for (x, y) in a1.iter().zip(a2.iter()) {
        if x.pred != y.pred || x.arity() != y.arity() {
            return None;
        }
        for (&tx, &ty) in x.terms.iter().zip(y.terms.iter()) {
            match (tx, ty) {
                (Term::Const(cx), Term::Const(cy)) if cx == cy => {}
                (Term::Var(vx), Term::Var(vy)) => {
                    if distinguished.contains(&vx) && vx != vy {
                        return None;
                    }
                    if let Some(&prev) = f.get(&vx) {
                        if prev != vy {
                            return None;
                        }
                    } else {
                        f.insert(vx, vy);
                    }
                    if let Some(&pre) = image.get(&vy) {
                        if pre != vx {
                            return None; // not injective
                        }
                    } else {
                        image.insert(vy, vx);
                    }
                }
                _ => return None,
            }
        }
    }
    Some(f)
}

/// [`restricted_isomorphism`] lifted to linear rules via their underlying
/// nonrecursive rules.
pub fn linear_restricted_isomorphic(r1: &LinearRule, r2: &LinearRule) -> bool {
    restricted_isomorphism(&r1.underlying(), &r2.underlying()).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use linrec_datalog::{parse_linear_rule, parse_rule};

    fn r(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn detects_renamed_copy() {
        let a = r("p(x,y) :- e(x,w), f(w,y).");
        let b = r("p(x,y) :- e(x,u), f(u,y).");
        let f = restricted_isomorphism(&a, &b).unwrap();
        assert_eq!(f[&Var::new("w")], Var::new("u"));
        assert_eq!(f[&Var::new("x")], Var::new("x"));
    }

    #[test]
    fn distinguishes_structure() {
        let a = r("p(x,y) :- e(x,w), f(w,y).");
        let b = r("p(x,y) :- e(x,w), f(y,w).");
        assert!(restricted_isomorphism(&a, &b).is_none());
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn rejects_noninjective_pairings() {
        let a = r("p(x) :- e(x,u), f(x,v).");
        let b = r("p(x) :- e(x,w), f(x,w).");
        // u and v would both map to w: not an isomorphism; and indeed the
        // rules are inequivalent in this direction-free sense? b ≤ a holds
        // but a ≤ b does not.
        assert!(restricted_isomorphism(&a, &b).is_none());
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn agrees_with_equivalence_on_restricted_rules() {
        let cases = [
            ("p(x,y) :- e(x,w), f(w,y).", "p(x,y) :- f(v,y), e(x,v)."),
            ("p(x,y) :- e(x,y).", "p(x,y) :- e(x,y)."),
            ("p(x,y) :- e(x,w).", "p(x,y) :- e(w,x)."),
            ("p(x,y) :- e(x,x).", "p(x,y) :- e(x,y)."),
        ];
        for (s1, s2) in cases {
            let (a, b) = (r(s1), r(s2));
            assert_eq!(
                restricted_isomorphism(&a, &b).is_some(),
                equivalent(&a, &b),
                "{s1} vs {s2}"
            );
        }
    }

    #[test]
    fn repeated_predicates_are_rejected() {
        let a = r("p(x) :- e(x,u), e(u,x).");
        assert!(!has_unique_body_preds(&a));
        assert!(restricted_isomorphism(&a, &a.clone()).is_none());
    }

    #[test]
    fn linear_rules_compare_through_underlying() {
        let a = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let b = parse_linear_rule("p(x,y) :- p(x,w), e(w,y).").unwrap();
        assert!(linear_restricted_isomorphic(&a, &b));
        let c = parse_linear_rule("p(x,y) :- p(z,y), e(x,z).").unwrap();
        assert!(!linear_restricted_isomorphic(&a, &c));
    }

    #[test]
    fn different_heads_never_isomorphic() {
        let a = r("p(x,y) :- e(x,y).");
        let b = r("p(y,x) :- e(x,y).");
        assert!(restricted_isomorphism(&a, &b).is_none());
    }
}
