//! Composition and powers of linear recursive rules.
//!
//! The composite `r₁r₂` (paper, Section 5) resolves the consequent of `r₂`
//! with the recursive literal in the antecedent of `r₁`: operationally,
//! `(r₁r₂)(P) = r₁(r₂(P))` — first expand by `r₂`, then by `r₁`. The paper's
//! `g₁₂` function is realized by substituting `h₁(x)` for every distinguished
//! variable `x` of `r₂` and keeping (fresh copies of) its nondistinguished
//! variables.

use crate::homomorphism::Subst;
use crate::minimize::{dedup_atoms, minimize_linear};
use linrec_datalog::hash::FastMap;
use linrec_datalog::{Atom, LinearRule, RuleError, Term};

/// Compose two linear rules with the same consequent: `r1 ∘ r2` (apply `r2`
/// first). Duplicate body atoms created by the composition are removed.
///
/// Fails if the rules do not share their consequent (align with
/// [`LinearRule::align_consequent`] first if needed).
pub fn compose(r1: &LinearRule, r2: &LinearRule) -> Result<LinearRule, RuleError> {
    if r1.head() != r2.head() {
        return Err(RuleError::ConsequentMismatch);
    }
    if r1.head().terms.iter().any(|t| !t.is_var()) {
        return Err(RuleError::ConstantInHead);
    }
    // The paper assumes distinct consequent variables (h must be a function).
    {
        let mut seen = linrec_datalog::hash::FastSet::default();
        for v in r1.head().vars() {
            if !seen.insert(v) {
                return Err(RuleError::RepeatedHeadVars { var: v.name() });
            }
        }
    }
    // Fresh copies of r2's nondistinguished variables so the two rules share
    // none (standing assumption of Section 5).
    let r2 = r2.freshen_nondistinguished();

    // g₁₂: distinguished x ↦ h₁(x); nondistinguished z ↦ z.
    let mut g: Subst = FastMap::default();
    for (pos, t) in r2.head().terms.iter().enumerate() {
        let x = t.as_var().expect("head vars checked above");
        g.insert(x, r1.rec_atom().terms[pos]);
    }
    let sub = |a: &Atom| -> Atom { a.map_vars(|v| g.get(&v).copied().unwrap_or(Term::Var(v))) };

    let rec = sub(r2.rec_atom());
    let mut nonrec: Vec<Atom> = r1.nonrec_atoms().to_vec();
    nonrec.extend(r2.nonrec_atoms().iter().map(sub));

    let composed = LinearRule::from_parts(r1.head().clone(), rec, nonrec)?;
    // Conjunction is idempotent: drop duplicate atoms.
    let deduped = dedup_atoms(&composed.to_rule());
    LinearRule::from_rule(&deduped)
}

/// The `n`-th composition power of `r` (`n ≥ 1`). `r¹ = r`.
pub fn power(r: &LinearRule, n: usize) -> Result<LinearRule, RuleError> {
    assert!(
        n >= 1,
        "power requires n >= 1 (r⁰ is the identity operator)"
    );
    let mut acc = r.clone();
    for _ in 1..n {
        acc = compose(&acc, r)?;
    }
    Ok(acc)
}

/// The `n`-th power with minimization after every composition step. Keeps
/// intermediate rules small; the result is equivalent to [`power`].
pub fn power_minimized(r: &LinearRule, n: usize) -> Result<LinearRule, RuleError> {
    assert!(n >= 1, "power requires n >= 1");
    let mut acc = minimize_linear(r);
    for _ in 1..n {
        acc = minimize_linear(&compose(&acc, r)?);
    }
    Ok(acc)
}

/// Lazily yields `r¹, r², r³, …` with minimization at each step.
pub struct PowerSequence {
    base: LinearRule,
    current: Option<LinearRule>,
}

impl PowerSequence {
    /// Start the sequence for `r`.
    pub fn new(r: &LinearRule) -> PowerSequence {
        PowerSequence {
            base: r.clone(),
            current: None,
        }
    }
}

impl Iterator for PowerSequence {
    type Item = LinearRule;

    fn next(&mut self) -> Option<LinearRule> {
        let next = match &self.current {
            None => minimize_linear(&self.base),
            Some(prev) => minimize_linear(&compose(prev, &self.base).ok()?),
        };
        self.current = Some(next.clone());
        Some(next)
    }
}

/// Substitute a rule's variables so its head equals `template`'s and compose;
/// convenience for rules written with different head variable names.
pub fn compose_aligned(r1: &LinearRule, r2: &LinearRule) -> Result<LinearRule, RuleError> {
    let r2 = r2.align_consequent(r1.head())?;
    compose(r1, &r2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::linear_equivalent;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn tc_composition_matches_paper_example_5_2() {
        // r1: P(x,y) :- P(x,z) ∧ Q(z,y);  r2: P(x,y) :- P(w,y) ∧ Q(x,w).
        let r1 = lr("p(x,y) :- p(x,z), q(z,y).");
        let r2 = lr("p(x,y) :- p(w,y), q(x,w).");
        // Both composites equal P(x,y) :- P(w,z) ∧ Q(x,w) ∧ Q(z,y).
        let c12 = compose(&r1, &r2).unwrap();
        let c21 = compose(&r2, &r1).unwrap();
        let expected = lr("p(x,y) :- p(w,z), q(x,w), q(z,y).");
        assert!(linear_equivalent(&c12, &expected));
        assert!(linear_equivalent(&c21, &expected));
        assert!(linear_equivalent(&c12, &c21));
    }

    #[test]
    fn composition_is_associative_up_to_equivalence() {
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(x,y) :- p(w,y), q(x,w).");
        let c = lr("p(x,y) :- p(x,z), r(z,y).");
        let left = compose(&compose(&a, &b).unwrap(), &c).unwrap();
        let right = compose(&a, &compose(&b, &c).unwrap()).unwrap();
        assert!(linear_equivalent(&left, &right));
    }

    #[test]
    fn power_grows_walks() {
        let r = lr("p(x,y) :- p(x,z), q(z,y).");
        let r3 = power(&r, 3).unwrap();
        // r³: P(x,y) :- P(x,z₃) ∧ Q(z₃,z₂) ∧ Q(z₂,z₁) ∧ Q(z₁,y)-ish: 3 q-atoms.
        assert_eq!(r3.nonrec_atoms().len(), 3);
        assert!(linear_equivalent(&power(&r, 1).unwrap(), &r));
    }

    #[test]
    fn power_minimized_equivalent_to_power() {
        let r = lr("p(x,y) :- p(x,z), q(z,y).");
        for n in 1..5 {
            let a = power(&r, n).unwrap();
            let b = power_minimized(&r, n).unwrap();
            assert!(linear_equivalent(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn persistent_rule_powers_collapse() {
        // C from Example 6.1: buys(x,y) :- buys(x,y) ∧ cheap(y): C² = C.
        let c = lr("buys(x,y) :- buys(x,y), cheap(y).");
        let c2 = compose(&c, &c).unwrap();
        assert!(linear_equivalent(&c, &c2));
        // With dedup, even syntactically: one cheap atom remains.
        assert_eq!(c2.nonrec_atoms().len(), 1);
    }

    #[test]
    fn composes_only_same_consequent() {
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(u,v) :- p(u,w), q(w,v).");
        assert!(compose(&a, &b).is_err());
        assert!(compose_aligned(&a, &b).is_ok());
    }

    #[test]
    fn power_sequence_yields_minimized_powers() {
        let r = lr("p(x,y) :- p(x,z), q(z,y).");
        let seq: Vec<LinearRule> = PowerSequence::new(&r).take(3).collect();
        assert_eq!(seq[0].nonrec_atoms().len(), 1);
        assert_eq!(seq[1].nonrec_atoms().len(), 2);
        assert_eq!(seq[2].nonrec_atoms().len(), 3);
    }

    #[test]
    fn example_5_4_composites_commute() {
        // Rules commute although Theorem 5.1's condition fails.
        let r1 = lr("p(x,y) :- p(y,w), q(x).");
        let r2 = lr("p(x,y) :- p(u,v), q(x), q(y).");
        let c12 = compose(&r1, &r2).unwrap();
        let c21 = compose(&r2, &r1).unwrap();
        assert!(linear_equivalent(&c12, &c21));
    }

    #[test]
    fn nondistinguished_variables_do_not_leak_between_factors() {
        // Both rules use the same nondistinguished name `z`; composition must
        // keep the two z's distinct.
        let r1 = lr("p(x,y) :- p(x,z), a(z,y).");
        let r2 = lr("p(x,y) :- p(x,z), b(z,y).");
        let c = compose(&r1, &r2).unwrap();
        // Expected: p(x,y) :- p(x,z'), b(z',z), a(z,y): a chain, 2 distinct
        // intermediate variables.
        let expected = lr("p(x,y) :- p(x,u), b(u,z), a(z,y).");
        assert!(linear_equivalent(&c, &expected));
    }
}
