//! Commutativity at higher powers (paper §7, last future-work item:
//! *"examine ways to take advantage of commutativity appearing in some
//! higher power of an operator, as in the case of recursive redundancy"*).
//!
//! Two operators may fail to commute while some of their powers do —
//! Example 6.2's `B` and `C` commute only as `B¹` and `C²` (via `A² = BC²`).
//! If `BⁱCʲ = CʲBⁱ`, then `(Bⁱ + Cʲ)* = (Bⁱ)*(Cʲ)*` by the ordinary
//! decomposition theorem applied to the composed operators, which yields a
//! decomposition of mixed sums of high powers; combined with
//! `A* = (Σ_{n<i} Aⁿ)(Aⁱ)*`, power-level commutativity still buys
//! processing structure for `A = B + C` in special cases.
//!
//! This module provides the *search* for such witnesses.

use crate::commutativity::commute_by_definition;
use linrec_cq::power;
use linrec_datalog::{LinearRule, RuleError};

/// A witness that `r₁ⁱ` and `r₂ʲ` commute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerCommutation {
    /// Exponent of the first rule.
    pub i: usize,
    /// Exponent of the second rule.
    pub j: usize,
}

/// Find the smallest (by `i + j`, then `i`) pair of exponents
/// `1 ≤ i, j ≤ max_exp` such that `r₁ⁱ` and `r₂ʲ` commute. `(1, 1)` is
/// plain commutativity.
pub fn powers_commute(
    r1: &LinearRule,
    r2: &LinearRule,
    max_exp: usize,
) -> Result<Option<PowerCommutation>, RuleError> {
    let r2 = r2.align_consequent(r1.head())?;
    let mut p1: Vec<LinearRule> = Vec::with_capacity(max_exp);
    let mut p2: Vec<LinearRule> = Vec::with_capacity(max_exp);
    for e in 1..=max_exp {
        p1.push(power(r1, e)?);
        p2.push(power(&r2, e)?);
    }
    let mut pairs: Vec<(usize, usize)> = (1..=max_exp)
        .flat_map(|i| (1..=max_exp).map(move |j| (i, j)))
        .collect();
    pairs.sort_by_key(|&(i, j)| (i + j, i));
    for (i, j) in pairs {
        if commute_by_definition(&p1[i - 1], &p2[j - 1])? {
            return Ok(Some(PowerCommutation { i, j }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn plain_commutativity_is_one_one() {
        let up = lr("p(x,y) :- p(x,z), q(z,y).");
        let down = lr("p(x,y) :- p(w,y), q(x,w).");
        assert_eq!(
            powers_commute(&up, &down, 3).unwrap(),
            Some(PowerCommutation { i: 1, j: 1 })
        );
    }

    #[test]
    fn example_6_2_b_and_c_commute_at_power_two() {
        // B and C from Example 6.2: BC ≠ CB but B¹ commutes with C².
        let rule = lr("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).");
        let dec =
            crate::redundancy::decomposition_for_pred(&rule, linrec_datalog::Symbol::new("r"), 8)
                .unwrap()
                .unwrap();
        // dec.b is built on A² (so it pairs with C²); pit it against C.
        let w = powers_commute(&dec.b, &dec.c, 3).unwrap().unwrap();
        assert_eq!((w.i, w.j), (1, 2));
        // Sanity: B and C¹ do not commute.
        assert!(!commute_by_definition(&dec.b, &dec.c).unwrap());
    }

    #[test]
    fn permutation_rules_commute_at_cycle_length() {
        // r1 rotates a 3-cycle; r2 swaps two of its elements with an
        // appendage... simpler: two rotations of coprime structure: a
        // 2-swap and a 3-rotation on disjoint-but-interleaved columns
        // commute only when the swap is squared away.
        let r1 = lr("p(a,b,c) :- p(b,a,c), q(c).");
        let r2 = lr("p(a,b,c) :- p(b,c,a).");
        // r1 swaps (a b) keeping c linked; r2 rotates (a b c): these do not
        // commute at (1,1); the rotation cubed is the identity, so (1,3)
        // commutes.
        assert!(!commute_by_definition(&r1, &r2).unwrap());
        let w = powers_commute(&r1, &r2, 3).unwrap().unwrap();
        assert_eq!((w.i, w.j), (1, 3));
    }

    #[test]
    fn non_commuting_at_any_small_power() {
        let r1 = lr("p(x,y) :- p(x,z), a(z,y).");
        let r2 = lr("p(x,y) :- p(x,z), b(z,y).");
        assert_eq!(powers_commute(&r1, &r2, 3).unwrap(), None);
    }
}
