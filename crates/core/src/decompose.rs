//! Star-decomposition planning.
//!
//! Given `A = A₁ + … + A_n`, the paper's results yield decompositions of
//! `A*` into products of smaller stars:
//!
//! * if all pairs commute, `A* = A₁* A₂* … A_n*` (§3, §4.1 remark);
//! * more generally (§7 "partial commutativity", implemented here as an
//!   extension): cluster the operators so that **every cross-cluster pair
//!   commutes**; then `A* = (ΣC₁)* (ΣC₂)* …` with one star per cluster.
//!   Clusters are the connected components of the *non*-commutativity
//!   graph, so the plan is canonical and always exists (worst case: one
//!   cluster = no decomposition).
//!
//! For two operators the planner also recognizes the one-sided
//! semi-commutation certificate `CB ≤ BᵏCˡ` (§3, \[13\]), which fixes the
//! order `B* C*`.

use crate::algebra::semi_commute;
use crate::commutativity::commute_by_definition;
use crate::exact::{commutes_exact, is_restricted_pair, ExactOutcome};
use linrec_datalog::{LinearRule, RuleError};

/// How a pair of operators relates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// They commute (`BC = CB`).
    Commute,
    /// `CB ≤ BᵏCˡ` for the recorded `(k, l)` — order-constrained
    /// decomposition (`B` must precede `C`).
    SemiCommute(usize, usize),
    /// No decomposition certificate found.
    None,
}

/// A star-decomposition plan for `(ΣAᵢ)*`.
#[derive(Debug, Clone)]
pub struct DecompositionPlan {
    /// Pairwise relations, `relations[i][j]` for `i < j`.
    pub relations: Vec<Vec<PairRelation>>,
    /// Clusters of operator indices; `(ΣAᵢ)* = Π_c (Σ_{i∈c} Aᵢ)*`, applied
    /// right-to-left (the rightmost cluster is applied to the input first —
    /// any order is valid since clusters commute pairwise).
    pub clusters: Vec<Vec<usize>>,
}

impl DecompositionPlan {
    /// True iff the plan actually splits the star (more than one cluster).
    pub fn is_decomposed(&self) -> bool {
        self.clusters.len() > 1
    }

    /// True iff every operator is its own cluster.
    pub fn is_fully_decomposed(&self) -> bool {
        self.clusters.iter().all(|c| c.len() == 1)
    }
}

/// Decide whether a pair commutes, preferring the O(a log a) exact test on
/// the restricted class and falling back to the definition.
pub fn pair_commutes(a: &LinearRule, b: &LinearRule) -> Result<bool, RuleError> {
    if is_restricted_pair(a, b) {
        match commutes_exact(a, b) {
            Ok(ExactOutcome::Commute) => return Ok(true),
            Ok(ExactOutcome::DoNotCommute(_)) => return Ok(false),
            Err(_) => {}
        }
    }
    commute_by_definition(a, b)
}

/// Compute a decomposition plan for `rules` (all sharing a consequent after
/// alignment). `semi_exp` bounds the exponent search for two-operator
/// semi-commutation certificates (0 disables it).
#[allow(clippy::needless_range_loop)] // pairwise matrix indexing
pub fn plan_decomposition(
    rules: &[LinearRule],
    semi_exp: usize,
) -> Result<DecompositionPlan, RuleError> {
    let n = rules.len();
    let head = rules
        .first()
        .ok_or(RuleError::ConsequentMismatch)?
        .head()
        .clone();
    let aligned: Vec<LinearRule> = rules
        .iter()
        .map(|r| r.align_consequent(&head))
        .collect::<Result<_, _>>()?;

    let mut relations: Vec<Vec<PairRelation>> = vec![vec![PairRelation::None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let rel = if pair_commutes(&aligned[i], &aligned[j])? {
                PairRelation::Commute
            } else if semi_exp > 0 {
                // Try CB ≤ BᵏCˡ in both roles.
                if let Some((k, l)) = semi_commute(&aligned[i], &aligned[j], semi_exp)? {
                    PairRelation::SemiCommute(k, l)
                } else {
                    PairRelation::None
                }
            } else {
                PairRelation::None
            };
            relations[i][j] = rel;
            relations[j][i] = match rel {
                // Semi-commutation is order-directed: record it only at
                // [i][j] meaning "i before j"; the mirror entry is None.
                PairRelation::SemiCommute(_, _) => PairRelation::None,
                other => other,
            };
        }
    }

    // Clusters: connected components of the non-commuting graph.
    let mut uf = linrec_alpha::UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let commuting = relations[i][j] == PairRelation::Commute;
            if !commuting {
                uf.union(i, j);
            }
        }
    }
    let clusters = uf.groups();

    Ok(DecompositionPlan {
        relations,
        clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn fully_commuting_pair_fully_decomposes() {
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(x,y) :- p(w,y), q(x,w)."),
        ];
        let plan = plan_decomposition(&rules, 0).unwrap();
        assert!(plan.is_fully_decomposed());
        assert_eq!(plan.relations[0][1], PairRelation::Commute);
    }

    #[test]
    fn non_commuting_pair_stays_together() {
        let rules = [
            lr("p(x,y) :- p(x,z), a(z,y)."),
            lr("p(x,y) :- p(x,z), b(z,y)."),
        ];
        let plan = plan_decomposition(&rules, 0).unwrap();
        assert!(!plan.is_decomposed());
        assert_eq!(plan.clusters, vec![vec![0, 1]]);
    }

    #[test]
    fn three_operators_cluster_correctly() {
        // a and b expand the same (right) side with different predicates:
        // they do not commute with each other but both commute with the
        // left-expanding c.
        let rules = [
            lr("p(x,y) :- p(x,z), a(z,y)."),
            lr("p(x,y) :- p(x,z), b(z,y)."),
            lr("p(x,y) :- p(w,y), c(x,w)."),
        ];
        let plan = plan_decomposition(&rules, 0).unwrap();
        assert_eq!(plan.clusters.len(), 2);
        let mut sizes: Vec<usize> = plan.clusters.iter().map(|c| c.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2]);
        assert_eq!(plan.relations[0][2], PairRelation::Commute);
        assert_eq!(plan.relations[1][2], PairRelation::Commute);
        assert_eq!(plan.relations[0][1], PairRelation::None);
    }

    #[test]
    fn semi_commutation_is_detected_when_enabled() {
        // B adds a filter on the *moving* column: B and C do not commute
        // (the filter lands at different walk depths), but CB ≤ C², so
        // (B+C)* = B*C* still holds by the generalized condition of [13].
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y), t(y)."),
            lr("p(x,y) :- p(x,z), q(z,y)."),
        ];
        let plan = plan_decomposition(&rules, 2).unwrap();
        assert_eq!(plan.relations[0][1], PairRelation::SemiCommute(0, 2));
    }

    #[test]
    fn mutual_commutativity_of_many_filters() {
        let rules = [
            lr("p(x,y,z) :- p(x,y,z), f1(x)."),
            lr("p(x,y,z) :- p(x,y,z), f2(y)."),
            lr("p(x,y,z) :- p(x,y,z), f3(z)."),
        ];
        let plan = plan_decomposition(&rules, 0).unwrap();
        assert!(plan.is_fully_decomposed());
        assert_eq!(plan.clusters.len(), 3);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(plan_decomposition(&[], 0).is_err());
    }
}
