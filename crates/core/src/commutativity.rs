//! Commutativity by definition (paper, Section 5).
//!
//! Two rules `r₁`, `r₂` with the same consequent *commute* iff the two
//! composites `r₁r₂` and `r₂r₁` are equivalent conjunctive queries. This is
//! the ground-truth test: always correct, but it requires two NP-complete
//! equivalence checks on the composites — the very cost the paper's
//! syntactic conditions (Theorems 5.1–5.3) avoid.

use linrec_cq::{compose, linear_equivalent};
use linrec_datalog::{LinearRule, RuleError};

/// Decide commutativity by forming both composites and testing equivalence.
///
/// `r2` is aligned to `r1`'s consequent first (renaming its head variables
/// and freshening its nondistinguished ones), mirroring the paper's standing
/// assumptions that the rules share their consequent and no nondistinguished
/// variables.
pub fn commute_by_definition(r1: &LinearRule, r2: &LinearRule) -> Result<bool, RuleError> {
    let r2 = r2.align_consequent(r1.head())?;
    let c12 = compose(r1, &r2)?;
    let c21 = compose(&r2, r1)?;
    Ok(linear_equivalent(&c12, &c21))
}

/// The two composites themselves, for inspection (e.g. by examples and the
/// figure generator).
pub fn composites(r1: &LinearRule, r2: &LinearRule) -> Result<(LinearRule, LinearRule), RuleError> {
    let r2 = r2.align_consequent(r1.head())?;
    Ok((compose(r1, &r2)?, compose(&r2, r1)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn example_5_2_transitive_closure_commutes() {
        let up = lr("p(x,y) :- p(x,z), q(z,y).");
        let down = lr("p(x,y) :- p(w,y), q(x,w).");
        assert!(commute_by_definition(&up, &down).unwrap());
    }

    #[test]
    fn example_5_3_commutes() {
        let r1 = lr("p(x,y,z) :- p(u,y,z), q(x,y).");
        let r2 = lr("p(x,y,z) :- p(x,y,v), r(z,y).");
        assert!(commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn example_5_4_commutes_without_satisfying_the_condition() {
        let r1 = lr("p(x,y) :- p(y,w), q(x).");
        let r2 = lr("p(x,y) :- p(u,v), q(x), q(y).");
        assert!(commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn non_commuting_pair() {
        // Both expand on the same side with different predicates: order
        // matters.
        let r1 = lr("p(x,y) :- p(x,z), a(z,y).");
        let r2 = lr("p(x,y) :- p(x,z), b(z,y).");
        assert!(!commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn rule_commutes_with_itself() {
        let r = lr("p(x,y) :- p(x,z), e(z,y).");
        assert!(commute_by_definition(&r, &r).unwrap());
    }

    #[test]
    fn alignment_is_automatic() {
        let up = lr("p(x,y) :- p(x,z), q(z,y).");
        let down = lr("p(a,b) :- p(w,b), q(a,w).");
        assert!(commute_by_definition(&up, &down).unwrap());
    }

    #[test]
    fn example_6_3_products_do_not_commute() {
        // BC² ≠ C²B in Example 6.3.
        let b = lr("p(w,x,y,z) :- p(w,x,y,u1), q(x,u1), s(u1,u2), q(y,u2), s(u2,z).");
        let c2 = lr("p(w,x,y,z) :- p(w,x,w,z), r(w,x), r(x,y).");
        assert!(!commute_by_definition(&b, &c2).unwrap());
    }

    #[test]
    fn composites_are_inspectable() {
        let up = lr("p(x,y) :- p(x,z), q(z,y).");
        let down = lr("p(x,y) :- p(w,y), q(x,w).");
        let (c12, c21) = composites(&up, &down).unwrap();
        assert_eq!(c12.nonrec_atoms().len(), 2);
        assert_eq!(c21.nonrec_atoms().len(), 2);
    }
}
