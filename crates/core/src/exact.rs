//! The exact (necessary *and* sufficient) commutativity test for the
//! restricted class (Theorems 5.2 and 5.3).
//!
//! For **range-restricted** rules with **no repeated consequent variables**
//! and **no repeated nonrecursive predicates** (after eliminating
//! equalities), the Theorem 5.1 condition characterizes commutativity
//! exactly and can be decided in `O(a log a)` time, where `a` is the total
//! number of argument positions: the only potentially expensive step —
//! equivalence of augmented bridges — degenerates to the forced-pairing
//! isomorphism of Lemma 5.4.

use crate::sufficient::{PairAnalysis, VarCondition};
use linrec_datalog::{LinearRule, RuleError, Var};

/// Why a rule pair is outside the restricted class of Theorem 5.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restriction {
    /// A rule mentions constants.
    Constants,
    /// A rule is not range-restricted (the offending variable).
    NotRangeRestricted(&'static str),
    /// A rule repeats a variable in its consequent.
    RepeatedHeadVars(&'static str),
    /// A rule repeats a nonrecursive predicate in its antecedent.
    RepeatedNonrecPreds,
}

/// Check a single rule against the restricted class, returning every
/// violation. Equality atoms are eliminated before the check, as the paper
/// prescribes.
pub fn restricted_class_violations(rule: &LinearRule) -> Vec<Restriction> {
    let rule = match rule.eliminate_equalities() {
        Ok(r) => r,
        Err(_) => return vec![Restriction::Constants],
    };
    let mut out = Vec::new();
    if !rule.is_constant_free() {
        out.push(Restriction::Constants);
    }
    if rule.has_repeated_head_vars() {
        let mut seen = linrec_datalog::hash::FastSet::default();
        if let Some(v) = rule.head_vars().into_iter().find(|&v| !seen.insert(v)) {
            out.push(Restriction::RepeatedHeadVars(v.name()));
        }
    }
    if !rule.is_range_restricted() {
        let body_vars: linrec_datalog::hash::FastSet<Var> = rule
            .rec_atom()
            .vars()
            .chain(rule.nonrec_atoms().iter().flat_map(|a| a.vars()))
            .collect();
        if let Some(v) = rule
            .head_vars()
            .into_iter()
            .find(|v| !body_vars.contains(v))
        {
            out.push(Restriction::NotRangeRestricted(v.name()));
        }
    }
    if rule.has_repeated_nonrec_preds() {
        out.push(Restriction::RepeatedNonrecPreds);
    }
    out
}

/// The outcome of the exact test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactOutcome {
    /// The rules commute (guaranteed, Theorem 5.2 "if").
    Commute,
    /// The rules do **not** commute (guaranteed, Theorem 5.2 "only if").
    /// The variables violating the condition are listed.
    DoNotCommute(Vec<Var>),
}

/// Decide commutativity of two restricted-class rules exactly
/// (Theorem 5.2), using the Theorem 5.3 algorithm structure: classify
/// variables, decompose into bridges, compare augmented bridges with the
/// Lemma 5.4 isomorphism.
///
/// Errors if either rule is outside the restricted class — use
/// [`crate::commutativity::commute_by_definition`] (always correct, slower)
/// or [`crate::sufficient::commutes_sufficient`] (sound, incomplete) there.
pub fn commutes_exact(r1: &LinearRule, r2: &LinearRule) -> Result<ExactOutcome, RuleError> {
    for rule in [r1, r2] {
        let violations = restricted_class_violations(rule);
        if let Some(first) = violations.first() {
            return Err(match first {
                Restriction::Constants => RuleError::HasConstants,
                Restriction::NotRangeRestricted(v) => RuleError::NotRangeRestricted { var: v },
                Restriction::RepeatedHeadVars(v) => RuleError::RepeatedHeadVars { var: v },
                Restriction::RepeatedNonrecPreds => RuleError::Parse(
                    "rule repeats a nonrecursive predicate; outside the Theorem 5.2 class".into(),
                ),
            });
        }
    }
    let r1 = r1.eliminate_equalities()?;
    let r2 = r2.eliminate_equalities()?;
    // Restricted-class rules are their own cores (no atom can fold onto
    // another: every body predicate occurs once), so no minimization is
    // needed — matching the O(a log a) bound.
    let pa = PairAnalysis::build(&r1, &r2, false)?;
    let per_var = pa.check_conditions(&mut |a, b| {
        linrec_cq::restricted_isomorphism(&a.underlying(), &b.underlying()).is_some()
    });
    let failing: Vec<Var> = per_var
        .iter()
        .filter(|(_, c)| *c == VarCondition::Fails)
        .map(|&(v, _)| v)
        .collect();
    Ok(if failing.is_empty() {
        ExactOutcome::Commute
    } else {
        ExactOutcome::DoNotCommute(failing)
    })
}

/// `true` iff both rules are in the restricted class of Theorem 5.2.
pub fn is_restricted_pair(r1: &LinearRule, r2: &LinearRule) -> bool {
    restricted_class_violations(r1).is_empty() && restricted_class_violations(r2).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commutativity::commute_by_definition;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn transitive_closure_pair_commutes() {
        let up = lr("p(x,y) :- p(x,z), q(z,y).");
        let down = lr("p(x,y) :- p(w,y), q(x,w).");
        assert_eq!(commutes_exact(&up, &down).unwrap(), ExactOutcome::Commute);
    }

    #[test]
    fn same_side_expansion_does_not_commute() {
        let r1 = lr("p(x,y) :- p(x,z), a(z,y).");
        let r2 = lr("p(x,y) :- p(x,z), b(z,y).");
        match commutes_exact(&r1, &r2).unwrap() {
            ExactOutcome::DoNotCommute(vars) => {
                assert_eq!(vars, vec![Var::new("y")]);
            }
            ExactOutcome::Commute => panic!("must not commute"),
        }
    }

    #[test]
    fn example_5_3_commutes_exactly() {
        let r1 = lr("p(x,y,z) :- p(u,y,z), q(x,y).");
        let r2 = lr("p(x,y,z) :- p(x,y,v), r(z,y).");
        assert_eq!(commutes_exact(&r1, &r2).unwrap(), ExactOutcome::Commute);
    }

    #[test]
    fn rejects_rules_outside_the_class() {
        // Example 5.4's second rule repeats predicate q.
        let r1 = lr("p(x,y) :- p(y,w), q(x).");
        let r2 = lr("p(x,y) :- p(u,v), q(x), q(y).");
        assert!(commutes_exact(&r1, &r2).is_err());
        assert!(!is_restricted_pair(&r1, &r2));
        // r1 alone is also not range-restricted? x appears in q(x): it is.
        // But p(x,y) :- p(y,w), q(x): y appears in the recursive atom: fine.
        assert!(restricted_class_violations(&r1).is_empty());
    }

    #[test]
    fn violations_are_specific() {
        let not_rr = lr("p(x,y) :- p(x,x), q(x).");
        assert!(matches!(
            restricted_class_violations(&not_rr).as_slice(),
            [Restriction::NotRangeRestricted("y")]
        ));
        let repeated_head = lr("p(x,x) :- p(x,y), q(y,x).");
        assert!(restricted_class_violations(&repeated_head)
            .iter()
            .any(|r| matches!(r, Restriction::RepeatedHeadVars(_))));
        let constants = lr("p(x,y) :- p(x,z), q(z,y,1).");
        assert_eq!(
            restricted_class_violations(&constants),
            vec![Restriction::Constants]
        );
    }

    #[test]
    fn equality_atoms_are_eliminated_before_the_class_check() {
        // After eliminating z = y the rule is a plain TC rule.
        let r = lr("p(x,y) :- p(x,z), q(z,w), =(w,y).");
        assert!(restricted_class_violations(&r).is_empty());
        let down = lr("p(x,y) :- p(w,y), q(x,w).");
        assert_eq!(commutes_exact(&r, &down).unwrap(), ExactOutcome::Commute);
    }

    #[test]
    fn exact_agrees_with_definition_on_restricted_samples() {
        let rules = [
            "p(x,y) :- p(x,z), q(z,y).",
            "p(x,y) :- p(w,y), q(x,w).",
            "p(x,y) :- p(x,z), r(z,y).",
            "p(x,y) :- p(y,x), q(x,y).",
            "p(x,y) :- p(x,y), s(x).",
            "p(x,y) :- p(x,y), t(y).",
            "p(x,y) :- p(w,z), q(x,w), r(z,y).",
        ];
        for s1 in rules {
            for s2 in rules {
                let (r1, r2) = (lr(s1), lr(s2));
                if !is_restricted_pair(&r1, &r2) {
                    continue;
                }
                let exact = commutes_exact(&r1, &r2).unwrap();
                let truth = commute_by_definition(&r1, &r2).unwrap();
                assert_eq!(
                    exact == ExactOutcome::Commute,
                    truth,
                    "disagreement on {s1} / {s2}"
                );
            }
        }
    }

    #[test]
    fn multi_persistent_cycles_exactly() {
        let r1 = lr("p(x,y,u,v) :- p(y,x,u,w), q(v,w).");
        let r2 = lr("p(x,y,u,v) :- p(y,x,w,v), r(u,w).");
        assert_eq!(commutes_exact(&r1, &r2).unwrap(), ExactOutcome::Commute);
        let r3 = lr("p(x,y,u,v) :- p(y,u,v,x), r(x,w).");
        // r3 rotates a 4-cycle (x is link); against r1 the cycles clash.
        match commutes_exact(&r1, &r3).unwrap() {
            ExactOutcome::DoNotCommute(_) => {}
            ExactOutcome::Commute => panic!("must not commute"),
        }
        assert!(!commute_by_definition(&r1, &r3).unwrap());
    }
}
