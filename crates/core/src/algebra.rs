//! The operator algebra of Section 2 and the decomposition identities of
//! Sections 3–4.
//!
//! Linear relational operators form a closed semi-ring with `+` (union),
//! `*` (composition) and the Kleene star `A* = Σ Aᵏ` (Theorem 2.1). In this
//! crate an operator is a **sum of linear rules** over the same consequent
//! ([`OperatorSum`]); products and containment checks reduce to the
//! conjunctive-query layer:
//!
//! * `Σᵢ aᵢ ≤ Σⱼ bⱼ` iff every `aᵢ` is contained in some `bⱼ`
//!   (Sagiv–Yannakakis: a CQ is contained in a union iff in one disjunct);
//! * `A·B = Σᵢⱼ aᵢ·bⱼ`.
//!
//! On top of that the module provides the paper's checkable identities:
//! the generalized decomposition condition `CB ≤ BᵏCˡ` with `k ∈ {0,1}` or
//! `l ∈ {0,1}` ([`semi_commute`], from \[13\], §3) and the Lassez–Maher
//! conditions (§3.2).

use linrec_cq::{compose, linear_contains};
use linrec_datalog::{Atom, LinearRule, RuleError};

/// A sum (union) of linear rules over the same recursive predicate; the
/// operator `A = A₁ + … + A_n` of the paper.
#[derive(Debug, Clone)]
pub struct OperatorSum {
    head: Atom,
    terms: Vec<LinearRule>,
}

impl OperatorSum {
    /// Build a sum, aligning every rule to the first rule's consequent.
    pub fn new(rules: &[LinearRule]) -> Result<OperatorSum, RuleError> {
        let first = rules.first().ok_or(RuleError::ConsequentMismatch)?;
        let head = first.head().clone();
        let mut terms = Vec::with_capacity(rules.len());
        for r in rules {
            terms.push(r.align_consequent(&head)?);
        }
        Ok(OperatorSum { head, terms })
    }

    /// The shared consequent.
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The summand rules.
    pub fn terms(&self) -> &[LinearRule] {
        &self.terms
    }

    /// Number of summands.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True iff the sum has no terms (the zero operator).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Operator product: `(A·B)P = A(BP)` — every pairwise composite.
    pub fn multiply(&self, other: &OperatorSum) -> Result<OperatorSum, RuleError> {
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for a in &self.terms {
            for b in &other.terms {
                let b = b.align_consequent(self.head())?;
                terms.push(compose(a, &b)?);
            }
        }
        Ok(OperatorSum {
            head: self.head.clone(),
            terms,
        })
    }

    /// Operator sum: `(A+B)P = AP ∪ BP`.
    pub fn add(&self, other: &OperatorSum) -> Result<OperatorSum, RuleError> {
        let mut terms = self.terms.clone();
        for t in &other.terms {
            terms.push(t.align_consequent(&self.head)?);
        }
        Ok(OperatorSum {
            head: self.head.clone(),
            terms,
        })
    }

    /// Containment `self ≤ other`: every summand of `self` is contained in
    /// some summand of `other` (CQ-in-union-of-CQs).
    pub fn contained_in(&self, other: &OperatorSum) -> bool {
        self.terms.iter().all(|a| {
            other.terms.iter().any(|b| {
                b.align_consequent(&self.head)
                    .map(|b| linear_contains(&b, a))
                    .unwrap_or(false)
            })
        })
    }

    /// Operator equality `self = other` (both containments).
    pub fn equals(&self, other: &OperatorSum) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }
}

/// The identity operator `1` for the given consequent: `P(x̄) :- P(x̄)`.
pub fn identity_operator(head: &Atom) -> LinearRule {
    LinearRule::from_parts(head.clone(), head.clone(), Vec::new()).expect("identity rule is linear")
}

/// Search for the generalized decomposition condition of Section 3 (\[13\]):
/// `CB ≤ BᵏCˡ` for some `k, l` with `k ∈ {0,1}` or `l ∈ {0,1}`, which
/// implies `(B+C)* = B*C*`. Returns the smallest witnessing `(k, l)` (by
/// `k+l`), searching exponents up to `max_exp`.
///
/// Commutativity is the special case `(k, l) = (1, 1)`.
pub fn semi_commute(
    b: &LinearRule,
    c: &LinearRule,
    max_exp: usize,
) -> Result<Option<(usize, usize)>, RuleError> {
    let c = c.align_consequent(b.head())?;
    let cb = compose(&c, b)?;
    let ident = identity_operator(b.head());

    // Powers b⁰..b^max, c⁰..c^max (b⁰ = c⁰ = 1).
    let mut b_pows: Vec<LinearRule> = vec![ident.clone()];
    let mut c_pows: Vec<LinearRule> = vec![ident];
    for i in 1..=max_exp {
        b_pows.push(compose(&b_pows[i - 1], b)?);
        c_pows.push(compose(&c_pows[i - 1], &c)?);
    }

    // Candidate (k, l) pairs with k ∈ {0,1} or l ∈ {0,1}, ordered by k+l so
    // the least witness is reported.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for k in 0..=max_exp {
        for l in 0..=max_exp {
            if k <= 1 || l <= 1 {
                candidates.push((k, l));
            }
        }
    }
    candidates.sort_by_key(|&(k, l)| (k + l, k));

    for (k, l) in candidates {
        // BᵏCˡ: apply Cˡ first.
        let bkcl = compose(&b_pows[k], &c_pows[l])?;
        if linear_contains(&bkcl, &cb) {
            return Ok(Some((k, l)));
        }
    }
    Ok(None)
}

/// Lassez–Maher (§3.2): `BC = CB = B + C` implies `(B+C)* = B* + C*`.
/// Checks the premise as operator equalities.
pub fn lassez_maher_sum_condition(b: &LinearRule, c: &LinearRule) -> Result<bool, RuleError> {
    let c_al = c.align_consequent(b.head())?;
    let bc = OperatorSum::new(&[compose(b, &c_al)?])?;
    let cb = OperatorSum::new(&[compose(&c_al, b)?])?;
    let sum = OperatorSum::new(&[b.clone(), c_al])?;
    Ok(bc.equals(&cb) && bc.equals(&sum))
}

/// Dong's condition (§3.2): `B*C* = C*B*` iff `(B+C)* = B*C* = C*B*`. The
/// premise involves stars; this helper checks the *finite certificate*
/// `BC = CB` (commutativity), which implies it. Exposed for the experiment
/// harness; the star-level identity itself is validated on data by the
/// engine crate.
pub fn commuting_certificate(b: &LinearRule, c: &LinearRule) -> Result<bool, RuleError> {
    crate::commutativity::commute_by_definition(b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn operator_sum_builds_and_aligns() {
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(u,v) :- p(w,v), q(u,w).");
        let s = OperatorSum::new(&[a.clone(), b]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.head(), a.head());
    }

    #[test]
    fn sum_containment_and_equality() {
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(x,y) :- p(w,y), q(x,w).");
        let ab = OperatorSum::new(&[a.clone(), b.clone()]).unwrap();
        let ba = OperatorSum::new(&[b, a.clone()]).unwrap();
        assert!(ab.equals(&ba));
        let just_a = OperatorSum::new(&[a]).unwrap();
        assert!(just_a.contained_in(&ab));
        assert!(!ab.contained_in(&just_a));
    }

    #[test]
    fn multiply_distributes_over_terms() {
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(x,y) :- p(w,y), q(x,w).");
        let s = OperatorSum::new(&[a, b]).unwrap();
        let prod = s.multiply(&s).unwrap();
        assert_eq!(prod.len(), 4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let one = identity_operator(a.head());
        let left = compose(&one, &a).unwrap();
        let right = compose(&a, &one).unwrap();
        assert!(linrec_cq::linear_equivalent(&left, &a));
        assert!(linrec_cq::linear_equivalent(&right, &a));
    }

    #[test]
    fn semi_commute_finds_commutativity_as_one_one() {
        let b = lr("p(x,y) :- p(x,z), q(z,y).");
        let c = lr("p(x,y) :- p(w,y), q(x,w).");
        assert_eq!(semi_commute(&b, &c, 2).unwrap(), Some((1, 1)));
    }

    #[test]
    fn semi_commute_absorption() {
        // C filters the persistent x column, so CB merely adds an atom to B:
        // CB ≤ B, witnessed by (k,l) = (1,0) — stronger than plain
        // commutativity (which also holds here).
        let b = lr("p(x,y) :- p(x,z), q(z,y).");
        let c = lr("p(x,y) :- p(x,y), s(x).");
        assert_eq!(semi_commute(&b, &c, 2).unwrap(), Some((1, 0)));
    }

    #[test]
    fn semi_commute_degenerate_absorb_into_c() {
        // B ≤ C (same rule with an extra filter): then CB ≤ C² with k=0.
        let c = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(x,y) :- p(x,z), q(z,y), s(x).");
        let witness = semi_commute(&b, &c, 2).unwrap();
        assert!(witness.is_some());
    }

    #[test]
    fn semi_commute_fails_for_incompatible_rules() {
        let b = lr("p(x,y) :- p(x,z), a(z,y).");
        let c = lr("p(x,y) :- p(x,z), b(z,y).");
        assert_eq!(semi_commute(&b, &c, 2).unwrap(), None);
    }

    #[test]
    fn lassez_maher_condition_on_idempotent_filters() {
        // B, C both filters on disjoint persistent columns: BC = CB but
        // BC ≠ B + C, so the Lassez–Maher premise fails...
        let b = lr("p(x,y) :- p(x,y), s(x).");
        let c = lr("p(x,y) :- p(x,y), t(y).");
        assert!(!lassez_maher_sum_condition(&b, &c).unwrap());
        // ...whereas B = C trivially satisfies BC = CB = B + C when B is
        // idempotent.
        let idem = lr("p(x,y) :- p(x,y), s(x).");
        assert!(lassez_maher_sum_condition(&idem, &idem.clone()).unwrap());
    }

    #[test]
    fn zero_operator_cases() {
        assert!(OperatorSum::new(&[]).is_err());
    }
}
