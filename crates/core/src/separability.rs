//! Naughton's separable recursions (paper §4.1 and §6.1).
//!
//! Two rules `r₁`, `r₂` with the same consequent are *separable* \[15\] if:
//!
//! 1. for every distinguished `x`, `hᵢ(x) = x` or `hᵢ(x)` is
//!    nondistinguished (`i = 1,2`);
//! 2. for every distinguished `x`, `x` and `hᵢ(x)` appear under
//!    nonrecursive predicates in `rᵢ` either both or neither;
//! 3. the sets of distinguished variables under nonrecursive predicates in
//!    `r₁` and `r₂` are equal or disjoint (the efficient separable
//!    algorithm needs *disjoint*, which is what [`is_separable`] requires);
//! 4. the subgraph of the α-graph of `rᵢ` induced by its static arcs is
//!    connected.
//!
//! Theorem 6.2: separable ⇒ commutative (strictly), so the separable
//! algorithm (Algorithm 4.1, implemented in `linrec-engine`) applies to the
//! larger commutative class via Theorem 4.1.

use linrec_alpha::AlphaGraph;
use linrec_datalog::hash::FastSet;
use linrec_datalog::{LinearRule, RuleError, Var};

/// The outcome of checking Naughton's four separability conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeparabilityReport {
    /// Condition 1 per rule.
    pub persistence_ok: [bool; 2],
    /// Condition 2 per rule.
    pub nonrec_pairing_ok: [bool; 2],
    /// Condition 3, disjoint variant (needed by the separable algorithm).
    pub nonrec_vars_disjoint: bool,
    /// Condition 3, equal variant (also allowed by the original
    /// definition).
    pub nonrec_vars_equal: bool,
    /// Condition 4 per rule.
    pub static_connected: [bool; 2],
}

impl SeparabilityReport {
    /// Naughton's definition (condition 3 in either variant).
    pub fn is_separable_definition(&self) -> bool {
        self.persistence_ok.iter().all(|&b| b)
            && self.nonrec_pairing_ok.iter().all(|&b| b)
            && (self.nonrec_vars_disjoint || self.nonrec_vars_equal)
            && self.static_connected.iter().all(|&b| b)
    }

    /// The variant the efficient separable algorithm needs (disjoint sets).
    pub fn is_separable_disjoint(&self) -> bool {
        self.persistence_ok.iter().all(|&b| b)
            && self.nonrec_pairing_ok.iter().all(|&b| b)
            && self.nonrec_vars_disjoint
            && self.static_connected.iter().all(|&b| b)
    }
}

fn nonrec_vars(rule: &LinearRule) -> FastSet<Var> {
    rule.nonrec_atoms().iter().flat_map(|a| a.vars()).collect()
}

fn condition1(rule: &LinearRule) -> bool {
    let distinguished = rule.distinguished();
    rule.head_vars().into_iter().all(|x| match rule.h_var(x) {
        Some(h) => h == x || !distinguished.contains(&h),
        None => true, // h(x) is a constant — excluded earlier
    })
}

fn condition2(rule: &LinearRule) -> bool {
    let under_nonrec = nonrec_vars(rule);
    rule.head_vars().into_iter().all(|x| match rule.h_var(x) {
        Some(h) => under_nonrec.contains(&x) == under_nonrec.contains(&h),
        None => true,
    })
}

fn condition4(graph: &AlphaGraph) -> bool {
    // Connectivity of the subgraph induced by static arcs.
    let arcs = graph.static_arcs();
    if arcs.is_empty() {
        return true; // vacuously connected
    }
    let mut nodes: Vec<Var> = Vec::new();
    let mut index = linrec_datalog::hash::FastMap::default();
    for a in arcs {
        for v in [a.from, a.to] {
            index.entry(v).or_insert_with(|| {
                nodes.push(v);
                nodes.len() - 1
            });
        }
    }
    let mut uf = linrec_alpha::UnionFind::new(nodes.len());
    for a in arcs {
        uf.union(index[&a.from], index[&a.to]);
    }
    uf.groups().len() == 1
}

/// Evaluate all four conditions for a pair of rules (aligned to the first
/// rule's consequent).
///
/// Errors on rules that are not range-restricted: the separability results
/// (Lemma 6.1, Theorem 6.2) are stated for range-restricted rules, and
/// without that premise separable-looking rules need not commute.
pub fn separability_report(
    r1: &LinearRule,
    r2: &LinearRule,
) -> Result<SeparabilityReport, RuleError> {
    for rule in [r1, r2] {
        if !rule.is_range_restricted() {
            let body_vars: FastSet<Var> = rule
                .rec_atom()
                .vars()
                .chain(rule.nonrec_atoms().iter().flat_map(|a| a.vars()))
                .collect();
            let var = rule
                .head_vars()
                .into_iter()
                .find(|v| !body_vars.contains(v))
                .expect("violating variable exists");
            return Err(RuleError::NotRangeRestricted { var: var.name() });
        }
    }
    let r2 = r2.align_consequent(r1.head())?;
    let g1 = AlphaGraph::new(r1)?;
    let g2 = AlphaGraph::new(&r2)?;
    let v1 = {
        let d = r1.distinguished();
        nonrec_vars(r1)
            .into_iter()
            .filter(|v| d.contains(v))
            .collect::<FastSet<Var>>()
    };
    let v2 = {
        let d = r2.distinguished();
        nonrec_vars(&r2)
            .into_iter()
            .filter(|v| d.contains(v))
            .collect::<FastSet<Var>>()
    };
    Ok(SeparabilityReport {
        persistence_ok: [condition1(r1), condition1(&r2)],
        nonrec_pairing_ok: [condition2(r1), condition2(&r2)],
        nonrec_vars_disjoint: v1.is_disjoint(&v2),
        nonrec_vars_equal: v1 == v2,
        static_connected: [condition4(&g1), condition4(&g2)],
    })
}

/// True iff the pair is separable in the (disjoint) sense required by the
/// efficient separable algorithm.
pub fn is_separable(r1: &LinearRule, r2: &LinearRule) -> Result<bool, RuleError> {
    Ok(separability_report(r1, r2)?.is_separable_disjoint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commutativity::commute_by_definition;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn canonical_up_down_pair_is_separable() {
        let up = lr("p(x,y) :- p(x,z), up(z,y).");
        let down = lr("p(x,y) :- p(w,y), down(x,w).");
        assert!(is_separable(&up, &down).unwrap());
    }

    #[test]
    fn same_column_pair_is_not_separable() {
        // Both rules touch the y column with nonrecursive predicates: the
        // distinguished-variable sets are equal, not disjoint.
        let a = lr("p(x,y) :- p(x,z), q(z,y).");
        let b = lr("p(x,y) :- p(x,z), r(z,y).");
        let rep = separability_report(&a, &b).unwrap();
        assert!(!rep.nonrec_vars_disjoint);
        assert!(rep.nonrec_vars_equal);
        assert!(!is_separable(&a, &b).unwrap());
    }

    #[test]
    fn example_5_3_commutes_but_is_not_separable() {
        // Theorem 6.2: commutativity is strictly more general. The paper
        // cites Example 5.3 as commutative rules violating conditions 2,3.
        let r1 = lr("p(x,y,z) :- p(u,y,z), q(x,y).");
        let r2 = lr("p(x,y,z) :- p(x,y,v), r(z,y).");
        let rep = separability_report(&r1, &r2).unwrap();
        assert!(!rep.is_separable_definition());
        assert!(commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn condition1_violated_by_permutation() {
        // h(x) = y (a different distinguished variable).
        let a = lr("p(x,y) :- p(y,x), q(x,w).");
        let b = lr("p(x,y) :- p(w,y), q2(x,w).");
        let rep = separability_report(&a, &b).unwrap();
        assert!(!rep.persistence_ok[0]);
    }

    #[test]
    fn condition2_violated_when_h_image_hidden() {
        // x under q, but h(x) = z is not under any nonrecursive predicate.
        let a = lr("p(x,y) :- p(z,y), q(x).");
        let b = lr("p(x,y) :- p(x,w), r(y,w).");
        let rep = separability_report(&a, &b).unwrap();
        assert!(!rep.nonrec_pairing_ok[0]);
    }

    #[test]
    fn condition4_disconnected_static_graph() {
        // Two unrelated static components in one rule.
        let a = lr("p(x,y,u) :- p(z,y,w), q(x,z), r(u,w).");
        let b = lr("p(x,y,u) :- p(x,w,u), s(y,w).");
        let rep = separability_report(&a, &b).unwrap();
        assert!(!rep.static_connected[0]);
        assert!(rep.static_connected[1]);
    }

    #[test]
    fn separable_implies_commutative_on_samples() {
        // Theorem 6.2 (checked exhaustively in the integration suite; spot
        // check here).
        let pairs = [
            ("p(x,y) :- p(x,z), up(z,y).", "p(x,y) :- p(w,y), down(x,w)."),
            (
                "sg(x,y) :- sg(u,v), par(x,u), par2(y,v).",
                "sg(x,y) :- sg(x,y), flat(x0,x0).",
            ),
        ];
        for (s1, s2) in pairs {
            let (a, b) = (lr(s1), lr(s2));
            if is_separable(&a, &b).unwrap() {
                assert!(
                    commute_by_definition(&a, &b).unwrap(),
                    "Theorem 6.2 violated on {s1} / {s2}"
                );
            }
        }
    }
}
