//! Human-readable analysis reports, used by the examples and the figure
//! generator.

use crate::commutativity::{commute_by_definition, composites};
use crate::exact::{commutes_exact, is_restricted_pair, ExactOutcome};
use crate::redundancy::analyze_redundancy;
use crate::separability::separability_report;
use crate::sufficient::{sufficiency_report, Sufficiency, VarCondition};
use linrec_datalog::{LinearRule, RuleError};
use std::fmt::Write as _;

fn condition_name(c: VarCondition) -> &'static str {
    match c {
        VarCondition::FreeOnePersistent => "(a) free 1-persistent in one rule",
        VarCondition::LinkOneBoth => "(b) link 1-persistent in both",
        VarCondition::CommutingFreeCycles => "(c) commuting free cycles",
        VarCondition::EquivalentBridges => "(d) equivalent augmented bridges",
        VarCondition::Fails => "none (condition fails)",
    }
}

/// A full commutativity report for a pair of rules: definition-based truth,
/// the Theorem 5.1/5.2 verdicts, separability, and the composites.
pub fn pair_report(r1: &LinearRule, r2: &LinearRule) -> Result<String, RuleError> {
    let mut out = String::new();
    let _ = writeln!(out, "r1: {r1}");
    let _ = writeln!(out, "r2: {r2}");

    let truth = commute_by_definition(r1, r2)?;
    let _ = writeln!(out, "commute (by definition): {truth}");

    match sufficiency_report(r1, r2) {
        Ok(rep) => {
            let _ = writeln!(out, "Theorem 5.1 sufficient condition:");
            for (v, c) in &rep.per_var {
                let _ = writeln!(out, "  {v:<4} {}", condition_name(*c));
            }
            let verdict = match rep.verdict {
                Sufficiency::Commute => "holds — commutativity guaranteed".to_owned(),
                Sufficiency::Unknown(vars) => format!(
                    "fails on {{{}}} — no conclusion",
                    vars.iter().map(|v| v.name()).collect::<Vec<_>>().join(", ")
                ),
            };
            let _ = writeln!(out, "  => {verdict}");
        }
        Err(e) => {
            let _ = writeln!(out, "Theorem 5.1 not applicable: {e}");
        }
    }

    if is_restricted_pair(r1, r2) {
        match commutes_exact(r1, r2)? {
            ExactOutcome::Commute => {
                let _ = writeln!(out, "Theorem 5.2 (exact, O(a log a)): commute");
            }
            ExactOutcome::DoNotCommute(vars) => {
                let _ = writeln!(
                    out,
                    "Theorem 5.2 (exact, O(a log a)): do NOT commute (witness: {})",
                    vars.iter().map(|v| v.name()).collect::<Vec<_>>().join(", ")
                );
            }
        }
    } else {
        let _ = writeln!(
            out,
            "Theorem 5.2 not applicable (outside the restricted class)"
        );
    }

    match separability_report(r1, r2) {
        Ok(rep) => {
            let _ = writeln!(
                out,
                "separable (Naughton): {} (disjoint variant: {})",
                rep.is_separable_definition(),
                rep.is_separable_disjoint()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "separability not checkable: {e}");
        }
    }

    let (c12, c21) = composites(r1, r2)?;
    let _ = writeln!(out, "r1r2: {c12}");
    let _ = writeln!(out, "r2r1: {c21}");
    Ok(out)
}

/// A redundancy report for a single rule (Theorems 6.3/6.4).
pub fn redundancy_report(rule: &LinearRule, max_power: usize) -> Result<String, RuleError> {
    let mut out = String::new();
    let _ = writeln!(out, "rule: {rule}");
    let analysis = analyze_redundancy(rule, max_power)?;
    if analysis.bridges.is_empty() {
        let _ = writeln!(out, "no nonrecursive bridges");
        return Ok(out);
    }
    for b in &analysis.bridges {
        let preds: Vec<&str> = b.preds.iter().map(|p| p.as_str()).collect();
        let verdict = match b.bounded {
            Some(w) => format!("uniformly bounded (C^{} <= C^{})", w.n, w.k),
            None => format!("not bounded within max_power = {max_power}"),
        };
        let _ = writeln!(
            out,
            "bridge {}: preds {{{}}} wide rule {}\n  {verdict}",
            b.bridge,
            preds.join(", "),
            b.wide
        );
    }
    let redundant = analysis.redundant_preds();
    let names: Vec<&str> = redundant.iter().map(|p| p.as_str()).collect();
    let _ = writeln!(
        out,
        "recursively redundant predicates: {{{}}}",
        names.join(", ")
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    #[test]
    fn pair_report_mentions_everything() {
        let up = parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
        let down = parse_linear_rule("p(x,y) :- p(w,y), q(x,w).").unwrap();
        let rep = pair_report(&up, &down).unwrap();
        assert!(rep.contains("commute (by definition): true"));
        assert!(rep.contains("Theorem 5.1"));
        assert!(rep.contains("Theorem 5.2 (exact, O(a log a)): commute"));
        assert!(rep.contains("r1r2:"));
    }

    #[test]
    fn redundancy_report_flags_cheap() {
        let a = parse_linear_rule("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).").unwrap();
        let rep = redundancy_report(&a, 8).unwrap();
        assert!(rep.contains("cheap"));
        assert!(rep.contains("uniformly bounded"));
        assert!(rep.contains("recursively redundant predicates: {cheap}"));
    }

    #[test]
    fn pair_report_handles_unknown_verdicts() {
        let r1 = parse_linear_rule("p(x,y) :- p(y,w), q(x).").unwrap();
        let r2 = parse_linear_rule("p(x,y) :- p(u,v), q(x), q(y).").unwrap();
        let rep = pair_report(&r1, &r2).unwrap();
        assert!(rep.contains("commute (by definition): true"));
        assert!(rep.contains("no conclusion"));
        assert!(rep.contains("Theorem 5.2 not applicable"));
    }
}
