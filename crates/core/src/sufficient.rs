//! The sufficient condition for commutativity (Theorem 5.1).
//!
//! Two rules `r₁`, `r₂` with the same consequent commute if every
//! distinguished variable `x` satisfies one of:
//!
//! * **(a)** `x` is free 1-persistent in `r₁` or `r₂`;
//! * **(b)** `x` is link 1-persistent in both;
//! * **(c)** `x` is free `m₁`-persistent (`m₁>1`) in `r₁` and free
//!   `m₂`-persistent (`m₂>1`) in `r₂`, and `h₁(h₂(x)) = h₂(h₁(x))`;
//! * **(d)** `x` is link `m`-persistent (`m>1`) or general, and belongs to
//!   *equivalent augmented bridges* in both rules.
//!
//! The test never composes the rules; its only potentially expensive step is
//! the equivalence of augmented-bridge narrow rules in case (d), which the
//! exact test of [`crate::exact`] replaces by the O(a log a) isomorphism of
//! Lemma 5.4 for the restricted class.

use linrec_alpha::{AlphaGraph, BridgeDecomposition, Classification, PersistenceClass};
use linrec_cq::minimize_linear;
use linrec_datalog::hash::FastMap;
use linrec_datalog::{LinearRule, RuleError, Var};

/// Which of Theorem 5.1's clauses a variable satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarCondition {
    /// (a) free 1-persistent in at least one rule.
    FreeOnePersistent,
    /// (b) link 1-persistent in both rules.
    LinkOneBoth,
    /// (c) free multi-persistent in both with commuting `h` functions.
    CommutingFreeCycles,
    /// (d) equivalent augmented bridges in both rules.
    EquivalentBridges,
    /// No clause applies: the sufficient condition fails for this variable.
    Fails,
}

/// Outcome of the sufficient test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sufficiency {
    /// The condition holds: the rules are guaranteed to commute.
    Commute,
    /// The condition fails; the rules may or may not commute
    /// (cf. Example 5.4). The offending variables are listed.
    Unknown(Vec<Var>),
}

/// Per-variable detail plus the verdict.
#[derive(Debug, Clone)]
pub struct SufficiencyReport {
    /// `(variable, satisfied clause)` in consequent order.
    pub per_var: Vec<(Var, VarCondition)>,
    /// Overall verdict.
    pub verdict: Sufficiency,
}

/// Everything the α-graph layer knows about an aligned pair of rules.
/// Shared between the sufficient and the exact tests.
pub(crate) struct PairAnalysis {
    pub r1: LinearRule,
    pub r2: LinearRule,
    pub g1: AlphaGraph,
    pub g2: AlphaGraph,
    pub c1: Classification,
    pub c2: Classification,
    pub d1: BridgeDecomposition,
    pub d2: BridgeDecomposition,
}

impl PairAnalysis {
    /// Align `r2` to `r1`'s consequent, optionally minimize both, and build
    /// graphs, classifications and link-1 bridge decompositions.
    pub(crate) fn build(
        r1: &LinearRule,
        r2: &LinearRule,
        minimize: bool,
    ) -> Result<PairAnalysis, RuleError> {
        let r2 = r2.align_consequent(r1.head())?;
        let (r1, r2) = if minimize {
            (minimize_linear(r1), minimize_linear(&r2))
        } else {
            (r1.clone(), r2)
        };
        let g1 = AlphaGraph::new(&r1)?;
        let g2 = AlphaGraph::new(&r2)?;
        let c1 = Classification::classify(&r1)?;
        let c2 = Classification::classify(&r2)?;
        let d1 = BridgeDecomposition::wrt_link1(&g1, &c1);
        let d2 = BridgeDecomposition::wrt_link1(&g2, &c2);
        Ok(PairAnalysis {
            r1,
            r2,
            g1,
            g2,
            c1,
            c2,
            d1,
            d2,
        })
    }

    /// Check Theorem 5.1's clauses for every distinguished variable, using
    /// `bridge_eq` to decide equivalence of augmented-bridge narrow rules.
    pub(crate) fn check_conditions(
        &self,
        bridge_eq: &mut dyn FnMut(&LinearRule, &LinearRule) -> bool,
    ) -> Vec<(Var, VarCondition)> {
        let mut bridge_cache: FastMap<(usize, usize), bool> = FastMap::default();
        let mut out = Vec::new();
        for &x in &self.r1.head_vars() {
            let k1 = self.c1.class(x).expect("head var classified");
            let k2 = self.c2.class(x).expect("same consequent");
            let cond = self.var_condition(x, k1, k2, bridge_eq, &mut bridge_cache);
            out.push((x, cond));
        }
        out
    }

    fn var_condition(
        &self,
        x: Var,
        k1: PersistenceClass,
        k2: PersistenceClass,
        bridge_eq: &mut dyn FnMut(&LinearRule, &LinearRule) -> bool,
        cache: &mut FastMap<(usize, usize), bool>,
    ) -> VarCondition {
        // (a) free 1-persistent somewhere.
        if k1.is_free_one_persistent() || k2.is_free_one_persistent() {
            return VarCondition::FreeOnePersistent;
        }
        // (b) link 1-persistent in both.
        if k1.is_link_one_persistent() && k2.is_link_one_persistent() {
            return VarCondition::LinkOneBoth;
        }
        // (c) free multi-persistent in both, h functions commute on x.
        if let (PersistenceClass::FreePersistent(m1), PersistenceClass::FreePersistent(m2)) =
            (k1, k2)
        {
            if m1 > 1 && m2 > 1 {
                let h2x = self.r2.h_var(x);
                let h1x = self.r1.h_var(x);
                if let (Some(h2x), Some(h1x)) = (h2x, h1x) {
                    if self.r1.h(h2x) == self.r2.h(h1x) && self.r1.h(h2x).is_some() {
                        return VarCondition::CommutingFreeCycles;
                    }
                }
                return VarCondition::Fails;
            }
        }
        // (d) link m>1-persistent or general in both, equivalent augmented
        // bridges.
        let d_applicable = |k: PersistenceClass| match k {
            PersistenceClass::LinkPersistent(m) => m > 1,
            PersistenceClass::General { .. } => true,
            PersistenceClass::FreePersistent(_) => false,
        };
        if d_applicable(k1) && d_applicable(k2) {
            let b1 = self.d1.bridge_containing(x);
            let b2 = self.d2.bridge_containing(x);
            if let (Some(b1), Some(b2)) = (b1, b2) {
                let equivalent = *cache.entry((b1, b2)).or_insert_with(|| {
                    let a1 = self.d1.augmented(&self.g1, b1);
                    let a2 = self.d2.augmented(&self.g2, b2);
                    match (
                        linrec_alpha::narrow_rule(&self.g1, &a1),
                        linrec_alpha::narrow_rule(&self.g2, &a2),
                    ) {
                        (Ok(n1), Ok(n2)) => bridge_eq(&n1, &n2),
                        _ => false,
                    }
                });
                if equivalent {
                    return VarCondition::EquivalentBridges;
                }
            }
        }
        VarCondition::Fails
    }
}

/// Apply the Theorem 5.1 sufficient test to `r1`, `r2`.
///
/// Rules are aligned and minimized first (the theorem assumes rules in
/// minimal form; commutativity is invariant under equivalence). Returns
/// [`Sufficiency::Commute`] — a *guarantee* — or [`Sufficiency::Unknown`].
pub fn commutes_sufficient(r1: &LinearRule, r2: &LinearRule) -> Result<Sufficiency, RuleError> {
    Ok(sufficiency_report(r1, r2)?.verdict)
}

/// Like [`commutes_sufficient`] but with per-variable detail.
pub fn sufficiency_report(
    r1: &LinearRule,
    r2: &LinearRule,
) -> Result<SufficiencyReport, RuleError> {
    let pa = PairAnalysis::build(r1, r2, true)?;
    let per_var =
        pa.check_conditions(&mut |a, b| linrec_cq::equivalent(&a.underlying(), &b.underlying()));
    let failing: Vec<Var> = per_var
        .iter()
        .filter(|(_, c)| *c == VarCondition::Fails)
        .map(|&(v, _)| v)
        .collect();
    let verdict = if failing.is_empty() {
        Sufficiency::Commute
    } else {
        Sufficiency::Unknown(failing)
    };
    Ok(SufficiencyReport { per_var, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commutativity::commute_by_definition;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn example_5_2_satisfies_condition_a() {
        let up = lr("p(x,y) :- p(x,z), q(z,y).");
        let down = lr("p(x,y) :- p(w,y), q(x,w).");
        let rep = sufficiency_report(&up, &down).unwrap();
        assert_eq!(rep.verdict, Sufficiency::Commute);
        for (_, c) in rep.per_var {
            assert_eq!(c, VarCondition::FreeOnePersistent);
        }
    }

    #[test]
    fn example_5_3_satisfies_condition() {
        let r1 = lr("p(x,y,z) :- p(u,y,z), q(x,y).");
        let r2 = lr("p(x,y,z) :- p(x,y,v), r(z,y).");
        assert_eq!(commutes_sufficient(&r1, &r2).unwrap(), Sufficiency::Commute);
    }

    #[test]
    fn example_5_4_condition_fails_but_rules_commute() {
        let r1 = lr("p(x,y) :- p(y,w), q(x).");
        let r2 = lr("p(x,y) :- p(u,v), q(x), q(y).");
        match commutes_sufficient(&r1, &r2).unwrap() {
            Sufficiency::Unknown(vars) => assert!(!vars.is_empty()),
            Sufficiency::Commute => panic!("Example 5.4 does not satisfy Theorem 5.1"),
        }
        // ... although they do commute (the condition is not necessary in
        // general, only on the restricted class).
        assert!(commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn condition_b_link_one_persistent_in_both() {
        let r1 = lr("p(x,y) :- p(x,y), q(x,y).");
        let r2 = lr("p(x,y) :- p(x,y), r(x,y).");
        assert_eq!(commutes_sufficient(&r1, &r2).unwrap(), Sufficiency::Commute);
        assert!(commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn condition_c_commuting_free_cycles() {
        // Both rules rotate disjoint free cycles... here the same 2-cycle
        // swap in both rules: h1(h2(x)) = h2(h1(x)) = x.
        let r1 = lr("p(x,y,u,v) :- p(y,x,u,w), q(v,w).");
        let r2 = lr("p(x,y,u,v) :- p(y,x,w,v), r(u,w).");
        let rep = sufficiency_report(&r1, &r2).unwrap();
        assert_eq!(rep.verdict, Sufficiency::Commute);
        assert!(rep
            .per_var
            .iter()
            .any(|(_, c)| *c == VarCondition::CommutingFreeCycles));
        assert!(commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn condition_c_detects_non_commuting_cycles() {
        // r1 swaps (x y) and fixes (u v) as a pair swap; r2 rotates all four:
        // the permutations do not commute.
        let r1 = lr("p(x,y,u,v) :- p(y,x,v,u).");
        let r2 = lr("p(x,y,u,v) :- p(y,u,v,x).");
        match commutes_sufficient(&r1, &r2).unwrap() {
            Sufficiency::Unknown(_) => {}
            Sufficiency::Commute => panic!("cycles do not commute"),
        }
        assert!(!commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn condition_d_equivalent_bridges() {
        // Same-generation-ish: both rules walk q on the x side; x's bridges
        // are equivalent; y is free 1-persistent in both.
        let r1 = lr("p(x,y) :- p(w,y), q(x,w).");
        let r2 = lr("p(x,y) :- p(w,y), q(x,w).");
        let rep = sufficiency_report(&r1, &r2).unwrap();
        assert_eq!(rep.verdict, Sufficiency::Commute);
        assert!(rep
            .per_var
            .iter()
            .any(|(_, c)| *c == VarCondition::EquivalentBridges));
    }

    #[test]
    fn condition_d_rejects_different_bridges() {
        let r1 = lr("p(x,y) :- p(w,y), q(x,w).");
        let r2 = lr("p(x,y) :- p(w,y), r(x,w).");
        match commutes_sufficient(&r1, &r2).unwrap() {
            Sufficiency::Unknown(vars) => {
                assert_eq!(vars, vec![linrec_datalog::Var::new("x")]);
            }
            Sufficiency::Commute => panic!("different bridges must fail"),
        }
        assert!(!commute_by_definition(&r1, &r2).unwrap());
    }

    #[test]
    fn sufficiency_implies_commutativity_on_samples() {
        let pairs = [
            ("p(x,y) :- p(x,z), q(z,y).", "p(x,y) :- p(w,y), q(x,w)."),
            ("p(x,y) :- p(x,z), a(z,y).", "p(x,y) :- p(w,y), b(x,w)."),
            (
                "p(x,y,z) :- p(u,y,z), q(x,y).",
                "p(x,y,z) :- p(x,y,v), r(z,y).",
            ),
            ("p(x,y) :- p(x,y), q(x).", "p(x,y) :- p(x,y), s(y)."),
        ];
        for (s1, s2) in pairs {
            let (r1, r2) = (lr(s1), lr(s2));
            if commutes_sufficient(&r1, &r2).unwrap() == Sufficiency::Commute {
                assert!(
                    commute_by_definition(&r1, &r2).unwrap(),
                    "soundness violated on {s1} / {s2}"
                );
            }
        }
    }
}
