//! Torsion and uniform boundedness of operators (paper §4.2 and §6.2).
//!
//! An operator `B` is **uniformly bounded** if `Bᴺ ≤ Bᴷ` for some `K < N`,
//! and **torsion** if `Bᴺ = Bᴷ`. Every torsion operator is uniformly
//! bounded; Lemma 6.2 shows the converse for rules with no repeated
//! consequent variables and no repeated nonrecursive predicates.
//!
//! Both properties are searched by enumerating minimized powers
//! `B¹, B², …` and comparing against all earlier powers. For rules without
//! nondistinguished variables the search is complete (the powers range over
//! a finite set of bodies, so repetition is guaranteed); in general it is a
//! semi-decision bounded by `max_power`.

use linrec_cq::{
    canonicalize_linear, compose, linear_contains, linear_equivalent, minimize_linear,
};
use linrec_datalog::{LinearRule, RuleError};

/// A witness `(k, n)` with `k < n` for a power relation between `Bⁿ`
/// and `Bᵏ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerWitness {
    /// The smaller exponent `K ≥ 1`.
    pub k: usize,
    /// The larger exponent `N`.
    pub n: usize,
}

impl PowerWitness {
    /// The period `N − K`.
    pub fn period(&self) -> usize {
        self.n - self.k
    }
}

fn minimized_powers(rule: &LinearRule, max_power: usize) -> Result<Vec<LinearRule>, RuleError> {
    let mut powers: Vec<LinearRule> = Vec::with_capacity(max_power);
    let base = minimize_linear(rule);
    powers.push(base.clone());
    for _ in 1..max_power {
        let next = minimize_linear(&compose(powers.last().unwrap(), &base)?);
        powers.push(next);
    }
    Ok(powers)
}

/// Search for the least torsion witness `Bⁿ = Bᵏ` with `1 ≤ k < n ≤
/// max_power`. Returns `None` if no witness exists within the bound.
pub fn torsion_index(
    rule: &LinearRule,
    max_power: usize,
) -> Result<Option<PowerWitness>, RuleError> {
    let mut powers: Vec<(LinearRule, LinearRule)> = Vec::new(); // (power, canonical)
    let base = minimize_linear(rule);
    let mut current = base.clone();
    for n in 1..=max_power {
        let canon = canonicalize_linear(&current);
        for (k, (prev, prev_canon)) in powers.iter().enumerate() {
            // Cheap syntactic pre-check, then full equivalence.
            if *prev_canon == canon || linear_equivalent(prev, &current) {
                return Ok(Some(PowerWitness { k: k + 1, n }));
            }
        }
        powers.push((current.clone(), canon));
        if n < max_power {
            current = minimize_linear(&compose(&current, &base)?);
        }
    }
    Ok(None)
}

/// Search for the least uniform-boundedness witness `Bⁿ ≤ Bᵏ` with
/// `1 ≤ k < n ≤ max_power`.
pub fn uniformly_bounded(
    rule: &LinearRule,
    max_power: usize,
) -> Result<Option<PowerWitness>, RuleError> {
    let powers = minimized_powers(rule, max_power)?;
    for n in 2..=powers.len() {
        for k in 1..n {
            if linear_contains(&powers[k - 1], &powers[n - 1]) {
                return Ok(Some(PowerWitness { k, n }));
            }
        }
    }
    Ok(None)
}

/// Is the search for this rule guaranteed to terminate with the right
/// answer? True when the rule has no nondistinguished variables, so its
/// powers live in a finite space (cf. the paper's remark in Example 6.2
/// that such operators are uniformly bounded... detectable here).
pub fn search_is_complete(rule: &LinearRule) -> bool {
    rule.nondistinguished().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn idempotent_filter_is_torsion_1_2() {
        // Example 6.1's C: buys(x,y) :- buys(x,y), cheap(y): C² = C.
        let c = lr("buys(x,y) :- buys(x,y), cheap(y).");
        let w = torsion_index(&c, 8).unwrap().unwrap();
        assert_eq!((w.k, w.n), (1, 2));
        assert_eq!(w.period(), 1);
        assert!(search_is_complete(&c));
    }

    #[test]
    fn example_6_2_c_is_torsion_3_5() {
        // C: P(w,x,y,z) :- P(x,w,x,z), R(x,y): C⁵ = C³ (period 2), and
        // uniformly bounded earlier: C³ ≤ C.
        let c = lr("p(w,x,y,z) :- p(x,w,x,z), r(x,y).");
        assert!(search_is_complete(&c));
        let t = torsion_index(&c, 8).unwrap().unwrap();
        assert_eq!((t.k, t.n), (3, 5));
        let u = uniformly_bounded(&c, 8).unwrap().unwrap();
        assert_eq!((u.k, u.n), (1, 3));
    }

    #[test]
    fn transitive_closure_is_not_bounded() {
        let r = lr("p(x,y) :- p(x,z), q(z,y).");
        assert_eq!(torsion_index(&r, 6).unwrap(), None);
        assert_eq!(uniformly_bounded(&r, 6).unwrap(), None);
        assert!(!search_is_complete(&r));
    }

    #[test]
    fn pure_permutation_is_torsion() {
        // A 3-rotation: r³ = identity-ish: r⁴ = r.
        let r = lr("p(a,b,c) :- p(b,c,a).");
        let w = torsion_index(&r, 8).unwrap().unwrap();
        assert_eq!((w.k, w.n), (1, 4));
    }

    #[test]
    fn torsion_implies_uniformly_bounded() {
        let rules = [
            "buys(x,y) :- buys(x,y), cheap(y).",
            "p(w,x,y,z) :- p(x,w,x,z), r(x,y).",
            "p(a,b,c) :- p(b,c,a).",
        ];
        for s in rules {
            let r = lr(s);
            let t = torsion_index(&r, 10).unwrap();
            let u = uniformly_bounded(&r, 10).unwrap();
            if let Some(t) = t {
                let u = u.expect("torsion implies uniformly bounded");
                assert!(u.n <= t.n, "uniform bound found no later than torsion");
            }
        }
    }
}
