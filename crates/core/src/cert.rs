//! Typed certificates: analysis results as unforgeable values.
//!
//! The paper's whole argument is that *analysis results license strategies*:
//! commutativity (Theorems 5.1–5.3) licenses the `(B+C)* = B*C*`
//! decomposition, separability/commutativity (Theorems 4.1/6.1) licenses
//! selection push-down, and uniform boundedness / recursive redundancy
//! (Theorems 4.2/6.3/6.4) license bounded evaluation. This module turns each
//! of those analyses into a **certificate type** whose only constructors run
//! the corresponding test (or re-verify supplied witnesses), so downstream
//! machinery — the `linrec-engine` planner — can demand the premise *by
//! type* instead of by comment.
//!
//! Every certificate:
//!
//! * has private fields (it cannot be forged outside this module);
//! * stores the rules it speaks about (a plan built from a certificate
//!   cannot be replayed against different rules);
//! * carries a human-readable [`rationale`](CommutativityCert::rationale)
//!   naming the theorem and witnesses that justify it.

use crate::bounded::{uniformly_bounded, PowerWitness};
use crate::decompose::{pair_commutes, plan_decomposition, PairRelation};
use crate::redundancy::{analyze_redundancy, redundancy_decomposition, Decomposition};
use crate::separability::separability_report;
use linrec_cq::{compose, linear_equivalent};
use linrec_datalog::{LinearRule, RuleError, Symbol};

// --- commutativity --------------------------------------------------------

/// A verified cluster decomposition of a rule set: every cross-cluster pair
/// of operators commutes, so `(Σᵢ Aᵢ)* = Π_c (Σ_{i∈c} Aᵢ)*` (§3, §7,
/// Theorem 3.1).
///
/// Only [`CommutativityCert::establish`] can create one, and it only
/// succeeds when the clustering actually splits the star.
#[derive(Debug, Clone)]
pub struct CommutativityCert {
    rules: Vec<LinearRule>,
    clusters: Vec<Vec<usize>>,
    relations: Vec<Vec<PairRelation>>,
    rationale: String,
}

impl CommutativityCert {
    /// Run the commutativity tests (exact where applicable, by definition
    /// otherwise; `semi_exp > 0` also searches `CB ≤ BᵏCˡ` witnesses for
    /// pairs) and certify the cluster decomposition. Returns `None` when
    /// everything lands in one cluster — i.e. no decomposition is licensed.
    pub fn establish(
        rules: &[LinearRule],
        semi_exp: usize,
    ) -> Result<Option<CommutativityCert>, RuleError> {
        let plan = plan_decomposition(rules, semi_exp)?;
        if !plan.is_decomposed() {
            return Ok(None);
        }
        let rationale = format!(
            "{} commuting clusters {:?}: every cross-cluster pair commutes \
             (Theorems 5.1–5.3), so (ΣA)* = Π (Σ cluster)* with no more \
             duplicates (§3, Theorem 3.1)",
            plan.clusters.len(),
            plan.clusters,
        );
        Ok(Some(CommutativityCert {
            rules: rules.to_vec(),
            clusters: plan.clusters,
            relations: plan.relations,
            rationale,
        }))
    }

    /// The rules the certificate speaks about, in the caller's order.
    pub fn rules(&self) -> &[LinearRule] {
        &self.rules
    }

    /// Clusters of rule indices; the star decomposes into one star per
    /// cluster, applied right-to-left.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// How the pair `(i, j)` relates (commute / semi-commute / none).
    pub fn pair_relation(&self, i: usize, j: usize) -> PairRelation {
        self.relations[i][j]
    }

    /// Why the decomposition is licensed.
    pub fn rationale(&self) -> &str {
        &self.rationale
    }
}

// --- separability ---------------------------------------------------------

/// How a [`SeparabilityCert`] was justified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeparabilityEvidence {
    /// Naughton's four separability conditions hold (disjoint variant);
    /// separable ⇒ commutative by Theorem 6.2.
    Separable,
    /// The pair commutes outright (Theorem 4.1 needs no more).
    Commuting,
}

/// A verified premise for the separable algorithm (Algorithm 4.1 /
/// Theorem 4.1) on the operator pair `outer`, `inner`: the two operators
/// commute, so `σ(outer + inner)* = outer* (σ inner*)` for any selection
/// `σ` that commutes with `outer`.
///
/// The *selection* premise is checked at plan-construction time by the
/// engine (a selection is an engine value); this certificate carries the
/// operator-pair premise, which is the expensive, theorem-backed half.
#[derive(Debug, Clone)]
pub struct SeparabilityCert {
    outer: LinearRule,
    inner: LinearRule,
    evidence: SeparabilityEvidence,
    rationale: String,
}

impl SeparabilityCert {
    /// Check Theorem 4.1's operator premise for `outer*(σ inner*)`:
    /// prefer Naughton separability (Theorem 6.2 gives commutativity), fall
    /// back to the direct commutativity tests. Returns `None` when the pair
    /// does not commute.
    pub fn establish(
        outer: &LinearRule,
        inner: &LinearRule,
    ) -> Result<Option<SeparabilityCert>, RuleError> {
        let naughton = matches!(
            separability_report(outer, inner),
            Ok(rep) if rep.is_separable_disjoint()
        );
        let (evidence, rationale) = if naughton {
            (
                SeparabilityEvidence::Separable,
                "the pair is separable (Naughton's four conditions, disjoint \
                 variant), hence commutative (Theorem 6.2); Algorithm 4.1 \
                 applies (Theorem 4.1/6.1)"
                    .to_owned(),
            )
        } else if pair_commutes(outer, inner)? {
            (
                SeparabilityEvidence::Commuting,
                "the pair commutes (Theorems 5.1–5.3), which is all \
                 Theorem 4.1 requires for σ(A₁+A₂)* = A₁*(σA₂*)"
                    .to_owned(),
            )
        } else {
            return Ok(None);
        };
        Ok(Some(SeparabilityCert {
            outer: outer.clone(),
            inner: inner.clone(),
            evidence,
            rationale,
        }))
    }

    /// The operator that will run *outside* the selection.
    pub fn outer(&self) -> &LinearRule {
        &self.outer
    }

    /// The operator absorbing the selection.
    pub fn inner(&self) -> &LinearRule {
        &self.inner
    }

    /// Which premise was established.
    pub fn evidence(&self) -> &SeparabilityEvidence {
        &self.evidence
    }

    /// Why the strategy is licensed.
    pub fn rationale(&self) -> &str {
        &self.rationale
    }
}

// --- uniform boundedness --------------------------------------------------

/// A verified uniform-boundedness witness `Aᴺ ≤ Aᴷ` for a single operator:
/// the recursion needs at most `N − 1` applications on any database
/// (§4.2, Lemma 6.2), so `A* = Σ_{m<N} Aᵐ`.
#[derive(Debug, Clone)]
pub struct BoundednessCert {
    rule: LinearRule,
    witness: PowerWitness,
    rationale: String,
}

impl BoundednessCert {
    /// Search minimized powers of `rule` up to `max_power` for a
    /// containment `Aⁿ ≤ Aᵏ` (k < n). Returns `None` when no witness is
    /// found within the bound.
    pub fn establish(
        rule: &LinearRule,
        max_power: usize,
    ) -> Result<Option<BoundednessCert>, RuleError> {
        let witness = match uniformly_bounded(rule, max_power)? {
            Some(w) => w,
            None => return Ok(None),
        };
        let rationale = format!(
            "uniformly bounded: A^{} ≤ A^{} (Lemma 6.2 search), so \
             A* = Σ_{{m<{}}} Aᵐ — at most {} applications on any database",
            witness.n,
            witness.k,
            witness.n,
            witness.n - 1,
        );
        Ok(Some(BoundednessCert {
            rule: rule.clone(),
            witness,
            rationale,
        }))
    }

    /// The certified operator.
    pub fn rule(&self) -> &LinearRule {
        &self.rule
    }

    /// The power witness `(k, n)` with `Aⁿ ≤ Aᵏ`.
    pub fn witness(&self) -> PowerWitness {
        self.witness
    }

    /// Number of operator applications that exhaust the star (`N − 1`).
    pub fn applications(&self) -> usize {
        self.witness.n - 1
    }

    /// Why the strategy is licensed.
    pub fn rationale(&self) -> &str {
        &self.rationale
    }
}

// --- recursive redundancy -------------------------------------------------

/// A verified Theorem 6.4 decomposition `Aᴸ = BCᴸ` with `C` torsion
/// (`Cᴺ = Cᴷ`) and `Cᴸ(BCᴸ) = Cᴸ(CᴸB)`: the redundant predicate's factor
/// `C` need only be processed a bounded number of times (Theorem 4.2).
#[derive(Debug, Clone)]
pub struct RedundancyCert {
    rule: LinearRule,
    pred: Symbol,
    decomposition: Decomposition,
    rationale: String,
}

impl RedundancyCert {
    /// Analyze `rule`'s augmented bridges (Theorem 6.3), pick the one
    /// holding `pred`, and construct-and-verify the Theorem 6.4 witnesses.
    /// Returns `None` when `pred` is not recursively redundant (or the
    /// verification equations fail within `max_power`).
    pub fn establish(
        rule: &LinearRule,
        pred: Symbol,
        max_power: usize,
    ) -> Result<Option<RedundancyCert>, RuleError> {
        let analysis = analyze_redundancy(rule, max_power)?;
        for bridge in analysis.redundant_bridges() {
            if !bridge.preds.contains(&pred) {
                continue;
            }
            if let Some(dec) = redundancy_decomposition(rule, bridge.bridge, max_power)? {
                return Ok(Some(RedundancyCert::from_verified(rule, pred, dec)));
            }
        }
        Ok(None)
    }

    /// Certify the first recursively redundant predicate of `rule`, if any.
    pub fn establish_any(
        rule: &LinearRule,
        max_power: usize,
    ) -> Result<Option<RedundancyCert>, RuleError> {
        let analysis = analyze_redundancy(rule, max_power)?;
        for bridge in analysis.redundant_bridges() {
            let pred = match bridge.preds.first() {
                Some(&p) => p,
                None => continue,
            };
            if let Some(dec) = redundancy_decomposition(rule, bridge.bridge, max_power)? {
                return Ok(Some(RedundancyCert::from_verified(rule, pred, dec)));
            }
        }
        Ok(None)
    }

    /// Re-verify externally supplied Theorem 6.4 witnesses against `rule`
    /// and certify them. This is how pre-computed decompositions (e.g. from
    /// a plan cache) re-enter the typed world without trust: the torsion
    /// indices and both equations are checked from scratch.
    pub fn verify(
        rule: &LinearRule,
        pred: Symbol,
        dec: &Decomposition,
    ) -> Result<Option<RedundancyCert>, RuleError> {
        // Degenerate indices (the power/composition machinery requires
        // exponents ≥ 1) can never be genuine witnesses: reject, don't panic.
        if dec.l == 0 || dec.torsion.k == 0 || dec.torsion.n <= dec.torsion.k {
            return Ok(None);
        }
        // The claimed predicate must be a parameter of the bounded factor C
        // and not of B — that placement is what Theorem 6.4's bounded
        // C-processing makes redundant.
        if !dec.c.nonrec_atoms().iter().any(|a| a.pred == pred)
            || dec.b.nonrec_atoms().iter().any(|a| a.pred == pred)
        {
            return Ok(None);
        }
        // Aᴸ must really be rule^L.
        let a_pow_l = linrec_cq::power(rule, dec.l)?;
        if !linear_equivalent(&a_pow_l, &dec.a_pow_l) {
            return Ok(None);
        }
        // Cᴸ must really be c^L, and the torsion witness must hold.
        let c_pow_l = linrec_cq::power(&dec.c, dec.l)?;
        if !linear_equivalent(&c_pow_l, &dec.c_pow_l) {
            return Ok(None);
        }
        let ck = linrec_cq::power_minimized(&dec.c, dec.torsion.k)?;
        let cn = linrec_cq::power_minimized(&dec.c, dec.torsion.n)?;
        if !linear_equivalent(&ck, &cn) {
            return Ok(None);
        }
        // Aᴸ = B·Cᴸ.
        let bcl = compose(&dec.b, &dec.c_pow_l)?;
        if !linear_equivalent(&bcl, &dec.a_pow_l) {
            return Ok(None);
        }
        // Cᴸ(BCᴸ) = Cᴸ(CᴸB).
        let lhs = compose(&dec.c_pow_l, &bcl)?;
        let rhs = compose(&dec.c_pow_l, &compose(&dec.c_pow_l, &dec.b)?)?;
        if !linear_equivalent(&lhs, &rhs) {
            return Ok(None);
        }
        Ok(Some(RedundancyCert::from_verified(rule, pred, dec.clone())))
    }

    fn from_verified(rule: &LinearRule, pred: Symbol, dec: Decomposition) -> RedundancyCert {
        let rationale = format!(
            "{pred} is recursively redundant (Theorem 6.3): A^{l} = B·C^{l} \
             with C^{n} = C^{k} and C^{l}(BC^{l}) = C^{l}(C^{l}B) verified \
             (Theorem 6.4), so C is processed at most (N−1)·L = {} times \
             (Theorem 4.2)",
            (dec.torsion.n - 1) * dec.l,
            l = dec.l,
            n = dec.torsion.n,
            k = dec.torsion.k,
        );
        RedundancyCert {
            rule: rule.clone(),
            pred,
            decomposition: dec,
            rationale,
        }
    }

    /// The certified operator.
    pub fn rule(&self) -> &LinearRule {
        &self.rule
    }

    /// The recursively redundant predicate.
    pub fn pred(&self) -> Symbol {
        self.pred
    }

    /// The verified Theorem 6.4 witnesses.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomposition
    }

    /// Why the strategy is licensed.
    pub fn rationale(&self) -> &str {
        &self.rationale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    #[test]
    fn commutativity_cert_for_up_down() {
        let rules = [
            lr("p(x,y) :- p(x,z), q(z,y)."),
            lr("p(x,y) :- p(w,y), q(x,w)."),
        ];
        let cert = CommutativityCert::establish(&rules, 0).unwrap().unwrap();
        assert_eq!(cert.clusters().len(), 2);
        assert_eq!(cert.pair_relation(0, 1), PairRelation::Commute);
        assert!(cert.rationale().contains("Theorem 3.1"));
        assert_eq!(cert.rules(), &rules);
    }

    #[test]
    fn commutativity_cert_refuses_non_commuting_sets() {
        let rules = [
            lr("p(x,y) :- p(x,z), a(z,y)."),
            lr("p(x,y) :- p(x,z), b(z,y)."),
        ];
        assert!(CommutativityCert::establish(&rules, 0).unwrap().is_none());
    }

    #[test]
    fn separability_cert_grades_evidence() {
        let up = lr("p(x,y) :- p(w,y), up(x,w).");
        let down = lr("p(x,y) :- p(x,z), down(z,y).");
        let cert = SeparabilityCert::establish(&up, &down).unwrap().unwrap();
        assert_eq!(*cert.evidence(), SeparabilityEvidence::Separable);

        // Example 5.3: commutes but is not separable.
        let r1 = lr("p(x,y,z) :- p(u,y,z), q(x,y).");
        let r2 = lr("p(x,y,z) :- p(x,y,v), r(z,y).");
        let cert = SeparabilityCert::establish(&r1, &r2).unwrap().unwrap();
        assert_eq!(*cert.evidence(), SeparabilityEvidence::Commuting);

        // Two right-expanders over different predicates do not commute.
        let a = lr("p(x,y) :- p(x,z), a(z,y).");
        let b = lr("p(x,y) :- p(x,z), b(z,y).");
        assert!(SeparabilityCert::establish(&a, &b).unwrap().is_none());
    }

    #[test]
    fn boundedness_cert_on_idempotent_filter() {
        let f = lr("p(x,y) :- p(x,y), mark(x).");
        let cert = BoundednessCert::establish(&f, 6).unwrap().unwrap();
        assert_eq!(cert.applications(), 1);
        assert!(cert.rationale().contains("Lemma 6.2"));

        let tc = lr("p(x,y) :- p(x,z), q(z,y).");
        assert!(BoundednessCert::establish(&tc, 6).unwrap().is_none());
    }

    #[test]
    fn redundancy_cert_on_example_6_1() {
        let a = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let cert = RedundancyCert::establish(&a, Symbol::new("cheap"), 8)
            .unwrap()
            .unwrap();
        assert_eq!(cert.pred(), Symbol::new("cheap"));
        assert_eq!(cert.decomposition().l, 1);
        assert!(cert.rationale().contains("Theorem 6.4"));
        // knows is not redundant.
        assert!(RedundancyCert::establish(&a, Symbol::new("knows"), 8)
            .unwrap()
            .is_none());
        // establish_any finds the same bridge.
        let any = RedundancyCert::establish_any(&a, 8).unwrap().unwrap();
        assert_eq!(any.pred(), Symbol::new("cheap"));
    }

    #[test]
    fn redundancy_verify_accepts_genuine_and_rejects_mismatched_witnesses() {
        let a = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let dec = crate::redundancy::decomposition_for_pred(&a, Symbol::new("cheap"), 8)
            .unwrap()
            .unwrap();
        assert!(RedundancyCert::verify(&a, Symbol::new("cheap"), &dec)
            .unwrap()
            .is_some());
        // The same witnesses against a different rule must be rejected.
        let other = lr("buys(x,y) :- likes(x,z), buys(z,y), cheap(y).");
        assert!(RedundancyCert::verify(&other, Symbol::new("cheap"), &dec)
            .unwrap()
            .is_none());
    }

    #[test]
    fn redundancy_verify_rejects_mislabeled_predicates() {
        // The witnesses are genuine, but the claimed predicate must live in
        // C (and not B) — `knows` is B's parameter, so a cert claiming it
        // is redundant must not be minted.
        let a = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let dec = crate::redundancy::decomposition_for_pred(&a, Symbol::new("cheap"), 8)
            .unwrap()
            .unwrap();
        assert!(RedundancyCert::verify(&a, Symbol::new("knows"), &dec)
            .unwrap()
            .is_none());
        assert!(RedundancyCert::verify(&a, Symbol::new("buys"), &dec)
            .unwrap()
            .is_none());
    }

    #[test]
    fn redundancy_verify_rejects_degenerate_indices_without_panicking() {
        let a = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let genuine = crate::redundancy::decomposition_for_pred(&a, Symbol::new("cheap"), 8)
            .unwrap()
            .unwrap();
        let mut zero_l = genuine.clone();
        zero_l.l = 0;
        assert!(RedundancyCert::verify(&a, Symbol::new("cheap"), &zero_l)
            .unwrap()
            .is_none());
        let mut zero_k = genuine.clone();
        zero_k.torsion.k = 0;
        assert!(RedundancyCert::verify(&a, Symbol::new("cheap"), &zero_k)
            .unwrap()
            .is_none());
        let mut inverted = genuine;
        inverted.torsion.n = inverted.torsion.k;
        assert!(RedundancyCert::verify(&a, Symbol::new("cheap"), &inverted)
            .unwrap()
            .is_none());
    }
}
