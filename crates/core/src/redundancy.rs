//! Recursively redundant predicates (paper §4.2, §6.2).
//!
//! A nonrecursive predicate `Q` of an operator `A` is *recursively
//! redundant* in `A*` if some `N` bounds the number of `Q`-factors in every
//! term of the series `A* = Σ Aᵏ` — processing can then stop applying `Q`'s
//! part of the rule after finitely many rounds.
//!
//! * **Theorem 6.3** (Naughton \[16\], restated on bridges): `Q` is
//!   recursively redundant iff it appears in a **uniformly bounded
//!   augmented bridge** of the α-graph with respect to `G_I`.
//! * **Theorem 6.4** (this paper): equivalently, there are `L ≥ 1` and
//!   operators `B`, `C` with `Q` a parameter of `C` but not `B`, `C`
//!   uniformly bounded, `Aᴸ = BCᴸ`, and `Cᴸ(BCᴸ) = Cᴸ(CᴸB)`. This module
//!   *constructs* the witnesses `(L, B, C)` and verifies both equations.
//!
//! The resulting bounded evaluation (Theorem 4.2) is implemented in
//! `linrec-engine`; its correctness against direct evaluation is asserted in
//! the integration tests.

use crate::bounded::{torsion_index, uniformly_bounded, PowerWitness};
use linrec_alpha::{wide_rule, AlphaGraph, BridgeDecomposition, Classification, PersistenceClass};
use linrec_cq::{compose, linear_equivalent, power};
use linrec_datalog::hash::FastSet;
use linrec_datalog::{LinearRule, RuleError, Symbol, Term};

/// Analysis of one augmented bridge (w.r.t. `G_I`) of a rule.
#[derive(Debug, Clone)]
pub struct BridgeRedundancy {
    /// Index of the bridge in the `G_I` decomposition.
    pub bridge: usize,
    /// The bridge's wide rule (the candidate operator `C`).
    pub wide: LinearRule,
    /// Nonrecursive predicates whose atoms live in this bridge.
    pub preds: Vec<Symbol>,
    /// Uniform-boundedness witness for the wide rule, if found.
    pub bounded: Option<PowerWitness>,
}

/// Redundancy analysis of a whole rule.
#[derive(Debug, Clone)]
pub struct RedundancyAnalysis {
    /// Per-bridge results.
    pub bridges: Vec<BridgeRedundancy>,
}

impl RedundancyAnalysis {
    /// All recursively redundant nonrecursive predicates (Theorem 6.3).
    pub fn redundant_preds(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for b in &self.bridges {
            if b.bounded.is_some() {
                out.extend(b.preds.iter().copied());
            }
        }
        out
    }

    /// The bridges witnessing redundancy.
    pub fn redundant_bridges(&self) -> impl Iterator<Item = &BridgeRedundancy> + '_ {
        self.bridges.iter().filter(|b| b.bounded.is_some())
    }
}

/// Apply Theorem 6.3: analyze every augmented bridge of `rule` w.r.t. `G_I`
/// and search its wide rule for uniform boundedness up to `max_power`.
pub fn analyze_redundancy(
    rule: &LinearRule,
    max_power: usize,
) -> Result<RedundancyAnalysis, RuleError> {
    let graph = AlphaGraph::new(rule)?;
    let classes = Classification::classify(rule)?;
    let decomp = BridgeDecomposition::wrt_i(&graph, &classes);
    let mut bridges = Vec::new();
    for (i, _) in decomp.bridges().iter().enumerate() {
        let aug = decomp.augmented(&graph, i);
        let atoms = linrec_alpha::atoms_in_bridge(&graph, &aug)?;
        if atoms.is_empty() {
            continue; // purely dynamic bridge: nothing to elide
        }
        let preds: Vec<Symbol> = atoms
            .iter()
            .map(|&ai| rule.nonrec_atoms()[ai].pred)
            .collect();
        let wide = wide_rule(&graph, &aug)?;
        let bounded = uniformly_bounded(&wide, max_power)?;
        bridges.push(BridgeRedundancy {
            bridge: i,
            wide,
            preds,
            bounded,
        });
    }
    Ok(RedundancyAnalysis { bridges })
}

/// The Theorem 6.4 decomposition witnesses.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The exponent with `Aᴸ = BCᴸ` (Lemma 6.3(b): all link-persistent
    /// variables are link 1-persistent and all rays 1-rays in `Aᴸ`).
    pub l: usize,
    /// Torsion indices of `C`: `Cᴺ = Cᴷ`.
    pub torsion: PowerWitness,
    /// The bounded factor (wide rule of the redundant bridge).
    pub c: LinearRule,
    /// The unbounded factor, with `Aᴸ = B·Cᴸ`.
    pub b: LinearRule,
    /// `Cᴸ` (cached for the engine's bounded evaluation).
    pub c_pow_l: LinearRule,
    /// `Aᴸ` (cached).
    pub a_pow_l: LinearRule,
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            let t = b;
            b = a % b;
            a = t;
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    a / gcd(a, b) * b
}

/// The exponent `L` of Lemma 6.3(b): the least common multiple of the
/// link-persistence cardinalities that is at least the maximum ray length.
pub fn lemma_6_3_exponent(classes: &Classification) -> usize {
    let mut m = 1usize;
    for (_, c) in classes.iter() {
        if let PersistenceClass::LinkPersistent(n) = c {
            m = lcm(m, n);
        }
    }
    let max_ray = classes
        .ray_vars()
        .into_iter()
        .map(|(_, n)| n)
        .max()
        .unwrap_or(0);
    let mut l = m;
    while l < max_ray {
        l += m;
    }
    l
}

/// Construct and verify the Theorem 6.4 decomposition for the given bridge
/// (an index into the `G_I` decomposition of `rule`, as reported by
/// [`analyze_redundancy`]). Returns `None` when the bridge's wide rule is
/// not torsion within `max_power` or when the verification equations fail.
pub fn redundancy_decomposition(
    rule: &LinearRule,
    bridge: usize,
    max_power: usize,
) -> Result<Option<Decomposition>, RuleError> {
    let graph = AlphaGraph::new(rule)?;
    let classes = Classification::classify(rule)?;
    let decomp = BridgeDecomposition::wrt_i(&graph, &classes);
    let aug = decomp.augmented(&graph, bridge);
    let c = wide_rule(&graph, &aug)?;

    let torsion = match torsion_index(&c, max_power)? {
        Some(t) => t,
        None => return Ok(None),
    };

    let l = lemma_6_3_exponent(&classes);
    let a_pow_l = power(rule, l)?;
    let c_pow_l = power(&c, l)?;

    // Lemma 6.5 construction of B on Aᴸ: drop the bridge's atoms (all
    // copies generated by them) and make the bridge's distinguished
    // variables 1-persistent.
    let bridge_preds: FastSet<Symbol> = linrec_alpha::atoms_in_bridge(&graph, &aug)?
        .into_iter()
        .map(|ai| rule.nonrec_atoms()[ai].pred)
        .collect();
    let bridge_vars: FastSet<linrec_datalog::Var> = aug
        .nodes
        .iter()
        .copied()
        .filter(|v| rule.distinguished().contains(v))
        .collect();

    let b_rec_terms: Vec<Term> = a_pow_l
        .head()
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let v = t.as_var().expect("constant-free");
            if bridge_vars.contains(&v) {
                Term::Var(v)
            } else {
                a_pow_l.rec_atom().terms[i]
            }
        })
        .collect();
    let b_rec = linrec_datalog::Atom::new(rule.rec_pred(), b_rec_terms);
    let b_nonrec: Vec<linrec_datalog::Atom> = a_pow_l
        .nonrec_atoms()
        .iter()
        .filter(|a| !bridge_preds.contains(&a.pred))
        .cloned()
        .collect();
    let b = LinearRule::from_parts(a_pow_l.head().clone(), b_rec, b_nonrec)?;

    // Verify Aᴸ = B·Cᴸ.
    let bcl = compose(&b, &c_pow_l)?;
    if !linear_equivalent(&bcl, &a_pow_l) {
        return Ok(None);
    }
    // Verify Cᴸ(BCᴸ) = Cᴸ(CᴸB).
    let lhs = compose(&c_pow_l, &bcl)?;
    let rhs = compose(&c_pow_l, &compose(&c_pow_l, &b)?)?;
    if !linear_equivalent(&lhs, &rhs) {
        return Ok(None);
    }

    Ok(Some(Decomposition {
        l,
        torsion,
        c,
        b,
        c_pow_l,
        a_pow_l,
    }))
}

/// Convenience: find the Theorem 6.4 decomposition for the bridge holding
/// predicate `pred`, if that bridge is uniformly bounded.
pub fn decomposition_for_pred(
    rule: &LinearRule,
    pred: Symbol,
    max_power: usize,
) -> Result<Option<Decomposition>, RuleError> {
    let analysis = analyze_redundancy(rule, max_power)?;
    for b in &analysis.bridges {
        if b.preds.contains(&pred) && b.bounded.is_some() {
            return redundancy_decomposition(rule, b.bridge, max_power);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn lr(src: &str) -> LinearRule {
        parse_linear_rule(src).unwrap()
    }

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn example_6_1_cheap_is_redundant() {
        let a = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let analysis = analyze_redundancy(&a, 8).unwrap();
        let redundant = analysis.redundant_preds();
        assert!(redundant.contains(&sym("cheap")));
        assert!(!redundant.contains(&sym("knows")));
    }

    #[test]
    fn example_6_1_decomposition() {
        let a = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let d = decomposition_for_pred(&a, sym("cheap"), 8)
            .unwrap()
            .expect("cheap is redundant");
        assert_eq!(d.l, 1);
        assert_eq!((d.torsion.k, d.torsion.n), (1, 2));
        // C = buys(x,y) :- buys(x,y), cheap(y); B = the knows-walk.
        let expected_c = lr("buys(x,y) :- buys(x,y), cheap(y).");
        assert!(linear_equivalent(&d.c, &expected_c));
        let expected_b = lr("buys(x,y) :- knows(x,z), buys(z,y).");
        assert!(linear_equivalent(&d.b, &expected_b));
    }

    #[test]
    fn example_6_2_r_is_redundant_with_l_2() {
        let a = lr("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).");
        let analysis = analyze_redundancy(&a, 8).unwrap();
        assert!(analysis.redundant_preds().contains(&sym("r")));
        assert!(!analysis.redundant_preds().contains(&sym("q")));
        let bridge = analysis
            .redundant_bridges()
            .next()
            .expect("one redundant bridge")
            .bridge;
        let d = redundancy_decomposition(&a, bridge, 8)
            .unwrap()
            .expect("Theorem 6.4 satisfied");
        assert_eq!(d.l, 2);
        // Paper: C = P(w,x,y,z) :- P(x,w,x,z), R(x,y).
        let expected_c = lr("p(w,x,y,z) :- p(x,w,x,z), r(x,y).");
        assert!(linear_equivalent(&d.c, &expected_c));
        // Paper: B = P(w,x,y,z) :- P(w,x,y,u1), Q(w,u1), S(u1,u), Q(x,u), S(u,z).
        let expected_b = lr("p(w,x,y,z) :- p(w,x,y,u1), q(w,u1), s(u1,u2), q(x,u2), s(u2,z).");
        assert!(linear_equivalent(&d.b, &expected_b));
        // Paper: A² = BC².
        assert!(linear_equivalent(
            &compose(&d.b, &d.c_pow_l).unwrap(),
            &d.a_pow_l
        ));
    }

    #[test]
    fn example_6_3_still_satisfies_theorem_6_4() {
        // Q(y,u) instead of Q(x,u): BC² ≠ C²B, yet C²(BC²) = C²(C²B).
        let a = lr("p(w,x,y,z) :- p(x,w,x,u), q(y,u), r(x,y), s(u,z).");
        let analysis = analyze_redundancy(&a, 8).unwrap();
        let bridge = analysis
            .redundant_bridges()
            .find(|b| b.preds.contains(&sym("r")))
            .expect("r's bridge is bounded")
            .bridge;
        let d = redundancy_decomposition(&a, bridge, 8)
            .unwrap()
            .expect("Theorem 6.4 satisfied despite BC² ≠ C²B");
        // The composites differ...
        let bc = compose(&d.b, &d.c_pow_l).unwrap();
        let cb = compose(&d.c_pow_l, &d.b).unwrap();
        assert!(!linear_equivalent(&bc, &cb));
        // ...but multiplying by C² on the left equalizes them (verified
        // inside redundancy_decomposition; double-check here).
        let lhs = compose(&d.c_pow_l, &bc).unwrap();
        let rhs = compose(&d.c_pow_l, &cb).unwrap();
        assert!(linear_equivalent(&lhs, &rhs));
    }

    #[test]
    fn transitive_closure_has_no_redundancy() {
        let a = lr("p(x,y) :- p(x,z), e(z,y).");
        let analysis = analyze_redundancy(&a, 6).unwrap();
        assert!(analysis.redundant_preds().is_empty());
    }

    #[test]
    fn lemma_6_3_exponent_computation() {
        // Link 2-persistent cycle and a 1-ray: L = 2.
        let a = lr("p(w,x,y,z) :- p(x,w,x,u), q(x,u), r(x,y), s(u,z).");
        let c = Classification::classify(&a).unwrap();
        assert_eq!(lemma_6_3_exponent(&c), 2);
        // Only a link 1-persistent variable: L = 1.
        let b = lr("buys(x,y) :- knows(x,z), buys(z,y), cheap(y).");
        let c = Classification::classify(&b).unwrap();
        assert_eq!(lemma_6_3_exponent(&c), 1);
    }

    #[test]
    fn redundant_pred_with_no_bridge_is_not_reported() {
        // q's bridge is unbounded (walks grow); nothing redundant.
        let a = lr("p(x,y) :- p(w,y), q(x,w).");
        let analysis = analyze_redundancy(&a, 6).unwrap();
        assert!(analysis.redundant_preds().is_empty());
    }
}
