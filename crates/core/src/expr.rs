//! Operator expressions — the closed semi-ring of Section 2 as a syntax.
//!
//! The paper's manipulations (`A* = B*C*`, `A* = Σ_{m<KL}Aᵐ + …`) are
//! equations between *expressions* over linear operators. This module makes
//! those expressions first-class: an [`OpExpr`] is built from named base
//! operators with `+`, `·`, and `*`, can be simplified with the semi-ring
//! unit/absorption laws, pretty-printed in the paper's notation, and —
//! centrally — **rewritten** by [`decompose_stars`], which replaces every
//! `(Σᵢ Aᵢ)*` subexpression by a product of cluster stars licensed by
//! pairwise commutativity (§3, §7 "partial commutativity").
//!
//! `linrec-engine` evaluates expressions over data
//! (`linrec_engine::eval_expr`), and the integration tests check that
//! rewriting never changes the computed relation.

use crate::decompose::plan_decomposition;
use linrec_datalog::{LinearRule, RuleError};
use std::fmt;

/// A symbolic operator expression over a table of named base operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpExpr {
    /// The additive identity `0` (`0·P = ∅`).
    Zero,
    /// The multiplicative identity `1` (`1·P = P`).
    One,
    /// A base operator, indexed into the [`ExprContext`].
    Base(usize),
    /// Sum (union of results).
    Sum(Vec<OpExpr>),
    /// Product; `Product([A, B])` means `A·B`, i.e. apply `B` first.
    Product(Vec<OpExpr>),
    /// Kleene star `E* = Σₖ Eᵏ`.
    Star(Box<OpExpr>),
}

/// A table of named base operators shared by a family of expressions.
#[derive(Debug, Clone)]
pub struct ExprContext {
    rules: Vec<(String, LinearRule)>,
}

impl ExprContext {
    /// Build a context from `(name, rule)` pairs; all rules are aligned to
    /// the first rule's consequent.
    pub fn new(rules: Vec<(String, LinearRule)>) -> Result<ExprContext, RuleError> {
        let head = rules
            .first()
            .ok_or(RuleError::ConsequentMismatch)?
            .1
            .head()
            .clone();
        let rules = rules
            .into_iter()
            .map(|(n, r)| Ok((n, r.align_consequent(&head)?)))
            .collect::<Result<Vec<_>, RuleError>>()?;
        Ok(ExprContext { rules })
    }

    /// Number of base operators.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff the context is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule for base operator `i`.
    pub fn rule(&self, i: usize) -> &LinearRule {
        &self.rules[i].1
    }

    /// The name of base operator `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.rules[i].0
    }

    /// All rules, in index order.
    pub fn rules(&self) -> Vec<LinearRule> {
        self.rules.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Render an expression in the paper's notation.
    pub fn render(&self, e: &OpExpr) -> String {
        fn go(ctx: &ExprContext, e: &OpExpr, parent_product: bool) -> String {
            match e {
                OpExpr::Zero => "0".into(),
                OpExpr::One => "1".into(),
                OpExpr::Base(i) => ctx.name(*i).to_owned(),
                OpExpr::Sum(terms) => {
                    let inner = terms
                        .iter()
                        .map(|t| go(ctx, t, false))
                        .collect::<Vec<_>>()
                        .join(" + ");
                    if parent_product {
                        format!("({inner})")
                    } else {
                        inner
                    }
                }
                OpExpr::Product(factors) => factors
                    .iter()
                    .map(|f| go(ctx, f, true))
                    .collect::<Vec<_>>()
                    .join(""),
                OpExpr::Star(inner) => {
                    let body = go(ctx, inner, false);
                    if matches!(**inner, OpExpr::Base(_) | OpExpr::One | OpExpr::Zero) {
                        format!("{body}*")
                    } else {
                        format!("({body})*")
                    }
                }
            }
        }
        go(self, e, false)
    }
}

impl OpExpr {
    /// `(Σ operators)*` for the given base indices.
    pub fn star_of_sum(indices: impl IntoIterator<Item = usize>) -> OpExpr {
        OpExpr::Star(Box::new(OpExpr::Sum(
            indices.into_iter().map(OpExpr::Base).collect(),
        )))
    }

    /// Apply the semi-ring unit and absorption laws:
    /// `E+0 = E`, `E·1 = E`, `E·0 = 0`, `0* = 1* = 1`, flattening nested
    /// sums/products and collapsing singletons.
    pub fn simplify(&self) -> OpExpr {
        match self {
            OpExpr::Zero => OpExpr::Zero,
            OpExpr::One => OpExpr::One,
            OpExpr::Base(i) => OpExpr::Base(*i),
            OpExpr::Sum(terms) => {
                let mut flat = Vec::new();
                for t in terms {
                    match t.simplify() {
                        OpExpr::Zero => {}
                        OpExpr::Sum(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => OpExpr::Zero,
                    1 => flat.pop().unwrap(),
                    _ => OpExpr::Sum(flat),
                }
            }
            OpExpr::Product(factors) => {
                let mut flat = Vec::new();
                for f in factors {
                    match f.simplify() {
                        OpExpr::One => {}
                        OpExpr::Zero => return OpExpr::Zero,
                        OpExpr::Product(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => OpExpr::One,
                    1 => flat.pop().unwrap(),
                    _ => OpExpr::Product(flat),
                }
            }
            OpExpr::Star(inner) => match inner.simplify() {
                OpExpr::Zero | OpExpr::One => OpExpr::One,
                other => OpExpr::Star(Box::new(other)),
            },
        }
    }

    /// The base operators mentioned by the expression.
    pub fn bases(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn go(e: &OpExpr, out: &mut Vec<usize>) {
            match e {
                OpExpr::Base(i) => {
                    if !out.contains(i) {
                        out.push(*i);
                    }
                }
                OpExpr::Sum(v) | OpExpr::Product(v) => v.iter().for_each(|e| go(e, out)),
                OpExpr::Star(inner) => go(inner, out),
                OpExpr::Zero | OpExpr::One => {}
            }
        }
        go(self, &mut out);
        out
    }
}

impl fmt::Display for OpExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Nameless rendering (indices as A0, A1, …).
        match self {
            OpExpr::Zero => write!(f, "0"),
            OpExpr::One => write!(f, "1"),
            OpExpr::Base(i) => write!(f, "A{i}"),
            OpExpr::Sum(v) => {
                let parts: Vec<String> = v.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" + "))
            }
            OpExpr::Product(v) => {
                for e in v {
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            OpExpr::Star(inner) => match **inner {
                // Sums display with their own parentheses.
                OpExpr::Base(_) | OpExpr::Sum(_) => write!(f, "{inner}*"),
                _ => write!(f, "({inner})*"),
            },
        }
    }
}

/// Rewrite every `Star(Sum(bases…))` subexpression into a product of
/// cluster stars, as licensed by pairwise commutativity: the §3
/// decomposition `(B+C)* = B*C*`, generalized to commuting clusters (§7).
/// Subexpressions whose star body is not a sum of bases are left intact.
/// Returns the rewritten expression together with a log of the applied
/// decompositions.
pub fn decompose_stars(
    expr: &OpExpr,
    ctx: &ExprContext,
) -> Result<(OpExpr, Vec<String>), RuleError> {
    let mut log = Vec::new();
    let out = go(&expr.simplify(), ctx, &mut log)?;
    return Ok((out.simplify(), log));

    fn go(e: &OpExpr, ctx: &ExprContext, log: &mut Vec<String>) -> Result<OpExpr, RuleError> {
        Ok(match e {
            OpExpr::Star(inner) => {
                // Only sums of bases are decomposable by the planner.
                let bases: Option<Vec<usize>> = match &**inner {
                    OpExpr::Base(i) => Some(vec![*i]),
                    OpExpr::Sum(terms) => terms
                        .iter()
                        .map(|t| match t {
                            OpExpr::Base(i) => Some(*i),
                            _ => None,
                        })
                        .collect(),
                    _ => None,
                };
                match bases {
                    Some(indices) if indices.len() > 1 => {
                        let rules: Vec<LinearRule> =
                            indices.iter().map(|&i| ctx.rule(i).clone()).collect();
                        let plan = plan_decomposition(&rules, 0)?;
                        if plan.is_decomposed() {
                            let factors: Vec<OpExpr> = plan
                                .clusters
                                .iter()
                                .map(|cluster| {
                                    OpExpr::Star(Box::new(OpExpr::Sum(
                                        cluster
                                            .iter()
                                            .map(|&ci| OpExpr::Base(indices[ci]))
                                            .collect(),
                                    )))
                                })
                                .collect();
                            let new = OpExpr::Product(factors).simplify();
                            log.push(format!(
                                "{} => {} (pairwise commutativity)",
                                ctx.render(e),
                                ctx.render(&new)
                            ));
                            new
                        } else {
                            e.clone()
                        }
                    }
                    _ => OpExpr::Star(Box::new(go(inner, ctx, log)?)),
                }
            }
            OpExpr::Sum(v) => OpExpr::Sum(
                v.iter()
                    .map(|t| go(t, ctx, log))
                    .collect::<Result<_, _>>()?,
            ),
            OpExpr::Product(v) => OpExpr::Product(
                v.iter()
                    .map(|t| go(t, ctx, log))
                    .collect::<Result<_, _>>()?,
            ),
            other => other.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::parse_linear_rule;

    fn ctx_updown() -> ExprContext {
        ExprContext::new(vec![
            (
                "B".into(),
                parse_linear_rule("p(x,y) :- p(x,z), down(z,y).").unwrap(),
            ),
            (
                "C".into(),
                parse_linear_rule("p(x,y) :- p(w,y), up(x,w).").unwrap(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn rendering_matches_paper_notation() {
        let ctx = ctx_updown();
        let e = OpExpr::star_of_sum([0, 1]);
        assert_eq!(ctx.render(&e), "(B + C)*");
        let p = OpExpr::Product(vec![
            OpExpr::Star(Box::new(OpExpr::Base(0))),
            OpExpr::Star(Box::new(OpExpr::Base(1))),
        ]);
        assert_eq!(ctx.render(&p), "B*C*");
    }

    #[test]
    fn simplify_applies_unit_laws() {
        let e = OpExpr::Sum(vec![
            OpExpr::Zero,
            OpExpr::Product(vec![OpExpr::One, OpExpr::Base(0), OpExpr::One]),
        ]);
        assert_eq!(e.simplify(), OpExpr::Base(0));
        let z = OpExpr::Product(vec![OpExpr::Base(0), OpExpr::Zero]);
        assert_eq!(z.simplify(), OpExpr::Zero);
        assert_eq!(OpExpr::Star(Box::new(OpExpr::Zero)).simplify(), OpExpr::One);
        let nested = OpExpr::Sum(vec![OpExpr::Sum(vec![OpExpr::Base(0), OpExpr::Base(1)])]);
        assert_eq!(
            nested.simplify(),
            OpExpr::Sum(vec![OpExpr::Base(0), OpExpr::Base(1)])
        );
    }

    #[test]
    fn decompose_rewrites_commuting_star() {
        let ctx = ctx_updown();
        let e = OpExpr::star_of_sum([0, 1]);
        let (rewritten, log) = decompose_stars(&e, &ctx).unwrap();
        assert_eq!(ctx.render(&rewritten), "B*C*");
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("commutativity"));
    }

    #[test]
    fn decompose_leaves_noncommuting_star_alone() {
        let ctx = ExprContext::new(vec![
            (
                "B".into(),
                parse_linear_rule("p(x,y) :- p(x,z), a(z,y).").unwrap(),
            ),
            (
                "C".into(),
                parse_linear_rule("p(x,y) :- p(x,z), b(z,y).").unwrap(),
            ),
        ])
        .unwrap();
        let e = OpExpr::star_of_sum([0, 1]);
        let (rewritten, log) = decompose_stars(&e, &ctx).unwrap();
        assert_eq!(rewritten, e);
        assert!(log.is_empty());
    }

    #[test]
    fn decompose_recurses_into_products() {
        let ctx = ctx_updown();
        // 1 · (B+C)* — the star is nested under a product.
        let e = OpExpr::Product(vec![OpExpr::One, OpExpr::star_of_sum([0, 1])]);
        let (rewritten, log) = decompose_stars(&e, &ctx).unwrap();
        assert_eq!(ctx.render(&rewritten), "B*C*");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn bases_are_collected_in_order() {
        let e = OpExpr::Product(vec![
            OpExpr::Star(Box::new(OpExpr::Base(2))),
            OpExpr::Sum(vec![OpExpr::Base(0), OpExpr::Base(2)]),
        ]);
        assert_eq!(e.bases(), vec![2, 0]);
    }

    #[test]
    fn display_without_context() {
        let e = OpExpr::star_of_sum([0, 1]);
        assert_eq!(e.to_string(), "(A0 + A1)*");
    }
}
