//! **linrec-core** — the primary contribution of Ioannidis,
//! *"Commutativity and its Role in the Processing of Linear Recursion"*
//! (VLDB 1989 / J. Logic Programming 1992), implemented in full:
//!
//! | Paper | Here |
//! |---|---|
//! | commutativity by definition (§5) | [`commute_by_definition`] |
//! | Theorem 5.1 sufficient condition | [`commutes_sufficient`] |
//! | Theorems 5.2/5.3 exact O(a log a) test | [`commutes_exact`] |
//! | operator algebra, `CB ≤ BᵏCˡ` (§2–3, \[13\]) | [`algebra`] |
//! | star-decomposition planning (§3, §7) | [`plan_decomposition`] |
//! | separability, Theorems 4.1/6.1/6.2 (§4.1, §6.1) | [`separability`] |
//! | uniform boundedness / torsion (§4.2, Lemma 6.2) | [`bounded`] |
//! | recursive redundancy, Theorems 6.3/6.4 (§4.2, §6.2) | [`redundancy`] |
//!
//! # Quick start
//!
//! ```
//! use linrec_datalog::parse_linear_rule;
//! use linrec_core::{commutes_exact, ExactOutcome};
//!
//! // The two linear forms of transitive closure (Example 5.2).
//! let up = parse_linear_rule("p(x,y) :- p(x,z), q(z,y).").unwrap();
//! let dn = parse_linear_rule("p(x,y) :- p(w,y), q(x,w).").unwrap();
//! assert_eq!(commutes_exact(&up, &dn).unwrap(), ExactOutcome::Commute);
//! // Consequence: (up + dn)* = up* dn*, evaluable by the decomposed
//! // strategy of `linrec-engine` with provably no more duplicates
//! // (Theorem 3.1).
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod bounded;
pub mod cert;
pub mod commutativity;
pub mod decompose;
pub mod exact;
pub mod expr;
pub mod higher_power;
pub mod redundancy;
pub mod report;
pub mod separability;
pub mod sufficient;

pub use algebra::{identity_operator, lassez_maher_sum_condition, semi_commute, OperatorSum};
pub use bounded::{search_is_complete, torsion_index, uniformly_bounded, PowerWitness};
pub use cert::{
    BoundednessCert, CommutativityCert, RedundancyCert, SeparabilityCert, SeparabilityEvidence,
};
pub use commutativity::{commute_by_definition, composites};
pub use decompose::{pair_commutes, plan_decomposition, DecompositionPlan, PairRelation};
pub use exact::{
    commutes_exact, is_restricted_pair, restricted_class_violations, ExactOutcome, Restriction,
};
pub use expr::{decompose_stars, ExprContext, OpExpr};
pub use higher_power::{powers_commute, PowerCommutation};
pub use redundancy::{
    analyze_redundancy, decomposition_for_pred, lemma_6_3_exponent, redundancy_decomposition,
    BridgeRedundancy, Decomposition, RedundancyAnalysis,
};
pub use report::{pair_report, redundancy_report};
pub use separability::{is_separable, separability_report, SeparabilityReport};
pub use sufficient::{
    commutes_sufficient, sufficiency_report, Sufficiency, SufficiencyReport, VarCondition,
};
