//! The durable store: a data directory of snapshot generations, one live
//! WAL, and a manifest that atomically names the trusted pair.
//!
//! # Directory layout
//!
//! ```text
//! <data-dir>/
//!   MANIFEST             generation pointer (written via temp + rename)
//!   snapshot-<gen>.snap  arena snapshot for generation <gen>  (gen ≥ 1)
//!   wal-<gen>.log        insert batches acknowledged since snapshot <gen>
//! ```
//!
//! Generation 0 is the fresh store: no snapshot yet, batches accumulate in
//! `wal-0.log` and replay over whatever initial state the caller builds
//! (for `linrec serve`, the program file's facts). Every checkpoint bumps
//! the generation: the new snapshot is written to a temp file, fsynced,
//! renamed into place, the directory fsynced; a fresh WAL is created; and
//! only then does the manifest move — so a crash at any point leaves the
//! previous generation fully intact. Old generations are pruned after the
//! manifest lands (their batches are folded into the new snapshot).
//!
//! # Write protocol
//!
//! `open` reads the manifest only. `recover` must run next: it loads and
//! validates the live snapshot, replays the WAL (truncating a torn tail),
//! and only then unlocks `append_batch`/`checkpoint` — an append may never
//! land after unvalidated bytes. `append_batch` fsyncs before returning,
//! so a batch the caller acknowledges is on disk.
//!
//! All I/O goes through the [`Vfs`] passed to [`Store::open_with`]
//! (production callers use [`Store::open`], which is `open_with` on
//! [`StdVfs`]) — the crash-recovery and chaos suites substitute a
//! `FaultVfs` to drive every path below through injected disk faults.

use crate::crc::crc32;
use crate::error::StorageError;
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotData};
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{Batch, Wal};
use linrec_datalog::{Symbol, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST_MAGIC: [u8; 8] = *b"LINRMAN1";
/// Current manifest format version.
pub const MANIFEST_FORMAT_VERSION: u32 = 1;
/// Manifest layout: magic 8, version u32, reserved u32, generation u64,
/// epoch u64, next_seq u64 (WAL sequence floor — keeps batch sequence
/// numbers globally monotone across checkpoint + restart), crc u32 over
/// bytes 0..40, pad u32.
const MANIFEST_LEN: usize = 48;

/// When the service should fold the WAL into a fresh snapshot generation.
/// Both knobs bound cold-start replay work; whichever trips first wins.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many acknowledged batches.
    pub max_wal_batches: u64,
    /// …or after the WAL holds this many payload bytes.
    pub max_wal_bytes: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> CheckpointPolicy {
        CheckpointPolicy {
            max_wal_batches: 256,
            max_wal_bytes: 8 << 20,
        }
    }
}

impl CheckpointPolicy {
    /// True when the WAL pressure warrants a checkpoint.
    pub fn should_checkpoint(&self, wal_batches: u64, wal_bytes: u64) -> bool {
        wal_batches >= self.max_wal_batches || wal_bytes >= self.max_wal_bytes
    }
}

/// Everything `recover` hands back: the newest valid snapshot (if any
/// checkpoint ever completed) and the WAL tail to replay on top of it.
pub struct Recovered {
    /// The live snapshot; `None` for a store that never checkpointed
    /// (replay then starts from the caller's initial state).
    pub snapshot: Option<SnapshotData>,
    /// Acknowledged batches since that snapshot, in append order.
    pub batches: Vec<Batch>,
}

/// A durable store rooted at one data directory. See the module docs for
/// the layout and the write protocol.
pub struct Store {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    generation: u64,
    manifest_epoch: u64,
    /// Sequence floor from the manifest: the next append must carry at
    /// least this, even if the live WAL (rotated at the last checkpoint)
    /// is empty.
    manifest_seq: u64,
    wal: Option<Wal>,
    wal_batches: u64,
}

impl Store {
    /// Open (creating if needed) the store at `dir` on the production
    /// filesystem. No data is loaded yet — call [`Store::recover`] next.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StorageError> {
        Store::open_with(dir, Arc::new(StdVfs))
    }

    /// [`Store::open`] on an explicit [`Vfs`] — the seam the fault-injection
    /// suites use to drive every I/O below through a `FaultVfs`.
    pub fn open_with(dir: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> Result<Store, StorageError> {
        let dir = dir.as_ref().to_owned();
        vfs.create_dir_all(&dir)
            .map_err(|e| StorageError::io(&dir, e))?;
        let manifest = dir.join("MANIFEST");
        let manifest_state = match vfs.read(&manifest) {
            Ok(bytes) => Some(read_manifest(&bytes, &manifest)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(StorageError::io(&manifest, e)),
        };
        if manifest_state.is_none() {
            // No manifest: the only files a crash can legitimately leave
            // here are generation 0's WAL plus orphans of a first
            // checkpoint that died before its manifest swap — and those
            // always coexist with `wal-0.log` (pruning runs after the
            // swap). Snapshot/WAL files *without* `wal-0.log` are
            // someone's data this manifest never pointed at; sweeping
            // them would destroy it, so refuse with the file list.
            check_stray_state(&*vfs, &dir)?;
        }
        let (generation, manifest_epoch, manifest_seq) = manifest_state.unwrap_or((0, 0, 1));
        sweep_stale(&*vfs, &dir, generation);
        Ok(Store {
            vfs,
            dir,
            generation,
            manifest_epoch,
            manifest_seq,
            wal: None,
            wal_batches: 0,
        })
    }

    /// The live snapshot generation (0 before the first checkpoint).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The [`Vfs`] this store performs all I/O through.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// Sequence number of the last batch folded into the live snapshot
    /// generation plus the replayed WAL tail — i.e. the next append's
    /// floor. Meaningful after [`Store::recover`].
    pub fn next_seq(&self) -> u64 {
        self.wal.as_ref().map_or(self.manifest_seq, Wal::next_seq)
    }

    /// WAL pressure since the last checkpoint: `(batches, payload bytes)`.
    pub fn wal_pressure(&self) -> (u64, u64) {
        (
            self.wal_batches,
            self.wal.as_ref().map_or(0, Wal::payload_bytes),
        )
    }

    fn snapshot_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{gen}.snap"))
    }

    fn wal_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("wal-{gen}.log"))
    }

    /// Load the newest valid snapshot and replay the WAL tail (truncating
    /// a torn tail in place). Unlocks the write paths.
    ///
    /// The contract the recovery tests enforce: this either returns a
    /// state equivalent to some acknowledged-batch prefix, or a typed
    /// [`StorageError`] — never a panic, never a silently wrong database.
    pub fn recover(&mut self) -> Result<Recovered, StorageError> {
        let mut sp = linrec_obs::span("store.recover");
        sp.attr("generation", self.generation);
        let t0 = linrec_obs::enabled().then(std::time::Instant::now);
        let snapshot = if self.generation > 0 {
            let path = self.snapshot_path(self.generation);
            let bytes = self
                .vfs
                .read(&path)
                .map_err(|e| StorageError::io(&path, e))?;
            let snap = decode_snapshot(&bytes, &path)?;
            if snap.epoch != self.manifest_epoch {
                return Err(StorageError::corrupt(
                    &path,
                    format!(
                        "snapshot epoch {} disagrees with manifest epoch {}",
                        snap.epoch, self.manifest_epoch
                    ),
                ));
            }
            Some(snap)
        } else {
            None
        };
        let mut wal = Wal::open_or_create(&self.vfs, &self.wal_path(self.generation))?;
        let batches = wal.replay_and_truncate()?;
        // The manifest's floor keeps sequence numbers globally monotone
        // even when the live WAL is empty (rotated at the last checkpoint,
        // then restarted).
        if wal.next_seq() < self.manifest_seq {
            wal.set_next_seq(self.manifest_seq);
        }
        self.wal_batches = batches.len() as u64;
        self.wal = Some(wal);
        if let Some(t0) = t0 {
            let prof = crate::profile::store();
            prof.recover_ns.observe(t0.elapsed().as_nanos() as u64);
            prof.replayed_batches.inc_by(batches.len() as u64);
            sp.attr("replayed", batches.len());
        }
        Ok(Recovered { snapshot, batches })
    }

    /// Append one acknowledged batch to the WAL (fsynced before this
    /// returns). Returns the batch's global sequence number.
    ///
    /// On failure the batch is guaranteed absent from the acknowledged
    /// prefix and the WAL will roll any partial bytes back before the
    /// next attempt — retrying this call is always safe.
    pub fn append_batch(&mut self, inserts: &[(Symbol, Vec<Value>)]) -> Result<u64, StorageError> {
        let wal = self.wal.as_mut().ok_or(StorageError::NotRecovered)?;
        let (seq, _bytes) = wal.append(inserts)?;
        self.wal_batches += 1;
        Ok(seq)
    }

    /// Write `data` as the next snapshot generation and atomically make it
    /// live: temp + rename + directory fsync for the snapshot, a fresh
    /// WAL, then the manifest swap. Prunes superseded generations (their
    /// batches are folded into the new snapshot). Returns the new
    /// generation number.
    ///
    /// A failure anywhere before the manifest swap leaves the previous
    /// generation fully live (orphans are swept at the next open), so the
    /// caller may keep appending to the current WAL and retry later.
    pub fn checkpoint(&mut self, data: &SnapshotData) -> Result<u64, StorageError> {
        let mut sp = linrec_obs::span("store.checkpoint");
        sp.attr("epoch", data.epoch);
        let t0 = linrec_obs::enabled().then(std::time::Instant::now);
        let old_wal_seq = match &self.wal {
            Some(wal) => wal.next_seq(),
            None => return Err(StorageError::NotRecovered),
        };
        let gen = self.generation + 1;

        // 1. Snapshot: temp + fsync + rename + dir fsync.
        let snap_path = self.snapshot_path(gen);
        let tmp_path = self.dir.join(format!("snapshot-{gen}.tmp"));
        let bytes = encode_snapshot(data);
        {
            let mut f = self
                .vfs
                .create(&tmp_path)
                .map_err(|e| StorageError::io(&tmp_path, e))?;
            f.write_all(&bytes)
                .and_then(|_| f.sync_all())
                .map_err(|e| StorageError::io(&tmp_path, e))?;
        }
        self.vfs
            .rename(&tmp_path, &snap_path)
            .map_err(|e| StorageError::io(&snap_path, e))?;
        sync_dir(&*self.vfs, &self.dir)?;

        // 2. Fresh WAL for the new generation; global seq numbering
        //    continues across the rotation.
        let wal_path = self.wal_path(gen);
        let _ = self.vfs.remove_file(&wal_path); // stale orphan from a crashed checkpoint
        let mut wal = Wal::open_or_create(&self.vfs, &wal_path)?;
        wal.set_next_seq(old_wal_seq);

        // 3. Manifest swap: after this rename (plus dir fsync) the new
        //    generation is the one recovery will trust. The sequence floor
        //    rides along so batch numbering survives the rotation across
        //    restarts.
        write_manifest(&*self.vfs, &self.dir, gen, data.epoch, old_wal_seq)?;

        // 4. Prune the generation just superseded — best-effort: a
        //    leftover file is disk waste, not a correctness problem, and
        //    anything older was already removed by an earlier checkpoint
        //    or by `open`'s stale sweep.
        let _ = self.vfs.remove_file(&self.snapshot_path(self.generation));
        let _ = self.vfs.remove_file(&self.wal_path(self.generation));

        self.generation = gen;
        self.manifest_epoch = data.epoch;
        self.manifest_seq = old_wal_seq;
        self.wal = Some(wal);
        self.wal_batches = 0;
        if let Some(t0) = t0 {
            let prof = crate::profile::store();
            prof.checkpoint_ns.observe(t0.elapsed().as_nanos() as u64);
            prof.checkpoints.inc();
            sp.attr("generation", gen);
        }
        Ok(gen)
    }
}

/// With no manifest present, any snapshot/WAL file not explained by the
/// write protocol (see [`Store::open_with`]) makes the directory
/// untrustworthy: return a typed error naming the files instead of
/// sweeping them.
fn check_stray_state(vfs: &dyn Vfs, dir: &Path) -> Result<(), StorageError> {
    let Ok(names) = vfs.read_dir_names(dir) else {
        return Ok(()); // unreadable dir surfaces as an Io error later
    };
    if names.iter().any(|n| n == "wal-0.log") {
        return Ok(()); // a fresh store's own state, possibly mid-first-checkpoint
    }
    let mut strays: Vec<String> = names
        .into_iter()
        .filter(|n| {
            let is_snap = n.starts_with("snapshot-") && n.ends_with(".snap");
            let is_wal = n.starts_with("wal-") && n.ends_with(".log");
            is_snap || is_wal
        })
        .collect();
    if strays.is_empty() {
        Ok(())
    } else {
        strays.sort();
        Err(StorageError::StrayState {
            dir: dir.display().to_string(),
            files: strays,
        })
    }
}

/// Remove files that are not part of the live generation: superseded
/// snapshots/WALs a crashed process never pruned, orphans of a checkpoint
/// that crashed before its manifest swap, and stray temp files. One
/// directory listing at open, so checkpoints stay O(1) in the store's age.
fn sweep_stale(vfs: &dyn Vfs, dir: &Path, live_gen: u64) {
    let Ok(names) = vfs.read_dir_names(dir) else {
        return;
    };
    for name in names {
        let stale = if let Some(g) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".snap"))
        {
            g.parse::<u64>().is_ok_and(|g| g != live_gen)
        } else if let Some(g) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
        {
            g.parse::<u64>().is_ok_and(|g| g != live_gen)
        } else {
            name.ends_with(".tmp")
        };
        if stale {
            let _ = vfs.remove_file(&dir.join(&name));
        }
    }
}

fn sync_dir(vfs: &dyn Vfs, dir: &Path) -> Result<(), StorageError> {
    vfs.sync_dir(dir).map_err(|e| StorageError::io(dir, e))
}

fn write_manifest(
    vfs: &dyn Vfs,
    dir: &Path,
    generation: u64,
    epoch: u64,
    next_seq: u64,
) -> Result<(), StorageError> {
    let mut bytes = Vec::with_capacity(MANIFEST_LEN);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&MANIFEST_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&generation.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&next_seq.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    debug_assert_eq!(bytes.len(), MANIFEST_LEN);

    let tmp = dir.join("MANIFEST.tmp");
    let path = dir.join("MANIFEST");
    {
        let mut f = vfs.create(&tmp).map_err(|e| StorageError::io(&tmp, e))?;
        f.write_all(&bytes)
            .and_then(|_| f.sync_all())
            .map_err(|e| StorageError::io(&tmp, e))?;
    }
    vfs.rename(&tmp, &path)
        .map_err(|e| StorageError::io(&path, e))?;
    sync_dir(vfs, dir)
}

fn read_manifest(bytes: &[u8], path: &Path) -> Result<(u64, u64, u64), StorageError> {
    if bytes.len() != MANIFEST_LEN || bytes[..8] != MANIFEST_MAGIC {
        return Err(StorageError::corrupt(path, "bad manifest"));
    }
    let crc = u32::from_le_bytes(bytes[40..44].try_into().unwrap());
    if crc32(&bytes[..40]) != crc {
        return Err(StorageError::corrupt(path, "manifest checksum mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != MANIFEST_FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            file: path.display().to_string(),
            found: version,
        });
    }
    let generation = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let epoch = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let next_seq = u64::from_le_bytes(bytes[32..40].try_into().unwrap()).max(1);
    Ok((generation, epoch, next_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ViewSnapshot;
    use crate::vfs::{FaultKind, FaultOp, FaultPlan, FaultVfs};
    use linrec_datalog::{Database, Relation};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "linrec-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn state(epoch: u64, edges: &[(i64, i64)]) -> SnapshotData {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs(edges.iter().copied()));
        SnapshotData {
            epoch,
            db,
            views: vec![ViewSnapshot {
                name: "tc".into(),
                fingerprint: "seed=e|rule".into(),
                relation: Arc::new(Relation::from_pairs(edges.iter().copied())),
            }],
        }
    }

    fn pair_batch(i: i64) -> Vec<(Symbol, Vec<Value>)> {
        vec![(Symbol::new("e"), vec![Value::Int(i), Value::Int(i + 1)])]
    }

    #[test]
    fn fresh_store_recovers_empty_and_accepts_batches() {
        let dir = tmpdir("fresh");
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.generation(), 0);
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.batches.is_empty());
        assert_eq!(store.append_batch(&pair_batch(1)).unwrap(), 1);
        assert_eq!(store.append_batch(&pair_batch(2)).unwrap(), 2);
        assert_eq!(store.wal_pressure().0, 2);

        // Reopen: the two batches replay from generation 0's WAL.
        let mut store = Store::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.batches.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_before_recover_are_refused() {
        let dir = tmpdir("norecover");
        let mut store = Store::open(&dir).unwrap();
        assert!(matches!(
            store.append_batch(&pair_batch(1)),
            Err(StorageError::NotRecovered)
        ));
        assert!(matches!(
            store.checkpoint(&state(1, &[(1, 2)])),
            Err(StorageError::NotRecovered)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_generation_and_prunes() {
        let dir = tmpdir("rotate");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        store.append_batch(&pair_batch(1)).unwrap();
        let gen = store.checkpoint(&state(3, &[(1, 2), (2, 3)])).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(store.wal_pressure(), (0, 0));
        // Old generation files are gone; the new pair exists.
        assert!(!dir.join("wal-0.log").exists());
        assert!(dir.join("snapshot-1.snap").exists());
        assert!(dir.join("wal-1.log").exists());
        // Seq numbering survives the rotation.
        assert_eq!(store.append_batch(&pair_batch(3)).unwrap(), 2);

        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.generation(), 1);
        let rec = store.recover().unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.db.relation_named("e").unwrap().len(), 2);
        assert_eq!(snap.views[0].name, "tc");
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_numbers_survive_checkpoint_plus_restart() {
        // Regression: the rotated WAL is empty after a checkpoint, so
        // without the manifest's sequence floor a restart would hand out
        // seq 1 again.
        let dir = tmpdir("seqfloor");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        for i in 0..3 {
            assert_eq!(store.append_batch(&pair_batch(i)).unwrap(), i as u64 + 1);
        }
        store.checkpoint(&state(3, &[(1, 2)])).unwrap();
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.batches.is_empty(), "WAL was rotated at the checkpoint");
        assert_eq!(
            store.append_batch(&pair_batch(9)).unwrap(),
            4,
            "sequence numbering continues past the checkpointed prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphans_of_a_crashed_checkpoint() {
        let dir = tmpdir("sweep");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        store.checkpoint(&state(1, &[(1, 2)])).unwrap();
        // Fake a crashed later checkpoint (files exist, manifest does not
        // point at them) plus a stray temp file and a superseded WAL.
        std::fs::write(dir.join("snapshot-2.snap"), b"half-written").unwrap();
        std::fs::write(dir.join("wal-2.log"), b"orphan").unwrap();
        std::fs::write(dir.join("snapshot-9.tmp"), b"temp").unwrap();
        std::fs::write(dir.join("wal-0.log"), b"superseded").unwrap();
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        assert!(!dir.join("snapshot-2.snap").exists());
        assert!(!dir.join("wal-2.log").exists());
        assert!(!dir.join("snapshot-9.tmp").exists());
        assert!(!dir.join("wal-0.log").exists());
        assert!(dir.join("snapshot-1.snap").exists(), "live pair untouched");
        assert!(dir.join("wal-1.log").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = tmpdir("corruptsnap");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        store.checkpoint(&state(1, &[(1, 2)])).unwrap();
        // Flip a byte deep in the snapshot body.
        let path = dir.join("snapshot-1.snap");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert!(matches!(store.recover(), Err(StorageError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let dir = tmpdir("corruptman");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        store.checkpoint(&state(1, &[(1, 2)])).unwrap();
        let path = dir.join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_live_snapshot_is_a_typed_error() {
        let dir = tmpdir("missingsnap");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        store.checkpoint(&state(1, &[(1, 2)])).unwrap();
        std::fs::remove_file(dir.join("snapshot-1.snap")).unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert!(matches!(store.recover(), Err(StorageError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_files_without_a_generation_are_a_typed_error() {
        // A populated directory whose MANIFEST vanished: the store must
        // name the files it refuses to trust, not silently sweep them.
        let dir = tmpdir("stray");
        let mut store = Store::open(&dir).unwrap();
        store.recover().unwrap();
        store.checkpoint(&state(1, &[(1, 2)])).unwrap();
        std::fs::remove_file(dir.join("MANIFEST")).unwrap();
        match Store::open(&dir) {
            Err(StorageError::StrayState { files, .. }) => {
                assert_eq!(files, vec!["snapshot-1.snap", "wal-1.log"]);
            }
            Err(other) => panic!("expected StrayState, got {other:?}"),
            Ok(_) => panic!("expected StrayState, got a store"),
        }
        // …and the files really survived the refused open.
        assert!(dir.join("snapshot-1.snap").exists());
        assert!(dir.join("wal-1.log").exists());

        // But a crashed *first* checkpoint (orphans + wal-0.log, still no
        // manifest) is the write protocol's own state: open proceeds and
        // sweeps the orphans.
        let dir2 = tmpdir("stray-wal0");
        std::fs::create_dir_all(&dir2).unwrap();
        let mut store = Store::open(&dir2).unwrap();
        store.recover().unwrap();
        store.append_batch(&pair_batch(1)).unwrap();
        std::fs::write(dir2.join("snapshot-1.snap"), b"orphan").unwrap();
        let mut store = Store::open(&dir2).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert!(!dir2.join("snapshot-1.snap").exists());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn failed_checkpoint_leaves_previous_generation_live() {
        let dir = tmpdir("ckptfault");
        // Rename 1 = snapshot-1 publish: dropping it must leave gen 0
        // fully live and the WAL still appendable.
        let fault =
            FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Rename, 1, FaultKind::DropRename));
        let vfs: Arc<dyn Vfs> = fault.clone();
        let mut store = Store::open_with(&dir, vfs).unwrap();
        store.recover().unwrap();
        store.append_batch(&pair_batch(1)).unwrap();
        assert!(store.checkpoint(&state(2, &[(1, 2)])).is_err());
        assert_eq!(store.generation(), 0, "generation did not advance");
        store.append_batch(&pair_batch(2)).unwrap();
        drop(store);
        // Cold restart on the clean filesystem: gen 0 + both batches.
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.generation(), 0);
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.batches.len(), 2);
        // The stranded temp file was swept at open.
        assert!(!dir.join("snapshot-1.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_trips_on_either_knob() {
        let p = CheckpointPolicy {
            max_wal_batches: 4,
            max_wal_bytes: 1000,
        };
        assert!(!p.should_checkpoint(3, 999));
        assert!(p.should_checkpoint(4, 0));
        assert!(p.should_checkpoint(0, 1000));
    }
}
