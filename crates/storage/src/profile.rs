//! Storage-layer metric handles in the global [`linrec_obs`] registry:
//! WAL append/fsync latency and volume, checkpoint and recovery timing.
//! All taps sit on I/O paths (one event per batch/checkpoint, never per
//! tuple) and gate on [`linrec_obs::enabled`] before taking clocks.

use linrec_obs::{Counter, Histogram};
use std::sync::OnceLock;

/// Metric handles for the write-ahead log.
pub struct WalProfile {
    /// Full append (encode + write + fsync) latency in ns.
    pub append_ns: Histogram,
    /// fsync portion of an append in ns.
    pub fsync_ns: Histogram,
    /// Appended frame size in bytes.
    pub append_bytes: Histogram,
    /// Successful appends.
    pub appends: Counter,
    /// Failed appends (the batch is absent and the WAL rolls back).
    pub append_errors: Counter,
}

/// The WAL metric handles (registered on first use).
pub fn wal() -> &'static WalProfile {
    static HANDLES: OnceLock<WalProfile> = OnceLock::new();
    HANDLES.get_or_init(|| WalProfile {
        append_ns: linrec_obs::histogram("linrec_storage_wal_append_ns"),
        fsync_ns: linrec_obs::histogram("linrec_storage_wal_fsync_ns"),
        append_bytes: linrec_obs::histogram("linrec_storage_wal_append_bytes"),
        appends: linrec_obs::counter("linrec_storage_wal_appends_total"),
        append_errors: linrec_obs::counter("linrec_storage_wal_append_errors_total"),
    })
}

/// Metric handles for snapshots and recovery.
pub struct StoreProfile {
    /// Checkpoint (snapshot write + WAL rotation) latency in ns.
    pub checkpoint_ns: Histogram,
    /// Successful checkpoints.
    pub checkpoints: Counter,
    /// Recovery (snapshot load + WAL replay) latency in ns.
    pub recover_ns: Histogram,
    /// WAL batches replayed by recoveries.
    pub replayed_batches: Counter,
}

/// The store metric handles (registered on first use).
pub fn store() -> &'static StoreProfile {
    static HANDLES: OnceLock<StoreProfile> = OnceLock::new();
    HANDLES.get_or_init(|| StoreProfile {
        checkpoint_ns: linrec_obs::histogram("linrec_storage_checkpoint_ns"),
        checkpoints: linrec_obs::counter("linrec_storage_checkpoints_total"),
        recover_ns: linrec_obs::histogram("linrec_storage_recover_ns"),
        replayed_batches: linrec_obs::counter("linrec_storage_replayed_batches_total"),
    })
}
