//! The write-ahead log of insert batches (`wal-<gen>.log`).
//!
//! The WAL is exactly the delta-batch stream the service's maintenance
//! path consumes: one framed record per **acknowledged** insert batch,
//! appended and fsynced *before* the batch is acknowledged. Replaying the
//! tail after a snapshot load is therefore licensed incremental
//! maintenance (`V' = A'*(V ∪ Δ₀)` per batch), not an ad-hoc recovery
//! code path.
//!
//! # Framing
//!
//! ```text
//! file header (16 bytes): magic "LINRWAL1", version u32, reserved u32
//! frame:                  len u32 (payload bytes), crc u32 (CRC-32 of
//!                         payload), payload
//! payload:                seq u64, insert_count u64, then per insert:
//!                         pred len u64 + UTF-8 bytes, arity u64,
//!                         arity 16-byte value cells (snapshot encoding)
//! ```
//!
//! A torn tail — a partial frame, a frame whose CRC fails, or a length
//! that runs past EOF — marks the end of the acknowledged prefix: replay
//! stops there and **truncates** the file back to the last good frame, so
//! a later append can never land after garbage. A frame that passes its
//! CRC but decodes to nonsense (bad tag, non-monotone sequence number) is
//! not a torn write; it is corruption and surfaces as a typed error.
//!
//! # Failed appends and retry
//!
//! All I/O goes through the [`Vfs`] the [`Wal`] was opened with, and a
//! *failed* append (short write, failed fsync, ENOSPC) may leave unknown
//! bytes past the acknowledged prefix. The `Wal` tracks that with a dirty
//! flag: the next append first **rolls back** — truncates the file to the
//! last acknowledged frame and syncs — before writing anything new. A
//! retried frame therefore never lands after garbage, which is what makes
//! the service's retry-with-backoff policy safe: an append either becomes
//! a durable frame at the end of the good prefix, or it leaves no
//! acknowledged trace at all.

use crate::crc::crc32;
use crate::error::StorageError;
use crate::snapshot::{ByteReader, ByteWriter};
use crate::vfs::{Vfs, VfsFile};
use linrec_datalog::{Symbol, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub(crate) const WAL_MAGIC: [u8; 8] = *b"LINRWAL1";
/// Current WAL format version.
pub const WAL_FORMAT_VERSION: u32 = 1;

const WAL_HEADER_LEN: usize = 16;
/// Upper bound on one frame's payload; anything larger in a length word is
/// treated as a torn/garbage tail, not an allocation request.
const MAX_FRAME: u32 = 64 << 20;

const TAG_INT: u64 = 0;
const TAG_SYM: u64 = 1;

/// One acknowledged insert batch, as recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Monotone sequence number (strictly increasing across the store's
    /// lifetime, surviving checkpoints).
    pub seq: u64,
    /// The batch's genuinely-new tuples, in insertion order.
    pub inserts: Vec<(Symbol, Vec<Value>)>,
}

/// An open WAL file positioned for appends.
pub(crate) struct Wal {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Bytes of acknowledged frames past the file header.
    payload_bytes: u64,
    /// Sequence number the next append will carry.
    next_seq: u64,
    /// A previous append failed partway: unknown bytes may trail the
    /// acknowledged prefix, so the next append must roll back first.
    dirty: bool,
}

fn encode_frame(seq: u64, inserts: &[(Symbol, Vec<Value>)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(seq);
    w.u64(inserts.len() as u64);
    for (pred, tuple) in inserts {
        let name = pred.as_str().as_bytes();
        w.u64(name.len() as u64);
        w.bytes(name);
        w.u64(tuple.len() as u64);
        for v in tuple {
            match v {
                Value::Int(i) => {
                    w.u64(TAG_INT);
                    w.u64(*i as u64);
                }
                Value::Sym(s) => {
                    w.u64(TAG_SYM);
                    let b = s.as_str().as_bytes();
                    w.u64(b.len() as u64);
                    w.bytes(b);
                }
            }
        }
    }
    let payload = w.buf;
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_frame(payload: &[u8], path: &Path) -> Result<Batch, StorageError> {
    let corrupt = |detail: &str| StorageError::corrupt(path, detail);
    let mut r = ByteReader::new(payload);
    let seq = r.u64().ok_or_else(|| corrupt("frame too short for seq"))?;
    let count = r
        .u64()
        .ok_or_else(|| corrupt("frame too short for count"))? as usize;
    let mut inserts = Vec::new();
    for _ in 0..count {
        let name_len = r.u64().ok_or_else(|| corrupt("insert name length"))? as usize;
        let name = r
            .take(name_len)
            .ok_or_else(|| corrupt("insert name overruns the frame"))?;
        let name = std::str::from_utf8(name).map_err(|_| corrupt("insert name is not UTF-8"))?;
        let pred = Symbol::new(name);
        let arity = r.u64().ok_or_else(|| corrupt("insert arity"))? as usize;
        if arity > payload.len() {
            return Err(corrupt("insert arity overruns the frame"));
        }
        let mut tuple = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = r.u64().ok_or_else(|| corrupt("value tag"))?;
            match tag {
                TAG_INT => {
                    let bits = r.u64().ok_or_else(|| corrupt("int payload"))?;
                    tuple.push(Value::Int(bits as i64));
                }
                TAG_SYM => {
                    let len = r.u64().ok_or_else(|| corrupt("symbol length"))? as usize;
                    let b = r
                        .take(len)
                        .ok_or_else(|| corrupt("symbol overruns the frame"))?;
                    let s = std::str::from_utf8(b).map_err(|_| corrupt("symbol is not UTF-8"))?;
                    tuple.push(Value::sym(s));
                }
                _ => return Err(corrupt("unknown value tag")),
            }
        }
        inserts.push((pred, tuple));
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes inside a frame"));
    }
    Ok(Batch { seq, inserts })
}

impl Wal {
    /// Open `path` for appends through `vfs`, creating it (with a synced
    /// header) when missing or empty.
    pub(crate) fn open_or_create(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<Wal, StorageError> {
        let mut file = vfs
            .open_append(path)
            .map_err(|e| StorageError::io(path, e))?;
        let len = vfs.file_len(path).map_err(|e| StorageError::io(path, e))?;
        if len == 0 {
            let mut header = Vec::with_capacity(WAL_HEADER_LEN);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            file.write_all(&header)
                .and_then(|_| file.sync_data())
                .map_err(|e| StorageError::io(path, e))?;
        }
        Ok(Wal {
            vfs: Arc::clone(vfs),
            file,
            path: path.to_owned(),
            payload_bytes: 0,
            next_seq: 1,
            dirty: false,
        })
    }

    /// Replay every acknowledged batch, truncating a torn tail in place.
    /// Returns the batches in append order; afterwards the file ends at
    /// the last good frame and appends may resume.
    pub(crate) fn replay_and_truncate(&mut self) -> Result<Vec<Batch>, StorageError> {
        let bytes = self
            .vfs
            .read(&self.path)
            .map_err(|e| StorageError::io(&self.path, e))?;
        if bytes.len() < WAL_HEADER_LEN || bytes[..8] != WAL_MAGIC {
            return Err(StorageError::corrupt(&self.path, "bad WAL header"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != WAL_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                file: self.path.display().to_string(),
                found: version,
            });
        }
        let mut batches = Vec::new();
        let mut pos = WAL_HEADER_LEN;
        let mut good_end = pos;
        let mut last_seq = 0u64;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            if len == 0 || len > MAX_FRAME {
                break; // garbage length: torn tail
            }
            let start = pos + 8;
            let Some(end) = start
                .checked_add(len as usize)
                .filter(|&e| e <= bytes.len())
            else {
                break; // frame runs past EOF: torn tail
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // torn or rotted frame: end of the trusted prefix
            }
            // The CRC passed, so this frame was fully written and synced:
            // decode failures past this point are corruption, not tearing.
            let batch = decode_frame(payload, &self.path)?;
            if batch.seq <= last_seq {
                return Err(StorageError::corrupt(
                    &self.path,
                    format!("sequence went {} -> {}", last_seq, batch.seq),
                ));
            }
            last_seq = batch.seq;
            batches.push(batch);
            pos = end;
            good_end = end;
        }
        if (good_end as u64) < bytes.len() as u64 {
            self.file
                .set_len(good_end as u64)
                .and_then(|_| self.file.sync_data())
                .map_err(|e| StorageError::io(&self.path, e))?;
        }
        self.payload_bytes = (good_end - WAL_HEADER_LEN) as u64;
        self.next_seq = last_seq + 1;
        self.dirty = false;
        Ok(batches)
    }

    /// Append one batch and fsync; returns `(seq, frame_bytes)`. The
    /// caller must not acknowledge the batch before this returns.
    ///
    /// On failure the batch is guaranteed absent from the acknowledged
    /// prefix, and the `Wal` remembers to roll back any partial bytes
    /// before the next append — so the caller may simply retry.
    pub(crate) fn append(
        &mut self,
        inserts: &[(Symbol, Vec<Value>)],
    ) -> Result<(u64, u64), StorageError> {
        if self.dirty {
            // A previous append may have left partial bytes; cut the file
            // back to the acknowledged prefix before writing anything.
            let good = WAL_HEADER_LEN as u64 + self.payload_bytes;
            self.file
                .set_len(good)
                .and_then(|_| self.file.sync_data())
                .map_err(|e| StorageError::io(&self.path, e))?;
            self.dirty = false;
        }
        let seq = self.next_seq;
        let frame = encode_frame(seq, inserts);
        let mut sp = linrec_obs::span("wal.append");
        sp.attr("seq", seq);
        sp.attr("bytes", frame.len());
        let obs_on = linrec_obs::enabled();
        let t_append = obs_on.then(std::time::Instant::now);
        let result = self.file.write_all(&frame).and_then(|_| {
            let _fsp = linrec_obs::span("wal.fsync");
            let t_sync = obs_on.then(std::time::Instant::now);
            let r = self.file.sync_data();
            if let (Some(t), Ok(())) = (t_sync, &r) {
                crate::profile::wal()
                    .fsync_ns
                    .observe(t.elapsed().as_nanos() as u64);
            }
            r
        });
        match result {
            Ok(()) => {
                if let Some(t) = t_append {
                    let prof = crate::profile::wal();
                    prof.append_ns.observe(t.elapsed().as_nanos() as u64);
                    prof.append_bytes.observe(frame.len() as u64);
                    prof.appends.inc();
                }
                self.next_seq += 1;
                self.payload_bytes += frame.len() as u64;
                Ok((seq, frame.len() as u64))
            }
            Err(e) => {
                if obs_on {
                    crate::profile::wal().append_errors.inc();
                }
                self.dirty = true;
                Err(StorageError::io(&self.path, e))
            }
        }
    }

    /// Bytes of acknowledged frames in the file (excluding the header).
    pub(crate) fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Sequence number the next append will carry.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Force the next append to carry `seq` (used after a checkpoint
    /// rotates to a fresh file: the store's sequence numbering is global,
    /// not per-file).
    pub(crate) fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultOp, FaultPlan, FaultVfs, StdVfs};

    fn stdvfs() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "linrec-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(i: i64) -> Vec<(Symbol, Vec<Value>)> {
        vec![
            (Symbol::new("e"), vec![Value::Int(i), Value::Int(i + 1)]),
            (Symbol::new("who"), vec![Value::sym("alice"), Value::Int(i)]),
        ]
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        assert!(wal.replay_and_truncate().unwrap().is_empty());
        for i in 0..5 {
            let (seq, bytes) = wal.append(&batch(i)).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert!(bytes > 8);
        }
        drop(wal);
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        let replayed = wal.replay_and_truncate().unwrap();
        assert_eq!(replayed.len(), 5);
        for (i, b) in replayed.iter().enumerate() {
            assert_eq!(b.seq, i as u64 + 1);
            assert_eq!(b.inserts, batch(i as i64));
        }
        assert_eq!(wal.next_seq(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = tmpdir("torn");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        for i in 0..3 {
            wal.append(&batch(i)).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        drop(wal);
        // Tear the last frame mid-payload.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        let replayed = wal.replay_and_truncate().unwrap();
        assert_eq!(replayed.len(), 2, "torn third frame dropped");
        // The file shrank to the good prefix and appends continue.
        let truncated = std::fs::metadata(&path).unwrap().len();
        assert!(truncated < full - 5);
        let (seq, _) = wal.append(&batch(9)).unwrap();
        assert_eq!(seq, 3, "seq continues after the surviving prefix");
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        assert_eq!(wal.replay_and_truncate().unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_in_a_frame_ends_the_prefix_there() {
        let dir = tmpdir("flip");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        let mut offsets = vec![std::fs::metadata(&path).unwrap().len()];
        for i in 0..4 {
            wal.append(&batch(i)).unwrap();
            offsets.push(std::fs::metadata(&path).unwrap().len());
        }
        drop(wal);
        // Flip one payload byte inside frame 2 (0-based): frames 0 and 1
        // survive, the rest are dropped.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = offsets[2] as usize + 12;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        let replayed = wal.replay_and_truncate().unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offsets[2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_header_is_a_typed_error() {
        let dir = tmpdir("header");
        let path = dir.join("wal-0.log");
        std::fs::write(&path, b"NOTAWAL!xxxxxxxx").unwrap();
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        assert!(matches!(
            wal.replay_and_truncate(),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_seq_is_corruption_not_tearing() {
        let dir = tmpdir("seq");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.set_next_seq(1); // duplicate seq on the next frame
        wal.append(&batch(1)).unwrap();
        drop(wal);
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        assert!(matches!(
            wal.replay_and_truncate(),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batches_and_wide_tuples_round_trip() {
        let dir = tmpdir("shapes");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        wal.append(&[]).unwrap();
        let wide: Vec<Value> = (0..9).map(Value::Int).collect();
        wal.append(&[(Symbol::new("wide"), wide.clone())]).unwrap();
        wal.append(&[(Symbol::new("unit"), Vec::new())]).unwrap();
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        let replayed = wal.replay_and_truncate().unwrap();
        assert_eq!(replayed.len(), 3);
        assert!(replayed[0].inserts.is_empty());
        assert_eq!(replayed[1].inserts[0].1, wide);
        assert_eq!(replayed[2].inserts[0].1, Vec::<Value>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rolls_back_so_a_retry_lands_cleanly() {
        let dir = tmpdir("rollback");
        let path = dir.join("wal-0.log");
        // Writes: 1 = header, 2 = first frame, 3 = second frame (torn).
        let fault =
            FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Write, 3, FaultKind::ShortWrite));
        let vfs: Arc<dyn Vfs> = fault.clone();
        let mut wal = Wal::open_or_create(&vfs, &path).unwrap();
        wal.replay_and_truncate().unwrap();
        wal.append(&batch(0)).unwrap();
        let good = std::fs::metadata(&path).unwrap().len();
        let err = wal.append(&batch(1)).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }));
        // Torn bytes really landed past the good prefix…
        assert!(std::fs::metadata(&path).unwrap().len() > good);
        // …but the retry rolls them back first, and the retried frame
        // carries the same sequence number the failed attempt would have.
        let (seq, _) = wal.append(&batch(1)).unwrap();
        assert_eq!(seq, 2);
        drop(wal);
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        let replayed = wal.replay_and_truncate().unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].inserts, batch(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_after_a_full_write_still_rolls_back() {
        let dir = tmpdir("fsyncfail");
        let path = dir.join("wal-0.log");
        // Syncs: 1 = header sync, 2 = first append sync (fails).
        let fault = FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Sync, 2, FaultKind::Eio));
        let vfs: Arc<dyn Vfs> = fault.clone();
        let mut wal = Wal::open_or_create(&vfs, &path).unwrap();
        wal.replay_and_truncate().unwrap();
        // The frame's bytes hit the file, but the fsync failed, so the
        // batch was never acknowledgeable; the retry must re-land it.
        assert!(wal.append(&batch(0)).is_err());
        let (seq, _) = wal.append(&batch(0)).unwrap();
        assert_eq!(seq, 1);
        drop(wal);
        let mut wal = Wal::open_or_create(&stdvfs(), &path).unwrap();
        assert_eq!(wal.replay_and_truncate().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
