//! `linrec-storage` — durability for the materialized-view service:
//! on-disk arena snapshots, a batch write-ahead log, and crash-recovering
//! stores.
//!
//! The paper's framing makes recovery cheap *by construction*: a WAL of
//! insert batches is exactly the delta-batch stream the service's
//! maintenance path already consumes, so replay after a snapshot load is
//! licensed incremental maintenance (`V' = A'*(V ∪ Δ₀)` per batch) — the
//! boundedness certificate caps replay rounds, the commutativity
//! certificate licenses per-cluster resumes, and plan shapes with no
//! incremental form fall back to recompute, exactly as live serving does.
//! Cold start therefore costs snapshot-load + tail-replay instead of a
//! full from-scratch fixpoint.
//!
//! # Pieces
//!
//! * [`snapshot`] — the versioned, checksummed arena snapshot format:
//!   fixed-width little-endian headers, 8-byte-aligned sections, the flat
//!   row-major arenas dumped wholesale (with their cached row-id tables
//!   where portable), variable-length strings concentrated in one
//!   length-prefixed table. Designed so a future `mmap` loader can read
//!   arenas in place.
//! * [`wal`] — CRC-framed insert batches, fsynced before acknowledgement;
//!   torn tails are detected and truncated, corruption is a typed error.
//! * [`store`] — the data directory: `open` → `recover` →
//!   `append_batch`/`checkpoint`, with atomic checkpoint publication
//!   (temp + rename + manifest swap) and pruning of superseded
//!   generations.
//! * [`vfs`] — the virtual filesystem everything above does its I/O
//!   through: a production [`StdVfs`] and a deterministic, seedable
//!   [`FaultVfs`] that injects ENOSPC/EIO/short-write/torn-rename faults
//!   for the crash-recovery and chaos suites.
//!
//! The crate depends only on `linrec-datalog` (and std): the service layer
//! owns *what* to persist and *when* to checkpoint; this crate owns the
//! bytes.
//!
//! # Example
//!
//! ```
//! use linrec_storage::{Store, SnapshotData};
//! use linrec_datalog::{Database, Relation, Symbol, Value};
//!
//! let dir = std::env::temp_dir().join(format!("linrec-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = Store::open(&dir).unwrap();
//! let recovered = store.recover().unwrap();
//! assert!(recovered.snapshot.is_none()); // fresh store
//!
//! // Acknowledge a batch: WAL-append + fsync first.
//! store.append_batch(&[(Symbol::new("e"), vec![Value::Int(1), Value::Int(2)])]).unwrap();
//!
//! // Fold the WAL into a snapshot generation.
//! let mut db = Database::new();
//! db.set_relation("e", Relation::from_pairs([(1, 2)]));
//! store.checkpoint(&SnapshotData { epoch: 1, db, views: Vec::new() }).unwrap();
//!
//! // Cold start: the snapshot loads, the (now empty) WAL tail replays.
//! let mut store = Store::open(&dir).unwrap();
//! let recovered = store.recover().unwrap();
//! assert_eq!(recovered.snapshot.unwrap().epoch, 1);
//! assert!(recovered.batches.is_empty());
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

mod crc;
pub mod decisions;
pub mod error;
pub mod profile;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use crc::crc32;
pub use decisions::{read_decision_log, DecisionLog, DECISIONS_FILE};
pub use error::StorageError;
pub use snapshot::{
    decode_snapshot, encode_snapshot, view_fingerprint, SnapshotData, ViewSnapshot,
    SNAPSHOT_FORMAT_VERSION,
};
pub use store::{CheckpointPolicy, Recovered, Store, MANIFEST_FORMAT_VERSION};
pub use vfs::{
    is_transient_io, FaultKind, FaultOp, FaultPlan, FaultVfs, InjectedFault, StdVfs, Vfs, VfsFile,
};
pub use wal::{Batch, WAL_FORMAT_VERSION};
