//! The on-disk arena snapshot format (`snapshot-<gen>.snap`).
//!
//! # Layout (format version 1)
//!
//! Everything is little-endian and every section starts on an 8-byte
//! boundary, so a future loader can `mmap` the file and read arenas in
//! place instead of parsing them — fixed-width headers, fixed-width
//! 16-byte value cells, and the only variable-length payloads (strings)
//! concentrated in one length-prefixed table that rows reference by index.
//!
//! ```text
//! header (64 bytes):
//!   0   magic        [8]   "LINRSNP1"
//!   8   version      u32   1
//!   12  header flags u32   0 (reserved)
//!   16  epoch        u64   service epoch the snapshot captures
//!   24  db_count     u64   # database relations
//!   32  view_count   u64   # materialized view relations
//!   40  body_len     u64   bytes following the header
//!   48  body_crc     u32   CRC-32 of the body
//!   52  reserved     u32   0
//!   56  reserved     u32   0
//!   60  header_crc   u32   CRC-32 of header bytes 0..60
//! body:
//!   string table:   count u64, then per string: len u64, bytes, pad to 8
//!   view defs:      per view: name_idx u64, fingerprint_idx u64
//!   relations:      db_count database records, then view_count view
//!                   records, each:
//!     name_idx u64, arity u64, rows u64, flags u64
//!     cells — two fixed-width layouts, chosen per relation:
//!       flags bit 1 set (every value an Int): rows*arity 8-byte cells,
//!         the raw i64 bits — the bulk-load fast path
//!       otherwise: rows*arity 16-byte cells [tag u64][payload u64],
//!         tag 0 = Int (payload = i64 bits), tag 1 = Sym (payload =
//!         string-table index)
//!     if flags bit 0 (row-id table included — set iff no Sym cell):
//!       hashes rows*8, slot_count u64, slots slot_count*4, pad to 8
//! ```
//!
//! The per-relation flag bits record the cell width and whether the
//! cached hash/row-id table was persisted. Hashes of integer values are a
//! pure function of the bytes and reload verbatim (checked against one
//! recomputed row); hashes of symbols incorporate the process-local
//! interner id, so relations with symbolic values rebuild their table on
//! load ([`Relation::from_dense_rows`]) instead of trusting a stale one.
//!
//! Corruption anywhere — header, body, structure — surfaces as
//! [`StorageError::Corrupt`]; the decoder never panics on untrusted bytes
//! (both CRCs must pass before any structural parsing happens, and the
//! structural parser still bounds-checks every read).

use crate::crc::crc32;
use crate::error::StorageError;
use linrec_datalog::hash::FastMap;
use linrec_datalog::{Database, Relation, Symbol, Value};
use std::path::Path;
use std::sync::Arc;

pub(crate) const SNAP_MAGIC: [u8; 8] = *b"LINRSNP1";
/// Current snapshot format version.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 64;
const TAG_INT: u64 = 0;
const TAG_SYM: u64 = 1;
/// Relation flag: the cached hash/row-id table follows the cells.
const REL_FLAG_TABLE: u64 = 1;
/// Relation flag: every value is an `Int`, stored as raw 8-byte cells.
const REL_FLAG_INT_CELLS: u64 = 2;

/// One materialized view inside a snapshot: its serving name, a
/// fingerprint of the definition that produced it (rules + seed, printed),
/// and the relation itself. Recovery compares the fingerprint against the
/// current program and falls back to re-materializing when they disagree —
/// a checkpoint taken under old rules must not silently serve for new ones.
#[derive(Clone)]
pub struct ViewSnapshot {
    /// Name the view is served under.
    pub name: String,
    /// Definition fingerprint (see [`view_fingerprint`]).
    pub fingerprint: String,
    /// The materialized relation.
    pub relation: Arc<Relation>,
}

/// Everything a checkpoint persists: the epoch, the whole database
/// (EDB + seeds), and every materialized view.
#[derive(Clone)]
pub struct SnapshotData {
    /// Service epoch the snapshot captures.
    pub epoch: u64,
    /// The database at that epoch.
    pub db: Database,
    /// Materialized views at that epoch.
    pub views: Vec<ViewSnapshot>,
}

/// Canonical fingerprint of a view definition: the seed predicate and the
/// rules, printed. Two definitions with equal fingerprints materialize the
/// same view over the same database.
pub fn view_fingerprint(seed: Symbol, rules: impl IntoIterator<Item = impl ToString>) -> String {
    let mut s = format!("seed={seed}");
    for r in rules {
        s.push('|');
        s.push_str(&r.to_string());
    }
    s
}

// --- little-endian body writer/reader --------------------------------------

pub(crate) struct ByteWriter {
    pub(crate) buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Pad with zero bytes to the next 8-byte boundary.
    pub(crate) fn align8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }
}

/// Bounds-checked little-endian cursor over untrusted bytes. Every read
/// that would run past the end reports `None`; the snapshot/WAL decoders
/// turn that into a typed corruption error.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let b = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(b)
    }

    pub(crate) fn align8(&mut self) -> Option<()> {
        let pad = (8 - self.pos % 8) % 8;
        self.take(pad).map(|_| ())
    }
}

// --- string table -----------------------------------------------------------

#[derive(Default)]
struct StringTable {
    index: FastMap<String, u64>,
    strings: Vec<String>,
}

impl StringTable {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u64;
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        i
    }
}

// --- encode -----------------------------------------------------------------

fn encode_relation(w: &mut ByteWriter, name_idx: u64, rel: &Relation, strings: &mut StringTable) {
    let (arena, hashes, slots) = rel.raw_parts();
    let all_int = arena.iter().all(|v| matches!(v, Value::Int(_)));
    w.u64(name_idx);
    w.u64(rel.arity() as u64);
    w.u64(rel.len() as u64);
    if all_int {
        // Fast path: raw 8-byte cells plus the relation's own hash/row-id
        // table, so a load is bulk copies with no rehash.
        w.u64(REL_FLAG_TABLE | REL_FLAG_INT_CELLS);
        for v in arena {
            let Value::Int(i) = v else {
                unreachable!("all_int checked")
            };
            w.u64(*i as u64);
        }
        for &h in hashes {
            w.u64(h);
        }
        w.u64(slots.len() as u64);
        for &s in slots {
            w.u32(s);
        }
        w.align8();
    } else {
        w.u64(0);
        for v in arena {
            match v {
                Value::Int(i) => {
                    w.u64(TAG_INT);
                    w.u64(*i as u64);
                }
                Value::Sym(s) => {
                    w.u64(TAG_SYM);
                    w.u64(strings.intern(s.as_str()));
                }
            }
        }
    }
}

/// Encode a snapshot to its complete file image (header + body).
pub fn encode_snapshot(data: &SnapshotData) -> Vec<u8> {
    // Deterministic order: database relations and views both sorted by
    // name, so identical states produce identical bytes.
    let mut db_rels: Vec<(Symbol, &Relation)> = data.db.iter().collect();
    db_rels.sort_by_key(|(s, _)| s.as_str());
    let mut views: Vec<&ViewSnapshot> = data.views.iter().collect();
    views.sort_by_key(|v| v.name.as_str());

    // The string table must be complete before the body is emitted (it is
    // the body's first section), so relations are encoded to a scratch
    // buffer first.
    let mut strings = StringTable::default();
    let mut defs = ByteWriter::new();
    for v in &views {
        let name_idx = strings.intern(&v.name);
        let fp_idx = strings.intern(&v.fingerprint);
        defs.u64(name_idx);
        defs.u64(fp_idx);
    }
    let mut rels = ByteWriter::new();
    for (sym, rel) in &db_rels {
        let idx = strings.intern(sym.as_str());
        encode_relation(&mut rels, idx, rel, &mut strings);
    }
    for v in &views {
        let idx = strings.intern(&v.name);
        encode_relation(&mut rels, idx, &v.relation, &mut strings);
    }

    let mut body = ByteWriter::new();
    body.u64(strings.strings.len() as u64);
    for s in &strings.strings {
        body.u64(s.len() as u64);
        body.bytes(s.as_bytes());
        body.align8();
    }
    body.bytes(&defs.buf);
    body.bytes(&rels.buf);

    let mut out = Vec::with_capacity(HEADER_LEN + body.buf.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&data.epoch.to_le_bytes());
    out.extend_from_slice(&(db_rels.len() as u64).to_le_bytes());
    out.extend_from_slice(&(views.len() as u64).to_le_bytes());
    out.extend_from_slice(&(body.buf.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body.buf).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    let header_crc = crc32(&out[..60]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&body.buf);
    out
}

// --- decode -----------------------------------------------------------------

fn corrupt(file: &Path, detail: impl Into<String>) -> StorageError {
    StorageError::corrupt(file, detail)
}

fn decode_strings<'a>(r: &mut ByteReader<'a>, file: &Path) -> Result<Vec<&'a str>, StorageError> {
    let count = r.u64().ok_or_else(|| corrupt(file, "string table count"))? as usize;
    // Each entry needs at least 8 bytes; an absurd count is corruption,
    // not an allocation request.
    if count > r.remaining() / 8 {
        return Err(corrupt(
            file,
            format!("string table claims {count} entries"),
        ));
    }
    let mut strings = Vec::with_capacity(count);
    for i in 0..count {
        let len = r.u64().ok_or_else(|| corrupt(file, "string length"))? as usize;
        let bytes = r
            .take(len)
            .ok_or_else(|| corrupt(file, format!("string {i} overruns the body")))?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| corrupt(file, format!("string {i} is not UTF-8")))?;
        strings.push(s);
        r.align8()
            .ok_or_else(|| corrupt(file, "string padding overruns the body"))?;
    }
    Ok(strings)
}

fn decode_relation(
    r: &mut ByteReader<'_>,
    strings: &[&str],
    file: &Path,
) -> Result<(String, Relation), StorageError> {
    let name_idx = r
        .u64()
        .ok_or_else(|| corrupt(file, "relation name index"))? as usize;
    let name = *strings
        .get(name_idx)
        .ok_or_else(|| corrupt(file, format!("relation name index {name_idx} out of range")))?;
    let arity = r.u64().ok_or_else(|| corrupt(file, "relation arity"))? as usize;
    let rows = r.u64().ok_or_else(|| corrupt(file, "relation row count"))? as usize;
    let flags = r.u64().ok_or_else(|| corrupt(file, "relation flags"))?;
    let int_cells = flags & REL_FLAG_INT_CELLS != 0;
    let cell_width = if int_cells { 8 } else { 16 };
    let cells = rows
        .checked_mul(arity)
        .filter(|&n| {
            n.checked_mul(cell_width)
                .is_some_and(|b| b <= r.remaining())
        })
        .ok_or_else(|| {
            corrupt(
                file,
                format!("{name}: {rows}x{arity} cells overrun the body"),
            )
        })?;
    let mut arena = Vec::with_capacity(cells);
    let mut all_int = true;
    if int_cells {
        // Bulk path: the cell region is raw i64s.
        let bytes = r.take(cells * 8).expect("sized above");
        arena.extend(
            bytes
                .chunks_exact(8)
                .map(|c| Value::Int(i64::from_le_bytes(c.try_into().unwrap()))),
        );
    } else {
        for _ in 0..cells {
            let tag = r.u64().expect("sized above");
            let payload = r.u64().expect("sized above");
            match tag {
                TAG_INT => arena.push(Value::Int(payload as i64)),
                TAG_SYM => {
                    all_int = false;
                    let s = strings.get(payload as usize).ok_or_else(|| {
                        corrupt(file, format!("{name}: symbol index {payload} out of range"))
                    })?;
                    arena.push(Value::sym(s));
                }
                other => return Err(corrupt(file, format!("{name}: unknown value tag {other}"))),
            }
        }
    }
    let rel = if flags & REL_FLAG_TABLE != 0 {
        if !all_int {
            return Err(corrupt(
                file,
                format!("{name}: persisted row-id table but symbolic cells"),
            ));
        }
        let hash_bytes = rows
            .checked_mul(8)
            .filter(|&b| b <= r.remaining())
            .ok_or_else(|| corrupt(file, format!("{name}: hash table overruns the body")))?;
        let hashes: Vec<u64> = r
            .take(hash_bytes)
            .expect("sized above")
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let slot_count = r.u64().ok_or_else(|| corrupt(file, "slot count"))? as usize;
        let slot_bytes = slot_count
            .checked_mul(4)
            .filter(|&b| b <= r.remaining())
            .ok_or_else(|| corrupt(file, format!("{name}: slot table overruns the body")))?;
        let slots: Vec<u32> = r
            .take(slot_bytes)
            .expect("sized above")
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        r.align8()
            .ok_or_else(|| corrupt(file, "slot padding overruns the body"))?;
        // A structurally invalid persisted table (or a hash-function
        // drift) falls back to the rebuild path rather than failing the
        // whole snapshot: the arena itself is CRC-protected and canonical.
        match Relation::from_raw_parts(arity, arena, hashes, slots) {
            Ok(rel) => rel,
            Err(_) => {
                return Err(corrupt(
                    file,
                    format!("{name}: persisted row-id table failed validation"),
                ))
            }
        }
    } else {
        Relation::from_dense_rows(arity, rows, arena)
            .map_err(|e| corrupt(file, format!("{name}: {e}")))?
    };
    Ok((name.to_owned(), rel))
}

/// Decode a complete snapshot file image. `file` is used only for error
/// attribution.
pub fn decode_snapshot(bytes: &[u8], file: &Path) -> Result<SnapshotData, StorageError> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(file, format!("{} bytes is too short", bytes.len())));
    }
    if bytes[..8] != SNAP_MAGIC {
        return Err(corrupt(file, "bad magic"));
    }
    let header_crc = u32::from_le_bytes(bytes[60..64].try_into().unwrap());
    if crc32(&bytes[..60]) != header_crc {
        return Err(corrupt(file, "header checksum mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            file: file.display().to_string(),
            found: version,
        });
    }
    let epoch = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let db_count = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let view_count = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
    let body_len = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
    let body_crc = u32::from_le_bytes(bytes[48..52].try_into().unwrap());
    let body = bytes[HEADER_LEN..]
        .get(..body_len)
        .ok_or_else(|| corrupt(file, "body shorter than the header claims"))?;
    if crc32(body) != body_crc {
        return Err(corrupt(file, "body checksum mismatch"));
    }

    let mut r = ByteReader::new(body);
    let strings = decode_strings(&mut r, file)?;
    let mut view_meta = Vec::with_capacity(view_count);
    for i in 0..view_count {
        let name_idx = r.u64().ok_or_else(|| corrupt(file, "view name index"))? as usize;
        let fp_idx = r
            .u64()
            .ok_or_else(|| corrupt(file, "view fingerprint index"))? as usize;
        let name = *strings
            .get(name_idx)
            .ok_or_else(|| corrupt(file, format!("view {i} name index out of range")))?;
        let fp = *strings
            .get(fp_idx)
            .ok_or_else(|| corrupt(file, format!("view {i} fingerprint index out of range")))?;
        view_meta.push((name.to_owned(), fp.to_owned()));
    }
    let mut db = Database::new();
    for _ in 0..db_count {
        let (name, rel) = decode_relation(&mut r, &strings, file)?;
        db.set_relation(name.as_str(), rel);
    }
    let mut views = Vec::with_capacity(view_count);
    for (name, fingerprint) in view_meta {
        let (rel_name, rel) = decode_relation(&mut r, &strings, file)?;
        if rel_name != name {
            return Err(corrupt(
                file,
                format!("view record {rel_name} does not match declared view {name}"),
            ));
        }
        views.push(ViewSnapshot {
            name,
            fingerprint,
            relation: Arc::new(rel),
        });
    }
    Ok(SnapshotData { epoch, db, views })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrec_datalog::Relation;

    fn sample() -> SnapshotData {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2), (2, 3), (-7, 9)]));
        db.set_relation(
            "who",
            Relation::from_tuples(
                2,
                [
                    vec![Value::sym("alice"), Value::Int(1)],
                    vec![Value::sym("bob"), Value::Int(2)],
                ],
            ),
        );
        db.set_relation("pinned_empty", Relation::new(3));
        let mut zero = Relation::new(0);
        zero.insert(Vec::<Value>::new());
        db.set_relation("unit", zero);
        let tc = Relation::from_pairs([(1, 2), (1, 3), (2, 3)]);
        SnapshotData {
            epoch: 42,
            db,
            views: vec![ViewSnapshot {
                name: "tc".into(),
                fingerprint: "seed=e|p(x,y) :- p(x,z), e(z,y).".into(),
                relation: Arc::new(tc),
            }],
        }
    }

    fn assert_same_db(a: &Database, b: &Database) {
        assert_eq!(a.num_relations(), b.num_relations());
        for (sym, rel) in a.iter() {
            let other = b.relation(sym).expect("relation missing after round trip");
            assert_eq!(rel, other, "relation {sym} diverged");
            assert_eq!(rel.arity(), other.arity());
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        assert_eq!(bytes.len() % 8, 0, "file image is 8-byte aligned");
        let back = decode_snapshot(&bytes, Path::new("test.snap")).unwrap();
        assert_eq!(back.epoch, 42);
        assert_same_db(&data.db, &back.db);
        assert_eq!(back.views.len(), 1);
        assert_eq!(back.views[0].name, "tc");
        assert_eq!(back.views[0].fingerprint, data.views[0].fingerprint);
        assert_eq!(*back.views[0].relation, *data.views[0].relation);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_snapshot(&sample()), encode_snapshot(&sample()));
    }

    #[test]
    fn int_only_relations_carry_their_row_id_table() {
        let data = sample();
        let bytes = encode_snapshot(&data);
        let back = decode_snapshot(&bytes, Path::new("t")).unwrap();
        // The int-only relation reloads with membership intact (the table
        // was persisted and validated, not silently dropped).
        assert!(back
            .db
            .relation_named("e")
            .unwrap()
            .contains(&[Value::Int(-7), Value::Int(9)]));
        // The symbolic relation rebuilt its table and still answers.
        assert!(back
            .db
            .relation_named("who")
            .unwrap()
            .contains(&[Value::sym("bob"), Value::Int(2)]));
    }

    #[test]
    fn every_byte_flip_is_detected_or_harmless() {
        // Flipping any single byte must either fail decoding with a typed
        // error or (for padding bytes not covered by semantics) still
        // decode to the identical state. CRC coverage of header+body makes
        // "detected" the only real outcome.
        let data = sample();
        let bytes = encode_snapshot(&data);
        let stride = (bytes.len() / 97).max(1);
        for i in (0..bytes.len()).step_by(stride) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode_snapshot(&bad, Path::new("t")) {
                Err(StorageError::Corrupt { .. })
                | Err(StorageError::UnsupportedVersion { .. }) => {}
                Err(e) => panic!("unexpected error kind at byte {i}: {e}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn truncations_are_detected() {
        let bytes = encode_snapshot(&sample());
        for cut in [
            0,
            7,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(
                decode_snapshot(&bytes[..cut], Path::new("t")).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn future_versions_are_rejected_as_unsupported() {
        let mut bytes = encode_snapshot(&sample());
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Header CRC must be patched to reach the version check.
        let crc = crc32(&bytes[..60]);
        bytes[60..64].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes, Path::new("t")),
            Err(StorageError::UnsupportedVersion { found: 2, .. })
        ));
    }

    #[test]
    fn fingerprints_distinguish_definitions() {
        let a = view_fingerprint(Symbol::new("e"), ["p(x,y) :- p(x,z), e(z,y)."]);
        let b = view_fingerprint(Symbol::new("e"), ["p(x,y) :- p(z,y), e(x,z)."]);
        let c = view_fingerprint(Symbol::new("f"), ["p(x,y) :- p(x,z), e(z,y)."]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            view_fingerprint(Symbol::new("e"), ["p(x,y) :- p(x,z), e(z,y)."])
        );
    }
}
