//! CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, std-only.
//!
//! Every persisted artifact — snapshot header and body, each WAL frame,
//! the manifest — carries a CRC-32 so that torn writes and bit rot are
//! *detected* rather than interpreted. CRC-32 is not cryptographic; it is
//! exactly the right tool for "did this frame make it to disk intact",
//! which is the only question recovery asks.

const POLY: u32 = 0xEDB8_8320;

/// Eight lookup tables for the slicing-by-8 kernel: `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k]` advances a byte `k` further
/// positions through the shift register. Snapshot bodies run to tens of
/// megabytes, so the 8-bytes-per-step kernel matters: it keeps checksum
/// validation a small fraction of cold-start time instead of dominating
/// it.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard zlib/PNG
/// parameterization, so test vectors from those ecosystems apply).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_kernel_agrees_with_the_byte_at_a_time_reference() {
        let reference = |bytes: &[u8]| -> u32 {
            let mut c = !0u32;
            for &b in bytes {
                c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        };
        // Lengths straddling the 8-byte chunk boundary, pseudo-random data.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let data: Vec<u8> = (0..1025)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1024, 1025] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"the quick brown fox".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip at byte {i} bit {bit}");
            }
        }
    }
}
