//! The virtual filesystem the storage layer runs on — and the fault
//! injector that makes its failure handling testable.
//!
//! Every byte the durability layer touches (WAL frames, snapshot images,
//! the manifest, directory fsyncs, the stale-file sweep) goes through the
//! [`Vfs`]/[`VfsFile`] trait pair. Production uses [`StdVfs`], a thin
//! shim over `std::fs`. Tests use [`FaultVfs`], which wraps `StdVfs` and
//! injects faults according to a deterministic, seedable [`FaultPlan`]:
//! ENOSPC, EIO on the Nth write, failed or slow fsyncs, short writes that
//! leave real torn bytes on disk, and dropped renames that strand a
//! checkpoint's temp file. Because `FaultVfs` performs *real* I/O up to
//! the injected failure point, the bytes left behind are exactly what a
//! misbehaving disk would leave — the recovery code is exercised against
//! genuine torn tails and orphaned generations, not mocks.
//!
//! Faults are classified *transient* or *persistent* via
//! [`is_transient_io`]: the write path retries transients with bounded
//! backoff and treats everything else as grounds for degraded mode (see
//! `linrec-service`). Clearing the plan ([`FaultVfs::clear`]) models the
//! operator fixing the disk; the service's recovery probe then re-opens
//! the store through the same `Vfs` handle.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An open file handle behind the VFS. Only the operations the storage
/// layer actually performs are exposed.
pub trait VfsFile: Send {
    /// Write the whole buffer at the current position (append-mode files
    /// write at EOF).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file data (not necessarily metadata) to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush file data and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem operations the storage layer needs. Implementations
/// must be shareable across threads (the service's writer and its
/// recovery probe may hold the same handle).
pub trait Vfs: Send + Sync {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open (creating if missing) a file for reading + appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Length of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory (durability of renames/creates on Linux). A
    /// platform that cannot open directories may no-op.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of the directory's entries.
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>>;
}

/// True for I/O errors worth retrying in place (interrupted syscalls,
/// timeouts, would-block): the fault either clears on its own or never
/// involved the disk. Everything else — ENOSPC, EIO, permission errors —
/// is treated as persistent: retries may still be attempted a bounded
/// number of times, but the caller should plan for degradation.
pub fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

// --- production --------------------------------------------------------------

/// The production VFS: `std::fs`, nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directories cannot be opened on every platform; the rename
        // itself is still atomic there, so failure to open is a no-op.
        if let Ok(d) = std::fs::File::open(path) {
            d.sync_all()?;
        }
        Ok(())
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }
}

// --- fault injection ---------------------------------------------------------

/// The operation classes a [`FaultPlan`] can target. Each class keeps its
/// own occurrence counter inside [`FaultVfs`], so "fail the 3rd write"
/// means the 3rd `write_all`/`set_len`, independent of reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `write_all` and `set_len` on any file.
    Write,
    /// `sync_data`/`sync_all` on files and directory fsyncs.
    Sync,
    /// Whole-file reads and metadata queries.
    Read,
    /// File creation / open-for-append.
    Open,
    /// Renames (checkpoint publication).
    Rename,
    /// File removal (pruning).
    Remove,
}

const ALL_OPS: [FaultOp; 6] = [
    FaultOp::Write,
    FaultOp::Sync,
    FaultOp::Read,
    FaultOp::Open,
    FaultOp::Rename,
    FaultOp::Remove,
];

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the disk is full. Persistent until the plan clears.
    Enospc,
    /// `EIO`: the device errored. Persistent.
    Eio,
    /// A transient error (`Interrupted`): succeeds when retried.
    Transient,
    /// Write only half the buffer, then fail with `EIO` — real torn bytes
    /// land on disk, exactly like a crashed kernel write-back.
    ShortWrite,
    /// The rename is *not performed* and `EIO` is returned: the temp file
    /// stays stranded, the target keeps its old contents.
    DropRename,
    /// The operation succeeds, but only after sleeping — a slow disk, for
    /// exercising deadlines and health reporting rather than failure.
    Slow(Duration),
}

impl FaultKind {
    fn error(&self, op: FaultOp) -> io::Error {
        match self {
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected ENOSPC on {op:?}"),
            ),
            FaultKind::Transient => io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault on {op:?}"),
            ),
            FaultKind::Eio | FaultKind::ShortWrite | FaultKind::DropRename => {
                io::Error::other(format!("injected EIO on {op:?}"))
            }
            FaultKind::Slow(_) => unreachable!("slow faults succeed"),
        }
    }
}

/// A deterministic fault schedule. Two construction styles compose:
/// explicit triggers (`fail_nth`) for unit tests that need one precise
/// failure, and a seeded random mode (`seeded`) for chaos suites, where
/// every op occurrence draws from an xorshift stream and faults with the
/// given per-mille probability. The same seed always yields the same
/// schedule for the same operation sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Explicit triggers: fault the `nth` (1-based) occurrence of `op`.
    triggers: Vec<(FaultOp, u64, FaultKind)>,
    /// Seeded random mode.
    random: Option<RandomFaults>,
}

#[derive(Debug, Clone)]
struct RandomFaults {
    seed: u64,
    per_mille: u32,
    /// Ops eligible for random faults (chaos suites usually exempt
    /// `Read`+`Open` so the initial store open succeeds, then widen).
    ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fault the `nth` (1-based) occurrence of `op` with `kind`. Chainable.
    pub fn fail_nth(mut self, op: FaultOp, nth: u64, kind: FaultKind) -> FaultPlan {
        self.triggers.push((op, nth, kind));
        self
    }

    /// Seeded random faulting over every operation class at the given
    /// per-mille rate. Deterministic for a fixed seed and op sequence.
    pub fn seeded(seed: u64, per_mille: u32) -> FaultPlan {
        FaultPlan::seeded_ops(seed, per_mille, ALL_OPS.to_vec())
    }

    /// [`FaultPlan::seeded`] restricted to the given operation classes.
    pub fn seeded_ops(seed: u64, per_mille: u32, ops: Vec<FaultOp>) -> FaultPlan {
        FaultPlan {
            triggers: Vec::new(),
            random: Some(RandomFaults {
                // xorshift needs a nonzero state.
                seed: seed | 1,
                per_mille,
                ops,
            }),
        }
    }
}

/// One injected fault, as recorded by [`FaultVfs::last_fault`].
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// The operation class that faulted.
    pub op: FaultOp,
    /// Which occurrence of that class it was (1-based).
    pub nth: u64,
    /// The fault injected.
    pub kind: FaultKind,
    /// The path involved.
    pub path: String,
}

#[derive(Default)]
struct FaultState {
    plan: FaultPlan,
    rng: u64,
    counts: [u64; 6],
    last: Option<InjectedFault>,
}

impl FaultState {
    fn op_index(op: FaultOp) -> usize {
        ALL_OPS.iter().position(|&o| o == op).expect("op in table")
    }

    /// Advance the op counter and decide whether this occurrence faults.
    fn decide(&mut self, op: FaultOp, path: &Path) -> Option<FaultKind> {
        let idx = Self::op_index(op);
        self.counts[idx] += 1;
        let nth = self.counts[idx];
        let mut hit = self
            .plan
            .triggers
            .iter()
            .find(|&&(o, n, _)| o == op && n == nth)
            .map(|&(_, _, k)| k);
        if hit.is_none() {
            if let Some(r) = &self.plan.random {
                if r.ops.contains(&op) {
                    // xorshift64*: deterministic per (seed, draw index).
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    let draw = self.rng.wrapping_mul(0x2545F4914F6CDD1D);
                    if (draw % 1000) < u64::from(r.per_mille) {
                        // A second derived draw picks the kind; renames
                        // get their own failure mode.
                        hit = Some(match (draw >> 32) % 4 {
                            _ if op == FaultOp::Rename => FaultKind::DropRename,
                            0 => FaultKind::Enospc,
                            1 => FaultKind::Transient,
                            2 if op == FaultOp::Write => FaultKind::ShortWrite,
                            _ => FaultKind::Eio,
                        });
                    }
                }
            }
        }
        if let Some(kind) = hit {
            self.last = Some(InjectedFault {
                op,
                nth,
                kind,
                path: path.display().to_string(),
            });
        }
        hit
    }
}

/// The state a [`FaultVfs`] shares with every file handle it opens, so a
/// plan change is visible to already-open files too.
struct Shared {
    state: Mutex<FaultState>,
    /// Total faults injected, readable without the lock.
    injected: AtomicU64,
}

impl Shared {
    /// Decide whether this op faults; `Slow` sleeps here and reports no
    /// fault to the caller.
    fn check(&self, op: FaultOp, path: &Path) -> io::Result<()> {
        let kind = self.state.lock().expect("fault state").decide(op, path);
        match kind {
            None => Ok(()),
            Some(FaultKind::Slow(d)) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                Ok(())
            }
            Some(kind) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(kind.error(op))
            }
        }
    }

    /// Like [`Shared::check`] for writes, distinguishing short writes,
    /// which the caller must partially perform: `Ok(true)` means "write a
    /// prefix, then fail".
    fn check_write(&self, path: &Path) -> io::Result<bool> {
        let kind = self
            .state
            .lock()
            .expect("fault state")
            .decide(FaultOp::Write, path);
        match kind {
            None => Ok(false),
            Some(FaultKind::Slow(d)) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                Ok(false)
            }
            Some(FaultKind::ShortWrite) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Some(kind) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(kind.error(FaultOp::Write))
            }
        }
    }
}

/// A [`Vfs`] that performs real I/O through [`StdVfs`] but injects the
/// faults a [`FaultPlan`] schedules. Share one instance (via `Arc`)
/// between the service's write path and its recovery probe; clearing the
/// plan ("the disk came back") is immediately visible to both and to
/// every file handle already open.
pub struct FaultVfs {
    inner: StdVfs,
    shared: Arc<Shared>,
}

impl FaultVfs {
    /// A fault VFS starting with the given plan.
    pub fn new(plan: FaultPlan) -> Arc<FaultVfs> {
        let rng = plan.random.as_ref().map_or(0, |r| r.seed);
        Arc::new(FaultVfs {
            inner: StdVfs,
            shared: Arc::new(Shared {
                state: Mutex::new(FaultState {
                    plan,
                    rng,
                    ..FaultState::default()
                }),
                injected: AtomicU64::new(0),
            }),
        })
    }

    /// Replace the schedule (counters keep running; the random stream
    /// restarts from the new plan's seed).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut st = self.shared.state.lock().expect("fault state");
        st.rng = plan.random.as_ref().map_or(0, |r| r.seed);
        st.plan = plan;
    }

    /// Stop injecting faults — the operator fixed the disk.
    pub fn clear(&self) {
        self.set_plan(FaultPlan::none());
    }

    /// Total faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    /// The most recent injected fault, if any.
    pub fn last_fault(&self) -> Option<InjectedFault> {
        self.shared.state.lock().expect("fault state").last.clone()
    }

    /// How many occurrences of `op` have happened so far. Occurrence
    /// counters run for the VFS's lifetime (a plan change does not reset
    /// them), so a plan targeting "the next `op`" is
    /// `fail_nth(op, vfs.op_count(op) + 1, kind)`.
    pub fn op_count(&self, op: FaultOp) -> u64 {
        let st = self.shared.state.lock().expect("fault state");
        st.counts[FaultState::op_index(op)]
    }
}

/// A file handle that consults the shared fault state before every
/// operation.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    shared: Arc<Shared>,
    path: std::path::PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.shared.check_write(&self.path)? {
            // Short write: half the frame really lands — a torn tail.
            self.inner.write_all(&buf[..buf.len() / 2])?;
            let _ = self.inner.sync_data();
            return Err(FaultKind::ShortWrite.error(FaultOp::Write));
        }
        self.inner.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.shared.check(FaultOp::Sync, &self.path)?;
        self.inner.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.shared.check(FaultOp::Sync, &self.path)?;
        self.inner.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.shared.check(FaultOp::Write, &self.path)?;
        self.inner.set_len(len)
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.shared.check(FaultOp::Open, path)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            shared: Arc::clone(&self.shared),
            path: path.to_owned(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.shared.check(FaultOp::Open, path)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path)?,
            shared: Arc::clone(&self.shared),
            path: path.to_owned(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.shared.check(FaultOp::Read, path)?;
        self.inner.read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.shared.check(FaultOp::Read, path)?;
        self.inner.file_len(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // An injected fault (DropRename or any other) skips the rename
        // entirely: `from` stays stranded, `to` keeps its old contents —
        // the caller cannot distinguish, exactly as with a real EIO.
        self.shared.check(FaultOp::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.shared.check(FaultOp::Remove, path)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // Directory creation is not a faultable op: it happens once at
        // open, and a failure there is an ordinary typed error already.
        self.inner.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.shared.check(FaultOp::Sync, path)?;
        self.inner.sync_dir(path)
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        self.shared.check(FaultOp::Read, path)?;
        self.inner.read_dir_names(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "linrec-vfs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = tmpdir("std");
        let path = dir.join("f");
        let vfs = StdVfs;
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        assert_eq!(vfs.file_len(&path).unwrap(), 5);
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b" world").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        let to = dir.join("g");
        vfs.rename(&path, &to).unwrap();
        assert!(vfs.read(&path).is_err());
        assert!(vfs.read_dir_names(&dir).unwrap().contains(&"g".to_owned()));
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&to).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_nth_targets_exactly_one_occurrence() {
        let dir = tmpdir("nth");
        let vfs = FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Write, 2, FaultKind::Enospc));
        let mut f = vfs.create(&dir.join("f")).unwrap();
        f.write_all(b"first").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!is_transient_io(&err));
        f.write_all(b"third").unwrap();
        assert_eq!(vfs.injected_faults(), 1);
        let fault = vfs.last_fault().unwrap();
        assert_eq!(fault.op, FaultOp::Write);
        assert_eq!(fault.nth, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_leaves_real_torn_bytes() {
        let dir = tmpdir("short");
        let path = dir.join("f");
        let vfs =
            FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Write, 1, FaultKind::ShortWrite));
        let mut f = vfs.create(&path).unwrap();
        assert!(f.write_all(b"0123456789").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_rename_strands_the_source() {
        let dir = tmpdir("rename");
        let from = dir.join("tmp");
        let to = dir.join("live");
        std::fs::write(&from, b"new").unwrap();
        std::fs::write(&to, b"old").unwrap();
        let vfs =
            FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Rename, 1, FaultKind::DropRename));
        assert!(vfs.rename(&from, &to).is_err());
        assert_eq!(std::fs::read(&from).unwrap(), b"new", "source stranded");
        assert_eq!(std::fs::read(&to).unwrap(), b"old", "target untouched");
        vfs.rename(&from, &to).unwrap();
        assert_eq!(std::fs::read(&to).unwrap(), b"new");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_clearable() {
        let dir = tmpdir("seeded");
        let run = |seed: u64| -> (u64, Vec<bool>) {
            let vfs = FaultVfs::new(FaultPlan::seeded(seed, 400));
            let mut outcomes = Vec::new();
            for i in 0..32 {
                let path = dir.join(format!("f{i}"));
                let ok = vfs
                    .create(&path)
                    .and_then(|mut f| f.write_all(b"x").and_then(|_| f.sync_data()));
                outcomes.push(ok.is_ok());
            }
            (vfs.injected_faults(), outcomes)
        };
        let (faults_a, outcomes_a) = run(7);
        let (faults_b, outcomes_b) = run(7);
        assert_eq!(outcomes_a, outcomes_b, "same seed, same schedule");
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "a 40% rate over 96 ops must fault");
        let (faults_c, outcomes_c) = run(8);
        assert!(
            faults_c != faults_a || outcomes_c != outcomes_a,
            "different seeds should differ"
        );

        // Clearing stops injection immediately.
        let vfs = FaultVfs::new(FaultPlan::seeded(7, 1000));
        assert!(vfs.create(&dir.join("x")).is_err());
        vfs.clear();
        for i in 0..16 {
            let mut f = vfs.create(&dir.join(format!("y{i}"))).unwrap();
            f.write_all(b"ok").unwrap();
            f.sync_data().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_are_classified_retryable() {
        let dir = tmpdir("transient");
        let vfs = FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Sync, 1, FaultKind::Transient));
        let mut f = vfs.create(&dir.join("f")).unwrap();
        f.write_all(b"x").unwrap();
        let err = f.sync_data().unwrap_err();
        assert!(is_transient_io(&err));
        f.sync_data().unwrap(); // retry succeeds
        let _ = std::fs::remove_dir_all(&dir);
    }
}
