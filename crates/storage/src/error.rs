//! Typed storage errors.
//!
//! Recovery is the one code path that must *never* panic and *never*
//! fabricate data: every way a file can disappoint — unreadable, wrong
//! magic, wrong version, failed checksum, structurally invalid contents —
//! maps to a variant here, so `Store::recover` can uphold its contract of
//! "a state equivalent to some acknowledged prefix, or a typed error".

use std::fmt;
use std::path::Path;

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io {
        /// File (or directory) the operation touched.
        file: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file exists but its contents cannot be trusted: bad magic, failed
    /// checksum, impossible lengths, invalid value tags, out-of-order WAL
    /// sequence numbers.
    Corrupt {
        /// The offending file.
        file: String,
        /// What exactly failed to validate.
        detail: String,
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The offending file.
        file: String,
        /// Version found in the header.
        found: u32,
    },
    /// `append_batch`/`checkpoint` was called before `recover` — the store
    /// refuses to write until the WAL tail has been validated (and a torn
    /// tail truncated), otherwise an append could land after garbage.
    NotRecovered,
    /// The data directory has no valid generation (no manifest, no
    /// generation-0 WAL) yet contains snapshot/WAL files. No crash at any
    /// point in the write protocol produces this state, so the files are
    /// someone's data the store refuses to silently sweep — most likely a
    /// deleted manifest or a directory mix-up. The offending files are
    /// named so the operator can move or remove them deliberately.
    StrayState {
        /// The data directory.
        dir: String,
        /// The stray files found in it (names, sorted).
        files: Vec<String>,
    },
}

impl StorageError {
    pub(crate) fn io(file: &Path, source: std::io::Error) -> StorageError {
        StorageError::Io {
            file: file.display().to_string(),
            source,
        }
    }

    pub(crate) fn corrupt(file: &Path, detail: impl Into<String>) -> StorageError {
        StorageError::Corrupt {
            file: file.display().to_string(),
            detail: detail.into(),
        }
    }

    /// True when the error came from the OS and retrying in place could
    /// plausibly succeed (interrupted syscall, timeout). Format-level
    /// errors (corruption, version skew, stray state) are never transient.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { source, .. } => crate::vfs::is_transient_io(source),
            _ => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { file, source } => write!(f, "{file}: {source}"),
            StorageError::Corrupt { file, detail } => write!(f, "{file}: corrupt: {detail}"),
            StorageError::UnsupportedVersion { file, found } => {
                write!(f, "{file}: unsupported format version {found}")
            }
            StorageError::NotRecovered => {
                write!(f, "store must recover() before it accepts writes")
            }
            StorageError::StrayState { dir, files } => {
                write!(
                    f,
                    "{dir}: stray files with no valid generation (refusing to sweep): {}",
                    files.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
