//! `decisions.log` — a CRC-framed, append-only journal of plan-decision
//! records, stored next to the WAL.
//!
//! Each frame is `[len: u32 LE][crc32(payload): u32 LE][payload]`, where
//! the payload is one decision record as UTF-8 JSON. The log is strictly
//! observability data: appends are best-effort and a failed append must
//! never fail an acknowledged batch (the service counts the error and
//! moves on), but the *format* is held to the same standard as the WAL —
//! a reader gets the longest valid frame prefix and stops at the first
//! torn or corrupt frame, and `DecisionLog::open` truncates a torn tail
//! so later appends land after valid bytes, never after garbage.
//!
//! All I/O goes through the [`Vfs`], so `FaultVfs` chaos schedules cover
//! the log exactly like the WAL and snapshots.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc::crc32;
use crate::error::StorageError;
use crate::vfs::{Vfs, VfsFile};

/// File name of the decision log inside a data directory.
pub const DECISIONS_FILE: &str = "decisions.log";

/// Frames larger than this are treated as corruption by the reader (a
/// decision record is a few KiB; 16 MiB means a scrambled length word).
const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Append handle for a data directory's `decisions.log`.
pub struct DecisionLog {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Length of the valid, durable prefix. Failed appends roll the file
    /// back to this offset so a later append cannot land after a torn
    /// frame.
    len: u64,
    /// Set when a failed append could not be rolled back: the tail state
    /// is unknown, so the log refuses further writes rather than risk
    /// appending after garbage.
    poisoned: bool,
    appended: u64,
}

impl DecisionLog {
    /// Open (creating if missing) the decision log in `dir`. An existing
    /// file is scanned and a torn tail truncated, mirroring WAL recovery.
    pub fn open(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<DecisionLog, StorageError> {
        vfs.create_dir_all(dir)
            .map_err(|e| StorageError::io(dir, e))?;
        let path = dir.join(DECISIONS_FILE);
        let valid = match vfs.file_len(&path) {
            Ok(0) | Err(_) => 0,
            Ok(_) => {
                let bytes = vfs.read(&path).map_err(|e| StorageError::io(&path, e))?;
                valid_prefix_len(&bytes)
            }
        };
        let mut file = vfs
            .open_append(&path)
            .map_err(|e| StorageError::io(&path, e))?;
        let on_disk = vfs
            .file_len(&path)
            .map_err(|e| StorageError::io(&path, e))?;
        if on_disk > valid {
            file.set_len(valid)
                .map_err(|e| StorageError::io(&path, e))?;
        }
        Ok(DecisionLog {
            file,
            path,
            len: valid,
            poisoned: false,
            appended: 0,
        })
    }

    /// Append one JSON record as a CRC frame and fsync it. On failure the
    /// file is rolled back to the last valid length; if even the rollback
    /// fails, the log poisons itself and rejects all further appends.
    pub fn append(&mut self, json: &str) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Corrupt {
                file: self.path.display().to_string(),
                detail: "decision log poisoned by an earlier unrecoverable append failure"
                    .to_owned(),
            });
        }
        let payload = json.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let wrote = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data());
        match wrote {
            Ok(()) => {
                self.len += frame.len() as u64;
                self.appended += 1;
                Ok(())
            }
            Err(e) => {
                if self.file.set_len(self.len).is_err() {
                    self.poisoned = true;
                }
                Err(StorageError::io(&self.path, e))
            }
        }
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every valid record from `dir`'s decision log, oldest first. A
/// missing file yields an empty list; a torn or corrupt tail ends the
/// list at the last valid frame (never an error — the log is
/// observability data and a readable prefix is always useful).
pub fn read_decision_log(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<String>, StorageError> {
    let path = dir.join(DECISIONS_FILE);
    let bytes = match vfs.read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StorageError::io(&path, e)),
    };
    let mut out = Vec::new();
    let mut off = 0usize;
    while let Some((payload, next)) = next_frame(&bytes, off) {
        // Frames are written from &str, so lossy never actually lossies;
        // it just keeps a disk-corrupted record from killing the read.
        out.push(String::from_utf8_lossy(payload).into_owned());
        off = next;
    }
    Ok(out)
}

/// Length in bytes of the longest prefix of `bytes` made of valid frames.
fn valid_prefix_len(bytes: &[u8]) -> u64 {
    let mut off = 0usize;
    while let Some((_, next)) = next_frame(bytes, off) {
        off = next;
    }
    off as u64
}

/// Decode the frame at `off`; `None` on a torn, truncated, oversized or
/// checksum-failing frame.
fn next_frame(bytes: &[u8], off: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(off..off + 8)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return None;
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let payload = bytes.get(off + 8..off + 8 + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, off + 8 + len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultOp, FaultPlan, FaultVfs, StdVfs};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "linrec-decisions-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let dir = temp_dir("roundtrip");
        let vfs: Arc<dyn Vfs> = Arc::new(StdVfs);
        let mut log = DecisionLog::open(&vfs, &dir).unwrap();
        log.append("{\"winner\":\"Direct\"}").unwrap();
        log.append("{\"winner\":\"DenseClosure\"}").unwrap();
        assert_eq!(log.appended(), 2);
        drop(log);
        let records = read_decision_log(vfs.as_ref(), &dir).unwrap();
        assert_eq!(
            records,
            vec![
                "{\"winner\":\"Direct\"}".to_string(),
                "{\"winner\":\"DenseClosure\"}".to_string()
            ]
        );
        // Reopen appends after the existing records.
        let mut log = DecisionLog::open(&vfs, &dir).unwrap();
        log.append("{\"winner\":\"Decomposed\"}").unwrap();
        drop(log);
        assert_eq!(read_decision_log(vfs.as_ref(), &dir).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_log_reads_empty() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_decision_log(&StdVfs, &dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open_and_ignored_on_read() {
        let dir = temp_dir("torn");
        let vfs: Arc<dyn Vfs> = Arc::new(StdVfs);
        let mut log = DecisionLog::open(&vfs, &dir).unwrap();
        log.append("{\"seq\":1}").unwrap();
        drop(log);
        // Simulate a torn frame: a header promising more bytes than exist.
        let path = dir.join(DECISIONS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"partial");
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_decision_log(vfs.as_ref(), &dir).unwrap(),
            vec!["{\"seq\":1}".to_string()]
        );
        // Open truncates the torn tail; the next append is then readable.
        let mut log = DecisionLog::open(&vfs, &dir).unwrap();
        log.append("{\"seq\":2}").unwrap();
        drop(log);
        assert_eq!(
            read_decision_log(vfs.as_ref(), &dir).unwrap(),
            vec!["{\"seq\":1}".to_string(), "{\"seq\":2}".to_string()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_ends_the_readable_prefix() {
        let dir = temp_dir("corrupt");
        let vfs: Arc<dyn Vfs> = Arc::new(StdVfs);
        let mut log = DecisionLog::open(&vfs, &dir).unwrap();
        log.append("{\"seq\":1}").unwrap();
        log.append("{\"seq\":2}").unwrap();
        drop(log);
        let path = dir.join(DECISIONS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second frame.
        let n = bytes.len();
        bytes[n - 2] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_decision_log(vfs.as_ref(), &dir).unwrap(),
            vec!["{\"seq\":1}".to_string()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rolls_back_and_keeps_the_prefix_valid() {
        let dir = temp_dir("fault");
        let vfs: Arc<dyn Vfs> =
            FaultVfs::new(FaultPlan::none().fail_nth(FaultOp::Write, 2, FaultKind::Eio));
        let mut log = DecisionLog::open(&vfs, &dir).unwrap();
        log.append("{\"seq\":1}").unwrap();
        assert!(log.append("{\"seq\":2}").is_err());
        // The failed frame was rolled back; appends keep working and the
        // file stays a clean frame sequence.
        log.append("{\"seq\":3}").unwrap();
        drop(log);
        assert_eq!(
            read_decision_log(vfs.as_ref(), &dir).unwrap(),
            vec!["{\"seq\":1}".to_string(), "{\"seq\":3}".to_string()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_chaos_always_leaves_a_valid_prefix() {
        for seed in 0..8u64 {
            let dir = temp_dir(&format!("chaos{seed}"));
            let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultPlan::seeded_ops(
                seed,
                120,
                vec![FaultOp::Write, FaultOp::Sync],
            ));
            let mut log = match DecisionLog::open(&vfs, &dir) {
                Ok(log) => log,
                Err(_) => continue,
            };
            let mut acked = Vec::new();
            for i in 0..32 {
                let record = format!("{{\"seq\":{i}}}");
                if log.append(&record).is_ok() {
                    acked.push(record);
                }
            }
            drop(log);
            // Every acked record must read back, in order. Records whose
            // append *failed* may still be on disk (e.g. the frame was
            // written, the sync faulted, and the rollback faulted too),
            // so `read` may be a superset — that is loss-free too.
            let read = read_decision_log(&StdVfs, &dir).unwrap();
            let mut it = read.iter();
            for record in &acked {
                assert!(
                    it.any(|r| r == record),
                    "seed {seed}: acked record {record} lost (read back {read:?})"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
