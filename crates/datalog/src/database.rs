//! A database: a mapping from predicate symbols to relations.
//!
//! # Copy-on-write snapshots
//!
//! Relations are stored behind [`Arc`], so cloning a [`Database`] — or
//! calling the intention-revealing alias [`Database::snapshot`] — is
//! `O(#relations)` regardless of how many tuples it holds: the clone
//! shares every relation's arena with the original. Mutation goes through
//! [`Arc::make_mut`], which deep-copies **only** the relation actually
//! being written, and only when some other snapshot still shares it. This
//! is the substrate for epoch-versioned serving (`linrec-service`): a
//! writer snapshots the database, applies an insert batch (copying just
//! the touched relations), and publishes the result while readers keep
//! serving from the previous snapshot untouched.

use crate::atom::Atom;
use crate::error::RuleError;
use crate::hash::FastMap;
use crate::parser::{parse_program, Clause};
use crate::relation::{Relation, Tuple};
use crate::symbol::Symbol;
use crate::term::{Term, Value};
use std::fmt;
use std::sync::Arc;

/// A collection of named relations (the EDB plus any materialized IDB).
///
/// Cloning is cheap (copy-on-write; see the module docs).
#[derive(Clone, Default)]
pub struct Database {
    relations: FastMap<Symbol, Arc<Relation>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Load ground facts from program text; rules in the text are rejected.
    pub fn from_facts(src: &str) -> Result<Database, RuleError> {
        let mut db = Database::new();
        for clause in parse_program(src)? {
            match clause {
                Clause::Fact(atom) => db.insert_fact(&atom)?,
                Clause::Rule(r) => {
                    return Err(RuleError::Parse(format!(
                        "expected facts only, found rule {r}"
                    )))
                }
            }
        }
        Ok(db)
    }

    /// Insert a ground atom as a fact.
    pub fn insert_fact(&mut self, atom: &Atom) -> Result<(), RuleError> {
        let mut tuple = Tuple::with_capacity(atom.arity());
        for t in &atom.terms {
            match t {
                Term::Const(v) => tuple.push(*v),
                Term::Var(v) => {
                    return Err(RuleError::Parse(format!(
                        "fact {atom} contains variable {v}"
                    )))
                }
            }
        }
        self.insert_tuple(atom.pred, tuple);
        Ok(())
    }

    /// Insert a raw tuple for `pred`, creating the relation on first use.
    /// Returns `true` iff the tuple was not already present.
    ///
    /// When the relation is shared with a snapshot, the write copies it
    /// first (copy-on-write) so the snapshot is unaffected.
    ///
    /// # Panics
    /// If `pred` already exists with a different arity.
    pub fn insert_tuple(&mut self, pred: Symbol, tuple: impl AsRef<[Value]>) -> bool {
        let tuple = tuple.as_ref();
        let arity = tuple.len();
        let rel = self
            .relations
            .entry(pred)
            .or_insert_with(|| Arc::new(Relation::new(arity)));
        // Duplicate check before `make_mut`: a no-op insert must not
        // deep-copy a relation that is shared with a snapshot. (The arity
        // assertion still fires inside `insert` for genuinely new tuples;
        // `contains` is simply false on an arity mismatch.)
        if tuple.len() == rel.arity() && rel.contains(tuple) {
            return false;
        }
        Arc::make_mut(rel).insert(tuple)
    }

    /// Install (or replace) a whole relation.
    pub fn set_relation(&mut self, pred: impl Into<Symbol>, rel: Relation) {
        self.relations.insert(pred.into(), Arc::new(rel));
    }

    /// Install (or replace) a relation that is already shared — the
    /// zero-copy path for publishing a materialized view into a snapshot.
    pub fn set_relation_arc(&mut self, pred: impl Into<Symbol>, rel: Arc<Relation>) {
        self.relations.insert(pred.into(), rel);
    }

    /// Look up a relation.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.relations.get(&pred).map(|r| r.as_ref())
    }

    /// Look up a relation as a shared handle (zero-copy; the handle stays
    /// valid however the database is mutated afterwards).
    pub fn relation_arc(&self, pred: Symbol) -> Option<Arc<Relation>> {
        self.relations.get(&pred).cloned()
    }

    /// A cheap copy-on-write snapshot: `O(#relations)`, sharing every
    /// relation's storage with `self` (see the module docs). Identical to
    /// `clone()`; spelled as a method so call sites state their intent.
    pub fn snapshot(&self) -> Database {
        self.clone()
    }

    /// Look up a relation by name.
    pub fn relation_named(&self, pred: &str) -> Option<&Relation> {
        self.relation(Symbol::new(pred))
    }

    /// The relation for `pred`, or an empty relation of the given arity.
    pub fn relation_or_empty(&self, pred: Symbol, arity: usize) -> Relation {
        self.relations
            .get(&pred)
            .map(|r| Relation::clone(r))
            .unwrap_or_else(|| Relation::new(arity))
    }

    /// Iterate over `(predicate, relation)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> + '_ {
        self.relations.iter().map(|(&s, r)| (s, r.as_ref()))
    }

    /// Number of distinct predicates.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn num_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<Symbol> = self.relations.keys().copied().collect();
        names.sort_by_key(|s| s.as_str());
        for n in names {
            writeln!(f, "{n}: {:?}", self.relations[&n])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;

    #[test]
    fn loads_facts() {
        let db = Database::from_facts("e(1,2). e(2,3). v(7).").unwrap();
        assert_eq!(db.relation_named("e").unwrap().len(), 2);
        assert_eq!(db.relation_named("v").unwrap().len(), 1);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.num_tuples(), 3);
    }

    #[test]
    fn rejects_rules_in_fact_text() {
        assert!(Database::from_facts("p(x,y) :- e(x,y).").is_err());
    }

    #[test]
    fn rejects_nonground_facts() {
        assert!(Database::from_facts("e(x,2).").is_err());
    }

    #[test]
    fn relation_or_empty_defaults() {
        let db = Database::new();
        let r = db.relation_or_empty(Symbol::new("missing"), 3);
        assert_eq!(r.arity(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn set_relation_replaces() {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        db.set_relation("e", Relation::from_pairs([(3, 4), (4, 5)]));
        assert_eq!(db.relation_named("e").unwrap().len(), 2);
    }

    #[test]
    fn snapshot_is_copy_on_write() {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        let snap = db.snapshot();
        // The snapshot shares storage until the original is written.
        assert!(Arc::ptr_eq(
            &db.relation_arc(Symbol::new("e")).unwrap(),
            &snap.relation_arc(Symbol::new("e")).unwrap()
        ));
        assert!(db.insert_tuple(Symbol::new("e"), vec![Value::Int(3), Value::Int(4)]));
        assert!(!db.insert_tuple(Symbol::new("e"), vec![Value::Int(3), Value::Int(4)]));
        // Writer sees the insert; the snapshot does not.
        assert_eq!(db.relation_named("e").unwrap().len(), 2);
        assert_eq!(snap.relation_named("e").unwrap().len(), 1);
        // A relation no snapshot shares is mutated in place (no copy).
        drop(snap);
        let before = Arc::as_ptr(&db.relation_arc(Symbol::new("e")).unwrap());
        db.insert_tuple(Symbol::new("e"), vec![Value::Int(5), Value::Int(6)]);
        assert_eq!(
            before,
            Arc::as_ptr(&db.relation_arc(Symbol::new("e")).unwrap())
        );
    }

    #[test]
    fn duplicate_insert_into_a_shared_relation_does_not_copy() {
        let mut db = Database::new();
        db.set_relation("e", Relation::from_pairs([(1, 2)]));
        let snap = db.snapshot(); // shares the relation
        assert!(!db.insert_tuple(Symbol::new("e"), vec![Value::Int(1), Value::Int(2)]));
        // The no-op insert must leave the sharing intact (no deep copy).
        assert!(Arc::ptr_eq(
            &db.relation_arc(Symbol::new("e")).unwrap(),
            &snap.relation_arc(Symbol::new("e")).unwrap()
        ));
    }

    #[test]
    fn debug_lists_relations_sorted() {
        let mut db = Database::new();
        db.insert_tuple(Symbol::new("b"), vec![Value::Int(1)]);
        db.insert_tuple(Symbol::new("a"), vec![Value::Int(2)]);
        let s = format!("{db:?}");
        let a_pos = s.find("a:").unwrap();
        let b_pos = s.find("b:").unwrap();
        assert!(a_pos < b_pos);
    }
}
