//! Global string interner for predicate and constant symbols.
//!
//! Rules and relations refer to names through compact [`Symbol`] ids so that
//! equality checks, hashing and tuple storage never touch string data. The
//! interner is global (process-wide) and thread-safe: symbols interned by any
//! thread compare equal everywhere, which keeps rules, databases and analysis
//! results freely shareable across crates and test threads.

use crate::hash::FastMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string (predicate name or symbolic constant).
///
/// `Symbol`s are cheap to copy and compare; resolve them back to text with
/// [`Symbol::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: FastMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: FastMap::default(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        // Interned strings live for the lifetime of the process. The leak is
        // bounded by the number of distinct names ever used, which is small.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Intern `s`, returning its (process-wide) unique id.
    pub fn new(s: &str) -> Symbol {
        // Fast path: read lock only. The lock is only poisoned if an
        // interning thread panicked, which cannot leave the map half-written.
        if let Some(&id) = interner().read().expect("interner lock").map.get(s) {
            return Symbol(id);
        }
        Symbol(interner().write().expect("interner lock").intern(s))
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock").strings[self.0 as usize]
    }

    /// The raw id. Stable within a process run only.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("edge");
        let b = Symbol::new("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::new("p"), Symbol::new("q"));
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::new("ancestor");
        assert_eq!(s.to_string(), "ancestor");
        assert_eq!(format!("{s:?}"), "Symbol(\"ancestor\")");
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || Symbol::new(if i % 2 == 0 { "even" } else { "odd" }))
            })
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for s in &syms {
            assert!(s.as_str() == "even" || s.as_str() == "odd");
        }
    }
}
