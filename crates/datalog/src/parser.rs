//! A small parser for rules and facts in the paper's notation.
//!
//! Grammar (whitespace-insensitive, `%` starts a line comment):
//!
//! ```text
//! program := clause*
//! clause  := atom ( ":-" atoms )? "."
//! atoms   := atom ("," atom)*
//! atom    := ident "(" terms ")"
//!          | term "=" term            % sugar for =(t1,t2)
//! term    := ident                    % a variable (paper: lowercase x,y,z)
//!          | integer                  % constant
//!          | "'" ident "'"            % symbolic constant
//! ```
//!
//! Following the paper, bare identifiers in argument positions are
//! *variables*; constants are integers or quoted symbols. Names starting
//! with `#` are reserved for internally generated fresh variables.

use crate::atom::{Atom, EQ_PRED};
use crate::error::RuleError;
use crate::rule::{LinearRule, Rule};
use crate::term::{Term, Value, Var};

/// A parsed clause: a rule with a (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// A rule with a nonempty body.
    Rule(Rule),
    /// A ground or non-ground fact (empty body).
    Fact(Atom),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Implies,
    Equals,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if self.rest().starts_with('%') {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                return;
            }
        }
    }

    fn next(&mut self) -> Result<Tok, RuleError> {
        self.skip_trivia();
        let r = self.rest();
        let mut chars = r.chars();
        let c = match chars.next() {
            None => return Ok(Tok::Eof),
            Some(c) => c,
        };
        match c {
            '(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            ')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            ',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            '.' => {
                self.pos += 1;
                Ok(Tok::Dot)
            }
            '=' => {
                self.pos += 1;
                Ok(Tok::Equals)
            }
            ':' => {
                if r.starts_with(":-") {
                    self.pos += 2;
                    Ok(Tok::Implies)
                } else {
                    Err(RuleError::Parse(format!("stray ':' at byte {}", self.pos)))
                }
            }
            '\'' => {
                let inner = &r[1..];
                match inner.find('\'') {
                    Some(end) => {
                        let s = inner[..end].to_owned();
                        self.pos += end + 2;
                        Ok(Tok::Quoted(s))
                    }
                    None => Err(RuleError::Parse("unterminated quoted constant".into())),
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let len = r
                    .char_indices()
                    .skip(1)
                    .find(|&(_, ch)| !ch.is_ascii_digit())
                    .map(|(i, _)| i)
                    .unwrap_or(r.len());
                let text = &r[..len];
                let v: i64 = text
                    .parse()
                    .map_err(|_| RuleError::Parse(format!("bad integer {text:?}")))?;
                self.pos += len;
                Ok(Tok::Int(v))
            }
            c if c.is_alphanumeric() || c == '_' => {
                let len = r
                    .char_indices()
                    .find(|&(_, ch)| !(ch.is_alphanumeric() || ch == '_'))
                    .map(|(i, _)| i)
                    .unwrap_or(r.len());
                let text = r[..len].to_owned();
                self.pos += len;
                Ok(Tok::Ident(text))
            }
            other => Err(RuleError::Parse(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn peek(&mut self) -> Result<Tok, RuleError> {
        let save = self.pos;
        let t = self.next()?;
        self.pos = save;
        Ok(t)
    }
}

struct Parser<'a> {
    lex: Lexer<'a>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            lex: Lexer::new(src),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), RuleError> {
        let got = self.lex.next()?;
        if got == want {
            Ok(())
        } else {
            Err(RuleError::Parse(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn term(&mut self) -> Result<Term, RuleError> {
        match self.lex.next()? {
            Tok::Ident(name) => {
                if name.starts_with('#') {
                    return Err(RuleError::Parse(
                        "names starting with '#' are reserved for fresh variables".into(),
                    ));
                }
                Ok(Term::Var(Var::new(&name)))
            }
            Tok::Int(v) => Ok(Term::Const(Value::Int(v))),
            Tok::Quoted(s) => Ok(Term::Const(Value::sym(&s))),
            other => Err(RuleError::Parse(format!("expected term, got {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, RuleError> {
        // Either `ident(...)`, `=(t1,t2)`, or `term = term`.
        match self.lex.peek()? {
            Tok::Equals => {
                self.lex.next()?; // '='
                self.expect(Tok::LParen)?;
                let a = self.term()?;
                self.expect(Tok::Comma)?;
                let b = self.term()?;
                self.expect(Tok::RParen)?;
                return Ok(Atom::new(EQ_PRED, vec![a, b]));
            }
            Tok::Ident(_) => {}
            other => {
                return Err(RuleError::Parse(format!("expected atom, got {other:?}")));
            }
        }
        let name = match self.lex.next()? {
            Tok::Ident(n) => n,
            _ => unreachable!("peeked"),
        };
        match self.lex.peek()? {
            Tok::LParen => {
                self.lex.next()?;
                let mut terms = Vec::new();
                if self.lex.peek()? != Tok::RParen {
                    loop {
                        terms.push(self.term()?);
                        match self.lex.next()? {
                            Tok::Comma => continue,
                            Tok::RParen => break,
                            other => {
                                return Err(RuleError::Parse(format!(
                                    "expected ',' or ')', got {other:?}"
                                )))
                            }
                        }
                    }
                } else {
                    self.lex.next()?;
                }
                Ok(Atom::new(name.as_str(), terms))
            }
            Tok::Equals => {
                // infix equality: x = t
                self.lex.next()?;
                let rhs = self.term()?;
                Ok(Atom::new(EQ_PRED, vec![Term::Var(Var::new(&name)), rhs]))
            }
            other => Err(RuleError::Parse(format!(
                "expected '(' after predicate {name}, got {other:?}"
            ))),
        }
    }

    fn clause(&mut self) -> Result<Option<Clause>, RuleError> {
        if self.lex.peek()? == Tok::Eof {
            return Ok(None);
        }
        let head = self.atom()?;
        match self.lex.next()? {
            Tok::Dot => Ok(Some(Clause::Fact(head))),
            Tok::Implies => {
                let mut body = vec![self.atom()?];
                loop {
                    match self.lex.next()? {
                        Tok::Comma => body.push(self.atom()?),
                        Tok::Dot => break,
                        other => {
                            return Err(RuleError::Parse(format!(
                                "expected ',' or '.', got {other:?}"
                            )))
                        }
                    }
                }
                Ok(Some(Clause::Rule(Rule::new(head, body))))
            }
            other => Err(RuleError::Parse(format!(
                "expected ':-' or '.', got {other:?}"
            ))),
        }
    }
}

/// Parse a whole program (sequence of clauses).
pub fn parse_program(src: &str) -> Result<Vec<Clause>, RuleError> {
    let mut p = Parser::new(src);
    let mut out = Vec::new();
    while let Some(c) = p.clause()? {
        out.push(c);
    }
    Ok(out)
}

/// Parse exactly one rule (with a nonempty body).
pub fn parse_rule(src: &str) -> Result<Rule, RuleError> {
    let clauses = parse_program(src)?;
    match clauses.as_slice() {
        [Clause::Rule(r)] => Ok(r.clone()),
        [Clause::Fact(_)] => Err(RuleError::Parse("expected a rule, found a fact".into())),
        _ => Err(RuleError::Parse(format!(
            "expected exactly one rule, found {} clauses",
            clauses.len()
        ))),
    }
}

/// Parse exactly one rule and validate it as a linear recursive rule.
pub fn parse_linear_rule(src: &str) -> Result<LinearRule, RuleError> {
    LinearRule::from_rule(&parse_rule(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    #[test]
    fn parses_transitive_closure() {
        let r = parse_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert_eq!(r.head.pred, Symbol::new("p"));
        assert_eq!(r.body.len(), 2);
        assert_eq!(r.to_string(), "p(x,y) :- p(x,z), e(z,y).");
    }

    #[test]
    fn parses_facts_and_constants() {
        let prog = parse_program("e(1,2). e(2,3). name('alice', 1).").unwrap();
        assert_eq!(prog.len(), 3);
        match &prog[2] {
            Clause::Fact(a) => {
                assert_eq!(a.terms[0], Term::Const(Value::sym("alice")));
                assert_eq!(a.terms[1], Term::Const(Value::Int(1)));
            }
            _ => panic!("expected fact"),
        }
    }

    #[test]
    fn parses_negative_integers() {
        let prog = parse_program("v(-5).").unwrap();
        match &prog[0] {
            Clause::Fact(a) => assert_eq!(a.terms[0], Term::Const(Value::Int(-5))),
            _ => panic!("expected fact"),
        }
    }

    #[test]
    fn parses_equality_sugar() {
        let r = parse_rule("p(x,y) :- p(x,z), z = y.").unwrap();
        assert!(r.body[1].is_eq());
        let r2 = parse_rule("p(x,y) :- p(x,z), =(z,y).").unwrap();
        assert_eq!(r.body[1], r2.body[1]);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let prog = parse_program(
            "% transitive closure\n  p(x,y) :- \n  e(x,y). % base case missing on purpose\n",
        )
        .unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("p(x,y) :-").is_err());
        assert!(parse_program("p(x y).").is_err());
        assert!(parse_program("p(#x).").is_err());
        assert!(parse_program("p(x))").is_err());
        assert!(parse_program("&").is_err());
    }

    #[test]
    fn empty_arg_list_allowed() {
        let prog = parse_program("go().").unwrap();
        match &prog[0] {
            Clause::Fact(a) => assert_eq!(a.arity(), 0),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse_program("p('abc).").is_err());
    }

    #[test]
    fn parse_linear_rule_validates() {
        assert!(parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").is_ok());
        assert!(parse_linear_rule("p(x,y) :- e(x,y).").is_err());
    }
}
