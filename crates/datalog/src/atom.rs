//! Atoms (positive literals) over interned predicates.

use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// The distinguished predicate name used for equality atoms introduced when
/// normalizing repeated consequent variables (paper, Section 5).
pub const EQ_PRED: &str = "=";

/// A positive literal `q(t1, …, tn)`.
///
/// The schema of a predicate is just its arity (the paper assumes a typeless
/// system); arity consistency is enforced where atoms meet relations.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Argument terms, in order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom from a predicate name and terms.
    pub fn new(pred: impl Into<Symbol>, terms: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            terms,
        }
    }

    /// Build an atom whose arguments are all variables.
    pub fn from_vars(pred: impl Into<Symbol>, vars: &[Var]) -> Atom {
        Atom {
            pred: pred.into(),
            terms: vars.iter().map(|&v| Term::Var(v)).collect(),
        }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over the variables occurring in this atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// True iff no argument is a constant.
    pub fn is_constant_free(&self) -> bool {
        self.terms.iter().all(|t| t.is_var())
    }

    /// True iff this is an equality atom introduced by normalization.
    pub fn is_eq(&self) -> bool {
        self.pred == Symbol::new(EQ_PRED)
    }

    /// Apply `f` to every variable, producing a new atom.
    pub fn map_vars(&self, mut f: impl FnMut(Var) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => f(*v),
                    Term::Const(c) => Term::Const(*c),
                })
                .collect(),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn arity_and_vars() {
        let a = Atom::from_vars("q", &[v("x"), v("y"), v("x")]);
        assert_eq!(a.arity(), 3);
        let vars: Vec<Var> = a.vars().collect();
        assert_eq!(vars, vec![v("x"), v("y"), v("x")]);
    }

    #[test]
    fn constant_freeness() {
        let a = Atom::from_vars("q", &[v("x")]);
        assert!(a.is_constant_free());
        let b = Atom::new("q", vec![Term::Const(Value::int(1))]);
        assert!(!b.is_constant_free());
    }

    #[test]
    fn map_vars_substitutes() {
        let a = Atom::from_vars("q", &[v("x"), v("y")]);
        let b = a.map_vars(|var| {
            if var == v("x") {
                Term::Var(v("z"))
            } else {
                Term::Var(var)
            }
        });
        assert_eq!(b, Atom::from_vars("q", &[v("z"), v("y")]));
    }

    #[test]
    fn display_format() {
        let a = Atom::from_vars("edge", &[v("x"), v("y")]);
        assert_eq!(a.to_string(), "edge(x,y)");
    }

    #[test]
    fn eq_atom_detection() {
        let a = Atom::from_vars(EQ_PRED, &[v("x"), v("y")]);
        assert!(a.is_eq());
        assert!(!Atom::from_vars("q", &[v("x")]).is_eq());
    }
}
