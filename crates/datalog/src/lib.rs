//! Datalog substrate for the `linrec` workspace.
//!
//! This crate provides the object language of Ioannidis's *"Commutativity and
//! its Role in the Processing of Linear Recursion"* (VLDB 1989): linear,
//! function-free recursive rules, the databases they are evaluated over, and
//! a parser for the paper's notation. Higher layers build on it:
//!
//! * [`linrec-cq`](../linrec_cq) — conjunctive-query theory (homomorphisms,
//!   containment, composition),
//! * [`linrec-alpha`](../linrec_alpha) — α-graphs and variable classification,
//! * [`linrec-core`](../linrec_core) — the commutativity theory itself,
//! * [`linrec-engine`](../linrec_engine) — fixpoint evaluation strategies.
//!
//! # Example
//!
//! ```
//! use linrec_datalog::{parse_linear_rule, Database};
//!
//! let rule = parse_linear_rule("p(x,y) :- p(x,z), down(z,y).").unwrap();
//! assert!(rule.is_restricted_class());
//! assert_eq!(rule.nonrec_atoms().len(), 1);
//!
//! let db = Database::from_facts("down(1,2). down(2,3).").unwrap();
//! assert_eq!(db.relation_named("down").unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod atom;
pub mod bitset;
pub mod database;
pub mod error;
pub mod hash;
pub mod parser;
pub mod relation;
pub mod rule;
pub mod symbol;
pub mod term;

pub use atom::{Atom, EQ_PRED};
pub use bitset::{BitsetRelation, DenseDomain};
pub use database::Database;
pub use error::RuleError;
pub use parser::{parse_linear_rule, parse_program, parse_rule, Clause};
pub use relation::{Relation, RowIter, ShardView, Tuple, INLINE_ARITY};
pub use rule::{input_pred, LinearRule, Rule};
pub use symbol::Symbol;
pub use term::{Term, Value, Var};
