//! In-memory relations: sets of fixed-arity tuples.

use crate::hash::FastSet;
use crate::term::Value;
use std::fmt;

/// A database tuple.
pub type Tuple = Vec<Value>;

/// A relation: a set of tuples of a fixed arity.
///
/// The schema of a relation is its arity alone (the paper's typeless
/// system). Insertions of tuples of the wrong arity panic — arity mismatch
/// is a programming error, not a data error.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: usize,
    tuples: FastSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: FastSet::default(),
        }
    }

    /// Build from an iterator of tuples (arity taken from the argument).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Build a binary relation from integer pairs (the common case for graph
    /// workloads).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i64, i64)>) -> Relation {
        Relation::from_tuples(
            2,
            pairs
                .into_iter()
                .map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
        )
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` iff it was not already present.
    ///
    /// # Panics
    /// If the tuple's arity differs from the relation's.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        self.tuples.insert(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Add every tuple of `other`; returns the number of new tuples.
    pub fn union_in_place(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in union");
        let mut added = 0;
        for t in other.iter() {
            if self.tuples.insert(t.clone()) {
                added += 1;
            }
        }
        added
    }

    /// Set-difference: tuples of `self` not in `other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch in difference");
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .iter()
                .filter(|t| !other.tuples.contains(*t))
                .cloned()
                .collect(),
        }
    }

    /// True iff every tuple of `self` is in `other`.
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.iter().all(|t| other.contains(t))
    }

    /// Tuples sorted lexicographically — deterministic display/compare order.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.sorted().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(i64, i64)> for Relation {
    fn from_iter<I: IntoIterator<Item = (i64, i64)>>(iter: I) -> Relation {
        Relation::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![Value::Int(1), Value::Int(2)]));
        assert!(!r.insert(vec![Value::Int(1), Value::Int(2)]));
        assert!(r.contains(&[Value::Int(1), Value::Int(2)]));
        assert!(!r.contains(&[Value::Int(2), Value::Int(1)]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn union_counts_new_tuples() {
        let mut a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 3), (3, 4)]);
        assert_eq!(a.union_in_place(&b), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn difference_and_subset() {
        let a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 3)]);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let d = a.difference(&b);
        assert_eq!(d.sorted(), vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = Relation::from_pairs([(3, 1), (1, 2), (2, 0)]);
        let s = r.sorted();
        assert_eq!(
            s,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(0)],
                vec![Value::Int(3), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn debug_output_is_stable() {
        let r = Relation::from_pairs([(2, 3), (1, 2)]);
        assert_eq!(format!("{r:?}"), "{(1,2), (2,3)}");
    }
}
