//! In-memory relations: sets of fixed-arity tuples in flat arena storage.
//!
//! # Storage layout
//!
//! A [`Relation`] stores its tuples row-major in a single flat `Vec<Value>`
//! arena: row `r` of an arity-`a` relation occupies `arena[r*a .. r*a + a]`.
//! Iteration therefore walks one contiguous allocation (cache-linear, no
//! pointer chasing), and a whole relation can be copied with a single
//! `memcpy` of the arena.
//!
//! Set semantics are maintained by a private open-addressing hash table over
//! *row ids* (`slots`), with one cached 64-bit hash per row (`hashes`).
//! Membership tests and inserts probe the table and compare against arena
//! rows directly, so neither ever allocates: `contains` takes a plain
//! `&[Value]`, and `insert` accepts anything viewable as a value slice and
//! copies it into the arena only when it is actually new. Rows are never
//! deleted individually (only [`Relation::clear`] removes tuples), which
//! keeps the table tombstone-free.
//!
//! [`Tuple`] is the owned-tuple type for callers that need tuples as values
//! (map keys, seeds, sorted output). Up to [`INLINE_ARITY`] values are
//! stored inline — no heap allocation for the small arities that dominate
//! the paper's workloads — and wider tuples spill to a `Vec`. It derefs to
//! `[Value]`, hashes and compares like a value slice, and can be borrowed
//! as `[Value]`, so `FastMap<Tuple, _>` lookups work with unowned slices.

use crate::hash::{FastSet, FxHasher};
use crate::term::Value;
use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum arity stored inline (without heap allocation) by [`Tuple`].
pub const INLINE_ARITY: usize = 4;

const PAD: Value = Value::Int(0);

/// A database tuple: a short owned sequence of [`Value`]s.
///
/// Arities up to [`INLINE_ARITY`] live inline; wider tuples spill to the
/// heap. Equality, ordering, and hashing all delegate to the underlying
/// value slice, and `Borrow<[Value]>` makes `Tuple`-keyed hash maps
/// queryable with `&[Value]`.
#[derive(Clone)]
pub struct Tuple(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        vals: [Value; INLINE_ARITY],
    },
    Spill(Vec<Value>),
}

impl Tuple {
    /// An empty tuple.
    pub fn new() -> Tuple {
        Tuple(Repr::Inline {
            len: 0,
            vals: [PAD; INLINE_ARITY],
        })
    }

    /// An empty tuple with room for `n` values (spills immediately when
    /// `n > INLINE_ARITY` so later pushes never re-copy).
    pub fn with_capacity(n: usize) -> Tuple {
        if n <= INLINE_ARITY {
            Tuple::new()
        } else {
            Tuple(Repr::Spill(Vec::with_capacity(n)))
        }
    }

    /// Copy a value slice into an owned tuple.
    pub fn from_slice(vals: &[Value]) -> Tuple {
        if vals.len() <= INLINE_ARITY {
            let mut inline = [PAD; INLINE_ARITY];
            inline[..vals.len()].copy_from_slice(vals);
            Tuple(Repr::Inline {
                len: vals.len() as u8,
                vals: inline,
            })
        } else {
            Tuple(Repr::Spill(vals.to_vec()))
        }
    }

    /// Append a value.
    pub fn push(&mut self, v: Value) {
        match &mut self.0 {
            Repr::Inline { len, vals } => {
                if (*len as usize) < INLINE_ARITY {
                    vals[*len as usize] = v;
                    *len += 1;
                } else {
                    let mut spill = vals.to_vec();
                    spill.push(v);
                    self.0 = Repr::Spill(spill);
                }
            }
            Repr::Spill(vec) => vec.push(v),
        }
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Spill(vec) => vec,
        }
    }
}

impl Default for Tuple {
    fn default() -> Tuple {
        Tuple::new()
    }
}

impl std::ops::Deref for Tuple {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl AsRef<[Value]> for Tuple {
    fn as_ref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        self.as_slice()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl PartialEq<Vec<Value>> for Tuple {
    fn eq(&self, other: &Vec<Value>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Tuple> for Vec<Value> {
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Slice hashing, so `Borrow<[Value]>` lookups stay consistent.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(vals: Vec<Value>) -> Tuple {
        if vals.len() <= INLINE_ARITY {
            Tuple::from_slice(&vals)
        } else {
            Tuple(Repr::Spill(vals))
        }
    }
}

impl From<&[Value]> for Tuple {
    fn from(vals: &[Value]) -> Tuple {
        Tuple::from_slice(vals)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        let mut t = Tuple::new();
        for v in iter {
            t.push(v);
        }
        t
    }
}

impl IntoIterator for Tuple {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        // Both arms must yield the same iterator type; the inline copy is
        // at most INLINE_ARITY values.
        let vec = match self.0 {
            Repr::Inline { len, vals } => vals[..len as usize].to_vec(),
            Repr::Spill(vec) => vec,
        };
        vec.into_iter()
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// --- relation --------------------------------------------------------------

const EMPTY_SLOT: u32 = u32::MAX;

/// A relation: a set of tuples of a fixed arity, stored in a flat arena
/// (see the module docs for the layout).
///
/// The schema of a relation is its arity alone (the paper's typeless
/// system). Insertions of tuples of the wrong arity panic — arity mismatch
/// is a programming error, not a data error.
#[derive(Clone, Default)]
pub struct Relation {
    arity: usize,
    /// Row-major tuple storage: row `r` is `arena[r*arity .. (r+1)*arity]`.
    arena: Vec<Value>,
    /// Cached hash per row (same order as the arena).
    hashes: Vec<u64>,
    /// Open-addressing table of row ids; `EMPTY_SLOT` marks a free slot.
    /// Length is always a power of two (or zero before the first insert).
    slots: Vec<u32>,
    /// Content version: refreshed from a process-wide counter on every
    /// mutation, so two relations with equal versions are guaranteed to
    /// have identical contents (a clone shares its source's version; any
    /// later mutation moves the mutated copy to a fresh, never-reused
    /// number). Downstream caches (the engine's scan/index cache, the
    /// service's epoch snapshots) revalidate against this instead of
    /// re-hashing contents.
    version: u64,
}

/// Source of [`Relation::version`] numbers. Starts at 1 so the default
/// version 0 is reserved for never-mutated (empty) relations.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn hash_row(vals: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    vals.hash(&mut h);
    h.finish()
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            arena: Vec::new(),
            hashes: Vec::new(),
            slots: Vec::new(),
            version: 0,
        }
    }

    /// The relation's content version (see the field docs): equal versions
    /// imply equal contents, and every mutation produces a fresh version.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn touch(&mut self) {
        self.version = NEXT_VERSION.fetch_add(1, Ordering::Relaxed);
    }

    /// Build from an iterator of tuples (arity taken from the argument).
    pub fn from_tuples<T: AsRef<[Value]>>(
        arity: usize,
        tuples: impl IntoIterator<Item = T>,
    ) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Build a binary relation from integer pairs (the common case for graph
    /// workloads).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i64, i64)>) -> Relation {
        Relation::from_tuples(
            2,
            pairs
                .into_iter()
                .map(|(a, b)| [Value::Int(a), Value::Int(b)]),
        )
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The flat row-major arena: `len() * arity()` values. Row `r` is
    /// `flat()[r*arity .. (r+1)*arity]`. This is the zero-copy bulk-read
    /// interface used by the engine's scan/index caches.
    pub fn flat(&self) -> &[Value] {
        &self.arena
    }

    /// Row `r` as a value slice.
    ///
    /// # Panics
    /// If `r >= len()`.
    pub fn row(&self, r: usize) -> &[Value] {
        &self.arena[r * self.arity..(r + 1) * self.arity]
    }

    /// Probe for `t`. `Ok(row)` when present, `Err(slot)` with the slot to
    /// fill otherwise. Requires `!self.slots.is_empty()`.
    fn probe(&self, h: u64, t: &[Value]) -> Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let row = self.slots[i];
            if row == EMPTY_SLOT {
                return Err(i);
            }
            let r = row as usize;
            if self.hashes[r] == h && self.row(r) == t {
                return Ok(row);
            }
            i = (i + 1) & mask;
        }
    }

    /// Grow (or initialize) the slot table and re-link every row.
    fn grow_slots(&mut self) {
        let new_len = (self.slots.len() * 2).max(8);
        debug_assert!(
            new_len.is_power_of_two(),
            "slot table length must stay a power of two for mask probing"
        );
        self.slots.clear();
        self.slots.resize(new_len, EMPTY_SLOT);
        let mask = new_len - 1;
        for (r, &h) in self.hashes.iter().enumerate() {
            let mut i = (h as usize) & mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = r as u32;
        }
    }

    /// Insert a tuple; returns `true` iff it was not already present.
    /// Accepts anything viewable as a value slice (`Tuple`, `Vec<Value>`,
    /// arrays, slices); the values are copied into the arena only when new.
    ///
    /// # Panics
    /// If the tuple's arity differs from the relation's.
    pub fn insert(&mut self, t: impl AsRef<[Value]>) -> bool {
        let t = t.as_ref();
        assert_eq!(
            t.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        // Keep load factor below 7/8.
        if (self.hashes.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow_slots();
        }
        let h = hash_row(t);
        match self.probe(h, t) {
            Ok(_) => false,
            Err(slot) => {
                let row = self.hashes.len() as u32;
                self.arena.extend_from_slice(t);
                self.hashes.push(h);
                self.slots[slot] = row;
                self.touch();
                debug_assert_eq!(
                    self.arena.len(),
                    self.hashes.len() * self.arity,
                    "arena must stay exactly len()*arity values after insert"
                );
                true
            }
        }
    }

    /// Membership test (never allocates).
    pub fn contains(&self, t: &[Value]) -> bool {
        if t.len() != self.arity || self.slots.is_empty() {
            return false;
        }
        self.probe(hash_row(t), t).is_ok()
    }

    /// Iterate over tuples as value slices, in insertion order.
    pub fn iter(&self) -> RowIter<'_> {
        RowIter {
            arena: &self.arena,
            arity: self.arity,
            row: 0,
            rows: self.hashes.len(),
        }
    }

    /// Add every tuple of `other`; returns the number of new tuples.
    pub fn union_in_place(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in union");
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t) {
                added += 1;
            }
        }
        added
    }

    /// Set-difference: tuples of `self` not in `other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch in difference");
        let mut out = Relation::new(self.arity);
        for t in self.iter() {
            if !other.contains(t) {
                out.insert(t);
            }
        }
        out
    }

    /// True iff every tuple of `self` is in `other`.
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.iter().all(|t| other.contains(t))
    }

    /// Number of distinct values in column `col` (an `O(len)` scan; used by
    /// the planner's cost model for selectivity estimates). Zero for empty
    /// relations or out-of-range columns.
    pub fn distinct_in_col(&self, col: usize) -> usize {
        if col >= self.arity {
            return 0;
        }
        let mut seen: FastSet<Value> = FastSet::default();
        for t in self.iter() {
            seen.insert(t[col]);
        }
        seen.len()
    }

    /// Tuples sorted lexicographically — deterministic display/compare order.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().map(Tuple::from_slice).collect();
        v.sort();
        v
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.hashes.clear();
        self.slots.clear();
        self.touch();
    }

    // --- bulk export / import (the storage layer's interface) -------------

    /// The relation's storage, exposed wholesale for bulk serialization:
    /// `(arena, hashes, slots)` — the flat row-major arena, the cached
    /// per-row hashes, and the open-addressing row-id table. The parts can
    /// be written out verbatim and handed back to
    /// [`Relation::from_raw_parts`] to reconstruct the relation without
    /// re-hashing a single row.
    pub fn raw_parts(&self) -> (&[Value], &[u64], &[u32]) {
        (&self.arena, &self.hashes, &self.slots)
    }

    /// Reassemble a relation from parts previously exported with
    /// [`Relation::raw_parts`] — the zero-rehash load path. The table is
    /// validated structurally (lengths, power-of-two slot count, row-id
    /// range, exactly one slot per row) and the first row's hash is
    /// recomputed as a drift check; any mismatch is an error, so a caller
    /// can fall back to [`Relation::from_dense_rows`] (which rebuilds the
    /// table from the arena alone). Persisted hashes are only portable
    /// when every value hashes identically in this process — notably
    /// [`Value::Sym`] hashes its process-local interned id, so relations
    /// containing symbols must take the rebuild path.
    pub fn from_raw_parts(
        arity: usize,
        arena: Vec<Value>,
        hashes: Vec<u64>,
        slots: Vec<u32>,
    ) -> Result<Relation, String> {
        let rows = hashes.len();
        if arena.len() != rows * arity {
            return Err(format!(
                "arena holds {} values, expected {} ({} rows of arity {arity})",
                arena.len(),
                rows * arity,
                rows
            ));
        }
        // Strictly more slots than rows: open addressing needs at least
        // one EMPTY_SLOT or probe loops can never terminate.
        if rows > 0 && (!slots.len().is_power_of_two() || slots.len() <= rows) {
            return Err(format!(
                "slot table of {} cannot index {rows} rows",
                slots.len()
            ));
        }
        if rows == 0 && !slots.is_empty() {
            return Err("non-empty slot table for an empty relation".into());
        }
        // Every row must be referenced by exactly one slot: a duplicate
        // reference would leave some other row unreachable (set semantics
        // silently broken), so it is rejected, not repaired.
        let mut seen = vec![false; rows];
        for &s in &slots {
            if s == EMPTY_SLOT {
                continue;
            }
            let r = s as usize;
            if r >= rows {
                return Err(format!("slot references row {s}, have {rows}"));
            }
            if seen[r] {
                return Err(format!("row {s} is referenced by two slots"));
            }
            seen[r] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("row {missing} is not referenced by any slot"));
        }
        let rel = Relation {
            arity,
            arena,
            hashes,
            slots,
            version: NEXT_VERSION.fetch_add(1, Ordering::Relaxed),
        };
        if !rel.is_empty() {
            // Hash-algorithm drift check: hashing is a pure function of the
            // value bytes, so one recomputed row vouches for the table.
            let h = hash_row(rel.row(0));
            if h != rel.hashes[0] {
                return Err("persisted hashes do not match this build's hash function".into());
            }
            if rel.probe(h, rel.row(0)).is_err() {
                return Err("row 0 is not reachable through the slot table".into());
            }
        }
        Ok(rel)
    }

    /// Build a relation from a dense row-major arena (`rows * arity`
    /// values), rebuilding the hash and row-id tables in one pass — the
    /// load path for persisted relations whose cached tables are not
    /// portable (symbolic values re-intern to different ids per process).
    /// Duplicate rows are an error: a dense arena is a set dump, so a
    /// repeat means the input is corrupt.
    pub fn from_dense_rows(
        arity: usize,
        rows: usize,
        arena: Vec<Value>,
    ) -> Result<Relation, String> {
        if arena.len() != rows * arity {
            return Err(format!(
                "arena holds {} values, expected {} ({rows} rows of arity {arity})",
                arena.len(),
                rows * arity
            ));
        }
        let mut rel = Relation {
            arity,
            arena,
            hashes: Vec::with_capacity(rows),
            slots: Vec::new(),
            version: 0,
        };
        if rows > 0 {
            let cap = (rows * 8 / 7 + 1).next_power_of_two().max(8);
            rel.slots = vec![EMPTY_SLOT; cap];
            for r in 0..rows {
                let h = hash_row(&rel.arena[r * arity..(r + 1) * arity]);
                rel.hashes.push(h);
                // probe sees only rows < r (their hashes are pushed); row r
                // itself is linked right after.
                match rel.probe(h, &rel.arena[r * arity..(r + 1) * arity]) {
                    Ok(prev) => return Err(format!("row {r} duplicates row {prev}")),
                    Err(slot) => rel.slots[slot] = r as u32,
                }
            }
            rel.touch();
        }
        Ok(rel)
    }
}

// --- sharding --------------------------------------------------------------

/// A `Send + Sync` zero-copy view of a subset of a shared relation's rows.
///
/// A shard holds an `Arc` to its relation and a list of row ids into the
/// flat arena ([`Relation::flat`]); iterating a shard reads arena slices
/// directly — no tuple is ever copied. Shards are the unit of work for the
/// engine's parallel fixpoint rounds: [`ShardView::partition`] splits a
/// delta relation into `k` disjoint shards by the hash of one column, so
/// rows sharing a join-key value land in the same shard (load balance;
/// correctness never depends on the column choice, because every row is
/// processed independently and the merge deduplicates globally).
#[derive(Clone)]
pub struct ShardView {
    rel: Arc<Relation>,
    rows: Vec<u32>,
}

impl ShardView {
    /// Partition `rel` into exactly `shards` disjoint views covering every
    /// row, bucketed by the hash of column `col` (rows with equal values in
    /// `col` share a shard). When `col` is out of range — including the
    /// arity-0 relation — rows are dealt round-robin instead, which keeps
    /// the shards balanced without inspecting values.
    pub fn partition(rel: &Arc<Relation>, col: usize, shards: usize) -> Vec<ShardView> {
        let k = shards.max(1);
        let mut buckets: Vec<Vec<u32>> = (0..k).map(|_| Vec::new()).collect();
        let by_hash = col < rel.arity();
        for r in 0..rel.len() {
            let b = if by_hash {
                let mut h = FxHasher::default();
                rel.row(r)[col].hash(&mut h);
                (h.finish() % k as u64) as usize
            } else {
                r % k
            };
            buckets[b].push(r as u32);
        }
        buckets
            .into_iter()
            .map(|rows| ShardView {
                rel: Arc::clone(rel),
                rows,
            })
            .collect()
    }

    /// Number of rows in this shard.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The relation the shard views.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Iterate the shard's rows as value slices (zero-copy arena reads).
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.rows.iter().map(|&r| self.rel.row(r as usize))
    }
}

/// Iterator over a relation's rows as value slices.
pub struct RowIter<'a> {
    arena: &'a [Value],
    arity: usize,
    row: usize,
    rows: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        if self.row == self.rows {
            return None;
        }
        let start = self.row * self.arity;
        self.row += 1;
        Some(&self.arena[start..start + self.arity])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rows - self.row;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [Value];
    type IntoIter = RowIter<'a>;
    fn into_iter(self) -> RowIter<'a> {
        self.iter()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.sorted().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(i64, i64)> for Relation {
    fn from_iter<I: IntoIterator<Item = (i64, i64)>>(iter: I) -> Relation {
        Relation::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![Value::Int(1), Value::Int(2)]));
        assert!(!r.insert(vec![Value::Int(1), Value::Int(2)]));
        assert!(r.contains(&[Value::Int(1), Value::Int(2)]));
        assert!(!r.contains(&[Value::Int(2), Value::Int(1)]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn union_counts_new_tuples() {
        let mut a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 3), (3, 4)]);
        assert_eq!(a.union_in_place(&b), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn difference_and_subset() {
        let a = Relation::from_pairs([(1, 2), (2, 3)]);
        let b = Relation::from_pairs([(2, 3)]);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let d = a.difference(&b);
        assert_eq!(d.sorted(), vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = Relation::from_pairs([(3, 1), (1, 2), (2, 0)]);
        let s = r.sorted();
        assert_eq!(
            s,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(0)],
                vec![Value::Int(3), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn debug_output_is_stable() {
        let r = Relation::from_pairs([(2, 3), (1, 2)]);
        assert_eq!(format!("{r:?}"), "{(1,2), (2,3)}");
    }

    #[test]
    fn arena_layout_is_row_major_insertion_order() {
        let mut r = Relation::new(2);
        r.insert([Value::Int(5), Value::Int(6)]);
        r.insert([Value::Int(1), Value::Int(2)]);
        r.insert([Value::Int(5), Value::Int(6)]); // duplicate: no growth
        assert_eq!(
            r.flat(),
            &[Value::Int(5), Value::Int(6), Value::Int(1), Value::Int(2)]
        );
        assert_eq!(r.row(1), &[Value::Int(1), Value::Int(2)]);
        let rows: Vec<&[Value]> = r.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], r.row(0));
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let a = Relation::from_pairs([(1, 2), (3, 4)]);
        let b = Relation::from_pairs([(3, 4), (1, 2)]);
        assert_eq!(a, b);
        let c = Relation::from_pairs([(1, 2)]);
        assert_ne!(a, c);
    }

    #[test]
    fn many_inserts_grow_the_table() {
        let mut r = Relation::new(2);
        for i in 0..10_000 {
            assert!(r.insert([Value::Int(i), Value::Int(i + 1)]));
        }
        for i in 0..10_000 {
            assert!(r.contains(&[Value::Int(i), Value::Int(i + 1)]));
            assert!(!r.insert([Value::Int(i), Value::Int(i + 1)]));
        }
        assert_eq!(r.len(), 10_000);
    }

    #[test]
    fn zero_arity_relation_holds_at_most_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert(Vec::<Value>::new()));
        assert!(!r.insert(Vec::<Value>::new()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn distinct_in_col_counts_values() {
        let r = Relation::from_pairs([(1, 9), (2, 9), (3, 8)]);
        assert_eq!(r.distinct_in_col(0), 3);
        assert_eq!(r.distinct_in_col(1), 2);
        assert_eq!(r.distinct_in_col(7), 0);
    }

    #[test]
    fn versions_track_mutation() {
        let mut r = Relation::new(2);
        assert_eq!(r.version(), 0); // never mutated
        r.insert([Value::Int(1), Value::Int(2)]);
        let v1 = r.version();
        assert_ne!(v1, 0);
        // A duplicate insert changes nothing and keeps the version.
        r.insert([Value::Int(1), Value::Int(2)]);
        assert_eq!(r.version(), v1);
        // A clone shares the version (identical content)…
        let c = r.clone();
        assert_eq!(c.version(), v1);
        // …and diverges on the next mutation of either copy.
        r.insert([Value::Int(3), Value::Int(4)]);
        assert_ne!(r.version(), c.version());
        let before = r.version();
        r.clear();
        assert_ne!(r.version(), before);
    }

    #[test]
    fn tuple_inline_and_spill() {
        let small = Tuple::from_slice(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(small.len(), 2);
        assert_eq!(small[1], Value::Int(2));
        let wide: Tuple = (0..7).map(Value::Int).collect();
        assert_eq!(wide.len(), 7);
        assert_eq!(wide[6], Value::Int(6));
        // Pushing across the inline boundary spills without losing values.
        let mut t = Tuple::new();
        for i in 0..6 {
            t.push(Value::Int(i));
        }
        assert_eq!(t.as_slice(), (0..6).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn tuple_hashes_like_a_slice() {
        use crate::hash::FastMap;
        let mut m: FastMap<Tuple, u32> = FastMap::default();
        m.insert(Tuple::from_slice(&[Value::Int(1), Value::Int(2)]), 7);
        // Borrow<[Value]> lookup with an unowned slice.
        assert_eq!(m.get(&[Value::Int(1), Value::Int(2)][..]), Some(&7));
        let wide: Tuple = (0..9).map(Value::Int).collect();
        m.insert(wide.clone(), 9);
        assert_eq!(m.get(wide.as_slice()), Some(&9));
    }

    #[test]
    fn shards_partition_every_row_exactly_once() {
        let rel = Arc::new(Relation::from_pairs((0..100).map(|i| (i % 7, i))));
        for k in [1usize, 2, 3, 8] {
            let shards = ShardView::partition(&rel, 0, k);
            assert_eq!(shards.len(), k);
            let mut seen = Relation::new(2);
            let mut rows = 0;
            for s in &shards {
                rows += s.len();
                for t in s.iter() {
                    assert!(seen.insert(t), "row appeared in two shards");
                }
            }
            assert_eq!(rows, rel.len());
            assert_eq!(seen.len(), rel.len());
        }
    }

    #[test]
    fn shards_group_equal_join_keys_together() {
        // Rows with the same value in the hash column must share a shard.
        let rel = Arc::new(Relation::from_pairs((0..60).map(|i| (i % 5, i))));
        let shards = ShardView::partition(&rel, 0, 4);
        for key in 0..5 {
            let holders: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.iter().any(|t| t[0] == Value::Int(key)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "key {key} split across shards");
        }
    }

    #[test]
    fn out_of_range_column_falls_back_to_round_robin() {
        let rel = Arc::new(Relation::from_pairs((0..8).map(|i| (i, i))));
        let shards = ShardView::partition(&rel, 9, 4);
        assert!(shards.iter().all(|s| s.len() == 2));
        let mut zero = Relation::new(0);
        zero.insert(Vec::<Value>::new());
        let z = Arc::new(zero);
        let shards = ShardView::partition(&z, 0, 3);
        assert_eq!(shards.iter().map(ShardView::len).sum::<usize>(), 1);
    }

    #[test]
    fn shard_views_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardView>();
        assert_send_sync::<Relation>();
    }

    #[test]
    fn raw_parts_round_trip_reconstructs_without_rehashing() {
        let mut r = Relation::new(2);
        for i in 0..1000 {
            r.insert([Value::Int(i), Value::Int(i * 7 % 31)]);
        }
        let (arena, hashes, slots) = r.raw_parts();
        let back =
            Relation::from_raw_parts(2, arena.to_vec(), hashes.to_vec(), slots.to_vec()).unwrap();
        assert_eq!(back, r);
        assert!(back.contains(&[Value::Int(5), Value::Int(4)]));
        assert_ne!(
            back.version(),
            r.version(),
            "loaded copy gets a fresh version"
        );
    }

    #[test]
    fn from_raw_parts_rejects_malformed_tables() {
        let r = Relation::from_pairs([(1, 2), (2, 3)]);
        let (arena, hashes, slots) = r.raw_parts();
        // Truncated arena.
        assert!(
            Relation::from_raw_parts(2, arena[..2].to_vec(), hashes.to_vec(), slots.to_vec())
                .is_err()
        );
        // Non-power-of-two slot table.
        assert!(Relation::from_raw_parts(
            2,
            arena.to_vec(),
            hashes.to_vec(),
            vec![0, 1, EMPTY_SLOT]
        )
        .is_err());
        // Out-of-range row id.
        let mut bad = slots.to_vec();
        for s in bad.iter_mut() {
            if *s != EMPTY_SLOT {
                *s = 9;
                break;
            }
        }
        assert!(Relation::from_raw_parts(2, arena.to_vec(), hashes.to_vec(), bad).is_err());
        // Drifted hash for row 0.
        let mut wrong = hashes.to_vec();
        wrong[0] ^= 1;
        assert!(Relation::from_raw_parts(2, arena.to_vec(), wrong, slots.to_vec()).is_err());
        // Two slots referencing the same row (row 1 unreachable).
        let dup = vec![0, 0, EMPTY_SLOT, EMPTY_SLOT];
        assert!(Relation::from_raw_parts(2, arena.to_vec(), hashes.to_vec(), dup).is_err());
        // A full table (no EMPTY_SLOT) must be rejected up front — probing
        // it could never terminate.
        let full = vec![1, 1];
        assert!(Relation::from_raw_parts(2, arena.to_vec(), hashes.to_vec(), full).is_err());
    }

    #[test]
    fn from_dense_rows_rebuilds_and_rejects_duplicates() {
        let src = Relation::from_pairs([(1, 2), (2, 3), (3, 4)]);
        let rebuilt = Relation::from_dense_rows(2, src.len(), src.flat().to_vec()).unwrap();
        assert_eq!(rebuilt, src);
        assert!(rebuilt.contains(&[Value::Int(2), Value::Int(3)]));
        let dup = vec![Value::Int(1), Value::Int(2), Value::Int(1), Value::Int(2)];
        assert!(Relation::from_dense_rows(2, 2, dup).is_err());
        assert!(Relation::from_dense_rows(2, 2, vec![Value::Int(1)]).is_err());
        // Zero-arity: one row is fine, two rows are a duplicate.
        let zero = Relation::from_dense_rows(0, 1, Vec::new()).unwrap();
        assert!(zero.contains(&[]));
        assert!(Relation::from_dense_rows(0, 2, Vec::new()).is_err());
        // Empty relations keep their arity.
        let empty = Relation::from_dense_rows(3, 0, Vec::new()).unwrap();
        assert_eq!(empty.arity(), 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn tuple_orders_like_a_slice() {
        let a = Tuple::from_slice(&[Value::Int(1), Value::Int(2)]);
        let b = Tuple::from_slice(&[Value::Int(1), Value::Int(3)]);
        assert!(a < b);
        assert_eq!(a, vec![Value::Int(1), Value::Int(2)]);
    }
}
