//! Fast, non-cryptographic hashing for interned ids and small tuples.
//!
//! The default `SipHash` hasher is needlessly slow for the integer-keyed maps
//! that dominate this workspace (symbol ids, variable ids, tuple values).
//! This module provides an `FxHash`-style multiply-rotate hasher (the
//! algorithm popularized by the Rust compiler) together with map/set type
//! aliases used throughout the workspace, avoiding an extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-style multiplier (same constant family as rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-rotate hasher for hot, HashDoS-insensitive maps.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

/// Construct an empty [`FastMap`].
pub fn fast_map<K, V>() -> FastMap<K, V> {
    FastMap::default()
}

/// Construct an empty [`FastSet`].
pub fn fast_set<T>() -> FastSet<T> {
    FastSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_hash_differently() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_tail_is_length_sensitive() {
        // "ab" vs "ab\0" would collide without the trailing-length mix.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"ab");
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FastMap<u32, &str> = fast_map();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FastSet<(u32, u32)> = fast_set();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn long_byte_streams_use_word_chunks() {
        let mut a = FxHasher::default();
        a.write(b"0123456789abcdef!");
        let mut b = FxHasher::default();
        b.write(b"0123456789abcdef?");
        assert_ne!(a.finish(), b.finish());
    }
}
