//! Variables, constants, and terms.
//!
//! The paper's rules are *function-free*: a term is either a variable or a
//! constant. Constants only occur in engine-level selections and facts; the
//! analysis crates operate on constant-free rules (and check for it).

use crate::symbol::Symbol;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named logic variable.
///
/// Variable identity is its (interned) name: two atoms mentioning `X` in the
/// same rule — or in two rules that are assumed to share their consequent —
/// refer to the same variable, exactly as in the paper's notation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Symbol);

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Var {
    /// A variable with the given name.
    pub fn new(name: &str) -> Var {
        Var(Symbol::new(name))
    }

    /// A globally fresh variable, guaranteed distinct from every variable
    /// created before it (its name starts with `#`, which the parser rejects
    /// in user input).
    pub fn fresh() -> Var {
        let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
        Var(Symbol::new(&format!("#{n}")))
    }

    /// A fresh variable whose name hints at its origin (e.g. `#x.3`).
    pub fn fresh_named(hint: &str) -> Var {
        let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
        Var(Symbol::new(&format!("#{hint}.{n}")))
    }

    /// The variable's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying interned symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.name())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

/// A ground value: either an integer or an interned symbolic constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer constant (workload node ids are integers).
    Int(i64),
    /// Symbolic constant, e.g. `alice`.
    Sym(Symbol),
}

impl Value {
    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Convenience constructor for symbolic values.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::new(s))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

/// A term of a function-free rule: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant occurrence.
    Const(Value),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True iff this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Term {
        Term::Var(Var::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_identity_is_by_name() {
        assert_eq!(Var::new("x"), Var::new("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn fresh_vars_are_unique() {
        let a = Var::fresh();
        let b = Var::fresh();
        assert_ne!(a, b);
        assert!(a.name().starts_with('#'));
    }

    #[test]
    fn fresh_named_embeds_hint() {
        let v = Var::fresh_named("z");
        assert!(v.name().starts_with("#z."));
    }

    #[test]
    fn term_accessors() {
        let t: Term = Var::new("x").into();
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Var::new("x")));
        assert_eq!(t.as_const(), None);

        let c: Term = Value::int(3).into();
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(Value::Int(3)));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::int(-2).to_string(), "-2");
        assert_eq!(Value::sym("bob").to_string(), "bob");
    }
}
