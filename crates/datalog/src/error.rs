//! Error types shared across the workspace's analysis layers.

use crate::symbol::Symbol;
use std::fmt;

/// Errors raised when constructing or transforming rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// The head predicate occurs `found` times in the body; a linear rule
    /// needs exactly one occurrence.
    NotLinear {
        /// Recursive predicate.
        pred: Symbol,
        /// Number of body occurrences found.
        found: usize,
    },
    /// The body's recursive atom arity differs from the head's.
    ArityMismatch {
        /// Recursive predicate.
        pred: Symbol,
        /// Head arity.
        head: usize,
        /// Body occurrence arity.
        body: usize,
    },
    /// An operation required a constant-free rule.
    HasConstants,
    /// An operation required distinct variables in the consequent.
    RepeatedHeadVars {
        /// The repeated variable name.
        var: &'static str,
    },
    /// An operation required a range-restricted rule (every consequent
    /// variable appears in the antecedent).
    NotRangeRestricted {
        /// The offending head variable.
        var: &'static str,
    },
    /// An operation required a constant in the head (it found a constant).
    ConstantInHead,
    /// Equality elimination found `c1 = c2` for distinct constants, so the
    /// rule is unsatisfiable.
    EqualityConflict,
    /// Two rules were expected to define the same consequent.
    ConsequentMismatch,
    /// Parse error with a human-readable message.
    Parse(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::NotLinear { pred, found } => write!(
                f,
                "rule for {pred} is not linear: {found} body occurrences of the recursive predicate (need exactly 1)"
            ),
            RuleError::ArityMismatch { pred, head, body } => write!(
                f,
                "recursive predicate {pred} used with arity {body} in body but {head} in head"
            ),
            RuleError::HasConstants => {
                write!(f, "operation requires a constant-free rule")
            }
            RuleError::RepeatedHeadVars { var } => {
                write!(f, "consequent repeats variable {var}; normalize first")
            }
            RuleError::NotRangeRestricted { var } => {
                write!(f, "head variable {var} does not appear in the antecedent")
            }
            RuleError::ConstantInHead => write!(f, "constants are not allowed in rule heads"),
            RuleError::EqualityConflict => {
                write!(f, "equality elimination derived a contradiction between constants")
            }
            RuleError::ConsequentMismatch => {
                write!(f, "the two rules do not share the same consequent")
            }
            RuleError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for RuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_messages() {
        let e = RuleError::NotLinear {
            pred: Symbol::new("p"),
            found: 2,
        };
        assert!(e.to_string().contains("not linear"));
        assert!(RuleError::HasConstants
            .to_string()
            .contains("constant-free"));
        assert!(RuleError::Parse("oops".into()).to_string().contains("oops"));
    }
}
