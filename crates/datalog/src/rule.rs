//! Rules and validated *linear recursive* rules.
//!
//! A linear recursive rule (paper, eq. 2.1) has the form
//!
//! ```text
//! P(x̄⁽ᵏ⁺¹⁾) :- P(x̄⁽⁰⁾) ∧ Q₁(x̄⁽¹⁾) ∧ … ∧ Q_n(x̄⁽ⁿ⁾)
//! ```
//!
//! with exactly one occurrence of the recursive predicate `P` in the
//! antecedent. [`LinearRule`] validates and stores this shape and offers the
//! syntactic predicates (range-restriction, repeated consequent variables,
//! repeated nonrecursive predicates) that delimit the restricted class of
//! Theorem 5.2, plus the normalizations the paper assumes (repeated head
//! variables → equality atoms; equality elimination).

use crate::atom::{Atom, EQ_PRED};
use crate::error::RuleError;
use crate::hash::{FastMap, FastSet};
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// An unvalidated Horn rule `head :- body`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Consequent.
    pub head: Atom,
    /// Antecedent, a conjunction of positive atoms.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }

    /// All variables of the rule, in first-occurrence order (head first).
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = FastSet::default();
        let mut out = Vec::new();
        for v in self
            .head
            .vars()
            .chain(self.body.iter().flat_map(|a| a.vars()))
        {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// The set of distinguished (head) variables.
    pub fn distinguished(&self) -> FastSet<Var> {
        self.head.vars().collect()
    }

    /// True iff no term anywhere is a constant.
    pub fn is_constant_free(&self) -> bool {
        self.head.is_constant_free() && self.body.iter().all(|a| a.is_constant_free())
    }

    /// True iff every head variable also occurs in the body.
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: FastSet<Var> = self.body.iter().flat_map(|a| a.vars()).collect();
        self.head.vars().all(|v| body_vars.contains(&v))
    }

    /// Apply a variable substitution to the whole rule.
    pub fn map_vars(&self, mut f: impl FnMut(Var) -> Term) -> Rule {
        Rule {
            head: self.head.map_vars(&mut f),
            body: self.body.iter().map(|a| a.map_vars(&mut f)).collect(),
        }
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Marker suffix used to derive the *input* instance `P_in` of the recursive
/// predicate in the underlying nonrecursive rule (paper, Section 5).
const IN_MARKER: &str = "\u{b7}in"; // "·in"

/// The predicate symbol standing for the body instance `P_in` of `p`.
pub fn input_pred(p: Symbol) -> Symbol {
    Symbol::new(&format!("{p}{IN_MARKER}"))
}

/// A validated linear recursive rule.
///
/// Invariants established at construction:
/// * the head predicate occurs exactly once in the body,
/// * that occurrence has the same arity as the head,
/// * head arguments are variables (no constants in the consequent).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinearRule {
    head: Atom,
    rec: Atom,
    nonrec: Vec<Atom>,
}

impl LinearRule {
    /// Validate `rule` as a linear recursive rule.
    pub fn from_rule(rule: &Rule) -> Result<LinearRule, RuleError> {
        let p = rule.head.pred;
        if rule.head.terms.iter().any(|t| !t.is_var()) {
            return Err(RuleError::ConstantInHead);
        }
        let rec_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pred == p)
            .map(|(i, _)| i)
            .collect();
        if rec_positions.len() != 1 {
            return Err(RuleError::NotLinear {
                pred: p,
                found: rec_positions.len(),
            });
        }
        let rec = rule.body[rec_positions[0]].clone();
        if rec.arity() != rule.head.arity() {
            return Err(RuleError::ArityMismatch {
                pred: p,
                head: rule.head.arity(),
                body: rec.arity(),
            });
        }
        let nonrec = rule
            .body
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != rec_positions[0])
            .map(|(_, a)| a.clone())
            .collect();
        Ok(LinearRule {
            head: rule.head.clone(),
            rec,
            nonrec,
        })
    }

    /// Build directly from the three components (validated).
    pub fn from_parts(head: Atom, rec: Atom, nonrec: Vec<Atom>) -> Result<LinearRule, RuleError> {
        let mut body = nonrec;
        body.push(rec);
        LinearRule::from_rule(&Rule::new(head, body))
    }

    /// The recursive predicate `P`.
    pub fn rec_pred(&self) -> Symbol {
        self.head.pred
    }

    /// Arity of the recursive predicate.
    pub fn arity(&self) -> usize {
        self.head.arity()
    }

    /// The consequent atom.
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The body occurrence of the recursive predicate.
    pub fn rec_atom(&self) -> &Atom {
        &self.rec
    }

    /// The nonrecursive body atoms, in source order.
    pub fn nonrec_atoms(&self) -> &[Atom] {
        &self.nonrec
    }

    /// Reassemble a plain [`Rule`] (recursive atom first, matching the
    /// paper's display convention).
    pub fn to_rule(&self) -> Rule {
        let mut body = Vec::with_capacity(1 + self.nonrec.len());
        body.push(self.rec.clone());
        body.extend(self.nonrec.iter().cloned());
        Rule::new(self.head.clone(), body)
    }

    /// Head variables in consequent order (may repeat if not normalized).
    pub fn head_vars(&self) -> Vec<Var> {
        self.head.vars().collect()
    }

    /// The set of distinguished variables.
    pub fn distinguished(&self) -> FastSet<Var> {
        self.head.vars().collect()
    }

    /// The set of nondistinguished variables.
    pub fn nondistinguished(&self) -> FastSet<Var> {
        let d = self.distinguished();
        let mut out = FastSet::default();
        for a in std::iter::once(&self.rec).chain(self.nonrec.iter()) {
            for v in a.vars() {
                if !d.contains(&v) {
                    out.insert(v);
                }
            }
        }
        out
    }

    /// The paper's `h` function: for distinguished variable `x` occurring at
    /// consequent position `i`, `h(x)` is the term at position `i` of the
    /// recursive atom in the antecedent.
    ///
    /// Defined only when the consequent has no repeated variables (otherwise
    /// `h` would not be a function); returns `None` for nondistinguished
    /// variables.
    pub fn h(&self, x: Var) -> Option<Term> {
        let pos = self.head.terms.iter().position(|t| t.as_var() == Some(x))?;
        Some(self.rec.terms[pos])
    }

    /// `h` restricted to variables: `Some(v)` iff `h(x)` is the variable `v`.
    pub fn h_var(&self, x: Var) -> Option<Var> {
        self.h(x).and_then(|t| t.as_var())
    }

    /// True iff a variable occurs more than once in the consequent.
    pub fn has_repeated_head_vars(&self) -> bool {
        let mut seen = FastSet::default();
        self.head.vars().any(|v| !seen.insert(v))
    }

    /// True iff some nonrecursive predicate symbol occurs more than once in
    /// the antecedent (equality atoms are ignored, as the paper removes them
    /// before applying the restriction).
    pub fn has_repeated_nonrec_preds(&self) -> bool {
        let mut seen = FastSet::default();
        self.nonrec
            .iter()
            .filter(|a| !a.is_eq())
            .any(|a| !seen.insert(a.pred))
    }

    /// True iff every consequent variable appears in the antecedent.
    pub fn is_range_restricted(&self) -> bool {
        self.to_rule().is_range_restricted()
    }

    /// True iff the rule mentions no constants.
    pub fn is_constant_free(&self) -> bool {
        self.head.is_constant_free()
            && self.rec.is_constant_free()
            && self.nonrec.iter().all(|a| a.is_constant_free())
    }

    /// True iff the rule is in the restricted class of Theorem 5.2:
    /// range-restricted, no repeated consequent variables, no repeated
    /// nonrecursive predicates (and, per the paper's setting, constant-free).
    pub fn is_restricted_class(&self) -> bool {
        self.is_constant_free()
            && self.is_range_restricted()
            && !self.has_repeated_head_vars()
            && !self.has_repeated_nonrec_preds()
            && self.nonrec.iter().all(|a| !a.is_eq())
    }

    /// Replace repeated consequent variables by fresh ones, adding `=` atoms
    /// to the antecedent (paper, Section 5 preliminaries).
    pub fn normalize_head(&self) -> LinearRule {
        let mut seen: FastSet<Var> = FastSet::default();
        let mut head_terms = Vec::with_capacity(self.head.arity());
        let mut extra_eqs = Vec::new();
        for t in &self.head.terms {
            match t.as_var() {
                Some(v) if !seen.insert(v) => {
                    let fresh = Var::fresh_named(v.name());
                    extra_eqs.push(Atom::from_vars(EQ_PRED, &[fresh, v]));
                    head_terms.push(Term::Var(fresh));
                }
                _ => head_terms.push(*t),
            }
        }
        let mut nonrec = self.nonrec.clone();
        nonrec.extend(extra_eqs);
        LinearRule {
            head: Atom::new(self.head.pred, head_terms),
            rec: self.rec.clone(),
            nonrec,
        }
    }

    /// Eliminate all `=` atoms by unifying their arguments throughout the
    /// rule. Distinguished variables are kept as representatives where
    /// possible. Fails if two distinct constants are equated.
    pub fn eliminate_equalities(&self) -> Result<LinearRule, RuleError> {
        let mut subst: FastMap<Var, Term> = FastMap::default();
        let distinguished = self.distinguished();

        fn resolve(subst: &FastMap<Var, Term>, mut t: Term) -> Term {
            while let Term::Var(v) = t {
                match subst.get(&v) {
                    Some(&next) => t = next,
                    None => break,
                }
            }
            t
        }

        for a in self.nonrec.iter().filter(|a| a.is_eq()) {
            if a.arity() != 2 {
                return Err(RuleError::Parse(format!(
                    "equality atom with arity {}",
                    a.arity()
                )));
            }
            let l = resolve(&subst, a.terms[0]);
            let r = resolve(&subst, a.terms[1]);
            match (l, r) {
                (Term::Var(lv), Term::Var(rv)) if lv == rv => {}
                (Term::Var(lv), Term::Var(rv)) => {
                    // Prefer keeping a distinguished variable as representative.
                    if distinguished.contains(&lv) && !distinguished.contains(&rv) {
                        subst.insert(rv, Term::Var(lv));
                    } else {
                        subst.insert(lv, Term::Var(rv));
                    }
                }
                (Term::Var(v), c @ Term::Const(_)) | (c @ Term::Const(_), Term::Var(v)) => {
                    subst.insert(v, c);
                }
                (Term::Const(a), Term::Const(b)) if a == b => {}
                (Term::Const(_), Term::Const(_)) => return Err(RuleError::EqualityConflict),
            }
        }

        let apply = |v: Var| resolve(&subst, Term::Var(v));
        let head = self.head.map_vars(apply);
        if head.terms.iter().any(|t| !t.is_var()) {
            return Err(RuleError::ConstantInHead);
        }
        let rec = self.rec.map_vars(apply);
        let nonrec = self
            .nonrec
            .iter()
            .filter(|a| !a.is_eq())
            .map(|a| a.map_vars(apply))
            .collect();
        Ok(LinearRule { head, rec, nonrec })
    }

    /// Rename every nondistinguished variable to a fresh one. Used to meet
    /// the paper's standing assumption that two rules share no
    /// nondistinguished variables.
    pub fn freshen_nondistinguished(&self) -> LinearRule {
        let nd = self.nondistinguished();
        let mut map: FastMap<Var, Var> = FastMap::default();
        let rename = |map: &mut FastMap<Var, Var>, v: Var| -> Term {
            if nd.contains(&v) {
                Term::Var(*map.entry(v).or_insert_with(|| Var::fresh_named(v.name())))
            } else {
                Term::Var(v)
            }
        };
        LinearRule {
            head: self.head.clone(),
            rec: self.rec.map_vars(|v| rename(&mut map, v)),
            nonrec: self
                .nonrec
                .iter()
                .map(|a| a.map_vars(|v| rename(&mut map, v)))
                .collect(),
        }
    }

    /// Rename this rule so that its consequent becomes exactly
    /// `template` (same predicate, same variables in the same positions),
    /// freshening nondistinguished variables. Fails if the consequents are
    /// incompatible (different predicate/arity, or repeated head variables).
    pub fn align_consequent(&self, template: &Atom) -> Result<LinearRule, RuleError> {
        if template.pred != self.head.pred || template.arity() != self.head.arity() {
            return Err(RuleError::ConsequentMismatch);
        }
        let mut map: FastMap<Var, Var> = FastMap::default();
        for (mine, theirs) in self.head.terms.iter().zip(template.terms.iter()) {
            let (m, t) = match (mine.as_var(), theirs.as_var()) {
                (Some(m), Some(t)) => (m, t),
                _ => return Err(RuleError::ConsequentMismatch),
            };
            if let Some(prev) = map.insert(m, t) {
                if prev != t {
                    return Err(RuleError::RepeatedHeadVars { var: m.name() });
                }
            }
        }
        let renamed = LinearRule {
            head: self.head.map_vars(|v| Term::Var(map[&v])),
            rec: self.rec.map_vars(|v| match map.get(&v) {
                Some(&t) => Term::Var(t),
                None => Term::Var(v),
            }),
            nonrec: self
                .nonrec
                .iter()
                .map(|a| {
                    a.map_vars(|v| match map.get(&v) {
                        Some(&t) => Term::Var(t),
                        None => Term::Var(v),
                    })
                })
                .collect(),
        };
        Ok(renamed.freshen_nondistinguished())
    }

    /// The *underlying nonrecursive rule* (paper, Section 5): the body
    /// occurrence of `P` is renamed to the marker predicate `P·in`, making
    /// the rule an ordinary conjunctive query over EDB predicates.
    pub fn underlying(&self) -> Rule {
        let mut body = Vec::with_capacity(1 + self.nonrec.len());
        body.push(Atom::new(
            input_pred(self.rec_pred()),
            self.rec.terms.clone(),
        ));
        body.extend(self.nonrec.iter().cloned());
        Rule::new(self.head.clone(), body)
    }

    /// Occurrence count of each variable across the whole rule (head,
    /// recursive atom and nonrecursive atoms).
    pub fn occurrence_counts(&self) -> FastMap<Var, usize> {
        let mut counts: FastMap<Var, usize> = FastMap::default();
        for v in self
            .head
            .vars()
            .chain(self.rec.vars())
            .chain(self.nonrec.iter().flat_map(|a| a.vars()))
        {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    /// Total number of argument positions in the antecedent (the size
    /// parameter `a` of Theorem 5.3) plus the consequent's.
    pub fn argument_positions(&self) -> usize {
        self.head.arity() + self.rec.arity() + self.nonrec.iter().map(|a| a.arity()).sum::<usize>()
    }
}

impl fmt::Debug for LinearRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_rule())
    }
}

impl fmt::Display for LinearRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_linear_rule;

    #[test]
    fn validates_linearity() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert_eq!(r.rec_pred(), Symbol::new("p"));
        assert_eq!(r.nonrec_atoms().len(), 1);

        let bad = crate::parser::parse_rule("p(x,y) :- p(x,z), p(z,y).").unwrap();
        assert!(matches!(
            LinearRule::from_rule(&bad),
            Err(RuleError::NotLinear { found: 2, .. })
        ));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let bad = crate::parser::parse_rule("p(x,y) :- p(x), e(x,y).").unwrap();
        assert!(matches!(
            LinearRule::from_rule(&bad),
            Err(RuleError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn h_function_matches_paper() {
        // Figure 1 rule: P(x,y,z,u,v,w) :- P(x,x,z,v,u,w), Q(x,y), R(y,y).
        let r = parse_linear_rule("p(x,y,z,u,v,w) :- p(x,x,z,v,u,w), q(x,y), r(y,y).").unwrap();
        assert_eq!(r.h_var(Var::new("x")), Some(Var::new("x")));
        assert_eq!(r.h_var(Var::new("y")), Some(Var::new("x")));
        assert_eq!(r.h_var(Var::new("z")), Some(Var::new("z")));
        assert_eq!(r.h_var(Var::new("u")), Some(Var::new("v")));
        assert_eq!(r.h_var(Var::new("v")), Some(Var::new("u")));
    }

    #[test]
    fn restricted_class_detection() {
        let good = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert!(good.is_restricted_class());

        let repeated_pred = parse_linear_rule("p(x,y) :- p(u,v), q(x), q(y).").unwrap();
        assert!(repeated_pred.has_repeated_nonrec_preds());
        assert!(!repeated_pred.is_restricted_class());

        let not_rr = parse_linear_rule("p(x,y) :- p(x,x), e(x,x).").unwrap();
        assert!(!not_rr.is_range_restricted());
    }

    #[test]
    fn normalize_head_introduces_equalities() {
        let r = parse_linear_rule("p(x,x) :- p(x,y), e(y,x).").unwrap();
        assert!(r.has_repeated_head_vars());
        let n = r.normalize_head();
        assert!(!n.has_repeated_head_vars());
        let eqs: Vec<&Atom> = n.nonrec_atoms().iter().filter(|a| a.is_eq()).collect();
        assert_eq!(eqs.len(), 1);
        // Round-trip: eliminating the equalities recovers an equivalent shape.
        let back = n.eliminate_equalities().unwrap();
        assert!(back.has_repeated_head_vars());
    }

    #[test]
    fn eliminate_equalities_unifies() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,w), =(w,y).").unwrap();
        let e = r.eliminate_equalities().unwrap();
        assert!(e.nonrec_atoms().iter().all(|a| !a.is_eq()));
        // w was unified with distinguished y.
        let edge = &e.nonrec_atoms()[0];
        assert_eq!(edge.terms[1].as_var(), Some(Var::new("y")));
    }

    #[test]
    fn freshen_keeps_distinguished() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let f = r.freshen_nondistinguished();
        assert_eq!(f.head(), r.head());
        assert_ne!(f.rec_atom().terms[1], r.rec_atom().terms[1]);
    }

    #[test]
    fn align_consequent_renames() {
        let template = Atom::from_vars("p", &[Var::new("a"), Var::new("b")]);
        let r = parse_linear_rule("p(x,y) :- p(y,x), e(x,y).").unwrap();
        let a = r.align_consequent(&template).unwrap();
        assert_eq!(a.head(), &template);
        assert_eq!(a.rec_atom().terms[0].as_var(), Some(Var::new("b")));
        assert_eq!(a.rec_atom().terms[1].as_var(), Some(Var::new("a")));
    }

    #[test]
    fn underlying_marks_input_instance() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        let u = r.underlying();
        assert_eq!(u.body[0].pred, input_pred(Symbol::new("p")));
        assert_eq!(u.head.pred, Symbol::new("p"));
    }

    #[test]
    fn occurrence_counts_count_everything() {
        let r = parse_linear_rule("p(x,y) :- p(x,x), q(y).").unwrap();
        let c = r.occurrence_counts();
        assert_eq!(c[&Var::new("x")], 3);
        assert_eq!(c[&Var::new("y")], 2);
    }

    #[test]
    fn argument_positions_counts_all_atoms() {
        let r = parse_linear_rule("p(x,y) :- p(x,z), e(z,y).").unwrap();
        assert_eq!(r.argument_positions(), 6);
    }
}
